// Top-level simulated FPGA (paper Fig. 3, hardware side): four Regex
// Engines, the hardware HAL (Job Distributor + memory arbiter) and the QPI
// endpoint, all driven by one virtual-time scheduler.
//
// Functional results (the result BAT contents) are always bit-exact per the
// PU semantics; execution *time* is virtual and read off the scheduler
// clock. Host wall-clock plays no role on this side of the system.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "hw/arbiter.h"
#include "hw/device_config.h"
#include "hw/job.h"
#include "hw/job_distributor.h"
#include "hw/qpi_link.h"
#include "hw/regex_engine.h"
#include "mem/arena.h"

namespace doppio {

class FpgaDevice {
 public:
  /// `arena`: the CPU-FPGA shared region; when provided, every job pointer
  /// is checked against it (the hardware cannot take page faults — see
  /// §4.2.1). May be null for self-contained tests.
  /// `pool`: optional host thread pool accelerating the functional pass.
  /// `device_id`: this device's index within its DevicePool (0 for a
  /// standalone device); stamped into every job's status block so metrics
  /// and traces attribute work to the right pool member.
  FpgaDevice(const DeviceConfig& config, SharedArena* arena = nullptr,
             ThreadPool* pool = nullptr, int device_id = 0);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(FpgaDevice);

  /// Enqueues a job at the current virtual time. The device stores the
  /// parameter/status blocks; the returned id addresses them. `on_done`
  /// (optional) fires on the virtual scheduler at completion.
  Result<JobId> Submit(JobParams params,
                       std::function<void()> on_done = nullptr);

  /// Hardware side of the AAL handshake: publishes the AFU id into the
  /// Device Status Memory and attaches it for diagnostics mirroring.
  void PublishDsm(DeviceStatusMemory* dsm);

  /// Streams scheduling/traffic events into `trace` from now on (null
  /// disables). The log lives with the caller.
  void EnableTrace(TraceLog* trace);

  /// Per-engine utilization summary over [0, now()].
  std::string UtilizationSummary() const;

  /// Status block of a job (valid for the device's lifetime).
  JobStatus* status(JobId id);

  /// Advances virtual time until all submitted work is done.
  /// Returns the final virtual time.
  SimTime RunToIdle();

  /// The UDF's busy-wait: advances virtual time until this job's done bit
  /// is set; returns the job's finish time.
  Result<SimTime> WaitForJob(JobId id);

  /// Deadline-bounded busy-wait (fault-tolerant lifecycle): advances
  /// virtual time until the done bit is set, the virtual clock reaches
  /// `deadline` (absolute, picoseconds — returns DeadlineExceeded), or the
  /// device goes idle with the job unfinished (a dropped/stalled job —
  /// returns Unavailable). Both failures are fallback-eligible.
  Result<SimTime> WaitForJobUntil(JobId id, SimTime deadline);

  /// Abandons an attempt the HAL gave up on: a cancelled job still in the
  /// shared queue is skipped by the Job Distributor (never dispatched); an
  /// attempt already executing runs to completion harmlessly (its result
  /// slice is bit-identical to the retry's).
  Status CancelJob(JobId id);

  /// Advances the virtual clock by `delay` picoseconds, running any due
  /// events — models the HAL sleeping out a retry backoff in virtual time.
  void AdvanceVirtualTime(SimTime delay);

  SimScheduler* scheduler() { return &scheduler_; }
  SimTime now() const { return scheduler_.now(); }
  int device_id() const { return device_id_; }
  const DeviceConfig& config() const { return config_; }
  const QpiLink& qpi() const { return qpi_; }
  const RegexEngine& engine(int i) const { return *engines_[i]; }
  JobDistributor* distributor() { return distributor_.get(); }
  int64_t jobs_submitted() const { return static_cast<int64_t>(jobs_.size()); }

 private:
  Status ValidateJob(const JobParams& params) const;

  /// Serializes access to the virtual-time machinery. Multiple host
  /// threads may Submit/WaitForJob concurrently (the paper's multi-client
  /// scenario); each scheduler event runs atomically under this lock and
  /// the waiting threads cooperatively drain the event queue. Recursive
  /// because closed-loop drivers Submit() their next job from inside a
  /// completion callback, which already runs under the lock.
  mutable std::recursive_mutex sim_mutex_;

  DeviceConfig config_;
  SharedArena* arena_;
  int device_id_ = 0;
  SimScheduler scheduler_;
  QpiLink qpi_;
  Arbiter arbiter_;
  std::vector<std::unique_ptr<RegexEngine>> engines_;
  std::unique_ptr<JobDistributor> distributor_;

  struct JobRecord {
    JobParams params;
    JobStatus status;
  };
  std::deque<std::unique_ptr<JobRecord>> jobs_;

  /// Submission sequence for the fault plan's transient-Submit lottery.
  std::atomic<uint64_t> submit_seq_{0};
};

}  // namespace doppio
