#include "hw/fpga_device.h"

#include <cstdio>

#include "common/logging.h"
#include "hw/config_vector.h"
#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& JobsSubmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.device.jobs_submitted", "jobs accepted by Submit()");
  return *c;
}
obs::Counter& SubmitFaultsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.device.submit_faults_injected",
      "submissions refused by the injected-fault lottery");
  return *c;
}
obs::Counter& WaitDeadlineCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.device.wait_deadline_exceeded",
      "deadline waits that expired before the done bit");
  return *c;
}
obs::Counter& WaitLostCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.device.wait_job_lost",
      "waits that drained the device with the done bit unset");
  return *c;
}
}  // namespace

FpgaDevice::FpgaDevice(const DeviceConfig& config, SharedArena* arena,
                       ThreadPool* pool, int device_id)
    : config_(config),
      arena_(arena),
      device_id_(device_id),
      qpi_(config),
      arbiter_(&qpi_, config.num_engines, config.arbiter_batch_lines) {
  std::vector<RegexEngine*> raw;
  for (int i = 0; i < config_.num_engines; ++i) {
    engines_.push_back(std::make_unique<RegexEngine>(i, config_, &arbiter_,
                                                     &scheduler_, pool));
    raw.push_back(engines_.back().get());
  }
  // The descriptor ring lives in the shared region when one exists; a
  // heap ring backs device-only tests.
  auto queue = SharedJobQueue::Create(arena_, /*capacity=*/64);
  if (!queue.ok()) {
    DOPPIO_LOG(Warning) << "shared job queue allocation failed ("
                        << queue.status().ToString()
                        << "); falling back to host memory";
    queue = SharedJobQueue::Create(nullptr, /*capacity=*/64);
    DOPPIO_CHECK(queue.ok());
  }
  distributor_ = std::make_unique<JobDistributor>(
      &scheduler_, config_, std::move(raw), std::move(*queue));
}

void FpgaDevice::EnableTrace(TraceLog* trace) {
  distributor_->set_trace(trace);
  for (auto& engine : engines_) engine->set_trace(trace);
}

std::string FpgaDevice::UtilizationSummary() const {
  std::string out;
  const double total = SecondsFromPicos(scheduler_.now());
  for (size_t i = 0; i < engines_.size(); ++i) {
    const EngineStats& stats = engines_[i]->stats();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "engine %zu: %lld jobs, %.1f MB streamed, %.1f%% busy\n",
                  i, static_cast<long long>(stats.jobs_executed),
                  static_cast<double>(stats.bytes_streamed) / 1e6,
                  total > 0
                      ? 100.0 * SecondsFromPicos(stats.busy_time) / total
                      : 0.0);
    out += line;
  }
  char qpi_line[120];
  std::snprintf(qpi_line, sizeof(qpi_line),
                "qpi: %.1f MB total, %.2f GB/s achieved\n",
                static_cast<double>(qpi_.total_bytes()) / 1e6,
                qpi_.AchievedBytesPerSec(scheduler_.now()) / 1e9);
  out += qpi_line;
  return out;
}

void FpgaDevice::PublishDsm(DeviceStatusMemory* dsm) {
  dsm->afu_id.store(kRegexAfuId, std::memory_order_relaxed);
  dsm->job_queue_addr.store(
      reinterpret_cast<uint64_t>(distributor_->queue().ring_address()),
      std::memory_order_relaxed);
  distributor_->AttachDsm(dsm);
  dsm->handshake_complete.store(1, std::memory_order_release);
}

Status FpgaDevice::ValidateJob(const JobParams& params) const {
  if (params.count < 0) return Status::InvalidArgument("negative count");
  if (params.streams < 1 || params.streams > 64) {
    return Status::InvalidArgument("job streams out of range [1, 64]");
  }
  if (params.offset_width != 4) {
    return Status::NotImplemented("only 32-bit offsets are deployed");
  }
  if (params.count > 0 &&
      (params.offsets == nullptr || params.heap == nullptr ||
       params.result == nullptr)) {
    return Status::InvalidArgument("null job pointer");
  }
  // Validate the configuration vector by decoding it.
  DOPPIO_ASSIGN_OR_RETURN(ConfigVector cv,
                          ConfigVector::FromBytes(params.config));
  (void)cv;
  if (arena_ != nullptr && params.count > 0) {
    // The FPGA's pagetable covers only the pinned shared region; touching
    // anything else would be an unrecoverable fault (§4.2.1).
    if (!arena_->Contains(params.offsets, params.count * 4) ||
        !arena_->Contains(params.heap, params.heap_bytes) ||
        !arena_->Contains(params.result,
                          params.count * 2 * params.streams)) {
      return Status::InvalidArgument(
          "job memory outside the CPU-FPGA shared region");
    }
  }
  return Status::OK();
}

Result<JobId> FpgaDevice::Submit(JobParams params,
                                 std::function<void()> on_done) {
  DOPPIO_RETURN_NOT_OK(ValidateJob(params));
  if (config_.faults.enabled) {
    const uint64_t seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
    if (config_.faults.Fires(FaultKind::kSubmit, seq,
                             config_.faults.submit_failure_rate)) {
      SubmitFaultsCounter().Add();
      return Status::Unavailable("injected transient submit failure");
    }
  }
  std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
  auto record = std::make_unique<JobRecord>();
  record->params = std::move(params);
  record->status.device_id = device_id_;
  JobRecord* raw = record.get();
  JobId id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(std::move(record));
  Status st =
      distributor_->Enqueue(&raw->params, &raw->status, std::move(on_done));
  if (!st.ok()) {
    jobs_.pop_back();
    return st;
  }
  JobsSubmittedCounter().Add();
  return id;
}

JobStatus* FpgaDevice::status(JobId id) {
  std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
  if (id < 0 || id >= static_cast<JobId>(jobs_.size())) return nullptr;
  return &jobs_[static_cast<size_t>(id)]->status;
}

SimTime FpgaDevice::RunToIdle() {
  std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
  return scheduler_.Run();
}

Result<SimTime> FpgaDevice::WaitForJob(JobId id) {
  JobStatus* st = status(id);
  if (st == nullptr) return Status::NotFound("unknown job id");
  // Busy-wait on the done bit (the prototype has no interrupts). Waiting
  // threads take turns driving the virtual clock, one event per lock hold,
  // so concurrent clients make joint progress.
  while (st->done.load(std::memory_order_acquire) == 0) {
    std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
    if (st->done.load(std::memory_order_acquire) != 0) break;
    if (!scheduler_.RunOne()) {
      return Status::Internal("device idle but job not done");
    }
  }
  if (!st->error.ok()) return st->error;
  return st->finish_time;
}

Result<SimTime> FpgaDevice::WaitForJobUntil(JobId id, SimTime deadline) {
  JobStatus* st = status(id);
  if (st == nullptr) return Status::NotFound("unknown job id");
  while (st->done.load(std::memory_order_acquire) == 0) {
    std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
    // Re-check under the mutex: another waiter may have driven the clock
    // (and set this job's done bit) between our lock-free peek and the
    // re-lock. Without this, a done bit landing in that window would be
    // misreported as DeadlineExceeded below.
    if (st->done.load(std::memory_order_acquire) != 0) break;
    const SimTime next = scheduler_.NextEventTime();
    if (next == SimScheduler::kNoEvent) {
      // No pending virtual-time work can ever finish this job: it was
      // dropped or its engine is stalled.
      WaitLostCounter().Add();
      return Status::Unavailable("device idle but job not done (job lost)");
    }
    if (next > deadline) {
      // Peek before running: a completion scheduled exactly at the
      // deadline must count as on time, and we must not burn virtual time
      // past the deadline executing events that cannot help this job.
      WaitDeadlineCounter().Add();
      return Status::DeadlineExceeded("job exceeded its wait deadline");
    }
    scheduler_.RunOne();
  }
  if (!st->error.ok()) return st->error;
  return st->finish_time;
}

Status FpgaDevice::CancelJob(JobId id) {
  JobStatus* st = status(id);
  if (st == nullptr) return Status::NotFound("unknown job id");
  st->cancelled.store(1, std::memory_order_release);
  return Status::OK();
}

void FpgaDevice::AdvanceVirtualTime(SimTime delay) {
  if (delay <= 0) return;
  std::lock_guard<std::recursive_mutex> lock(sim_mutex_);
  const SimTime target = scheduler_.now() + delay;
  scheduler_.RunUntil(target);
}

}  // namespace doppio
