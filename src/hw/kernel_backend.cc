#include "hw/kernel_backend.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "hw/output_collector.h"
#include "hw/processing_unit.h"
#include "hw/string_reader.h"
#include "regex/bitparallel.h"
#include "regex/simd_scan.h"

namespace doppio {

const char* BackendName(BackendId id) {
  switch (id) {
    case BackendId::kCpuScalar:
      return "cpu-scalar";
    case BackendId::kCpuSimd:
      return "cpu-simd";
    case BackendId::kFpgaSim:
      return "fpga-sim";
  }
  return "?";
}

std::optional<BackendId> ForcedBackend() {
  const char* env = std::getenv("DOPPIO_FORCE_BACKEND");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "cpu-scalar") == 0) {
    return BackendId::kCpuScalar;
  }
  if (std::strcmp(env, "simd") == 0 || std::strcmp(env, "cpu-simd") == 0) {
    return BackendId::kCpuSimd;
  }
  if (std::strcmp(env, "fpga") == 0 || std::strcmp(env, "fpga-sim") == 0) {
    return BackendId::kFpgaSim;
  }
  return std::nullopt;
}

namespace {

/// ProcessingUnit's compiled kernels (literal / lazy-dfa / nfa-loop) —
/// the reference host execution every other backend is compared against.
class ScalarExecution : public HostExecution {
 public:
  explicit ScalarExecution(std::shared_ptr<const CompiledPuProgram> program)
      : pu_(DeviceConfig{}) {
    pu_.Configure(std::move(program));
  }

  uint16_t Match(std::string_view input) override {
    return pu_.ProcessString(input);
  }

  void MatchSet(std::string_view input, uint16_t* match) override {
    pu_.ProcessStringSet(input, match);
  }

  const char* kernel_name() const override {
    return PuKernelName(pu_.kernel());
  }

 private:
  ProcessingUnit pu_;
};

/// The SIMD backend's execution: bit-parallel Shift-And for chain-shaped
/// programs, start-byte-prefiltered lazy DFA when the escape-byte set is
/// small, scalar otherwise (forcing this backend never fails).
class SimdExecution : public HostExecution {
 public:
  explicit SimdExecution(std::shared_ptr<const CompiledPuProgram> program)
      : program_(std::move(program)), level_(simd::ActiveSimdLevel()) {
    prefilter_.level = level_;
    const int num_patterns = program_->num_patterns();
    if (program_->kernel() != PuKernelKind::kNfaLoop) {
      if (num_patterns == 1) {
        bitparallel_ = BitParallelProgram::Compile(program_->nfa());
      } else if (program_->members_chain_shaped()) {
        // Set program whose every member is chain-shaped: one bit-parallel
        // engine per member. Union members are disjoint, so running them
        // separately is exactly the tagged-stream semantics.
        for (int p = 0; p < num_patterns; ++p) {
          Result<TokenNfa> member = ExtractMemberNfa(program_->nfa(), p);
          std::optional<BitParallelProgram> bp;
          if (member.ok()) bp = BitParallelProgram::Compile(*member);
          if (!bp.has_value()) {
            member_bp_.clear();
            break;
          }
          member_bp_.push_back(std::move(*bp));
        }
      }
    }
    const bool bit_parallel = bitparallel_.has_value() ||
                              (num_patterns > 1 &&
                               member_bp_.size() ==
                                   static_cast<size_t>(num_patterns));
    if (!bit_parallel) {
      member_bp_.clear();
      const std::vector<uint8_t>& sb = program_->start_bytes();
      if (program_->kernel() == PuKernelKind::kLazyDfa && !sb.empty() &&
          static_cast<int>(sb.size()) <= simd::kMaxScanBytes) {
        for (size_t i = 0; i < sb.size(); ++i) {
          prefilter_.bytes[i] = sb[i];
        }
        prefilter_.count = static_cast<int>(sb.size());
        dfa_ = std::make_unique<LazyDfaCache>(program_.get());
      }
      // Overflow fallback for the prefiltered DFA, or the whole
      // execution when the program has no SIMD-accelerable shape.
      scalar_ = std::make_unique<ScalarExecution>(program_);
    }
    scratch_.assign(static_cast<size_t>(num_patterns), 0);
  }

  uint16_t Match(std::string_view input) override {
    if (bitparallel_.has_value()) return bitparallel_->Find(input, level_);
    if (program_->num_patterns() > 1) {
      // Any-stream semantics on a set program: the earliest stream accept.
      MatchSet(input, scratch_.data());
      uint16_t first = 0;
      for (uint16_t v : scratch_) {
        if (v != 0 && (first == 0 || v < first)) first = v;
      }
      return first;
    }
    if (dfa_ != nullptr) {
      uint16_t index = 0;
      if (dfa_->Run(input, &index, &prefilter_)) return index;
      // Bounded cache overflowed mid-string: identical semantics through
      // the scalar kernels.
    }
    return scalar_->Match(input);
  }

  void MatchSet(std::string_view input, uint16_t* match) override {
    if (program_->num_patterns() == 1) {
      match[0] = Match(input);
      return;
    }
    if (!member_bp_.empty()) {
      for (size_t p = 0; p < member_bp_.size(); ++p) {
        match[p] = member_bp_[p].Find(input, level_);
      }
      return;
    }
    if (dfa_ != nullptr && dfa_->RunSet(input, match, &prefilter_)) return;
    scalar_->MatchSet(input, match);
  }

  const char* kernel_name() const override {
    if (bitparallel_.has_value()) return "bit-parallel";
    if (!member_bp_.empty()) return "bit-parallel-set";
    if (dfa_ != nullptr) return "dfa+prefilter";
    return scalar_->kernel_name();
  }

 private:
  std::shared_ptr<const CompiledPuProgram> program_;
  /// Resolved once: DOPPIO_SIMD_LEVEL capping is per-execution, and the
  /// env lookup is far too slow for the per-string Match loop.
  simd::SimdLevel level_;
  std::optional<BitParallelProgram> bitparallel_;
  std::vector<BitParallelProgram> member_bp_;  // bit-parallel-set route
  StartBytePrefilter prefilter_;
  std::unique_ptr<LazyDfaCache> dfa_;
  std::unique_ptr<ScalarExecution> scalar_;
  std::vector<uint16_t> scratch_;
};

class CpuScalarBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kCpuScalar; }
  bool CanExecuteOnHost() const override { return true; }
  bool Supports(const CompiledPuProgram&) const override { return true; }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram> program) const override {
    return std::make_unique<ScalarExecution>(std::move(program));
  }
};

class CpuSimdBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kCpuSimd; }
  bool CanExecuteOnHost() const override { return true; }
  bool Supports(const CompiledPuProgram& program) const override {
    if (program.kernel() == PuKernelKind::kNfaLoop) {
      return false;  // forced interpreter: honor it
    }
    // Set programs: bit-parallel per member when every member is
    // chain-shaped; otherwise the prefiltered-DFA test below applies to
    // the union as a whole (RunSet shares the reset-state skip).
    if (program.num_patterns() > 1 && program.members_chain_shaped()) {
      return true;
    }
    // Chain-shaped programs compile to the bit-parallel engine (stage
    // chains are <= 64 matchers by TokenNfa::Validate, so they always
    // fit one word).
    if (!program.chain_state_order().empty()) return true;
    // Otherwise the lazy DFA accelerates via the start-byte prefilter
    // when the escape-byte set is small enough for the SIMD scan.
    const size_t sb = program.start_bytes().size();
    return program.kernel() == PuKernelKind::kLazyDfa && sb >= 1 &&
           sb <= static_cast<size_t>(simd::kMaxScanBytes);
  }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram> program) const override {
    return std::make_unique<SimdExecution>(std::move(program));
  }
};

class FpgaSimBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kFpgaSim; }
  bool CanExecuteOnHost() const override { return false; }
  bool Supports(const CompiledPuProgram&) const override { return true; }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram>) const override {
    return nullptr;  // executes through the device, not host slices
  }
};

}  // namespace

BackendRegistry::BackendRegistry() {
  owned_.push_back(std::make_unique<CpuScalarBackend>());
  owned_.push_back(std::make_unique<CpuSimdBackend>());
  owned_.push_back(std::make_unique<FpgaSimBackend>());
  for (const auto& backend : owned_) list_.push_back(backend.get());
}

const BackendRegistry& BackendRegistry::Global() {
  static const BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

const KernelBackend& BackendRegistry::Get(BackendId id) const {
  for (const KernelBackend* backend : list_) {
    if (backend->id() == id) return *backend;
  }
  return *list_.front();  // unreachable: every id is registered
}

const KernelBackend& BackendRegistry::ChooseHost(
    const CompiledPuProgram& program) const {
  const std::optional<BackendId> forced = ForcedBackend();
  if (forced.has_value() && Get(*forced).CanExecuteOnHost()) {
    return Get(*forced);
  }
  // Forced fpga constrains routing (sched/db layers), not the degrade
  // path: a host slice still needs a host backend.
  const KernelBackend& simd = Get(BackendId::kCpuSimd);
  return simd.Supports(program) ? simd : Get(BackendId::kCpuScalar);
}

Result<int64_t> RunHostSlice(const DeviceConfig& device,
                             const JobParams& params,
                             std::shared_ptr<const CompiledPuProgram> program,
                             HostSliceInfo* info) {
  if (program == nullptr) {
    DOPPIO_ASSIGN_OR_RETURN(ConfigVector cv,
                            ConfigVector::FromBytes(params.config));
    DOPPIO_ASSIGN_OR_RETURN(program, CompiledPuProgram::Compile(cv, device));
  }
  const KernelBackend& backend =
      BackendRegistry::Global().ChooseHost(*program);
  std::unique_ptr<HostExecution> exec = backend.NewExecution(program);
  if (info != nullptr) {
    info->backend = backend.id();
    info->kernel = exec->kernel_name();
  }
  const int32_t streams = params.streams;
  if (program->num_patterns() != streams) {
    return Status::Internal("host slice streams do not match the program");
  }
  StringReader reader(params);
  OutputCollector collector(params);
  std::vector<uint16_t> values(static_cast<size_t>(streams));
  while (reader.HasMore()) {
    DOPPIO_ASSIGN_OR_RETURN(StringReader::Block block, reader.ReadBlock());
    for (std::string_view s : block.strings) {
      if (streams == 1) {
        DOPPIO_RETURN_NOT_OK(collector.Append(exec->Match(s)));
      } else {
        exec->MatchSet(s, values.data());
        DOPPIO_RETURN_NOT_OK(collector.AppendSet(values.data(), streams));
      }
    }
  }
  return collector.matches();
}

Result<int64_t> RunHostCandidates(
    const DeviceConfig& device, const Bat& input, int64_t rows,
    const uint16_t* candidates,
    std::shared_ptr<const CompiledPuProgram> program, uint16_t* result,
    HostSliceInfo* info) {
  if (candidates == nullptr || result == nullptr || program == nullptr) {
    return Status::InvalidArgument("null candidate-subset execution input");
  }
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }
  if (program->num_patterns() != 1) {
    return Status::InvalidArgument(
        "candidate-subset execution takes single-pattern programs");
  }
  const int64_t n = std::min<int64_t>(rows, input.count());
  const KernelBackend& backend =
      BackendRegistry::Global().ChooseHost(*program);
  std::unique_ptr<HostExecution> exec = backend.NewExecution(program);
  if (info != nullptr) {
    info->backend = backend.id();
    info->kernel = exec->kernel_name();
  }
  int64_t matches = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (candidates[i] == 0) {
      result[i] = 0;
      continue;
    }
    const uint16_t value = exec->Match(input.GetString(i));
    result[i] = value;
    if (value != 0) ++matches;
  }
  return matches;
}

}  // namespace doppio
