#include "hw/kernel_backend.h"

#include <cstdlib>
#include <cstring>

#include "hw/output_collector.h"
#include "hw/processing_unit.h"
#include "hw/string_reader.h"
#include "regex/bitparallel.h"
#include "regex/simd_scan.h"

namespace doppio {

const char* BackendName(BackendId id) {
  switch (id) {
    case BackendId::kCpuScalar:
      return "cpu-scalar";
    case BackendId::kCpuSimd:
      return "cpu-simd";
    case BackendId::kFpgaSim:
      return "fpga-sim";
  }
  return "?";
}

std::optional<BackendId> ForcedBackend() {
  const char* env = std::getenv("DOPPIO_FORCE_BACKEND");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "cpu-scalar") == 0) {
    return BackendId::kCpuScalar;
  }
  if (std::strcmp(env, "simd") == 0 || std::strcmp(env, "cpu-simd") == 0) {
    return BackendId::kCpuSimd;
  }
  if (std::strcmp(env, "fpga") == 0 || std::strcmp(env, "fpga-sim") == 0) {
    return BackendId::kFpgaSim;
  }
  return std::nullopt;
}

namespace {

/// ProcessingUnit's compiled kernels (literal / lazy-dfa / nfa-loop) —
/// the reference host execution every other backend is compared against.
class ScalarExecution : public HostExecution {
 public:
  explicit ScalarExecution(std::shared_ptr<const CompiledPuProgram> program)
      : pu_(DeviceConfig{}) {
    pu_.Configure(std::move(program));
  }

  uint16_t Match(std::string_view input) override {
    return pu_.ProcessString(input);
  }

  const char* kernel_name() const override {
    return PuKernelName(pu_.kernel());
  }

 private:
  ProcessingUnit pu_;
};

/// The SIMD backend's execution: bit-parallel Shift-And for chain-shaped
/// programs, start-byte-prefiltered lazy DFA when the escape-byte set is
/// small, scalar otherwise (forcing this backend never fails).
class SimdExecution : public HostExecution {
 public:
  explicit SimdExecution(std::shared_ptr<const CompiledPuProgram> program)
      : program_(std::move(program)), level_(simd::ActiveSimdLevel()) {
    prefilter_.level = level_;
    if (program_->kernel() != PuKernelKind::kNfaLoop) {
      bitparallel_ = BitParallelProgram::Compile(program_->nfa());
    }
    if (!bitparallel_.has_value()) {
      const std::vector<uint8_t>& sb = program_->start_bytes();
      if (program_->kernel() == PuKernelKind::kLazyDfa && !sb.empty() &&
          static_cast<int>(sb.size()) <= simd::kMaxScanBytes) {
        for (size_t i = 0; i < sb.size(); ++i) {
          prefilter_.bytes[i] = sb[i];
        }
        prefilter_.count = static_cast<int>(sb.size());
        dfa_ = std::make_unique<LazyDfaCache>(program_.get());
      }
    }
    if (!bitparallel_.has_value()) {
      // Overflow fallback for the prefiltered DFA, or the whole
      // execution when the program has no SIMD-accelerable shape.
      scalar_ = std::make_unique<ScalarExecution>(program_);
    }
  }

  uint16_t Match(std::string_view input) override {
    if (bitparallel_.has_value()) return bitparallel_->Find(input, level_);
    if (dfa_ != nullptr) {
      uint16_t index = 0;
      if (dfa_->Run(input, &index, &prefilter_)) return index;
      // Bounded cache overflowed mid-string: identical semantics through
      // the scalar kernels.
    }
    return scalar_->Match(input);
  }

  const char* kernel_name() const override {
    if (bitparallel_.has_value()) return "bit-parallel";
    if (dfa_ != nullptr) return "dfa+prefilter";
    return scalar_->kernel_name();
  }

 private:
  std::shared_ptr<const CompiledPuProgram> program_;
  /// Resolved once: DOPPIO_SIMD_LEVEL capping is per-execution, and the
  /// env lookup is far too slow for the per-string Match loop.
  simd::SimdLevel level_;
  std::optional<BitParallelProgram> bitparallel_;
  StartBytePrefilter prefilter_;
  std::unique_ptr<LazyDfaCache> dfa_;
  std::unique_ptr<ScalarExecution> scalar_;
};

class CpuScalarBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kCpuScalar; }
  bool CanExecuteOnHost() const override { return true; }
  bool Supports(const CompiledPuProgram&) const override { return true; }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram> program) const override {
    return std::make_unique<ScalarExecution>(std::move(program));
  }
};

class CpuSimdBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kCpuSimd; }
  bool CanExecuteOnHost() const override { return true; }
  bool Supports(const CompiledPuProgram& program) const override {
    if (program.kernel() == PuKernelKind::kNfaLoop) {
      return false;  // forced interpreter: honor it
    }
    // Chain-shaped programs compile to the bit-parallel engine (stage
    // chains are <= 64 matchers by TokenNfa::Validate, so they always
    // fit one word).
    if (!program.chain_state_order().empty()) return true;
    // Otherwise the lazy DFA accelerates via the start-byte prefilter
    // when the escape-byte set is small enough for the SIMD scan.
    const size_t sb = program.start_bytes().size();
    return program.kernel() == PuKernelKind::kLazyDfa && sb >= 1 &&
           sb <= static_cast<size_t>(simd::kMaxScanBytes);
  }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram> program) const override {
    return std::make_unique<SimdExecution>(std::move(program));
  }
};

class FpgaSimBackend : public KernelBackend {
 public:
  BackendId id() const override { return BackendId::kFpgaSim; }
  bool CanExecuteOnHost() const override { return false; }
  bool Supports(const CompiledPuProgram&) const override { return true; }
  std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram>) const override {
    return nullptr;  // executes through the device, not host slices
  }
};

}  // namespace

BackendRegistry::BackendRegistry() {
  owned_.push_back(std::make_unique<CpuScalarBackend>());
  owned_.push_back(std::make_unique<CpuSimdBackend>());
  owned_.push_back(std::make_unique<FpgaSimBackend>());
  for (const auto& backend : owned_) list_.push_back(backend.get());
}

const BackendRegistry& BackendRegistry::Global() {
  static const BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

const KernelBackend& BackendRegistry::Get(BackendId id) const {
  for (const KernelBackend* backend : list_) {
    if (backend->id() == id) return *backend;
  }
  return *list_.front();  // unreachable: every id is registered
}

const KernelBackend& BackendRegistry::ChooseHost(
    const CompiledPuProgram& program) const {
  const std::optional<BackendId> forced = ForcedBackend();
  if (forced.has_value() && Get(*forced).CanExecuteOnHost()) {
    return Get(*forced);
  }
  // Forced fpga constrains routing (sched/db layers), not the degrade
  // path: a host slice still needs a host backend.
  const KernelBackend& simd = Get(BackendId::kCpuSimd);
  return simd.Supports(program) ? simd : Get(BackendId::kCpuScalar);
}

Result<int64_t> RunHostSlice(const DeviceConfig& device,
                             const JobParams& params,
                             std::shared_ptr<const CompiledPuProgram> program,
                             HostSliceInfo* info) {
  if (program == nullptr) {
    DOPPIO_ASSIGN_OR_RETURN(ConfigVector cv,
                            ConfigVector::FromBytes(params.config));
    DOPPIO_ASSIGN_OR_RETURN(program, CompiledPuProgram::Compile(cv, device));
  }
  const KernelBackend& backend =
      BackendRegistry::Global().ChooseHost(*program);
  std::unique_ptr<HostExecution> exec = backend.NewExecution(program);
  if (info != nullptr) {
    info->backend = backend.id();
    info->kernel = exec->kernel_name();
  }
  StringReader reader(params);
  OutputCollector collector(params);
  while (reader.HasMore()) {
    DOPPIO_ASSIGN_OR_RETURN(StringReader::Block block, reader.ReadBlock());
    for (std::string_view s : block.strings) {
      DOPPIO_RETURN_NOT_OK(collector.Append(exec->Match(s)));
    }
  }
  return collector.matches();
}

}  // namespace doppio
