#include "hw/config_compiler.h"

#include "common/stopwatch.h"
#include "regex/pattern_parser.h"
#include "regex/token_extractor.h"

namespace doppio {

Status CheckCapacity(const TokenNfa& nfa, const DeviceConfig& device) {
  const int matchers = nfa.TotalMatchers();
  if (matchers > device.max_chars) {
    return Status::CapacityExceeded(
        "pattern needs " + std::to_string(matchers) +
        " character matchers, deployment has " +
        std::to_string(device.max_chars));
  }
  const int states = nfa.NumStates();
  if (states > device.max_states) {
    return Status::CapacityExceeded(
        "pattern needs " + std::to_string(states) +
        " states, deployment has " + std::to_string(device.max_states));
  }
  return Status::OK();
}

Result<RegexConfig> CompileRegexConfig(const AstNode& ast,
                                       const DeviceConfig& device,
                                       const CompileOptions& options) {
  Stopwatch watch;
  DOPPIO_ASSIGN_OR_RETURN(TokenNfa nfa, ExtractTokenNfa(ast, options));
  DOPPIO_RETURN_NOT_OK(CheckCapacity(nfa, device));
  DOPPIO_ASSIGN_OR_RETURN(ConfigVector vector, ConfigVector::Encode(nfa));

  RegexConfig config;
  config.states_used = nfa.NumStates();
  config.matchers_used = nfa.TotalMatchers();
  config.vector = std::move(vector);
  config.nfa = std::move(nfa);
  config.compile_seconds = watch.ElapsedSeconds();
  return config;
}

Result<RegexConfig> CompileRegexSetConfig(
    const std::vector<const TokenNfa*>& members, const DeviceConfig& device) {
  Stopwatch watch;
  DOPPIO_ASSIGN_OR_RETURN(TokenNfa nfa, BuildUnionNfa(members));
  DOPPIO_RETURN_NOT_OK(CheckCapacity(nfa, device));
  if (nfa.NumStates() > 64) {
    // CompiledPuProgram would reject it later; fail at compile time so the
    // scheduler falls back to the multi-pass planner up front.
    return Status::CapacityExceeded("pattern-set union exceeds 64 states");
  }
  DOPPIO_ASSIGN_OR_RETURN(ConfigVector vector, ConfigVector::Encode(nfa));

  RegexConfig config;
  config.states_used = nfa.NumStates();
  config.matchers_used = nfa.TotalMatchers();
  config.vector = std::move(vector);
  config.nfa = std::move(nfa);
  config.compile_seconds = watch.ElapsedSeconds();
  return config;
}

Result<RegexConfig> CompileRegexConfig(std::string_view pattern,
                                       const DeviceConfig& device,
                                       const CompileOptions& options) {
  Stopwatch watch;
  // '^'/'$' anchors become compile flags; the extractor rejects them
  // (the hardware searches unanchored), routing such patterns to software.
  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  DOPPIO_ASSIGN_OR_RETURN(
      RegexConfig config,
      CompileRegexConfig(*parsed.ast, device, parsed.Options(options)));
  config.compile_seconds = watch.ElapsedSeconds();
  return config;
}

}  // namespace doppio
