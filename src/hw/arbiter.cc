#include "hw/arbiter.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& LinesTransferredCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hw.arbiter.lines_transferred",
      "cache lines moved over the arbitrated QPI link");
  return *c;
}
}  // namespace

Arbiter::Arbiter(QpiLink* link, int num_engines, int batch_lines)
    : link_(link),
      batch_lines_(batch_lines),
      engine_lines_(static_cast<size_t>(num_engines), 0) {
  DOPPIO_CHECK(link != nullptr);
  DOPPIO_CHECK(batch_lines >= 1);
}

SimTime Arbiter::Transfer(int engine_id, SimTime now, int64_t lines) {
  DOPPIO_CHECK(engine_id >= 0 &&
               engine_id < static_cast<int>(engine_lines_.size()));
  engine_lines_[static_cast<size_t>(engine_id)] += lines;
  LinesTransferredCounter().Add(lines);
  SimTime completion = now;
  int64_t remaining = lines;
  while (remaining > 0) {
    int64_t batch = std::min<int64_t>(remaining, batch_lines_);
    completion = link_->Transfer(engine_id, now, batch);
    // Pipelined issue: the next batch goes out as soon as the window
    // drains, not when the previous batch's data lands.
    now = std::max(now, link_->EngineReady(engine_id));
    remaining -= batch;
  }
  return completion;
}

}  // namespace doppio
