#include "hw/job_distributor.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

namespace {

// Call-site-cached instruments: registration (mutex + map) happens once;
// steady state is one relaxed atomic RMW per event.
obs::Counter& JobsEnqueuedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.queue.jobs_enqueued", "descriptors pushed to the shared ring");
  return *c;
}
obs::Counter& QueueRejectedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.queue.rejected_full",
      "descriptor pushes refused because the ring was full");
  return *c;
}
obs::Counter& JobsDispatchedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.queue.jobs_dispatched", "descriptors handed to an engine");
  return *c;
}
obs::Counter& CancelledSkippedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.queue.cancelled_skipped",
      "cancelled descriptors discarded before dispatch");
  return *c;
}
obs::Histogram& QueueDepthHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.queue.depth", obs::DepthBuckets(),
      "ring occupancy observed after each push");
  return *h;
}

}  // namespace

JobDistributor::JobDistributor(SimScheduler* scheduler, DeviceConfig device,
                               std::vector<RegexEngine*> engines,
                               std::unique_ptr<SharedJobQueue> queue)
    : scheduler_(scheduler),
      device_(device),
      engines_(std::move(engines)),
      queue_(std::move(queue)) {
  DOPPIO_CHECK(!engines_.empty());
  DOPPIO_CHECK(queue_ != nullptr);
}

void JobDistributor::AttachDsm(DeviceStatusMemory* dsm) {
  dsm_ = dsm;
  UpdateIdleMirror();
}

void JobDistributor::UpdateIdleMirror() {
  if (dsm_ == nullptr) return;
  uint32_t idle = 0;
  for (RegexEngine* e : engines_) idle += e->idle() ? 1 : 0;
  dsm_->idle_engines.store(idle, std::memory_order_relaxed);
}

Status JobDistributor::Enqueue(JobParams* params, JobStatus* status,
                               std::function<void()> on_done) {
  status->enqueue_time = scheduler_->now();
  JobDescriptor descriptor;
  descriptor.params_addr = reinterpret_cast<uint64_t>(params);
  descriptor.status_addr = reinterpret_cast<uint64_t>(status);
  descriptor.job_id = next_job_id_++;
  status->queue_job_id = descriptor.job_id;
  if (on_done) callbacks_[descriptor.job_id] = std::move(on_done);
  if (!queue_->Push(descriptor)) {
    callbacks_.erase(descriptor.job_id);
    QueueRejectedCounter().Add();
    // Typed back-pressure: the ring is bounded by design and never grows;
    // callers (the retry lifecycle, the scheduler) wait out the drain.
    return Status::ResourceExhausted(
        "shared job queue full: too many outstanding FPGA jobs");
  }
  JobsEnqueuedCounter().Add();
  QueueDepthHistogram().Observe(static_cast<double>(queue_->Size()));
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{scheduler_->now(),
                              TraceEvent::Kind::kJobEnqueued,
                              descriptor.job_id, -1, 0});
  }
  // The hardware polls the shared-memory queue; model that small delay.
  scheduler_->ScheduleAfter(PicosFromSeconds(device_.job_poll_sec),
                            [this] { TryDispatch(); });
  return Status::OK();
}

void JobDistributor::TryDispatch() {
  while (!queue_->Empty()) {
    RegexEngine* engine = nullptr;
    for (RegexEngine* e : engines_) {
      if (e->idle()) {
        engine = e;
        break;
      }
    }
    if (engine == nullptr) {
      UpdateIdleMirror();
      return;  // all busy; retried on job completion
    }

    JobDescriptor descriptor;
    if (!queue_->Pop(&descriptor)) break;
    auto* params = reinterpret_cast<JobParams*>(descriptor.params_addr);
    auto* status = reinterpret_cast<JobStatus*>(descriptor.status_addr);

    if (status->cancelled.load(std::memory_order_acquire) != 0) {
      // The HAL gave up on this attempt (deadline expired, requeued): a
      // cancelled descriptor is discarded, never dispatched, so the retry
      // does not race a stale execution for the engine.
      callbacks_.erase(descriptor.job_id);
      CancelledSkippedCounter().Add();
      continue;
    }
    ++jobs_dispatched_;
    JobsDispatchedCounter().Add();
    status->dispatch_time = scheduler_->now();

    const uint64_t id = descriptor.job_id;
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{scheduler_->now(),
                                TraceEvent::Kind::kJobDispatched, id,
                                engine->id(), 0});
    }
    Status st = engine->Start(params, status, [this, id, engine, status] {
      const bool dropped =
          (status->fault_flags.load(std::memory_order_acquire) &
           kJobFaultDropped) != 0;
      if (trace_ != nullptr && !dropped) {
        trace_->Record(TraceEvent{scheduler_->now(),
                                  TraceEvent::Kind::kJobDone, id,
                                  engine->id(), 0});
      }
      auto it = callbacks_.find(id);
      std::function<void()> on_done;
      if (it != callbacks_.end()) {
        on_done = std::move(it->second);
        callbacks_.erase(it);
      }
      // A dropped job's completion callback must never fire — the caller
      // sees it only through the missing done bit.
      if (on_done && !dropped) on_done();
      // A job finished (or vanished): an engine is idle again.
      TryDispatch();
    });
    if (!st.ok()) {
      DOPPIO_LOG(Error) << "job dispatch failed: " << st.ToString();
      status->error = st;
      status->done.store(1, std::memory_order_release);
      auto it = callbacks_.find(id);
      if (it != callbacks_.end()) {
        auto on_done = std::move(it->second);
        callbacks_.erase(it);
        if (on_done) on_done();
      }
    }
  }
  UpdateIdleMirror();
}

}  // namespace doppio
