// Processing Unit: the runtime-parameterizable NFA circuit (paper §6).
//
// One PU consumes one input byte per PU clock cycle, regardless of pattern
// complexity — the property that makes the operator's cost function
// trivial. Internally it is the bank of chainable Character Matchers plus
// the fully connected State Graph; both are loaded from the configuration
// vector at job start (~300 ns, modelled in the engine timing).
//
// The implementation keeps one shift register per (trigger token, state)
// edge; a set bit is an in-flight partial token match. Per byte it does a
// handful of word operations, so simulating a full table is feasible while
// remaining cycle-exact: byte i of a string is processed in PU cycle i.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hw/config_vector.h"
#include "hw/device_config.h"
#include "regex/token_nfa.h"

namespace doppio {

class ProcessingUnit {
 public:
  /// Creates a PU with the deployment geometry (capacity limits).
  explicit ProcessingUnit(const DeviceConfig& device);

  /// Loads a configuration vector into the Tokens/Triggers/Transitions
  /// registers. Fails if the decoded program exceeds the geometry — the
  /// hardware would have no registers to hold it.
  Status Configure(const ConfigVector& config);

  /// Resets the state graph for a new input string.
  void StartString();

  /// Clocks one input byte through the matchers and the state graph.
  void ConsumeByte(uint8_t byte);

  /// The 16-bit match index after the bytes so far: 1-based position of the
  /// first match's last character, or 0. Saturates at 65535 for longer
  /// strings (the hardware result lane is 16 bits wide).
  uint16_t MatchIndex() const { return match_index_; }
  bool Matched() const { return match_index_ != 0 || matched_at_zero_; }

  /// Convenience: full string through the PU (StartString + byte loop).
  uint16_t ProcessString(std::string_view input);

  /// Total bytes consumed since Configure — equals PU clock cycles spent.
  int64_t cycles() const { return cycles_; }

  bool configured() const { return configured_; }
  const TokenNfa& program() const { return nfa_; }

 private:
  struct Edge {
    int state;
    int chain_len;
    uint64_t fired_bit;
    uint64_t pred_mask;                   // predecessor-state bitmask
    std::array<uint64_t, 256> byte_mask;  // chain positions matching byte
  };

  DeviceConfig device_;
  bool configured_ = false;
  TokenNfa nfa_;

  std::vector<Edge> edges_;
  std::vector<uint64_t> pred_masks_;   // per state: bitmask of predecessors
  uint64_t start_gated_mask_ = 0;      // states with no predecessors
  uint64_t latch_mask_ = 0;
  uint64_t accept_mask_ = 0;

  // Per-string dynamic state.
  std::vector<uint64_t> progress_;     // per edge
  uint64_t active_ = 0;                // active states bitmask
  int32_t position_ = 0;
  uint16_t match_index_ = 0;
  bool matched_at_zero_ = false;

  int64_t cycles_ = 0;
};

}  // namespace doppio
