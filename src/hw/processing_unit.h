// Processing Unit: the runtime-parameterizable NFA circuit (paper §6).
//
// One PU consumes one input byte per PU clock cycle, regardless of pattern
// complexity — the property that makes the operator's cost function
// trivial. Internally it is the bank of chainable Character Matchers plus
// the fully connected State Graph; both are loaded from the configuration
// vector at job start (~300 ns, modelled in the engine timing).
//
// The loaded program lives in an immutable CompiledPuProgram shared by all
// PUs of an engine (hw/pu_kernel.h); only the per-string dynamic state is
// per-PU. ConsumeByte is the cycle-exact interpreter: byte i of a string
// is processed in PU cycle i. ProcessString produces the same 16-bit
// result through the cheapest compiled kernel (literal substring search,
// lazy DFA, or the interpreter's bit-parallel loop) while preserving the
// constant-consumption cycle accounting — a pure functional-path
// optimization; simulated timing never observes which kernel ran.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hw/config_vector.h"
#include "hw/device_config.h"
#include "hw/pu_kernel.h"
#include "regex/token_nfa.h"

namespace doppio {

class ProcessingUnit {
 public:
  /// Creates a PU with the deployment geometry (capacity limits).
  explicit ProcessingUnit(const DeviceConfig& device);

  /// Compiles and loads a configuration vector into the Tokens/Triggers/
  /// Transitions registers. Fails if the decoded program exceeds the
  /// geometry — the hardware would have no registers to hold it.
  Status Configure(const ConfigVector& config);

  /// Loads an already-compiled shared program (the per-job path: the
  /// engine compiles once, all 16 PUs and every worker thread share it).
  void Configure(std::shared_ptr<const CompiledPuProgram> program);

  /// Resets the state graph for a new input string.
  void StartString();

  /// Clocks one input byte through the matchers and the state graph.
  void ConsumeByte(uint8_t byte);

  /// The 16-bit match index after the bytes so far: 1-based position of the
  /// first match's last character, or 0. Saturates at 65535 for longer
  /// strings (the hardware result lane is 16 bits wide).
  uint16_t MatchIndex() const { return match_index_; }
  bool Matched() const { return match_index_ != 0; }

  /// Per-stream match indexes of a set-compiled program (index =
  /// pattern_tag; size = num_patterns). Each stream saturates at 65535
  /// independently. For single-pattern programs this is {MatchIndex()}.
  const std::vector<uint16_t>& MatchIndexes() const { return match_indexes_; }

  /// Convenience: full string through the PU. Dispatches to the compiled
  /// kernel; the result and the cycle count are identical to a
  /// StartString + ConsumeByte loop over every byte.
  uint16_t ProcessString(std::string_view input);

  /// Set-program variant: fills match[0 .. num_patterns) with each tagged
  /// stream's first-accept index. Stream p is bit-identical to
  /// ProcessString with member p compiled alone; cycle accounting is one
  /// pass over the string regardless of the member count — the whole point
  /// of set compilation. Identical to ProcessString for one pattern.
  void ProcessStringSet(std::string_view input, uint16_t* match);

  /// Total bytes consumed since Configure — equals PU clock cycles spent.
  int64_t cycles() const { return cycles_; }

  bool configured() const { return program_ != nullptr; }
  const TokenNfa& program() const { return program_->nfa(); }
  const CompiledPuProgram* compiled_program() const { return program_.get(); }
  PuKernelKind kernel() const { return program_->kernel(); }

 private:
  /// The bit-parallel interpreter over the whole string (general case and
  /// lazy-DFA overflow fallback). Touches only `progress_`; leaves the
  /// streaming state (`active_`, `position_`, `cycles_`) to the caller.
  uint16_t RunNfaLoop(std::string_view input);
  /// Set variant of the interpreter loop: per-stream first accepts.
  void RunNfaLoopSet(std::string_view input, uint16_t* match);
  /// Ordered substring stages (LIKE '%s1%s2%...%' shape).
  uint16_t RunLiteral(std::string_view input) const;

  DeviceConfig device_;
  std::shared_ptr<const CompiledPuProgram> program_;
  /// Lazy-DFA transition memo; per-PU so worker threads never contend.
  std::unique_ptr<LazyDfaCache> dfa_;

  // Per-string dynamic state.
  std::vector<uint64_t> progress_;     // per edge
  uint64_t active_ = 0;                // active states bitmask
  int64_t position_ = 0;
  uint16_t match_index_ = 0;
  std::vector<uint16_t> match_indexes_;  // per output stream
  uint64_t matched_streams_ = 0;         // streams already latched
  uint64_t all_streams_ = 1;             // (1 << num_patterns) - 1

  int64_t cycles_ = 0;
};

}  // namespace doppio
