// String Reader (paper §5.1): fetches a job's strings from the BAT heap.
//
// Operation alternates between two steps: read a block of offset cache
// lines (up to 512 lines — the depth of a BRAM FIFO), then use those
// offsets to fetch the strings from the heap. Parsed strings are forwarded
// round-robin to the per-PU input FIFOs.
//
// The functional side (ReadBlock) hands out parsed strings in round-robin
// order; the static helpers compute the cache-line traffic each phase
// generates, which the engine's timing model feeds through the arbiter.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "hw/job.h"

namespace doppio {

/// Offset cache lines fetched per reader phase: 512 lines x 16 offsets.
inline constexpr int64_t kReaderOffsetLinesPerBlock = 512;
inline constexpr int64_t kOffsetsPerLine = kCacheLineBytes / 4;
inline constexpr int64_t kStringsPerBlock =
    kReaderOffsetLinesPerBlock * kOffsetsPerLine;  // 8192

class StringReader {
 public:
  /// Binds the reader to a job's offset column and heap. In timing-only
  /// mode (throughput experiments) strings are not materialized; traffic
  /// is derived from the offset column alone.
  explicit StringReader(const JobParams& params);

  /// True while blocks remain.
  bool HasMore() const { return next_string_ < params_->count; }

  struct Block {
    int64_t first_string = 0;
    int64_t num_strings = 0;
    /// Parsed strings of this block, in input order (index i is string
    /// first_string + i). Views into the heap.
    std::vector<std::string_view> strings;
    /// Cache lines of offset-column traffic for this block.
    int64_t offset_lines = 0;
    /// Cache lines of heap traffic for this block.
    int64_t heap_lines = 0;
    /// Payload bytes streamed into the PUs.
    int64_t string_bytes = 0;
  };

  /// Reads the next block (offset phase + heap phase).
  Result<Block> ReadBlock();

  /// Total offset-column lines for a job of `count` strings.
  static int64_t TotalOffsetLines(int64_t count) {
    return (count * 4 + kCacheLineBytes - 1) / kCacheLineBytes;
  }

 private:
  const JobParams* params_;
  int64_t next_string_ = 0;
};

}  // namespace doppio
