#include "hw/output_collector.h"

#include <cstring>

namespace doppio {

OutputCollector::OutputCollector(const JobParams& params) : params_(&params) {}

Status OutputCollector::Append(uint16_t match_index) {
  if (results_written_ >= params_->count) {
    return Status::Internal("output collector overflow");
  }
  uint16_t* out = reinterpret_cast<uint16_t*>(params_->result);
  out[results_written_] = match_index;
  ++results_written_;
  if (match_index != 0) ++matches_;
  return Status::OK();
}

}  // namespace doppio
