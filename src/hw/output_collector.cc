#include "hw/output_collector.h"

#include <cstring>

#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& ResultLinesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hw.collector.result_lines",
      "cache lines of match indexes written back to the result column");
  return *c;
}
}  // namespace

OutputCollector::OutputCollector(const JobParams& params) : params_(&params) {}

Status OutputCollector::Append(uint16_t match_index) {
  return AppendSet(&match_index, 1);
}

Status OutputCollector::AppendSet(const uint16_t* values, int32_t streams) {
  if (results_written_ >= params_->count) {
    return Status::Internal("output collector overflow");
  }
  uint16_t* out = reinterpret_cast<uint16_t*>(params_->result);
  for (int32_t p = 0; p < streams; ++p) {
    out[values_written_] = values[p];
    // Count a result line when its first index lands — once per 32 values,
    // so the functional pass's measured host time stays unperturbed.
    if (values_written_ % kResultsPerLine == 0) ResultLinesCounter().Add();
    ++values_written_;
    if (values[p] != 0) ++matches_;
  }
  ++results_written_;
  return Status::OK();
}

}  // namespace doppio
