#include "hw/output_collector.h"

#include <cstring>

#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& ResultLinesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hw.collector.result_lines",
      "cache lines of match indexes written back to the result column");
  return *c;
}
}  // namespace

OutputCollector::OutputCollector(const JobParams& params) : params_(&params) {}

Status OutputCollector::Append(uint16_t match_index) {
  if (results_written_ >= params_->count) {
    return Status::Internal("output collector overflow");
  }
  uint16_t* out = reinterpret_cast<uint16_t*>(params_->result);
  out[results_written_] = match_index;
  // Count a result line when its first index lands — once per 32 strings,
  // so the functional pass's measured host time stays unperturbed.
  if (results_written_ % kResultsPerLine == 0) ResultLinesCounter().Add();
  ++results_written_;
  if (match_index != 0) ++matches_;
  return Status::OK();
}

}  // namespace doppio
