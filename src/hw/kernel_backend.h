// Kernel-backend registry: CPU-scalar, CPU-SIMD and simulated-FPGA as
// peer executors of one compiled PU program.
//
// Before this layer existed, "which kernel runs this program on the
// host?" was answered twice — once inside hw/pu_kernel (literal vs
// lazy-dfa vs nfa-loop) and once ad hoc at every host-execution call
// site (HUDF fallback slices, the scheduler's host-pool route, the
// hybrid executor's software scan). The registry makes the choice
// explicit and single-sourced:
//
//   * cpu-scalar — ProcessingUnit's compiled kernels (literal substring,
//     lazy DFA, NFA loop). Always available; the reference host backend.
//   * cpu-simd   — the bit-parallel Shift-And engine (regex/bitparallel)
//     for chain-shaped word-sized programs, or the lazy DFA fronted by
//     the SIMD start-byte prefilter when the program's escape-byte set
//     is small. Falls back to scalar execution internally for programs
//     it cannot accelerate, so it is safe to force anywhere. Results are
//     bit-identical to cpu-scalar by construction on every host (the
//     SIMD primitives carry scalar fallbacks).
//   * fpga-sim   — the cycle-level simulated device (hw/fpga_device). It
//     cannot run a host slice; it participates in the registry for
//     identity, routing and forcing.
//
// `DOPPIO_FORCE_BACKEND=scalar|simd|fpga` pins the choice process-wide:
// scalar/simd constrain every host execution; fpga disables cost-model
// CPU routing so eligible work stays on the device.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "hw/device_config.h"
#include "hw/job.h"
#include "hw/pu_kernel.h"

namespace doppio {

enum class BackendId { kCpuScalar, kCpuSimd, kFpgaSim };

/// Stable short tag ("cpu-scalar", "cpu-simd", "fpga-sim").
const char* BackendName(BackendId id);

/// The DOPPIO_FORCE_BACKEND override (scalar|simd|fpga, or the full
/// backend names); nullopt when unset or unrecognized. Read per call so
/// tests can flip it.
std::optional<BackendId> ForcedBackend();

/// Per-thread execution state of one backend over one program: matchers,
/// DFA caches, scratch. Create one per worker, reuse across strings.
class HostExecution {
 public:
  virtual ~HostExecution() = default;

  /// PU ProcessString semantics: 1-based position of the first match's
  /// last character saturated at 65535, or 0 for no match.
  virtual uint16_t Match(std::string_view input) = 0;

  /// Set-program semantics: fills match[0 .. program num_patterns) with
  /// each tagged stream's first-accept index, each stream bit-identical
  /// to Match() on that member compiled alone (independent 65535
  /// saturation per stream). The default covers single-pattern programs.
  virtual void MatchSet(std::string_view input, uint16_t* match) {
    match[0] = Match(input);
  }

  /// Kernel actually executing ("literal", "lazy-dfa", "nfa-loop",
  /// "bit-parallel", "bit-parallel-set", "dfa+prefilter") — stats/bench
  /// tag.
  virtual const char* kernel_name() const = 0;
};

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  virtual BackendId id() const = 0;
  const char* name() const { return BackendName(id()); }

  /// Whether the backend can execute host slices at all (fpga-sim: no).
  virtual bool CanExecuteOnHost() const = 0;

  /// Whether the backend has an *accelerated* path for this program.
  /// NewExecution still works when false (internal scalar fallback);
  /// routing uses this to pick the fastest backend.
  virtual bool Supports(const CompiledPuProgram& program) const = 0;

  /// New per-thread execution over `program`; null when
  /// !CanExecuteOnHost().
  virtual std::unique_ptr<HostExecution> NewExecution(
      std::shared_ptr<const CompiledPuProgram> program) const = 0;
};

class BackendRegistry {
 public:
  static const BackendRegistry& Global();

  const KernelBackend& Get(BackendId id) const;
  const std::vector<const KernelBackend*>& backends() const { return list_; }

  /// The host backend that will run this program: the forced host
  /// backend when DOPPIO_FORCE_BACKEND names one, else cpu-simd when it
  /// accelerates the program, else cpu-scalar.
  const KernelBackend& ChooseHost(const CompiledPuProgram& program) const;

 private:
  BackendRegistry();
  std::vector<std::unique_ptr<KernelBackend>> owned_;
  std::vector<const KernelBackend*> list_;
};

/// Observability of one host-slice run (which backend/kernel executed).
struct HostSliceInfo {
  BackendId backend = BackendId::kCpuScalar;
  const char* kernel = "";
};

/// Executes one job slice on the host through the registry-chosen
/// backend, writing raw 16-bit match indexes into the slice's result
/// range — bit-identical to the hardware functional pass by
/// construction. `program` reuses an already-compiled program; when null
/// the slice's config bytes are compiled on the spot. Returns the
/// slice's match count.
Result<int64_t> RunHostSlice(const DeviceConfig& device,
                             const JobParams& params,
                             std::shared_ptr<const CompiledPuProgram> program =
                                 nullptr,
                             HostSliceInfo* info = nullptr);

/// Candidate-subset host execution — the result-cache pre-filter's
/// refinement step (docs/RESULT_CACHE.md). Runs `program` over the first
/// `rows` rows of `input`, but only where `candidates[i] != 0`: a zero
/// candidate means a *complete* coarser scan already proved row i cannot
/// match the refining pattern, so its result is written as 0 without
/// touching the string. Candidate rows execute with full device Match
/// semantics (first-match end saturated at 65535), so given the
/// subsumption precondition the output is bit-identical to a full scan.
/// Writes one uint16 per row into `result` and returns the match count.
Result<int64_t> RunHostCandidates(
    const DeviceConfig& device, const Bat& input, int64_t rows,
    const uint16_t* candidates,
    std::shared_ptr<const CompiledPuProgram> program, uint16_t* result,
    HostSliceInfo* info = nullptr);

}  // namespace doppio
