#include "hw/timing_model.h"

namespace doppio {

double CriticalPathNs(int states, int chars,
                      const TimingModelParams& params) {
  return params.base_delay_ns +
         params.per_state_ns * static_cast<double>(states) +
         params.per_char_ns * static_cast<double>(chars);
}

bool PuConfigurationFeasible(int states, int chars, int64_t clock_hz,
                             const TimingModelParams& params) {
  const double budget_ns = 1e9 / static_cast<double>(clock_hz);
  return CriticalPathNs(states, chars, params) <= budget_ns;
}

Status CheckDeployment(const DeviceConfig& config,
                       const ResourceModelParams& res_params,
                       const TimingModelParams& timing_params) {
  const ResourceUsage usage = EstimateResources(config, res_params);
  if (!usage.fits) {
    return Status::CapacityExceeded(
        "deployment exceeds chip resources (logic " +
        std::to_string(usage.logic_pct) + "%, BRAM " +
        std::to_string(usage.bram_pct) + "%)");
  }
  if (!PuConfigurationFeasible(config.max_states, config.max_chars,
                               config.pu_clock_hz, timing_params)) {
    return Status::TimingViolation(
        "PU critical path exceeds the clock period at " +
        std::to_string(config.pu_clock_hz / 1000000) + " MHz");
  }
  if (usage.logic_pct > timing_params.congestion_logic_pct &&
      config.pu_clock_hz >= timing_params.congestion_clock_hz) {
    return Status::TimingViolation(
        "routing congestion: no valid routing meets timing at this "
        "utilization (" +
        std::to_string(usage.logic_pct) + "% logic)");
  }
  return Status::OK();
}

}  // namespace doppio
