#include "hw/resource_model.h"

namespace doppio {

ResourceUsage EstimateResources(const DeviceConfig& config,
                                const ResourceModelParams& params) {
  ResourceUsage usage;
  usage.qpi_endpoint_pct = params.qpi_logic_pct;
  usage.arbitration_pct = params.arbitration_base_pct +
                          params.arbitration_per_engine_pct *
                              static_cast<double>(config.num_engines);
  usage.string_reader_pct =
      params.reader_per_engine_pct * static_cast<double>(config.num_engines);

  const double per_pu =
      params.pu_base_pct +
      params.pu_per_char_pct * static_cast<double>(config.max_chars) +
      params.pu_per_state_sq_pct *
          static_cast<double>(config.max_states) *
          static_cast<double>(config.max_states);
  const int total_pus = config.num_engines * config.pus_per_engine;
  usage.processing_units_pct = per_pu * static_cast<double>(total_pus);

  usage.logic_pct = usage.qpi_endpoint_pct + usage.arbitration_pct +
                    usage.string_reader_pct + usage.processing_units_pct;
  usage.bram_pct = params.qpi_bram_pct +
                   params.bram_per_engine_pct *
                       static_cast<double>(config.num_engines);
  usage.fits = usage.logic_pct <= params.logic_budget_pct &&
               usage.bram_pct <= params.bram_budget_pct;
  return usage;
}

}  // namespace doppio
