// Compiled PU kernels: specialized functional-path executors selected per
// configuration vector.
//
// The cycle-level interpreter in hw/processing_unit.cc walks every
// (trigger token, state) edge for every input byte — faithful, but it caps
// the simulator's wall-clock throughput far below what the modeled
// hardware sustains. When a job's ConfigVector is loaded, this layer
// analyzes the decoded TokenNfa once and picks the cheapest equivalent
// backend:
//
//   1. literal    — the token graph reduces to ordered substring search
//                   (single needle, or needles glued by '.*' latches);
//                   dispatches to regex/substring_search.
//   2. lazy-dfa   — RE2-style subset construction over the PU machine
//                   state, memoizing (state, byte-class) -> state
//                   transitions on demand in a bounded cache.
//   3. nfa-loop   — the original bit-parallel edge interpreter; general
//                   case and the fallback when the DFA cache overflows.
//
// The compiled program is immutable and shared (shared_ptr) by all PUs of
// an engine and by every worker thread of the host-parallel path, so the
// per-job ConfigVector::Decode() and 256-entry byte-mask table builds
// happen exactly once per job instead of once per PU.
//
// Functional-path optimization only: simulated timing (BlockTiming,
// arbiter, scheduler) never looks at which kernel ran.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hw/config_vector.h"
#include "hw/device_config.h"
#include "regex/simd_scan.h"
#include "regex/substring_search.h"
#include "regex/token_nfa.h"

namespace doppio {

enum class PuKernelKind { kLiteral, kLazyDfa, kNfaLoop };

/// Stable short tag ("literal", "lazy-dfa", "nfa-loop") for stats/benches.
const char* PuKernelName(PuKernelKind kind);

struct PuKernelOptions {
  /// kAuto picks literal when the graph reduces to substring search and
  /// lazy-dfa otherwise; the forced choices exist for equivalence tests
  /// and baseline benchmarks.
  enum class Force { kAuto, kLazyDfa, kNfaLoop };
  Force force = Force::kAuto;

  /// Lazy-DFA subset-state cache bound (per PU). Once full, a transition
  /// miss makes the PU re-run the current string through the NFA loop;
  /// cached territory keeps serving fast.
  int max_dfa_states = 4096;
};

/// The immutable, shareable compilation of one configuration vector:
/// decoded token NFA, the bit-parallel edge tables the interpreter and
/// lazy DFA execute over, the byte-class partition, and — when eligible —
/// the literal stages.
class CompiledPuProgram {
 public:
  /// One (trigger token, state) edge of the bit-parallel machine.
  struct Edge {
    int state;
    int chain_len;
    bool start_gated;
    uint64_t fired_bit;
    uint64_t pred_mask;                   // predecessor-state bitmask
    std::array<uint64_t, 256> byte_mask;  // chain positions matching byte
  };

  /// One stage of the literal kernel: LIKE-style ordered substring.
  struct LiteralStage {
    BoyerMooreMatcher matcher;  // owns the needle; used when folding case
    bool case_insensitive;
  };

  /// Decodes, validates against the geometry, builds the edge tables and
  /// byte classes, and selects the kernel. Fails exactly where the old
  /// per-PU Configure failed (CapacityExceeded and structural errors).
  static Result<std::shared_ptr<const CompiledPuProgram>> Compile(
      const ConfigVector& config, const DeviceConfig& device,
      const PuKernelOptions& options = {});

  PuKernelKind kernel() const { return kernel_; }
  const TokenNfa& nfa() const { return nfa_; }

  const std::vector<Edge>& edges() const { return edges_; }
  uint64_t latch_mask() const { return latch_mask_; }
  uint64_t accept_mask() const { return accept_mask_; }

  /// Tagged output streams (1 for ordinary programs; K for set-compiled
  /// unions, docs/PATTERN_SETS.md). Executors emit one 16-bit match index
  /// per stream per string, each saturated independently.
  int num_patterns() const { return num_patterns_; }
  /// Accept-state bitmask of one output stream (accept_mask() is their OR).
  uint64_t pattern_accept_mask(int pattern) const {
    return pattern_accept_masks_[static_cast<size_t>(pattern)];
  }

  const std::vector<LiteralStage>& literal_stages() const {
    return literal_stages_;
  }

  int num_byte_classes() const { return num_byte_classes_; }
  uint16_t byte_class(uint8_t byte) const { return byte_classes_[byte]; }
  const std::array<uint16_t, 256>& byte_classes() const {
    return byte_classes_;
  }
  /// Per-edge byte masks of one byte class (all bytes of a class share
  /// them by construction).
  const std::vector<uint64_t>& class_edge_masks(int byte_class) const {
    return class_edge_masks_[static_cast<size_t>(byte_class)];
  }

  int max_dfa_states() const { return max_dfa_states_; }

  /// State indices in chain order when the graph is chain-shaped
  /// (regex/token_nfa.h AnalyzeChainShape); empty otherwise. The literal
  /// kernel and the bit-parallel host backend both key off this.
  const std::vector<int>& chain_state_order() const { return chain_states_; }

  /// True when every member of a set-compiled union is chain-shaped (for
  /// single-pattern programs: the whole graph is). The SIMD backend's
  /// bit-parallel-set route keys off this — each member then runs its own
  /// Shift-And engine, which is exactly the tagged-stream semantics since
  /// union members are disjoint.
  bool members_chain_shaped() const { return members_chain_shaped_; }

  /// Bytes that can move the machine out of the empty (reset) state: the
  /// first-position bytes of every start-gated edge. While no state is
  /// active, any byte outside this set provably leaves the machine in the
  /// reset state, so host backends may skip-scan to the next occurrence.
  const std::vector<uint8_t>& start_bytes() const { return start_bytes_; }

 private:
  CompiledPuProgram() = default;

  TokenNfa nfa_;
  PuKernelKind kernel_ = PuKernelKind::kNfaLoop;
  std::vector<Edge> edges_;
  uint64_t latch_mask_ = 0;
  uint64_t accept_mask_ = 0;
  int num_patterns_ = 1;
  std::vector<uint64_t> pattern_accept_masks_;
  std::vector<LiteralStage> literal_stages_;
  std::array<uint16_t, 256> byte_classes_{};
  int num_byte_classes_ = 0;
  std::vector<std::vector<uint64_t>> class_edge_masks_;
  int max_dfa_states_ = 0;
  std::vector<int> chain_states_;
  bool members_chain_shaped_ = false;
  std::vector<uint8_t> start_bytes_;
};

/// Candidate scan installed in front of a lazy-DFA run: while the DFA
/// sits in the reset state, skip to the next byte in this (small) set —
/// any byte outside it provably keeps the machine reset. Built from
/// CompiledPuProgram::start_bytes() when that set is small enough for
/// simd::FindByteSet.
struct StartBytePrefilter {
  std::array<uint8_t, simd::kMaxScanBytes> bytes{};
  int count = 0;
  /// Vector width for the scan; resolved once by the owner (the level
  /// lookup reads the environment — too slow for per-string loops).
  /// FindByteSetAtLevel clamps to the host's detected capability.
  simd::SimdLevel level = simd::SimdLevel::kAvx2;
};

/// Lazy-DFA transition memo over a compiled program. The DFA state is the
/// full PU machine state (every edge's chain shift register plus the
/// active-state mask), so the construction is exact — not an
/// approximation of the NFA semantics. Mutable and intentionally NOT
/// thread-safe: each host thread owns one through its ProcessingUnit; the
/// program underneath is shared and immutable.
class LazyDfaCache {
 public:
  explicit LazyDfaCache(const CompiledPuProgram* program);

  /// Executes `input` through the memoized DFA. Returns false when the
  /// bounded state cache overflowed before the string finished (the
  /// caller falls back to the NFA loop); true otherwise, with
  /// *match_index set to the PU result (0 = no match, 1-based end
  /// position saturated at 65535). A non-null `prefilter` skip-scans the
  /// reset state with SIMD; results are identical with or without it.
  bool Run(std::string_view input, uint16_t* match_index,
           const StartBytePrefilter* prefilter = nullptr);

  /// Set-program variant: fills match[0 .. program->num_patterns()) with
  /// each tagged stream's first-accept index (0 = no match, saturation per
  /// stream). The scan continues past earlier streams' accepts until every
  /// stream has matched, so the DFA may intern states Run() never reaches;
  /// overflow semantics are the same (false = fall back to the NFA loop).
  bool RunSet(std::string_view input, uint16_t* match,
              const StartBytePrefilter* prefilter = nullptr);

  /// Subset states materialized so far (observability for tests).
  size_t num_states() const { return regs_.size(); }

 private:
  /// Interns the machine state, returning its dense id; -1 when the cache
  /// is full and the state is new.
  int32_t Intern(std::vector<uint64_t> regs);
  /// Computes and caches the transition; -1 when the cache is full and
  /// the target state is not already materialized.
  int32_t Step(int32_t from, int byte_class);

  const CompiledPuProgram* program_;
  /// The hot path runs entirely over these flat arrays: one dependent
  /// load per input byte (`trans_[sid * classes + class]`) plus the
  /// accept flag — the interning map is only touched on cache misses.
  std::vector<int32_t> trans_;   // num_states x num_byte_classes; -1 = miss
  std::vector<uint8_t> accept_;  // per state id
  std::vector<uint64_t> accept_tags_;  // per state id: accepting streams
  std::vector<std::vector<uint64_t>> regs_;  // per state id: machine state
  std::map<std::vector<uint64_t>, int32_t> ids_;
};

}  // namespace doppio
