#include "hw/processing_unit.h"

#include "common/logging.h"

namespace doppio {

ProcessingUnit::ProcessingUnit(const DeviceConfig& device) : device_(device) {}

Status ProcessingUnit::Configure(const ConfigVector& config) {
  DOPPIO_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledPuProgram> program,
      CompiledPuProgram::Compile(config, device_));
  Configure(std::move(program));
  return Status::OK();
}

void ProcessingUnit::Configure(
    std::shared_ptr<const CompiledPuProgram> program) {
  DOPPIO_CHECK(program != nullptr);
  program_ = std::move(program);
  dfa_ = program_->kernel() == PuKernelKind::kLazyDfa
             ? std::make_unique<LazyDfaCache>(program_.get())
             : nullptr;
  progress_.assign(program_->edges().size(), 0);
  const int k = program_->num_patterns();
  match_indexes_.assign(static_cast<size_t>(k), 0);
  all_streams_ = k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
  StartString();
}

void ProcessingUnit::StartString() {
  std::fill(progress_.begin(), progress_.end(), 0);
  std::fill(match_indexes_.begin(), match_indexes_.end(), 0);
  active_ = 0;
  position_ = 0;
  match_index_ = 0;
  matched_streams_ = 0;
}

void ProcessingUnit::ConsumeByte(uint8_t byte) {
  ++cycles_;
  ++position_;
  // First match latched; the PU keeps streaming. A set program keeps
  // stepping until every tagged stream has latched its own first match.
  if (matched_streams_ == all_streams_) return;

  const std::vector<CompiledPuProgram::Edge>& edges = program_->edges();
  uint64_t next_active = active_ & program_->latch_mask();
  const uint64_t active_old = active_;
  for (size_t e = 0; e < edges.size(); ++e) {
    const CompiledPuProgram::Edge& edge = edges[e];
    // Chain start gate: start-gated states are always open; others need an
    // active predecessor on the previous cycle.
    const uint64_t gate =
        (edge.start_gated || (active_old & edge.pred_mask) != 0) ? 1 : 0;
    progress_[e] = ((progress_[e] << 1) | gate) & edge.byte_mask[byte];
    if ((progress_[e] & edge.fired_bit) != 0) {
      next_active |= uint64_t{1} << edge.state;
    }
  }
  active_ = next_active;
  if ((active_ & program_->accept_mask()) != 0) {
    const uint16_t index = position_ > 65535
                               ? 65535
                               : static_cast<uint16_t>(position_);
    for (int p = 0; p < program_->num_patterns(); ++p) {
      if ((matched_streams_ & (uint64_t{1} << p)) != 0) continue;
      if ((active_ & program_->pattern_accept_mask(p)) != 0) {
        match_indexes_[static_cast<size_t>(p)] = index;
        matched_streams_ |= uint64_t{1} << p;
      }
    }
    if (match_index_ == 0 && matched_streams_ != 0) match_index_ = index;
  }
}

uint16_t ProcessingUnit::RunNfaLoop(std::string_view input) {
  const std::vector<CompiledPuProgram::Edge>& edges = program_->edges();
  const uint64_t latch_mask = program_->latch_mask();
  const uint64_t accept_mask = program_->accept_mask();
  std::fill(progress_.begin(), progress_.end(), 0);
  uint64_t active = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    const uint8_t byte = static_cast<uint8_t>(input[i]);
    uint64_t next_active = active & latch_mask;
    for (size_t e = 0; e < edges.size(); ++e) {
      const CompiledPuProgram::Edge& edge = edges[e];
      const uint64_t gate =
          (edge.start_gated || (active & edge.pred_mask) != 0) ? 1 : 0;
      progress_[e] = ((progress_[e] << 1) | gate) & edge.byte_mask[byte];
      if ((progress_[e] & edge.fired_bit) != 0) {
        next_active |= uint64_t{1} << edge.state;
      }
    }
    active = next_active;
    if ((active & accept_mask) != 0) {
      return i + 1 > 65535 ? 65535 : static_cast<uint16_t>(i + 1);
    }
  }
  return 0;
}

void ProcessingUnit::RunNfaLoopSet(std::string_view input, uint16_t* match) {
  const std::vector<CompiledPuProgram::Edge>& edges = program_->edges();
  const uint64_t latch_mask = program_->latch_mask();
  const uint64_t accept_mask = program_->accept_mask();
  const int num_patterns = program_->num_patterns();
  for (int p = 0; p < num_patterns; ++p) match[p] = 0;
  std::fill(progress_.begin(), progress_.end(), 0);
  uint64_t active = 0;
  uint64_t matched = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    const uint8_t byte = static_cast<uint8_t>(input[i]);
    uint64_t next_active = active & latch_mask;
    for (size_t e = 0; e < edges.size(); ++e) {
      const CompiledPuProgram::Edge& edge = edges[e];
      const uint64_t gate =
          (edge.start_gated || (active & edge.pred_mask) != 0) ? 1 : 0;
      progress_[e] = ((progress_[e] << 1) | gate) & edge.byte_mask[byte];
      if ((progress_[e] & edge.fired_bit) != 0) {
        next_active |= uint64_t{1} << edge.state;
      }
    }
    active = next_active;
    if ((active & accept_mask) != 0) {
      const uint16_t index =
          i + 1 > 65535 ? 65535 : static_cast<uint16_t>(i + 1);
      for (int p = 0; p < num_patterns; ++p) {
        if ((matched & (uint64_t{1} << p)) != 0) continue;
        if ((active & program_->pattern_accept_mask(p)) != 0) {
          match[p] = index;
          matched |= uint64_t{1} << p;
        }
      }
      if (matched == all_streams_) return;
    }
  }
}

uint16_t ProcessingUnit::RunLiteral(std::string_view input) const {
  size_t pos = 0;
  for (const CompiledPuProgram::LiteralStage& stage :
       program_->literal_stages()) {
    const size_t hit =
        stage.case_insensitive
            ? stage.matcher.Find(input, pos)
            : FindLiteralScan(input, stage.matcher.needle(), pos);
    if (hit == std::string_view::npos) return 0;
    pos = hit + stage.matcher.needle().size();
  }
  return pos > 65535 ? 65535 : static_cast<uint16_t>(pos);
}

uint16_t ProcessingUnit::ProcessString(std::string_view input) {
  DOPPIO_CHECK(configured());
  StartString();
  switch (program_->kernel()) {
    case PuKernelKind::kLiteral:
      match_index_ = RunLiteral(input);
      break;
    case PuKernelKind::kLazyDfa: {
      uint16_t index = 0;
      // Bounded cache: on overflow mid-string, re-run through the
      // interpreter loop (identical semantics).
      match_index_ = dfa_->Run(input, &index) ? index : RunNfaLoop(input);
      break;
    }
    case PuKernelKind::kNfaLoop:
      match_index_ = RunNfaLoop(input);
      break;
  }
  if (program_->num_patterns() == 1 && !match_indexes_.empty()) {
    match_indexes_[0] = match_index_;
    matched_streams_ = match_index_ != 0 ? 1 : 0;
  }
  // The real PU streams every byte of the string at its constant one
  // byte/cycle rate no matter when (or whether) the match latched, so the
  // whole string is accounted exactly once — the single point of cycle
  // accounting for this string (no streaming-tail double-advance when the
  // match lands on the final byte).
  position_ = static_cast<int64_t>(input.size());
  cycles_ += static_cast<int64_t>(input.size());
  return match_index_;
}

void ProcessingUnit::ProcessStringSet(std::string_view input,
                                      uint16_t* match) {
  DOPPIO_CHECK(configured());
  const int num_patterns = program_->num_patterns();
  if (num_patterns == 1) {
    match[0] = ProcessString(input);
    return;
  }
  StartString();
  switch (program_->kernel()) {
    case PuKernelKind::kLazyDfa:
      if (!dfa_->RunSet(input, match)) RunNfaLoopSet(input, match);
      break;
    case PuKernelKind::kLiteral:  // unions are never chain-shaped; defensive
    case PuKernelKind::kNfaLoop:
      RunNfaLoopSet(input, match);
      break;
  }
  uint16_t first = 0;
  for (int p = 0; p < num_patterns; ++p) {
    match_indexes_[static_cast<size_t>(p)] = match[p];
    if (match[p] != 0 && (first == 0 || match[p] < first)) first = match[p];
    if (match[p] != 0) matched_streams_ |= uint64_t{1} << p;
  }
  match_index_ = first;
  // Same constant-rate accounting as ProcessString: one pass over the
  // string serves every member of the set.
  position_ = static_cast<int64_t>(input.size());
  cycles_ += static_cast<int64_t>(input.size());
}

}  // namespace doppio
