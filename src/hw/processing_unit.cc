#include "hw/processing_unit.h"

#include "common/logging.h"
#include "hw/config_compiler.h"

namespace doppio {

ProcessingUnit::ProcessingUnit(const DeviceConfig& device) : device_(device) {}

Status ProcessingUnit::Configure(const ConfigVector& config) {
  DOPPIO_ASSIGN_OR_RETURN(TokenNfa nfa, config.Decode());
  // A real PU has exactly max_chars matchers and max_states graph nodes;
  // configurations beyond that cannot be loaded.
  DOPPIO_RETURN_NOT_OK(CheckCapacity(nfa, device_));
  if (nfa.NumStates() > 64) {
    return Status::CapacityExceeded("simulator supports up to 64 states");
  }

  nfa_ = std::move(nfa);
  edges_.clear();
  pred_masks_.assign(static_cast<size_t>(nfa_.NumStates()), 0);
  start_gated_mask_ = latch_mask_ = accept_mask_ = 0;

  for (size_t s = 0; s < nfa_.states.size(); ++s) {
    const HwState& state = nfa_.states[s];
    if (state.pred_states.empty()) {
      start_gated_mask_ |= uint64_t{1} << s;
    }
    for (int p : state.pred_states) {
      pred_masks_[s] |= uint64_t{1} << p;
    }
    if (state.latch) latch_mask_ |= uint64_t{1} << s;
    if (state.accept) accept_mask_ |= uint64_t{1} << s;

    for (int t : state.trigger_tokens) {
      const HwToken& token = nfa_.tokens[static_cast<size_t>(t)];
      Edge edge;
      edge.state = static_cast<int>(s);
      edge.chain_len = token.length();
      edge.fired_bit = uint64_t{1} << (edge.chain_len - 1);
      edge.pred_mask = pred_masks_[s];
      for (int b = 0; b < 256; ++b) {
        uint64_t mask = 0;
        for (int j = 0; j < edge.chain_len; ++j) {
          if (token.chain[static_cast<size_t>(j)].Test(
                  static_cast<uint8_t>(b))) {
            mask |= uint64_t{1} << j;
          }
        }
        edge.byte_mask[static_cast<size_t>(b)] = mask;
      }
      edges_.push_back(std::move(edge));
    }
  }
  progress_.assign(edges_.size(), 0);
  configured_ = true;
  StartString();
  return Status::OK();
}

void ProcessingUnit::StartString() {
  std::fill(progress_.begin(), progress_.end(), 0);
  active_ = 0;
  position_ = 0;
  match_index_ = 0;
  matched_at_zero_ = false;
}

void ProcessingUnit::ConsumeByte(uint8_t byte) {
  ++cycles_;
  ++position_;
  if (match_index_ != 0) return;  // first match latched; PU keeps streaming

  uint64_t next_active = active_ & latch_mask_;
  const uint64_t active_old = active_;
  for (size_t e = 0; e < edges_.size(); ++e) {
    Edge& edge = edges_[e];
    const uint64_t state_bit = uint64_t{1} << edge.state;
    // Chain start gate: start-gated states are always open; others need an
    // active predecessor on the previous cycle.
    uint64_t gate =
        ((start_gated_mask_ & state_bit) != 0 ||
         (active_old & edge.pred_mask) != 0)
            ? 1
            : 0;
    progress_[e] =
        ((progress_[e] << 1) | gate) & edge.byte_mask[byte];
    if ((progress_[e] & edge.fired_bit) != 0) {
      next_active |= state_bit;
    }
  }
  active_ = next_active;
  if ((active_ & accept_mask_) != 0) {
    match_index_ = position_ > 65535
                       ? 65535
                       : static_cast<uint16_t>(position_);
  }
}

uint16_t ProcessingUnit::ProcessString(std::string_view input) {
  DOPPIO_CHECK(configured_);
  StartString();
  for (char c : input) {
    ConsumeByte(static_cast<uint8_t>(c));
    if (match_index_ != 0) {
      // The real PU streams the rest of the string (constant consumption
      // rate); account those cycles without re-running the state graph.
      cycles_ += static_cast<int64_t>(input.size()) - position_;
      break;
    }
  }
  return match_index_;
}

}  // namespace doppio
