// Memory arbiter of the hardware HAL module (paper §4.2.2).
//
// Guarantees fair access to the shared memory for the Regex Engines by
// scheduling their mostly-sequential reads/writes in batches ("the batch
// size of 16 is small enough to ensure good throughput without increasing
// memory access latency too much"). Engines never talk to the QPI link
// directly — all traffic flows through here, which is also where per-engine
// traffic statistics live.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "hw/qpi_link.h"

namespace doppio {

class Arbiter {
 public:
  Arbiter(QpiLink* link, int num_engines, int batch_lines);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Arbiter);

  /// Transfers `lines` for `engine_id`, split into arbitration batches.
  /// Returns the completion time of the last batch.
  SimTime Transfer(int engine_id, SimTime now, int64_t lines);

  /// When the engine may issue again without over-filling its window.
  SimTime EngineReady(int engine_id) const {
    return link_->EngineReady(engine_id);
  }

  int64_t engine_lines(int engine_id) const {
    return engine_lines_[static_cast<size_t>(engine_id)];
  }
  int batch_lines() const { return batch_lines_; }

 private:
  QpiLink* link_;
  int batch_lines_;
  std::vector<int64_t> engine_lines_;
};

}  // namespace doppio
