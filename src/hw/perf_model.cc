#include "hw/perf_model.h"

#include <algorithm>

#include "common/units.h"
#include "hw/output_collector.h"
#include "hw/string_reader.h"

namespace doppio {

PerfEstimate EstimateJob(const DeviceConfig& config, int64_t count,
                         int64_t heap_bytes, int active_engines,
                         bool ideal) {
  active_engines = std::max(1, std::min(active_engines, config.num_engines));

  const int64_t offset_lines = StringReader::TotalOffsetLines(count);
  const int64_t heap_lines =
      (heap_bytes + kCacheLineBytes - 1) / kCacheLineBytes;
  const int64_t result_lines = OutputCollector::TotalResultLines(count);
  const int64_t param_lines = 2;
  const int64_t total_lines =
      offset_lines + heap_lines + result_lines + param_lines;
  const int64_t total_bytes = total_lines * kCacheLineBytes;

  // Effective per-engine streaming rate: the engine's window pacing, its
  // fair share of the link, and the PU consumption rate all bound it.
  const double window_rate = config.SingleEngineBytesPerSec();
  const double link_share =
      config.qpi_peak_bytes_per_sec / static_cast<double>(active_engines);
  const double pu_rate = config.EngineBytesPerSec();
  double rate;
  if (ideal) {
    rate = pu_rate;
  } else {
    rate = std::min({window_rate, link_share, pu_rate});
  }

  PerfEstimate est;
  est.total_lines = total_lines;
  est.total_bytes = total_bytes;
  est.seconds = static_cast<double>(total_bytes) / rate +
                config.job_setup_sec + config.job_poll_sec +
                config.qpi_latency_sec;
  est.effective_bytes_per_sec =
      static_cast<double>(total_bytes) / est.seconds;
  return est;
}

double TransferSeconds(const DeviceConfig& config, int64_t bytes) {
  if (bytes <= 0) return 0;
  return static_cast<double>(bytes) / config.qpi_peak_bytes_per_sec +
         config.qpi_latency_sec;
}

double SaturatedQueriesPerSec(const DeviceConfig& config, int64_t count,
                              int64_t heap_bytes, int engines_used,
                              bool ideal) {
  engines_used = std::max(1, std::min(engines_used, config.num_engines));
  PerfEstimate one = EstimateJob(config, count, heap_bytes, engines_used,
                                 ideal);
  // engines_used jobs in flight; each takes one.seconds at the shared rate.
  return static_cast<double>(engines_used) / one.seconds;
}

}  // namespace doppio
