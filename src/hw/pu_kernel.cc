#include "hw/pu_kernel.h"

#include <algorithm>
#include <bit>

#include "hw/config_compiler.h"
#include "regex/charset_analysis.h"

namespace doppio {

const char* PuKernelName(PuKernelKind kind) {
  switch (kind) {
    case PuKernelKind::kLiteral:
      return "literal";
    case PuKernelKind::kLazyDfa:
      return "lazy-dfa";
    case PuKernelKind::kNfaLoop:
      return "nfa-loop";
  }
  return "?";
}

namespace {

// The substring-search shape: a chain-shaped state graph (shared analysis
// in regex/token_nfa.h AnalyzeChainShape) whose every token chain further
// reduces to a plain needle. Such a program is exactly
// LIKE '%n_0%n_1%...%': ordered, non-overlapping occurrences, and greedy
// earliest matching yields the same first-accept position as the NFA
// semantics.
bool AnalyzeLiteralStages(const TokenNfa& nfa,
                          const std::vector<int>& chain_order,
                          std::vector<CompiledPuProgram::LiteralStage>* out) {
  if (chain_order.empty()) return false;
  std::vector<CompiledPuProgram::LiteralStage> stages;
  for (int state_index : chain_order) {
    const HwState& state = nfa.states[static_cast<size_t>(state_index)];
    std::optional<TokenLiteral> literal = TokenToLiteral(
        nfa.tokens[static_cast<size_t>(state.trigger_tokens[0])]);
    if (!literal.has_value()) return false;
    stages.push_back(CompiledPuProgram::LiteralStage{
        BoyerMooreMatcher(std::move(literal->needle),
                          literal->case_insensitive),
        literal->case_insensitive});
  }
  *out = std::move(stages);
  return true;
}

}  // namespace

Result<std::shared_ptr<const CompiledPuProgram>> CompiledPuProgram::Compile(
    const ConfigVector& config, const DeviceConfig& device,
    const PuKernelOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(TokenNfa nfa, config.Decode());
  // A real PU has exactly max_chars matchers and max_states graph nodes;
  // configurations beyond that cannot be loaded.
  DOPPIO_RETURN_NOT_OK(CheckCapacity(nfa, device));
  if (nfa.NumStates() > 64) {
    return Status::CapacityExceeded("simulator supports up to 64 states");
  }

  std::shared_ptr<CompiledPuProgram> program(new CompiledPuProgram());
  program->nfa_ = std::move(nfa);
  const TokenNfa& prog_nfa = program->nfa_;

  program->num_patterns_ = prog_nfa.NumPatterns();
  program->pattern_accept_masks_.assign(
      static_cast<size_t>(program->num_patterns_), 0);

  std::vector<uint64_t> pred_masks(prog_nfa.states.size(), 0);
  for (size_t s = 0; s < prog_nfa.states.size(); ++s) {
    const HwState& state = prog_nfa.states[s];
    for (int p : state.pred_states) {
      pred_masks[s] |= uint64_t{1} << p;
    }
    if (state.latch) program->latch_mask_ |= uint64_t{1} << s;
    if (state.accept) {
      program->accept_mask_ |= uint64_t{1} << s;
      program->pattern_accept_masks_[static_cast<size_t>(state.pattern_tag)] |=
          uint64_t{1} << s;
    }

    for (int t : state.trigger_tokens) {
      const HwToken& token = prog_nfa.tokens[static_cast<size_t>(t)];
      Edge edge;
      edge.state = static_cast<int>(s);
      edge.chain_len = token.length();
      edge.start_gated = state.pred_states.empty();
      edge.fired_bit = uint64_t{1} << (edge.chain_len - 1);
      edge.pred_mask = pred_masks[s];
      for (int b = 0; b < 256; ++b) {
        uint64_t mask = 0;
        for (int j = 0; j < edge.chain_len; ++j) {
          if (token.chain[static_cast<size_t>(j)].Test(
                  static_cast<uint8_t>(b))) {
            mask |= uint64_t{1} << j;
          }
        }
        edge.byte_mask[static_cast<size_t>(b)] = mask;
      }
      program->edges_.push_back(std::move(edge));
    }
  }

  // Byte-equivalence classes, and the per-class edge masks the lazy DFA
  // steps with (every byte of a class has identical masks by definition).
  program->num_byte_classes_ =
      ComputeByteClasses(prog_nfa, &program->byte_classes_);
  program->class_edge_masks_.assign(
      static_cast<size_t>(program->num_byte_classes_), {});
  for (int b = 0; b < 256; ++b) {
    auto& masks = program->class_edge_masks_[program->byte_classes_[
        static_cast<size_t>(b)]];
    if (!masks.empty() || program->edges_.empty()) continue;
    masks.reserve(program->edges_.size());
    for (const Edge& edge : program->edges_) {
      masks.push_back(edge.byte_mask[static_cast<size_t>(b)]);
    }
  }

  program->max_dfa_states_ = std::max(1, options.max_dfa_states);

  program->chain_states_ =
      AnalyzeChainShape(prog_nfa).value_or(std::vector<int>{});
  if (program->num_patterns_ == 1) {
    program->members_chain_shaped_ = !program->chain_states_.empty();
  } else {
    program->members_chain_shaped_ = true;
    for (int p = 0; p < program->num_patterns_; ++p) {
      Result<TokenNfa> member = ExtractMemberNfa(prog_nfa, p);
      if (!member.ok() || !AnalyzeChainShape(*member).has_value()) {
        program->members_chain_shaped_ = false;
        break;
      }
    }
  }

  // Escape-byte set of the reset state: with no state active, only a
  // start-gated edge whose first chain position matches the byte can set
  // any register bit (`regs' = gate & mask_bit0`). The reset state never
  // accepts (Validate guarantees a non-empty chain before any accept), so
  // host backends may skip bytes outside this set while reset.
  {
    std::array<char, 256> escapes{};
    for (const Edge& edge : program->edges_) {
      if (!edge.start_gated) continue;
      for (int b = 0; b < 256; ++b) {
        if ((edge.byte_mask[static_cast<size_t>(b)] & 1) != 0) {
          escapes[static_cast<size_t>(b)] = 1;
        }
      }
    }
    for (int b = 0; b < 256; ++b) {
      if (escapes[static_cast<size_t>(b)] != 0) {
        program->start_bytes_.push_back(static_cast<uint8_t>(b));
      }
    }
  }

  switch (options.force) {
    case PuKernelOptions::Force::kNfaLoop:
      program->kernel_ = PuKernelKind::kNfaLoop;
      break;
    case PuKernelOptions::Force::kLazyDfa:
      program->kernel_ = PuKernelKind::kLazyDfa;
      break;
    case PuKernelOptions::Force::kAuto:
      program->kernel_ = AnalyzeLiteralStages(prog_nfa, program->chain_states_,
                                              &program->literal_stages_)
                             ? PuKernelKind::kLiteral
                             : PuKernelKind::kLazyDfa;
      break;
  }
  return std::shared_ptr<const CompiledPuProgram>(std::move(program));
}

LazyDfaCache::LazyDfaCache(const CompiledPuProgram* program)
    : program_(program) {
  Intern(std::vector<uint64_t>(program_->edges().size() + 1, 0));  // id 0
}

int32_t LazyDfaCache::Intern(std::vector<uint64_t> regs) {
  auto it = ids_.find(regs);
  if (it != ids_.end()) return it->second;
  if (regs_.size() >= static_cast<size_t>(program_->max_dfa_states())) {
    return -1;  // cache full and the state is new: caller falls back
  }
  const int32_t id = static_cast<int32_t>(regs_.size());
  accept_.push_back((regs.back() & program_->accept_mask()) != 0 ? 1 : 0);
  uint64_t tags = 0;
  if (accept_.back() != 0) {
    for (int p = 0; p < program_->num_patterns(); ++p) {
      if ((regs.back() & program_->pattern_accept_mask(p)) != 0) {
        tags |= uint64_t{1} << p;
      }
    }
  }
  accept_tags_.push_back(tags);
  trans_.insert(trans_.end(),
                static_cast<size_t>(program_->num_byte_classes()), -1);
  regs_.push_back(regs);
  ids_.emplace(std::move(regs), id);
  return id;
}

int32_t LazyDfaCache::Step(int32_t from, int byte_class) {
  const std::vector<CompiledPuProgram::Edge>& edges = program_->edges();
  const std::vector<uint64_t>& masks = program_->class_edge_masks(byte_class);
  const size_t nedges = edges.size();

  std::vector<uint64_t> regs(regs_[static_cast<size_t>(from)]);
  const uint64_t active_old = regs[nedges];
  uint64_t next_active = active_old & program_->latch_mask();
  for (size_t e = 0; e < nedges; ++e) {
    const CompiledPuProgram::Edge& edge = edges[e];
    const uint64_t gate =
        (edge.start_gated || (active_old & edge.pred_mask) != 0) ? 1 : 0;
    regs[e] = ((regs[e] << 1) | gate) & masks[e];
    if ((regs[e] & edge.fired_bit) != 0) {
      next_active |= uint64_t{1} << edge.state;
    }
  }
  regs[nedges] = next_active;
  return Intern(std::move(regs));
}

bool LazyDfaCache::Run(std::string_view input, uint16_t* match_index,
                       const StartBytePrefilter* prefilter) {
  const uint16_t* classes = program_->byte_classes().data();
  const int32_t* trans = trans_.data();
  const uint8_t* accept = accept_.data();
  const int32_t num_classes = program_->num_byte_classes();
  int32_t sid = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    if (sid == 0 && prefilter != nullptr) {
      // Reset state: SIMD-skip to the next byte that can activate any
      // edge. Skipped bytes provably self-loop on state 0, which never
      // accepts, so the result is identical to stepping them.
      i = simd::FindByteSetAtLevel(input, i, prefilter->bytes.data(),
                                   prefilter->count, prefilter->level);
      if (i == std::string_view::npos) break;
    }
    const int32_t cls = classes[static_cast<uint8_t>(input[i])];
    int32_t next = trans[sid * num_classes + cls];
    if (next < 0) {
      next = Step(sid, cls);
      if (next < 0) return false;
      // Step may have grown the tables; refresh the raw pointers.
      trans_[static_cast<size_t>(sid * num_classes + cls)] = next;
      trans = trans_.data();
      accept = accept_.data();
    }
    sid = next;
    if (accept[sid] != 0) {
      *match_index =
          i + 1 > 65535 ? 65535 : static_cast<uint16_t>(i + 1);
      return true;
    }
  }
  *match_index = 0;
  return true;
}

bool LazyDfaCache::RunSet(std::string_view input, uint16_t* match,
                          const StartBytePrefilter* prefilter) {
  const int num_patterns = program_->num_patterns();
  const uint64_t all = num_patterns >= 64
                           ? ~uint64_t{0}
                           : (uint64_t{1} << num_patterns) - 1;
  for (int p = 0; p < num_patterns; ++p) match[p] = 0;

  const uint16_t* classes = program_->byte_classes().data();
  const int32_t num_classes = program_->num_byte_classes();
  int32_t sid = 0;
  uint64_t matched = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    if (sid == 0 && prefilter != nullptr) {
      // Reset state never accepts (for any stream), so the skip is sound
      // exactly as in Run().
      i = simd::FindByteSetAtLevel(input, i, prefilter->bytes.data(),
                                   prefilter->count, prefilter->level);
      if (i == std::string_view::npos) break;
    }
    const int32_t cls = classes[static_cast<uint8_t>(input[i])];
    int32_t next = trans_[static_cast<size_t>(sid * num_classes + cls)];
    if (next < 0) {
      next = Step(sid, cls);
      if (next < 0) return false;
      trans_[static_cast<size_t>(sid * num_classes + cls)] = next;
    }
    sid = next;
    uint64_t fresh = accept_tags_[static_cast<size_t>(sid)] & ~matched;
    if (fresh != 0) {
      const uint16_t index =
          i + 1 > 65535 ? 65535 : static_cast<uint16_t>(i + 1);
      while (fresh != 0) {
        const int p = std::countr_zero(fresh);
        match[p] = index;
        fresh &= fresh - 1;
      }
      matched |= accept_tags_[static_cast<size_t>(sid)];
      if (matched == all) return true;
    }
  }
  return true;
}

}  // namespace doppio
