// Regex Engine (paper §5): String Reader -> 16 PUs -> Output Collector.
//
// Execution is split into two coupled passes over the same block structure:
//  * the *functional* pass distributes the block's strings round-robin over
//    the PUs through the input FIFOs and collects the 16-bit match indexes
//    in order (bit-exact results, written into the result column);
//  * the *timing* pass replays the block's cache-line traffic (offset
//    phase, heap phase, result lines) through the arbiter/QPI model on the
//    virtual clock, and paces the PUs at one byte per 400 MHz cycle.
//
// For large jobs the functional pass can fan out across host threads —
// a simulator implementation detail; results are identical to the
// single-threaded structural path (asserted by tests).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "hw/arbiter.h"
#include "hw/device_config.h"
#include "hw/job.h"
#include "hw/processing_unit.h"
#include "hw/trace.h"
#include "obs/metrics.h"

namespace doppio {

struct EngineStats {
  int64_t jobs_executed = 0;
  int64_t strings_processed = 0;
  int64_t bytes_streamed = 0;
  SimTime busy_time = 0;

  // Functional-pass (host wall-clock) observability: payload bytes run
  // through the compiled kernels and the time they took. Simulator
  // implementation detail — independent of the virtual-time figures.
  int64_t functional_bytes = 0;
  double functional_seconds = 0;
  int64_t literal_jobs = 0;
  int64_t lazy_dfa_jobs = 0;
  int64_t nfa_loop_jobs = 0;
};

class RegexEngine {
 public:
  /// `pool` may be null (strictly single-threaded functional pass).
  RegexEngine(int id, const DeviceConfig& device, Arbiter* arbiter,
              SimScheduler* scheduler, ThreadPool* pool);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(RegexEngine);

  bool idle() const { return !busy_; }
  int id() const { return id_; }

  /// Starts `params` at the scheduler's current virtual time. The result
  /// column is filled immediately (functional pass); `status` fields and
  /// the done bit are updated when the virtual-time execution finishes, at
  /// which point `on_done` fires (on the scheduler).
  Status Start(JobParams* params, JobStatus* status,
               std::function<void()> on_done);

  const EngineStats& stats() const { return stats_; }

  /// Records per-chunk traffic events (may be null to disable).
  void set_trace(TraceLog* trace) { trace_ = trace; }

  /// Strings-per-host-thread threshold above which the functional pass
  /// parallelizes.
  static constexpr int64_t kParallelThreshold = 1 << 16;

 private:
  struct BlockTiming {
    int64_t offset_lines;
    int64_t heap_lines;
    int64_t string_bytes;
  };
  /// One timing event's worth of traffic. Transfers are capped at
  /// kChunkLines per virtual-time event so that concurrent engines
  /// interleave on the shared link instead of serializing whole reader
  /// blocks against each other.
  struct Chunk {
    int64_t lines;
    int64_t pu_bytes;  // payload the PUs chew on from this chunk
  };
  static constexpr int64_t kChunkLines = 2048;

  Status RunFunctional(JobParams* params, JobStatus* status,
                       std::vector<BlockTiming>* blocks);
  void BuildChunks();
  void ScheduleNextChunk(size_t chunk_index);
  void Finalize();

  int id_;
  DeviceConfig device_;
  Arbiter* arbiter_;
  SimScheduler* scheduler_;
  ThreadPool* pool_;

  std::vector<ProcessingUnit> pus_;

  // In-flight job state.
  bool busy_ = false;
  JobParams* params_ = nullptr;
  JobStatus* status_ = nullptr;
  std::function<void()> on_done_;
  std::vector<BlockTiming> blocks_;
  std::vector<Chunk> chunks_;
  SimTime pu_done_ = 0;
  int64_t job_matches_ = 0;

  EngineStats stats_;
  TraceLog* trace_ = nullptr;

  // Per-engine instruments, resolved once at construction ("doppio.engine.
  // <id>.*"); updates are a single relaxed RMW per completed job.
  obs::Counter* metric_jobs_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Histogram* metric_functional_mbps_ = nullptr;
};

}  // namespace doppio
