#include "hw/qpi_link.h"

#include "common/logging.h"

namespace doppio {

QpiLink::QpiLink(const DeviceConfig& config)
    : engine_busy_until_(static_cast<size_t>(config.num_engines), 0) {
  const double line_bytes = static_cast<double>(kCacheLineBytes);
  line_service_picos_ =
      PicosFromSeconds(line_bytes / config.qpi_peak_bytes_per_sec);
  // Window pacing: `window` lines per round-trip latency.
  engine_pace_picos_ = PicosFromSeconds(
      config.qpi_latency_sec /
      static_cast<double>(config.per_engine_window_lines));
  latency_picos_ = PicosFromSeconds(config.qpi_latency_sec);
}

SimTime QpiLink::Transfer(int engine_id, SimTime now, int64_t lines) {
  DOPPIO_CHECK(engine_id >= 0 &&
               engine_id < static_cast<int>(engine_busy_until_.size()));
  DOPPIO_CHECK(lines >= 0);
  if (lines == 0) return now;
  auto& engine_busy = engine_busy_until_[static_cast<size_t>(engine_id)];

  // The engine may issue once its window has drained far enough.
  SimTime start = std::max(now, engine_busy);
  // The shared link serializes lines across engines.
  SimTime link_start = std::max(start, link_busy_until_);
  SimTime link_done = link_start + lines * line_service_picos_;
  busy_time_ += link_done - link_start;
  link_busy_until_ = link_done;

  // Engine-side pacing: the in-flight window admits lines at
  // window/latency regardless of how backed up the shared link is — the
  // window drains as requests are issued, so issue pacing must NOT be
  // coupled to link completion (that would serialize concurrent engines
  // at the single-engine rate). Data lands once both the pace and the
  // link service plus the round-trip latency are satisfied.
  SimTime pace_done = start + lines * engine_pace_picos_;
  SimTime completion = std::max(link_done, pace_done) + latency_picos_;
  engine_busy = pace_done;

  total_lines_ += lines;
  return completion;
}

}  // namespace doppio
