// Output Collector (paper §5.1): gathers 16-bit match indexes from the
// per-PU result FIFOs in round-robin order — guaranteeing results leave in
// input order — and packs 32 of them per 512-bit cache line written to the
// result column.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "hw/job.h"

namespace doppio {

inline constexpr int64_t kResultsPerLine = kCacheLineBytes / 2;  // 32

class OutputCollector {
 public:
  explicit OutputCollector(const JobParams& params);

  /// Appends the match index for the next string (input order).
  Status Append(uint16_t match_index);

  /// Appends all tagged-stream indexes for the next string of a
  /// set-compiled job (JobParams::streams values, row-major layout).
  /// Append(x) is exactly AppendSet(&x, 1).
  Status AppendSet(const uint16_t* values, int32_t streams);

  /// Strings emitted so far.
  int64_t results_written() const { return results_written_; }
  /// Cache lines of result traffic generated so far (16-bit values packed
  /// 32 per line — streams multiply the value count).
  int64_t result_lines() const {
    return (values_written_ + kResultsPerLine - 1) / kResultsPerLine;
  }
  /// Number of nonzero result values (per-stream matches) — kept as a
  /// running statistic for the job status block.
  int64_t matches() const { return matches_; }

  /// Total result lines for `values` 16-bit indexes (strings x streams).
  static int64_t TotalResultLines(int64_t values) {
    return (values + kResultsPerLine - 1) / kResultsPerLine;
  }

 private:
  const JobParams* params_;
  int64_t results_written_ = 0;  // strings
  int64_t values_written_ = 0;   // 16-bit indexes (strings x streams)
  int64_t matches_ = 0;
};

}  // namespace doppio
