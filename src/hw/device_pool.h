// Multi-device topology: a pool of N simulated HARP devices behind one
// CPU-side pinned shared region.
//
// Each pool member is a full FpgaDevice — its own virtual clock domain
// (SimScheduler), job ring, Job Distributor, memory arbiter, QPI endpoint
// and fault plan. The devices share the host arena (the paper's pinned
// CPU-FPGA region: one physical memory, N coherent links into it) and the
// host thread pool that accelerates the functional pass. Nothing about a
// single FpgaDevice changes: a pool of one wraps exactly the device the
// paper models, and every direct-submit code path keeps addressing it as
// device 0.
//
// The pool adds the topology-level services sharded execution needs:
//
//  * placement — ShardCounts() splits a partitioned submission's slices
//    across devices proportional to each device's currently free engines
//    (largest-remainder apportionment, lowest-index tiebreak: fully
//    deterministic for a given pool state);
//  * occupancy — callers account in-flight slices per device through
//    NoteInflight(), which free_engines() subtracts, so concurrent waves
//    see each other's load;
//  * observability — per-device doppio.hw.device.<i>.* counters (slices,
//    rows, jobs stolen in/out) and an inflight gauge, registered once at
//    pool construction.
//
// Clock domains are independent: device i's virtual now() only advances
// while a host thread waits on device i. There is no pool-wide total
// order of events across devices — cross-device time comparisons are
// meaningless, and per-query timing must be computed per clock domain and
// then reduced (see RegexpFpgaBatchPooled). MaxNow() exists only as a
// monotone pool-wide progress marker for throughput accounting.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "hw/device_config.h"
#include "hw/fpga_device.h"
#include "mem/arena.h"

namespace doppio {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

struct DevicePoolOptions {
  /// Pool size. 1 reproduces the paper's single-device deployment exactly.
  int num_devices = 1;

  /// Template configuration every device is built from. Program geometry
  /// (PUs, character matchers, state nodes) is uniform across the pool so
  /// one compiled configuration vector runs on any member.
  DeviceConfig device;

  /// Per-device fault plans (index i overrides `device.faults` for device
  /// i). Shorter than num_devices: remaining devices use the template's
  /// plan. Lets tests stall or degrade one pool member while the rest
  /// stay healthy.
  std::vector<FaultPlan> device_faults;

  /// Per-device engine-count overrides (0 or missing = template count).
  /// Engine count is deployment topology, not program geometry, so a
  /// heterogeneous pool still runs one compiled program everywhere.
  std::vector<int> device_engines;
};

class DevicePool {
 public:
  /// `arena`/`pool` are shared by every member device (one pinned region,
  /// one functional-pass host pool); both may be null for self-contained
  /// tests, exactly as with a bare FpgaDevice.
  DevicePool(const DevicePoolOptions& options, SharedArena* arena = nullptr,
             ThreadPool* pool = nullptr);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(DevicePool);

  int size() const { return static_cast<int>(devices_.size()); }
  FpgaDevice* device(int i) {
    return devices_[static_cast<size_t>(i)]->device.get();
  }
  const FpgaDevice* device(int i) const {
    return devices_[static_cast<size_t>(i)]->device.get();
  }

  /// Engines across the whole pool — the natural default partition count
  /// for a pooled submission (one slice per engine, paper §7.5 scaled out).
  int total_engines() const { return total_engines_; }

  /// Engines on device i not currently claimed by an in-flight slice
  /// (never negative). Devices with zero free engines still get work when
  /// the whole pool is busy — ShardCounts falls back to equal weights.
  int free_engines(int i) const;

  /// In-flight slice accounting, kept by the pooled executors. Mirrored
  /// into the doppio.hw.device.<i>.in_flight gauge.
  void NoteInflight(int i, int delta);

  /// Splits `slices` across the pool proportional to free engines
  /// (largest-remainder method, lowest index wins ties). All-zero free
  /// engines degrade to equal weights. Deterministic for a given state;
  /// returns one count per device summing to `slices`.
  std::vector<int> ShardCounts(int slices) const;

  /// Pool-wide monotone progress marker: max virtual now() across clock
  /// domains. NOT a global clock — see the header comment.
  SimTime MaxNow() const;

  /// One slice executed (or degraded) on device i over `rows` strings.
  void NoteSlice(int i, int64_t rows);

  /// A queued slice moved from `victim`'s backlog to idle device `thief`.
  void NoteSteal(int victim, int thief);

  // Cumulative per-device counters (test/diagnostic view of the
  // doppio.hw.device.<i>.* metrics).
  int64_t slices_executed(int i) const;
  int64_t rows_executed(int i) const;
  int64_t steals_in(int i) const;
  int64_t steals_out(int i) const;

  /// Per-device utilization summaries, one block per device.
  std::string UtilizationSummary() const;

 private:
  struct PerDevice {
    std::unique_ptr<FpgaDevice> device;
    std::atomic<int> inflight{0};
    obs::Counter* slices = nullptr;
    obs::Counter* rows = nullptr;
    obs::Counter* steals_in = nullptr;
    obs::Counter* steals_out = nullptr;
    obs::Gauge* inflight_gauge = nullptr;
  };

  std::vector<std::unique_ptr<PerDevice>> devices_;
  int total_engines_ = 0;
};

}  // namespace doppio
