// Deployment-time geometry and calibrated platform parameters of the
// simulated Xeon+FPGA system (paper §2.2, §5, §7.1).
//
// The FPGA is never re-synthesized per query: a deployment fixes the number
// of engines, PUs per engine, and the per-PU capacity (character matchers /
// state-graph nodes). Everything else is runtime parameterization.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/units.h"
#include "hw/fault_plan.h"

namespace doppio {

struct DeviceConfig {
  // --- Geometry (synthesis-time) -------------------------------------------
  int num_engines = 4;        // paper default deployment: 4 engines
  int pus_per_engine = 16;    // 16 PUs saturate one engine's 6.4 GB/s
  /// Character matchers per PU. 24 fits every evaluation query (Q2 needs
  /// 20 slots, Q4 needs 21 under the range-pair cost model) while the
  /// hybrid-execution query QH (28 slots) deliberately does not — which is
  /// exactly the situation §7.8 constructs.
  int max_chars = 24;
  int max_states = 8;         // state-graph nodes per PU

  // --- Clocks ---------------------------------------------------------------
  int64_t pu_clock_hz = 400'000'000;      // PUs: 1 byte/cycle @ 400 MHz
  int64_t fabric_clock_hz = 200'000'000;  // QPI endpoint and datapath

  // --- QPI link model (calibrated to the paper's measurements) -------------
  /// Sustained line-service cap: the paper measures ~6.5 GB/s peak reads.
  double qpi_peak_bytes_per_sec = 6.5e9;
  /// Request round-trip latency over QPI through the prototype endpoint.
  double qpi_latency_sec = 700e-9;
  /// Max outstanding cache lines per engine (String Reader double
  /// buffering); with the latency above this caps a lone engine at
  /// ~5.9 GB/s — the single-engine effective bandwidth the paper reports.
  int per_engine_window_lines = 64;
  /// Arbiter batch size (paper §4.2.2): requests are scheduled in batches
  /// of 16 lines per engine to amortize arbitration without hurting
  /// latency.
  int arbiter_batch_lines = 16;

  // --- Fixed overheads -------------------------------------------------------
  /// HAL hardware module: fetch job parameters + parametrize the PUs
  /// (paper §7.4 reports ~300 ns).
  double job_setup_sec = 300e-9;
  /// Job-queue poll granularity of the Job Distributor.
  double job_poll_sec = 100e-9;

  // --- Fault injection (simulation-only) ------------------------------------
  /// Deterministic fault plan exercising the HAL's deadline/retry/fallback
  /// machinery. Off by default; all paper figures run with it disabled.
  FaultPlan faults;

  // --- Derived ---------------------------------------------------------------
  /// Peak processing rate of one engine: PUs × 1 B/cycle at the PU clock.
  double EngineBytesPerSec() const {
    return static_cast<double>(pus_per_engine) *
           static_cast<double>(pu_clock_hz);
  }
  /// Aggregate processing capacity of the deployment (25.6 GB/s at 4x16).
  double DeviceBytesPerSec() const {
    return EngineBytesPerSec() * num_engines;
  }
  /// Effective bandwidth of a single engine under the window/latency model.
  double SingleEngineBytesPerSec() const {
    double windowed = static_cast<double>(per_engine_window_lines) *
                      static_cast<double>(kCacheLineBytes) / qpi_latency_sec;
    return std::min(windowed, qpi_peak_bytes_per_sec);
  }

  std::string ToString() const {
    return std::to_string(num_engines) + "x" +
           std::to_string(pus_per_engine) + " PUs, " +
           std::to_string(max_chars) + " chars, " +
           std::to_string(max_states) + " states";
  }
};

/// The paper's default deployment: 4 engines x 16 PUs, 24 characters,
/// 8 states, PUs at 400 MHz.
inline DeviceConfig DefaultDeviceConfig() { return DeviceConfig{}; }

/// Projection of the next-generation Xeon+FPGA the paper's §9 anticipates
/// (Intel's announced follow-up adds PCIe links next to QPI, lifting the
/// memory-bandwidth cap): one QPI (~6.5 GB/s effective) plus two PCIe 3.0
/// x8 links (~7 GB/s each), and a deeper in-flight window so a single
/// engine can use them.
inline DeviceConfig NextGenDeviceConfig() {
  DeviceConfig config;
  config.qpi_peak_bytes_per_sec = 20.5e9;  // QPI + 2x PCIe gen3 x8
  config.per_engine_window_lines = 256;    // deeper buffering
  return config;
}

}  // namespace doppio
