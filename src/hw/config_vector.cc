#include "hw/config_vector.h"

namespace doppio {

// Wire format (little-endian, byte granularity, zero-padded to 64 B words):
//   u8  magic (0xD0)
//   u8  version (1)
//   u8  num_tokens
//   u8  num_states
//   tokens:  per token:
//     u8 chain_len
//     per chain position:
//       u8 spec_kind: 0xFF = any, else number of ranges
//       per range: u8 lo, u8 hi
//   states:  per state:
//     u4-words: trigger bitmask  (ceil(num_tokens/8) bytes)
//     pred bitmask               (ceil(num_states/8) bytes)
//     u8 flags: bit0 latch, bit1 accept, bit2 tagged
//     if tagged: u8 pattern_tag (set-compiled unions only; a tag of 0 is
//     encoded without the flag, so single-pattern vectors are byte-for-byte
//     what version 1 always emitted)
namespace {
constexpr uint8_t kMagic = 0xD0;
constexpr uint8_t kVersion = 1;
constexpr uint8_t kAnySpec = 0xFF;
}  // namespace

Result<ConfigVector> ConfigVector::Encode(const TokenNfa& nfa) {
  DOPPIO_RETURN_NOT_OK(nfa.Validate());
  if (nfa.tokens.size() > 255 || nfa.states.size() > 255) {
    return Status::CapacityExceeded("token NFA too large for config vector");
  }
  ConfigVector out;
  auto& b = out.bytes_;
  b.push_back(kMagic);
  b.push_back(kVersion);
  b.push_back(static_cast<uint8_t>(nfa.tokens.size()));
  b.push_back(static_cast<uint8_t>(nfa.states.size()));

  for (const HwToken& token : nfa.tokens) {
    b.push_back(static_cast<uint8_t>(token.chain.size()));
    for (const CharSpec& spec : token.chain) {
      if (spec.any) {
        b.push_back(kAnySpec);
        continue;
      }
      if (spec.ranges.size() >= kAnySpec) {
        return Status::Internal("character spec with too many ranges");
      }
      b.push_back(static_cast<uint8_t>(spec.ranges.size()));
      for (const CharSpec::Range& r : spec.ranges) {
        b.push_back(r.lo);
        b.push_back(r.hi);
      }
    }
  }

  const size_t trigger_bytes = (nfa.tokens.size() + 7) / 8;
  const size_t pred_bytes = (nfa.states.size() + 7) / 8;
  for (const HwState& state : nfa.states) {
    std::vector<uint8_t> trigger(trigger_bytes, 0);
    for (int t : state.trigger_tokens) {
      trigger[static_cast<size_t>(t) / 8] |=
          static_cast<uint8_t>(1u << (t % 8));
    }
    b.insert(b.end(), trigger.begin(), trigger.end());
    std::vector<uint8_t> preds(pred_bytes, 0);
    for (int p : state.pred_states) {
      preds[static_cast<size_t>(p) / 8] |=
          static_cast<uint8_t>(1u << (p % 8));
    }
    b.insert(b.end(), preds.begin(), preds.end());
    uint8_t flags = 0;
    if (state.latch) flags |= 1;
    if (state.accept) flags |= 2;
    if (state.pattern_tag != 0) flags |= 4;
    b.push_back(flags);
    if (state.pattern_tag != 0) {
      b.push_back(static_cast<uint8_t>(state.pattern_tag));
    }
  }

  // Pad to whole 512-bit words.
  while (b.size() % kConfigWordBytes != 0) b.push_back(0);
  return out;
}

Result<ConfigVector> ConfigVector::FromBytes(std::vector<uint8_t> bytes) {
  ConfigVector out;
  out.bytes_ = std::move(bytes);
  DOPPIO_ASSIGN_OR_RETURN(TokenNfa nfa, out.Decode());
  (void)nfa;
  return out;
}

Result<TokenNfa> ConfigVector::Decode() const {
  size_t pos = 0;
  auto need = [&](size_t n) {
    return pos + n <= bytes_.size()
               ? Status::OK()
               : Status::Internal("truncated config vector");
  };
  auto u8 = [&]() { return bytes_[pos++]; };

  DOPPIO_RETURN_NOT_OK(need(4));
  if (u8() != kMagic) return Status::Internal("bad config vector magic");
  if (u8() != kVersion) return Status::Internal("bad config vector version");
  const size_t num_tokens = u8();
  const size_t num_states = u8();

  TokenNfa nfa;
  nfa.tokens.resize(num_tokens);
  for (HwToken& token : nfa.tokens) {
    DOPPIO_RETURN_NOT_OK(need(1));
    const size_t chain_len = u8();
    token.chain.resize(chain_len);
    for (CharSpec& spec : token.chain) {
      DOPPIO_RETURN_NOT_OK(need(1));
      const uint8_t kind = u8();
      if (kind == kAnySpec) {
        spec.any = true;
        continue;
      }
      DOPPIO_RETURN_NOT_OK(need(static_cast<size_t>(kind) * 2));
      spec.ranges.resize(kind);
      for (CharSpec::Range& r : spec.ranges) {
        r.lo = u8();
        r.hi = u8();
      }
    }
  }

  const size_t trigger_bytes = (num_tokens + 7) / 8;
  const size_t pred_bytes = (num_states + 7) / 8;
  nfa.states.resize(num_states);
  for (HwState& state : nfa.states) {
    DOPPIO_RETURN_NOT_OK(need(trigger_bytes + pred_bytes + 1));
    for (size_t t = 0; t < num_tokens; ++t) {
      if ((bytes_[pos + t / 8] >> (t % 8)) & 1u) {
        state.trigger_tokens.push_back(static_cast<int>(t));
      }
    }
    pos += trigger_bytes;
    for (size_t s = 0; s < num_states; ++s) {
      if ((bytes_[pos + s / 8] >> (s % 8)) & 1u) {
        state.pred_states.push_back(static_cast<int>(s));
      }
    }
    pos += pred_bytes;
    const uint8_t flags = u8();
    state.latch = (flags & 1) != 0;
    state.accept = (flags & 2) != 0;
    if ((flags & 4) != 0) {
      DOPPIO_RETURN_NOT_OK(need(1));
      state.pattern_tag = u8();
    }
  }
  DOPPIO_RETURN_NOT_OK(nfa.Validate());
  return nfa;
}

}  // namespace doppio
