// FPGA resource model (paper §7.9, Fig. 14).
//
// We have no synthesis tools, so the area of a deployment is an analytic
// surrogate calibrated to the structural facts the paper reports:
//   * the QPI endpoint costs a constant 28% of logic and 4% of BRAM;
//   * arbitration and String Reader logic scale with the engine count;
//   * a PU's cost is linear in its character matchers and quadratic in its
//     state count (the fully connected State Graph);
//   * the default 4x16 deployment lands around 80% logic / 42% BRAM;
//     a 5th engine still fits physically but fails routing/timing;
//   * a 64-character or a 16-state PU sweep stays (just) on chip.
#pragma once

#include "common/status.h"
#include "hw/device_config.h"

namespace doppio {

struct ResourceUsage {
  double logic_pct = 0;
  double bram_pct = 0;
  // Breakdown (percent of logic), mirroring Fig. 14's stacked bars.
  double qpi_endpoint_pct = 0;
  double arbitration_pct = 0;
  double string_reader_pct = 0;
  double processing_units_pct = 0;

  /// True when the deployment fits on the chip at all (logic and BRAM
  /// within budget); orthogonal to timing closure.
  bool fits = false;
};

/// Calibration constants, exposed for the ablation benchmarks.
struct ResourceModelParams {
  double qpi_logic_pct = 28.0;
  double qpi_bram_pct = 4.0;
  double arbitration_base_pct = 1.0;
  double arbitration_per_engine_pct = 1.0;
  double reader_per_engine_pct = 1.0;
  double pu_base_pct = 0.4136;
  double pu_per_char_pct = 0.0065;
  double pu_per_state_sq_pct = 0.0016;
  double bram_per_engine_pct = 9.5;
  double logic_budget_pct = 100.0;
  double bram_budget_pct = 100.0;
};

ResourceUsage EstimateResources(
    const DeviceConfig& config,
    const ResourceModelParams& params = ResourceModelParams{});

}  // namespace doppio
