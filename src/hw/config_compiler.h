// Software-side compiler: SQL pattern -> configuration vector, with the
// deployed geometry's capacity checks (paper §6.4, §7.9).
//
// This is the fpga_regex_get_config() step of the UDF pseudo-code: it runs
// on the CPU (measured at < 1 µs in the paper) and fails with
// CapacityExceeded when the pattern needs more character matchers or
// state-graph nodes than the deployment provides — the signal that drives
// hybrid execution.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hw/config_vector.h"
#include "hw/device_config.h"
#include "regex/matcher.h"
#include "regex/pattern_ast.h"
#include "regex/token_nfa.h"

namespace doppio {

struct RegexConfig {
  ConfigVector vector;
  TokenNfa nfa;  // decoded view, used by the simulator and for stats
  int states_used = 0;
  int matchers_used = 0;
  /// CPU time spent generating the vector (the Fig. 10 "Config. Gen." bar).
  double compile_seconds = 0;
};

/// Compiles a regex-dialect pattern against a deployment geometry.
Result<RegexConfig> CompileRegexConfig(std::string_view pattern,
                                       const DeviceConfig& device,
                                       const CompileOptions& options = {});

/// Same, from an already-parsed AST.
Result<RegexConfig> CompileRegexConfig(const AstNode& ast,
                                       const DeviceConfig& device,
                                       const CompileOptions& options = {});

/// Checks an extracted token NFA against a geometry.
Status CheckCapacity(const TokenNfa& nfa, const DeviceConfig& device);

/// Compiles a *set* of already-compiled member configs into one combined
/// config: the union NFA with tagged accepts (docs/PATTERN_SETS.md).
/// Member k's matches surface on output stream k. Fails with
/// CapacityExceeded when the merged token/trigger/transition program does
/// not fit one PU (token dedup across members is applied first) — the
/// signal that sends the batch back to the multi-pass planner.
Result<RegexConfig> CompileRegexSetConfig(
    const std::vector<const TokenNfa*>& members, const DeviceConfig& device);

}  // namespace doppio
