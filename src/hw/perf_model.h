// Closed-form performance model of a regex job (paper §7.3, §7.5).
//
// The discrete-event simulator and this model agree to within a few
// percent (asserted by tests); large parameter sweeps use the closed form,
// validation runs use the DES. The model also produces the paper's
// "FPGA(ideal)" line: execution without the QPI bandwidth cap, i.e. each
// engine running at its full 6.4 GB/s processing rate.
#pragma once

#include <cstdint>

#include "hw/device_config.h"

namespace doppio {

struct PerfEstimate {
  double seconds = 0;               // end-to-end job time
  double effective_bytes_per_sec = 0;  // total traffic / time
  int64_t total_lines = 0;          // cache lines moved
  int64_t total_bytes = 0;
};

/// Estimates one job of `count` strings over `heap_bytes` of heap, with
/// `active_engines` engines concurrently streaming (they share the link).
/// `ideal` removes the QPI cap (engine processing rate is the only limit).
PerfEstimate EstimateJob(const DeviceConfig& config, int64_t count,
                         int64_t heap_bytes, int active_engines = 1,
                         bool ideal = false);

/// Modeled wall time to move `bytes` across the QPI link at its peak rate
/// plus one link latency. Used by the out-of-core streaming layer to cost
/// paging a column segment into the shared arena (store/stream_executor,
/// db/cost_model); 0 bytes costs 0 (already-resident window).
double TransferSeconds(const DeviceConfig& config, int64_t bytes);

/// Steady-state aggregate device throughput in queries/sec for a saturated
/// closed-loop workload of identical jobs (Fig. 8 / Fig. 11 FPGA lines).
double SaturatedQueriesPerSec(const DeviceConfig& config, int64_t count,
                              int64_t heap_bytes, int engines_used,
                              bool ideal = false);

}  // namespace doppio
