// Deterministic fault-injection plan for the simulated device.
//
// Production automata systems treat hardware-path failure as a first-class
// planner input; to exercise the HAL's deadline/retry/degradation machinery
// the simulator can inject faults — dropped jobs, delayed completions,
// late done-bit writes, transient Submit rejections and permanently
// stalled engines. Every decision is a pure hash of (seed, fault kind,
// sequence number), so a plan replays identically across runs and thread
// interleavings. The plan is off by default: with `enabled == false` no
// fault code runs and all simulated-timing figures are unchanged.
//
// Simulation-only: none of this models the paper's hardware; it models the
// failure environment around it.
#pragma once

#include <cstdint>

namespace doppio {

/// Fault-kind salts for the per-decision hash (distinct streams per kind).
enum class FaultKind : uint64_t {
  kSubmit = 0x51,      // transient Submit rejection
  kDrop = 0xd7,        // job vanishes: done bit never set
  kDelay = 0xde,       // completion delayed
  kDoneLatency = 0xdb, // done-bit write lands late
};

struct FaultPlan {
  /// Master switch. False = zero behavioural difference, guaranteed.
  bool enabled = false;

  /// Seed of the deterministic lottery.
  uint64_t seed = 0x5eedf001u;

  /// Probability a Submit is rejected with a transient Unavailable error
  /// (keyed by submission sequence number).
  double submit_failure_rate = 0;

  /// Probability a dispatched job is dropped: the engine frees itself but
  /// the done bit is never set (keyed by queue job id).
  double drop_rate = 0;

  /// Probability a job's completion event is delayed by `delay_seconds`.
  double delay_rate = 0;
  double delay_seconds = 200e-6;

  /// Probability the done-bit write lands `done_latency_seconds` after the
  /// job actually finished (finish_time is stamped on time; the waiting
  /// UDF just observes it late).
  double done_latency_rate = 0;
  double done_latency_seconds = 50e-6;

  /// Bitmask of engines that hang forever on the first job they receive
  /// (bit i = engine i). Jobs dispatched there never complete.
  uint32_t stalled_engine_mask = 0;

  bool engine_stalled(int engine_id) const {
    return enabled && engine_id >= 0 && engine_id < 32 &&
           (stalled_engine_mask & (uint32_t{1} << engine_id)) != 0;
  }

  /// Deterministic lottery: true with probability `rate` for this
  /// (kind, sequence) pair. SplitMix64 over the salted seed.
  bool Fires(FaultKind kind, uint64_t sequence, double rate) const {
    if (!enabled || rate <= 0) return false;
    if (rate >= 1.0) return true;
    uint64_t x = seed ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL) ^
                 (sequence * 0xbf58476d1ce4e5b9ULL);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    const double u =
        static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);  // 2^53
    return u < rate;
  }

  /// True when any injection can fire at all (cheap guard for hot paths).
  bool any() const {
    return enabled &&
           (submit_failure_rate > 0 || drop_rate > 0 || delay_rate > 0 ||
            done_latency_rate > 0 || stalled_engine_mask != 0);
  }
};

}  // namespace doppio
