#include "hw/regex_engine.h"

#include <atomic>

#include <string>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hw/fifo.h"
#include "obs/json.h"
#include "hw/pu_kernel.h"
#include "hw/output_collector.h"
#include "hw/string_reader.h"

namespace doppio {

RegexEngine::RegexEngine(int id, const DeviceConfig& device, Arbiter* arbiter,
                         SimScheduler* scheduler, ThreadPool* pool)
    : id_(id),
      device_(device),
      arbiter_(arbiter),
      scheduler_(scheduler),
      pool_(pool) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "doppio.engine." + std::to_string(id) + ".";
  metric_jobs_ = registry.GetCounter(prefix + "jobs_executed",
                                     "jobs this engine completed");
  metric_bytes_ = registry.GetCounter(prefix + "bytes_streamed",
                                      "cache-line traffic this engine drove");
  metric_functional_mbps_ = registry.GetHistogram(
      "doppio.engine.functional_mbps", obs::MbpsBuckets(),
      "functional-pass host throughput per job, all engines");
  pus_.reserve(static_cast<size_t>(device_.pus_per_engine));
  for (int i = 0; i < device_.pus_per_engine; ++i) {
    pus_.emplace_back(device_);
  }
}

Status RegexEngine::Start(JobParams* params, JobStatus* status,
                          std::function<void()> on_done) {
  if (busy_) return Status::Internal("engine already executing a job");
  busy_ = true;
  params_ = params;
  status_ = status;
  on_done_ = std::move(on_done);
  blocks_.clear();
  job_matches_ = 0;

  status_->engine_id = id_;
  status_->start_time = scheduler_->now();

  const FaultPlan& faults = device_.faults;
  if (faults.engine_stalled(id_)) {
    // Permanently stalled engine: the job is accepted but never finishes
    // and the engine never becomes idle again. The HAL's deadline wait
    // detects this (device drains with the done bit unset) and requeues
    // or degrades to software.
    status_->fault_flags.fetch_or(kJobFaultStalled,
                                  std::memory_order_release);
    return Status::OK();
  }
  if (faults.enabled && faults.Fires(FaultKind::kDrop,
                                     status_->queue_job_id,
                                     faults.drop_rate)) {
    // Dropped job: after the parameter fetch the job vanishes — no
    // functional results, no done bit. The engine frees itself so queued
    // work continues; the waiting UDF times out and retries.
    status_->fault_flags.fetch_or(kJobFaultDropped,
                                  std::memory_order_release);
    scheduler_->ScheduleAfter(PicosFromSeconds(device_.job_setup_sec),
                              [this] {
                                auto on_drop = std::move(on_done_);
                                busy_ = false;
                                params_ = nullptr;
                                status_ = nullptr;
                                if (on_drop) on_drop();
                              });
    return Status::OK();
  }

  Status st = RunFunctional(params_, status_, &blocks_);
  if (!st.ok()) {
    busy_ = false;
    return st;
  }
  BuildChunks();

  // Timing: job-parameter fetch + PU parametrization (~300 ns), then the
  // chunked reader pipeline.
  const int64_t param_lines =
      1 + static_cast<int64_t>(params_->config.size() + kCacheLineBytes - 1) /
              kCacheLineBytes;
  SimTime fetch_done =
      arbiter_->Transfer(id_, scheduler_->now(), param_lines);
  SimTime setup_done =
      fetch_done + PicosFromSeconds(device_.job_setup_sec);
  pu_done_ = setup_done;
  SimTime delay = setup_done - scheduler_->now();
  scheduler_->ScheduleAfter(delay, [this] { ScheduleNextChunk(0); });
  return Status::OK();
}

void RegexEngine::BuildChunks() {
  chunks_.clear();
  for (const BlockTiming& block : blocks_) {
    // Offset phase (no PU payload), then the heap phase whose payload the
    // PUs consume, both split into interleavable chunks.
    int64_t remaining = block.offset_lines;
    while (remaining > 0) {
      int64_t lines = std::min(remaining, kChunkLines);
      chunks_.push_back(Chunk{lines, 0});
      remaining -= lines;
    }
    remaining = block.heap_lines;
    int64_t payload_left = block.string_bytes;
    while (remaining > 0) {
      int64_t lines = std::min(remaining, kChunkLines);
      // Attribute payload proportionally to the chunk's share of lines.
      int64_t payload =
          remaining <= kChunkLines
              ? payload_left
              : payload_left * lines / remaining;
      chunks_.push_back(Chunk{lines, payload});
      payload_left -= payload;
      remaining -= lines;
    }
  }
}

Status RegexEngine::RunFunctional(JobParams* params, JobStatus* status,
                                  std::vector<BlockTiming>* blocks) {
  // Compile the job's configuration vector once; every PU (and every
  // worker thread) shares the immutable program — they all evaluate the
  // same expression; parallelism is across tuples.
  DOPPIO_ASSIGN_OR_RETURN(ConfigVector cv,
                          ConfigVector::FromBytes(params->config));
  DOPPIO_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPuProgram> program,
                          CompiledPuProgram::Compile(cv, device_));
  // A set-compiled config carries its stream count redundantly in the job
  // parameters; a mismatch means the submitter sized the result block for
  // the wrong program.
  const int streams = program->num_patterns();
  if (params->streams != streams) {
    return Status::Internal("job streams do not match the compiled program");
  }
  for (ProcessingUnit& pu : pus_) {
    pu.Configure(program);
  }
  status->pu_kernel = PuKernelName(program->kernel());
  switch (program->kernel()) {
    case PuKernelKind::kLiteral: stats_.literal_jobs += 1; break;
    case PuKernelKind::kLazyDfa: stats_.lazy_dfa_jobs += 1; break;
    case PuKernelKind::kNfaLoop: stats_.nfa_loop_jobs += 1; break;
  }

  StringReader reader(*params);
  OutputCollector collector(*params);

  const bool parallel =
      pool_ != nullptr && params->count >= kParallelThreshold;

  Stopwatch functional_clock;
  int64_t functional_bytes = 0;
  while (reader.HasMore()) {
    DOPPIO_ASSIGN_OR_RETURN(StringReader::Block block, reader.ReadBlock());
    blocks->push_back(BlockTiming{block.offset_lines, block.heap_lines,
                                  block.string_bytes});

    const int npus = device_.pus_per_engine;
    if (params->timing_only) continue;  // traffic model only
    functional_bytes += block.string_bytes;
    std::vector<uint16_t> results(block.strings.size() *
                                  static_cast<size_t>(streams));
    if (!parallel && streams > 1) {
      // Set-compiled job on the structural path: the result lane carries
      // `streams` 16-bit indexes per string instead of one, so the FIFO
      // emulation below (one value per lane slot) does not apply; the
      // round-robin PU assignment alone preserves input order.
      const size_t n = block.strings.size();
      for (size_t i = 0; i < n; ++i) {
        pus_[i % static_cast<size_t>(npus)].ProcessStringSet(
            block.strings[i], &results[i * static_cast<size_t>(streams)]);
      }
    } else if (!parallel) {
      // Structural path (Fig. 4): the reader scatters strings round-robin
      // into cache-line-wide input FIFOs, PUs consume, and the Output
      // Collector gathers 16-bit indexes from the result FIFOs in the
      // same round-robin order — which is what guarantees results leave
      // in input order.
      constexpr size_t kFifoDepth = 8;  // strings buffered per PU
      std::vector<Fifo<std::string_view>> input_fifos;
      std::vector<Fifo<uint16_t>> result_fifos;
      input_fifos.reserve(static_cast<size_t>(npus));
      result_fifos.reserve(static_cast<size_t>(npus));
      for (int p = 0; p < npus; ++p) {
        input_fifos.emplace_back(kFifoDepth);
        result_fifos.emplace_back(kFifoDepth);
      }
      const size_t n = block.strings.size();
      size_t next_in = 0;
      size_t next_out = 0;
      while (next_out < n) {
        // Reader: scatter until the next target FIFO back-pressures.
        while (next_in < n &&
               input_fifos[next_in % static_cast<size_t>(npus)].Push(
                   block.strings[next_in])) {
          ++next_in;
        }
        // PUs: each consumes one buffered string if its result lane has
        // room.
        for (int p = 0; p < npus; ++p) {
          auto& in = input_fifos[static_cast<size_t>(p)];
          auto& res = result_fifos[static_cast<size_t>(p)];
          std::string_view s;
          if (!res.Full() && in.Pop(&s)) {
            bool pushed =
                res.Push(pus_[static_cast<size_t>(p)].ProcessString(s));
            DOPPIO_CHECK(pushed);
          }
        }
        // Collector: gather strictly round-robin (order preservation).
        while (next_out < n) {
          uint16_t r;
          if (!result_fifos[next_out % static_cast<size_t>(npus)].Pop(&r)) {
            break;
          }
          results[next_out] = r;
          ++next_out;
        }
      }
    } else {
      // Host-parallel fast path: each worker thread gets its own PU (own
      // dynamic state and lazy-DFA cache) referencing the shared compiled
      // program, and processes a contiguous range of the block. Every PU
      // runs the same program, so the results are identical to the
      // structural round-robin path.
      const int shards = pool_->num_threads();
      const size_t n = block.strings.size();
      pool_->ParallelFor(shards, [&](int shard) {
        const size_t begin =
            n * static_cast<size_t>(shard) / static_cast<size_t>(shards);
        const size_t end =
            n * (static_cast<size_t>(shard) + 1) / static_cast<size_t>(shards);
        if (begin == end) return;
        ProcessingUnit pu(device_);
        pu.Configure(program);
        if (streams == 1) {
          for (size_t i = begin; i < end; ++i) {
            results[i] = pu.ProcessString(block.strings[i]);
          }
        } else {
          for (size_t i = begin; i < end; ++i) {
            pu.ProcessStringSet(block.strings[i],
                                &results[i * static_cast<size_t>(streams)]);
          }
        }
      });
    }
    for (size_t i = 0; i < block.strings.size(); ++i) {
      DOPPIO_RETURN_NOT_OK(collector.AppendSet(
          &results[i * static_cast<size_t>(streams)], streams));
    }
  }

  status->functional_bytes = functional_bytes;
  status->functional_host_seconds = functional_clock.ElapsedSeconds();
  stats_.functional_bytes += functional_bytes;
  stats_.functional_seconds += status->functional_host_seconds;
  if (functional_bytes > 0) {
    metric_functional_mbps_->Observe(
        obs::SafeRate(static_cast<double>(functional_bytes) / 1e6,
                      status->functional_host_seconds));
  }

  status->matches = collector.matches();
  status->strings_processed =
      params->timing_only ? params->count : collector.results_written();
  job_matches_ = collector.matches();
  return Status::OK();
}

void RegexEngine::ScheduleNextChunk(size_t chunk_index) {
  if (chunk_index >= chunks_.size()) {
    Finalize();
    return;
  }
  const Chunk& chunk = chunks_[chunk_index];
  SimTime now = scheduler_->now();
  SimTime done = arbiter_->Transfer(id_, now, chunk.lines);
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{now, TraceEvent::Kind::kChunkTransferred,
                              status_->queue_job_id, id_, chunk.lines});
  }

  // PUs consume the payload at 1 byte/cycle each once its data arrived.
  if (chunk.pu_bytes > 0) {
    const double engine_rate = device_.EngineBytesPerSec();
    SimTime pu_time = PicosFromSeconds(
        static_cast<double>(chunk.pu_bytes) / engine_rate);
    pu_done_ = std::max(pu_done_, done) + pu_time;
  }

  // The reader issues the next chunk as soon as its window drains — it
  // does not wait for the PUs (the input FIFOs buffer ahead).
  SimTime next_issue = std::max(scheduler_->now(),
                                arbiter_->EngineReady(id_));
  scheduler_->ScheduleAt(next_issue, [this, chunk_index] {
    ScheduleNextChunk(chunk_index + 1);
  });
}

void RegexEngine::Finalize() {
  // Streaming is done; everything from here is result collection and the
  // status-line write.
  status_->collect_start_time = scheduler_->now();
  // Result lines plus the status-line write. A set job writes
  // count x streams indexes, so its result traffic scales with the
  // member count (streams is 1 everywhere on the paper's path).
  const int64_t result_lines =
      OutputCollector::TotalResultLines(params_->count * params_->streams);
  SimTime results_done =
      arbiter_->Transfer(id_, scheduler_->now(), result_lines + 1);
  SimTime finish = std::max(pu_done_, results_done);

  SimTime delay = std::max<SimTime>(0, finish - scheduler_->now());
  const FaultPlan& faults = device_.faults;
  if (faults.enabled && faults.Fires(FaultKind::kDelay,
                                     status_->queue_job_id,
                                     faults.delay_rate)) {
    status_->fault_flags.fetch_or(kJobFaultDelayed,
                                  std::memory_order_release);
    delay += PicosFromSeconds(faults.delay_seconds);
  }
  scheduler_->ScheduleAfter(delay, [this] {
    JobParams* params = params_;
    JobStatus* status = status_;
    auto on_done = std::move(on_done_);

    status->finish_time = scheduler_->now();
    int64_t heap_lines = 0;
    for (const BlockTiming& block : blocks_) heap_lines += block.heap_lines;
    status->bytes_streamed =
        (StringReader::TotalOffsetLines(params->count) +
         OutputCollector::TotalResultLines(params->count * params->streams) +
         heap_lines) *
        kCacheLineBytes;

    stats_.jobs_executed += 1;
    stats_.strings_processed += params->count;
    stats_.bytes_streamed += status->bytes_streamed;
    stats_.busy_time += status->finish_time - status->start_time;
    metric_jobs_->Add();
    metric_bytes_->Add(status->bytes_streamed);

    busy_ = false;
    params_ = nullptr;
    status_ = nullptr;
    const FaultPlan& faults = device_.faults;
    if (faults.enabled && faults.Fires(FaultKind::kDoneLatency,
                                       status->queue_job_id,
                                       faults.done_latency_rate)) {
      // Late done-bit write: the job finished on time (finish_time is
      // already stamped) but the status-line store lands late — the
      // busy-waiting UDF only observes completion after the extra latency.
      status->fault_flags.fetch_or(kJobFaultDoneLatency,
                                   std::memory_order_release);
      scheduler_->ScheduleAfter(
          PicosFromSeconds(faults.done_latency_seconds),
          [scheduler = scheduler_, status, on_done = std::move(on_done)] {
            status->done_bit_time = scheduler->now();
            status->done.store(1, std::memory_order_release);
            if (on_done) on_done();
          });
      return;
    }
    status->done_bit_time = scheduler_->now();
    status->done.store(1, std::memory_order_release);
    if (on_done) on_done();
  });
}

}  // namespace doppio
