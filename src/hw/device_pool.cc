#include "hw/device_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

DevicePool::DevicePool(const DevicePoolOptions& options, SharedArena* arena,
                       ThreadPool* pool) {
  DOPPIO_CHECK(options.num_devices >= 1);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (int i = 0; i < options.num_devices; ++i) {
    DeviceConfig config = options.device;
    if (i < static_cast<int>(options.device_faults.size())) {
      config.faults = options.device_faults[static_cast<size_t>(i)];
    }
    if (i < static_cast<int>(options.device_engines.size()) &&
        options.device_engines[static_cast<size_t>(i)] > 0) {
      config.num_engines = options.device_engines[static_cast<size_t>(i)];
    }
    auto entry = std::make_unique<PerDevice>();
    entry->device =
        std::make_unique<FpgaDevice>(config, arena, pool, /*device_id=*/i);
    const std::string prefix =
        "doppio.hw.device." + std::to_string(i) + ".";
    entry->slices = registry.GetCounter(
        prefix + "slices", "job slices executed (or degraded) on this device");
    entry->rows = registry.GetCounter(
        prefix + "rows", "strings covered by this device's slices");
    entry->steals_in = registry.GetCounter(
        prefix + "steals_in",
        "queued slices this device stole from a busy device");
    entry->steals_out = registry.GetCounter(
        prefix + "steals_out",
        "queued slices stolen away from this device's backlog");
    // "in_flight", not "inflight": exported documents are asserted free of
    // the substring "inf" (NaN/Inf leak guards in obs tests).
    entry->inflight_gauge = registry.GetGauge(
        prefix + "in_flight", "slices submitted and not yet completed");
    total_engines_ += config.num_engines;
    devices_.push_back(std::move(entry));
  }
}

int DevicePool::free_engines(int i) const {
  const PerDevice& entry = *devices_[static_cast<size_t>(i)];
  const int engines = entry.device->config().num_engines;
  const int inflight = entry.inflight.load(std::memory_order_relaxed);
  return std::max(0, engines - inflight);
}

void DevicePool::NoteInflight(int i, int delta) {
  PerDevice& entry = *devices_[static_cast<size_t>(i)];
  entry.inflight.fetch_add(delta, std::memory_order_relaxed);
  entry.inflight_gauge->Set(entry.inflight.load(std::memory_order_relaxed));
}

std::vector<int> DevicePool::ShardCounts(int slices) const {
  const int n = size();
  std::vector<int> counts(static_cast<size_t>(n), 0);
  if (slices <= 0) return counts;

  std::vector<int> weights(static_cast<size_t>(n), 0);
  int total_weight = 0;
  for (int i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = free_engines(i);
    total_weight += weights[static_cast<size_t>(i)];
  }
  if (total_weight == 0) {
    // Everything busy: apportion by equal weight so no device is starved
    // of backlog (stealing rebalances later anyway).
    std::fill(weights.begin(), weights.end(), 1);
    total_weight = n;
  }

  // Largest-remainder apportionment: floor each share, then hand the
  // leftover slices to the largest fractional parts, lowest index first.
  int assigned = 0;
  std::vector<int64_t> remainder_num(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int64_t num =
        static_cast<int64_t>(slices) * weights[static_cast<size_t>(i)];
    counts[static_cast<size_t>(i)] = static_cast<int>(num / total_weight);
    remainder_num[static_cast<size_t>(i)] = num % total_weight;
    assigned += counts[static_cast<size_t>(i)];
  }
  int leftover = slices - assigned;
  while (leftover > 0) {
    int best = -1;
    for (int i = 0; i < n; ++i) {
      if (best < 0 || remainder_num[static_cast<size_t>(i)] >
                          remainder_num[static_cast<size_t>(best)]) {
        best = i;
      }
    }
    ++counts[static_cast<size_t>(best)];
    remainder_num[static_cast<size_t>(best)] = -1;  // consumed
    --leftover;
  }
  return counts;
}

SimTime DevicePool::MaxNow() const {
  SimTime now = 0;
  for (const auto& entry : devices_) {
    now = std::max(now, entry->device->now());
  }
  return now;
}

void DevicePool::NoteSlice(int i, int64_t rows) {
  PerDevice& entry = *devices_[static_cast<size_t>(i)];
  entry.slices->Add();
  entry.rows->Add(rows);
}

void DevicePool::NoteSteal(int victim, int thief) {
  devices_[static_cast<size_t>(victim)]->steals_out->Add();
  devices_[static_cast<size_t>(thief)]->steals_in->Add();
}

int64_t DevicePool::slices_executed(int i) const {
  return devices_[static_cast<size_t>(i)]->slices->Value();
}
int64_t DevicePool::rows_executed(int i) const {
  return devices_[static_cast<size_t>(i)]->rows->Value();
}
int64_t DevicePool::steals_in(int i) const {
  return devices_[static_cast<size_t>(i)]->steals_in->Value();
}
int64_t DevicePool::steals_out(int i) const {
  return devices_[static_cast<size_t>(i)]->steals_out->Value();
}

std::string DevicePool::UtilizationSummary() const {
  std::string out;
  for (int i = 0; i < size(); ++i) {
    out += "device " + std::to_string(i) + ":\n";
    out += devices_[static_cast<size_t>(i)]->device->UtilizationSummary();
  }
  return out;
}

}  // namespace doppio
