// Virtual-time execution trace of the simulated device.
//
// When enabled, the Job Distributor and the engines record what happened
// when (on the virtual clock): job enqueue, dispatch, per-chunk traffic,
// completion. Used by tests to assert scheduling behaviour and by users to
// understand where a job's time went — the visibility a black-box UDF
// lacks (§9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_scheduler.h"

namespace doppio {

struct TraceEvent {
  enum class Kind {
    kJobEnqueued,
    kJobDispatched,
    kChunkTransferred,
    kJobDone,
  };

  SimTime time = 0;
  Kind kind = Kind::kJobEnqueued;
  uint64_t job_id = 0;
  int engine_id = -1;    // -1 = not yet assigned
  int64_t lines = 0;     // kChunkTransferred

  std::string ToString() const;
};

class TraceLog {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Events of one kind, in order.
  std::vector<TraceEvent> Filter(TraceEvent::Kind kind) const;

  /// Human-readable dump.
  std::string ToString(size_t max_events = 100) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace doppio
