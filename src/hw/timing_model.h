// Timing-closure model (paper §7.9, Fig. 15; Fig. 14a's "timing not met").
//
// A surrogate for the (non-deterministic, as the paper notes) vendor
// place-and-route: the PU critical path grows with the fully connected
// State Graph's fan-out and with the character-matcher mux depth, and a
// heavily utilized chip adds routing congestion. Halving the PU clock
// doubles the delay budget, which is exactly the frequency/complexity
// trade-off the paper explores.
#pragma once

#include "common/status.h"
#include "hw/device_config.h"
#include "hw/resource_model.h"

namespace doppio {

struct TimingModelParams {
  // Critical path: base + fanout(states) + mux(chars), in nanoseconds.
  double base_delay_ns = 1.0;
  double per_state_ns = 0.055;
  double per_char_ns = 0.012;
  // Congestion: chips beyond this utilization fail routing at the fast
  // PU clock (calibrated so 5x16 @ 400 MHz fails, 4x16 passes).
  double congestion_logic_pct = 88.0;
  int64_t congestion_clock_hz = 400'000'000;
};

/// Critical-path estimate for a PU with the given capacity.
double CriticalPathNs(int states, int chars,
                      const TimingModelParams& params = TimingModelParams{});

/// Whether a (states, chars) PU closes timing at `clock_hz` — the Fig. 15
/// design space, evaluated on a lightly utilized (2x16) deployment.
bool PuConfigurationFeasible(int states, int chars, int64_t clock_hz,
                             const TimingModelParams& params =
                                 TimingModelParams{});

/// Full deployment check: resources must fit and timing must close.
/// Returns CapacityExceeded (does not fit) or TimingViolation (fits but
/// routing cannot meet the clock) or OK.
Status CheckDeployment(const DeviceConfig& config,
                       const ResourceModelParams& res_params =
                           ResourceModelParams{},
                       const TimingModelParams& timing_params =
                           TimingModelParams{});

}  // namespace doppio
