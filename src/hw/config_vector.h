// Serialized configuration vector (paper §6.1, Fig. 6).
//
// A query's token NFA is flattened into 512-bit memory words holding the
// Tokens (character-matcher programming, including range-coupling and
// collation flags), Triggers (token -> state bipartite matrix), State
// Transitions (state -> state matrix), latch flags and accept flags. The
// Regex Engine reads these words from the job parameters and loads its
// registers — no FPGA reconfiguration ever happens.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "regex/token_nfa.h"

namespace doppio {

inline constexpr int64_t kConfigWordBytes = 64;  // one 512-bit word

class ConfigVector {
 public:
  /// Encodes a token NFA. Fails (Internal) only on structural violations —
  /// geometry fitting is checked by the config compiler beforehand.
  static Result<ConfigVector> Encode(const TokenNfa& nfa);

  /// Decodes back into a token NFA — this is what the simulated PU does
  /// when it parametrizes itself (step 7 in Fig. 3).
  Result<TokenNfa> Decode() const;

  /// Rebuilds a vector from raw bytes (e.g. out of a job parameter block);
  /// validates by decoding.
  static Result<ConfigVector> FromBytes(std::vector<uint8_t> bytes);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  /// Number of 512-bit words (bytes are zero-padded to whole words).
  int64_t num_words() const {
    return static_cast<int64_t>(bytes_.size()) / kConfigWordBytes;
  }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace doppio
