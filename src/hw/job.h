// Job structures shared between software (HAL) and the simulated FPGA
// (paper §4.2.2). The HAL allocates these in the CPU-FPGA shared region,
// wraps their addresses in a job descriptor and enqueues the descriptor;
// the Job Distributor hands them to an idle Regex Engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/sim_scheduler.h"
#include "common/status.h"

namespace doppio {

using JobId = int64_t;

/// Parameter structure (one per job, written by the HAL, read by the
/// engine): pointers into shared memory plus the configuration vector.
struct JobParams {
  const uint8_t* offsets = nullptr;  // offset BAT tail (uint32 entries)
  const uint8_t* heap = nullptr;     // string heap base
  uint8_t* result = nullptr;         // result BAT tail (int16 entries)
  int64_t count = 0;                 // number of strings
  int32_t offset_width = 4;          // bytes per offset
  int64_t heap_bytes = 0;            // heap extent (for prefetch sizing)
  std::vector<uint8_t> config;       // configuration vector words
  /// Tagged output streams of a set-compiled config (must equal the
  /// program's num_patterns). The result block holds count*streams 16-bit
  /// indexes, row-major per string: string i's stream p lands at
  /// result[(i*streams + p) * 2]. 1 for ordinary single-pattern jobs.
  int32_t streams = 1;

  /// Simulator-only knob for throughput experiments: skip the functional
  /// matching pass (results are zeroed) while still deriving the exact
  /// cache-line traffic and timing from the real offsets/heap. Never set
  /// on correctness paths.
  bool timing_only = false;
};

/// Fault-observability bits in JobStatus::fault_flags (simulator-only:
/// which injected fault, if any, hit this job attempt).
enum JobFaultBits : uint32_t {
  kJobFaultDropped = 1u << 0,      // done bit never set; engine freed
  kJobFaultStalled = 1u << 1,      // landed on a permanently stalled engine
  kJobFaultDelayed = 1u << 2,      // completion event delayed
  kJobFaultDoneLatency = 1u << 3,  // done-bit write landed late
};

/// Status structure the engine updates while executing (read by the UDF's
/// busy-wait loop) plus execution statistics (paper step 8).
struct JobStatus {
  std::atomic<uint32_t> done{0};

  /// Set by the HAL when it gives up on this attempt (deadline expired and
  /// the job was requeued). The Job Distributor skips cancelled
  /// descriptors so an abandoned attempt is never double-executed.
  std::atomic<uint32_t> cancelled{0};

  /// Injected-fault observability (JobFaultBits). Atomic so the waiting
  /// host thread may inspect it while the virtual-time side writes it.
  std::atomic<uint32_t> fault_flags{0};

  /// Resubmissions the HAL performed before this attempt succeeded
  /// (written by the job lifecycle once the done bit is set).
  int32_t retries = 0;

  /// Set (before the done bit) if the engine rejected or aborted the job.
  Status error;

  /// Descriptor id assigned when the job enters the shared queue.
  uint64_t queue_job_id = 0;

  // Statistics, valid once done != 0.
  int64_t matches = 0;
  int64_t strings_processed = 0;
  int64_t bytes_streamed = 0;       // heap + offset + result traffic

  // Functional-pass observability (simulator implementation detail, not
  // modeled hardware time): which compiled kernel served the job, the
  // payload it matched, and the host wall-clock it took.
  const char* pu_kernel = "";       // PuKernelName() literal
  int64_t functional_bytes = 0;
  double functional_host_seconds = 0;
  int64_t engine_id = -1;
  /// Pool index of the device that executed this job (0 for a standalone
  /// device) — metric/trace attribution across a DevicePool.
  int32_t device_id = 0;
  SimTime enqueue_time = 0;         // virtual time entering the job queue
  SimTime dispatch_time = 0;        // distributor picked up the descriptor
  SimTime start_time = 0;           // assigned to an engine
  SimTime collect_start_time = 0;   // streaming finished, collecting output
  SimTime done_bit_time = 0;        // done-bit store landed
  SimTime finish_time = 0;          // done bit set
  double ExecSeconds() const {
    return SecondsFromPicos(finish_time - start_time);
  }
  double QueueSeconds() const {
    return SecondsFromPicos(start_time - enqueue_time);
  }
};

}  // namespace doppio
