// Virtual-time model of the QPI connection between the FPGA and the CPU's
// memory controller (paper §2.2, §7.3).
//
// Two serialization resources reproduce the measured behaviour:
//  * the shared link sustains at most `qpi_peak_bytes_per_sec`
//    (~6.5 GB/s measured on the prototype) across all engines;
//  * each engine can keep only `per_engine_window_lines` cache lines in
//    flight (String Reader double buffering), so a lone engine tops out at
//    window x 64 B / latency ≈ 5.9 GB/s — which is why the paper sees
//    throughput rise from one engine to two and then go flat (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "hw/device_config.h"

namespace doppio {

class QpiLink {
 public:
  explicit QpiLink(const DeviceConfig& config);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(QpiLink);

  /// Transfers `lines` cache lines for `engine_id` starting no earlier than
  /// `now`; returns the virtual completion time. Requests from concurrent
  /// engines share the link capacity; each engine is additionally paced by
  /// its in-flight window.
  SimTime Transfer(int engine_id, SimTime now, int64_t lines);

  /// Earliest virtual time at which `engine_id` may issue its next batch
  /// (its window has drained). Drivers pipeline on this, not on the data
  /// completion time, so the request latency is overlapped — only the
  /// window paces steady-state issue.
  SimTime EngineReady(int engine_id) const {
    return engine_busy_until_[static_cast<size_t>(engine_id)];
  }

  int64_t total_lines() const { return total_lines_; }
  int64_t total_bytes() const { return total_lines_ * kCacheLineBytes; }
  /// Virtual time during which the link was actively moving lines.
  SimTime busy_time() const { return busy_time_; }
  SimTime busy_until() const { return link_busy_until_; }

  /// Achieved bandwidth over [0, end].
  double AchievedBytesPerSec(SimTime end) const {
    return end <= 0 ? 0.0
                    : static_cast<double>(total_bytes()) /
                          SecondsFromPicos(end);
  }

 private:
  SimTime line_service_picos_;    // shared link: time per line
  SimTime engine_pace_picos_;     // per-engine window pacing per line
  SimTime latency_picos_;         // request round-trip latency

  SimTime link_busy_until_ = 0;
  std::vector<SimTime> engine_busy_until_;
  int64_t total_lines_ = 0;
  SimTime busy_time_ = 0;
};

}  // namespace doppio
