// Bounded FIFO modelling the cache-line-wide BRAM FIFOs between the String
// Reader, the PUs and the Output Collector (paper Fig. 4). Tracks
// occupancy and stall statistics so backpressure behaviour is observable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/logging.h"

namespace doppio {

template <typename T>
class Fifo {
 public:
  explicit Fifo(size_t capacity) : capacity_(capacity) {
    DOPPIO_CHECK(capacity > 0);
  }

  bool Full() const { return items_.size() >= capacity_; }
  bool Empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  /// Pushes an item; returns false (and counts a stall) when full.
  bool Push(T item) {
    if (Full()) {
      ++push_stalls_;
      return false;
    }
    items_.push_back(std::move(item));
    max_occupancy_ = std::max(max_occupancy_, items_.size());
    ++total_pushed_;
    return true;
  }

  /// Pops the oldest item; returns false when empty.
  bool Pop(T* out) {
    if (items_.empty()) {
      ++pop_stalls_;
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  const T& Front() const { return items_.front(); }

  int64_t push_stalls() const { return push_stalls_; }
  int64_t pop_stalls() const { return pop_stalls_; }
  int64_t total_pushed() const { return total_pushed_; }
  size_t max_occupancy() const { return max_occupancy_; }

 private:
  size_t capacity_;
  std::deque<T> items_;
  int64_t push_stalls_ = 0;
  int64_t pop_stalls_ = 0;
  int64_t total_pushed_ = 0;
  size_t max_occupancy_ = 0;
};

}  // namespace doppio
