// Job Distributor (paper §4.2.2, step 6 of Fig. 3): watches the shared
// memory job queue and hands each job descriptor to the next idle Regex
// Engine. Jobs wait in FIFO order when all engines are busy — this queueing
// is what shapes the multi-client throughput experiments (Fig. 11).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "hal/aal.h"
#include "hal/job_queue.h"
#include "hw/job.h"
#include "hw/regex_engine.h"
#include "hw/trace.h"

namespace doppio {

class JobDistributor {
 public:
  /// `queue` is the shared-memory descriptor ring the HAL writes into.
  JobDistributor(SimScheduler* scheduler, DeviceConfig device,
                 std::vector<RegexEngine*> engines,
                 std::unique_ptr<SharedJobQueue> queue);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(JobDistributor);

  /// Enqueues a job descriptor at the scheduler's current virtual time.
  /// `on_done` fires (in virtual time) when the engine sets the done bit.
  /// Fails with ResourceExhausted when the shared ring is full — the ring
  /// never grows past its capacity; the HAL surfaces the back-pressure to
  /// the caller (retry lifecycle / scheduler), which waits out the drain.
  Status Enqueue(JobParams* params, JobStatus* status,
                 std::function<void()> on_done);

  /// Mirrors diagnostics into the Device Status Memory once a session is
  /// established.
  void AttachDsm(DeviceStatusMemory* dsm);

  /// Records scheduling events into `trace` (may be null to disable).
  void set_trace(TraceLog* trace) { trace_ = trace; }

  const SharedJobQueue& queue() const { return *queue_; }
  int64_t jobs_dispatched() const { return jobs_dispatched_; }

 private:
  void TryDispatch();
  void UpdateIdleMirror();

  SimScheduler* scheduler_;
  DeviceConfig device_;
  std::vector<RegexEngine*> engines_;
  std::unique_ptr<SharedJobQueue> queue_;
  std::map<uint64_t, std::function<void()>> callbacks_;
  uint64_t next_job_id_ = 1;
  int64_t jobs_dispatched_ = 0;
  DeviceStatusMemory* dsm_ = nullptr;
  TraceLog* trace_ = nullptr;
};

}  // namespace doppio
