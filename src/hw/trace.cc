#include "hw/trace.h"

#include <sstream>

namespace doppio {

namespace {
const char* KindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kJobEnqueued:
      return "enqueued";
    case TraceEvent::Kind::kJobDispatched:
      return "dispatched";
    case TraceEvent::Kind::kChunkTransferred:
      return "chunk";
    case TraceEvent::Kind::kJobDone:
      return "done";
  }
  return "?";
}
}  // namespace

std::string TraceEvent::ToString() const {
  std::ostringstream out;
  out << SecondsFromPicos(time) * 1e6 << "us job=" << job_id << " "
      << KindName(kind);
  if (engine_id >= 0) out << " engine=" << engine_id;
  if (kind == Kind::kChunkTransferred) out << " lines=" << lines;
  return out.str();
}

std::vector<TraceEvent> TraceLog::Filter(TraceEvent::Kind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string TraceLog::ToString(size_t max_events) const {
  std::ostringstream out;
  size_t shown = 0;
  for (const TraceEvent& e : events_) {
    if (shown++ >= max_events) {
      out << "... (" << events_.size() - max_events << " more)\n";
      break;
    }
    out << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace doppio
