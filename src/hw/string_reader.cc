#include "hw/string_reader.h"

#include <cstring>

#include "common/logging.h"

namespace doppio {

StringReader::StringReader(const JobParams& params) : params_(&params) {}

Result<StringReader::Block> StringReader::ReadBlock() {
  if (!HasMore()) return Status::Internal("string reader exhausted");
  Block block;
  block.first_string = next_string_;
  block.num_strings =
      std::min<int64_t>(kStringsPerBlock, params_->count - next_string_);

  // Phase 1: offsets. 16 offsets per 512-bit line.
  block.offset_lines =
      (block.num_strings * params_->offset_width + kCacheLineBytes - 1) /
      kCacheLineBytes;

  // Phase 2: strings. Track the distinct heap lines touched — sequential
  // strings share lines, which is exactly what the hardware exploits.
  const uint32_t* offsets =
      reinterpret_cast<const uint32_t*>(params_->offsets);
  if (params_->timing_only) {
    // Derive traffic from the offset column alone: the block's heap span
    // runs from its first string to the start of the next block (or the
    // heap end for the last block).
    uint32_t begin = offsets[block.first_string];
    int64_t end = block.first_string + block.num_strings < params_->count
                      ? offsets[block.first_string + block.num_strings]
                      : params_->heap_bytes;
    block.heap_lines =
        end / kCacheLineBytes - begin / kCacheLineBytes + 1;
    block.string_bytes = end - begin;  // slight overestimate (padding)
    next_string_ += block.num_strings;
    return block;
  }
  int64_t first_line = -1;
  int64_t last_line = -1;
  block.strings.reserve(static_cast<size_t>(block.num_strings));
  for (int64_t i = 0; i < block.num_strings; ++i) {
    uint32_t offset = offsets[block.first_string + i];
    const char* start =
        reinterpret_cast<const char*>(params_->heap) + offset;
    // Strings are NUL-terminated; length is not stored (paper Fig. 2).
    std::string_view value(start);
    block.strings.push_back(value);
    block.string_bytes += static_cast<int64_t>(value.size());

    int64_t begin_line = offset / kCacheLineBytes;
    int64_t end_line =
        (offset + static_cast<int64_t>(value.size())) / kCacheLineBytes;
    if (first_line < 0) first_line = begin_line;
    last_line = std::max(last_line, end_line);
  }
  block.heap_lines = first_line < 0 ? 0 : last_line - first_line + 1;

  next_string_ += block.num_strings;
  return block;
}

}  // namespace doppio
