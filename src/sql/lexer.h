// SQL lexer: identifiers/keywords (case-insensitive), 'string' literals
// with '' escaping, integer literals, and the operator/punctuation set the
// dialect needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace doppio {
namespace sql {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kSymbol,  // ( ) , ; * . = <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;       // identifier (lowercased) or symbol spelling
  std::string raw;        // original spelling
  int64_t number = 0;     // kNumber
  size_t position = 0;    // byte offset, for error messages

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kIdent && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenizes a statement. Keywords are not distinguished from identifiers
/// (the parser checks the lowercased text).
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace sql
}  // namespace doppio
