// Expression AST of the SQL dialect, plus row-level evaluation.
//
// Covers what the paper's workloads need: comparisons, AND/OR/NOT,
// [NOT] LIKE / ILIKE, function predicates (REGEXP_LIKE, REGEXP_FPGA,
// REGEXP_HYBRID, CONTAINS), count(*) / count(col) aggregates, column
// references and literals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bat/table.h"
#include "common/status.h"

namespace doppio {
namespace sql {

enum class ExprKind {
  kColumn,
  kIntLiteral,
  kStringLiteral,
  kStar,     // the '*' of count(*)
  kBinary,   // comparisons and AND/OR
  kNot,
  kLike,     // args[0] LIKE <pattern>
  kFunc,     // name(args...) — predicates and aggregates
};

enum class BinOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  std::string name;        // kColumn / kFunc
  int64_t int_value = 0;   // kIntLiteral
  std::string str_value;   // kStringLiteral / kLike pattern
  BinOp op = BinOp::kEq;   // kBinary
  std::vector<ExprPtr> args;

  bool like_negated = false;         // kLike
  bool like_case_insensitive = false;  // kLike (ILIKE)

  static ExprPtr Column(std::string name);
  static ExprPtr Int(int64_t value);
  static ExprPtr Str(std::string value);
  static ExprPtr Star();
  static ExprPtr Binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);
  static ExprPtr Like(ExprPtr column, std::string pattern, bool negated,
                      bool case_insensitive);
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args);

  ExprPtr Clone() const;
  std::string ToString() const;

  /// Collects the column names referenced in this subtree.
  void CollectColumns(std::vector<std::string>* out) const;
};

/// Splits a boolean expression into its top-level AND conjuncts
/// (the expression tree is consumed).
std::vector<ExprPtr> SplitConjuncts(ExprPtr expr);

/// A compiled row predicate over a base table: matchers are built once,
/// evaluation is per row. Not thread-safe (clone per worker).
class RowPredicate {
 public:
  /// Compiles `expr` against `table`'s columns. Fails on unsupported
  /// shapes (the planner routes string fast paths elsewhere first).
  static Result<std::unique_ptr<RowPredicate>> Compile(const Expr& expr,
                                                       const Table& table);

  bool Evaluate(int64_t row) const;

 private:
  struct Impl;
  explicit RowPredicate(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;

 public:
  ~RowPredicate();
};

}  // namespace sql
}  // namespace doppio
