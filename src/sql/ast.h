// Statement AST for the supported SQL subset:
//
//   SELECT <items> FROM <table-ref>
//     [LEFT OUTER JOIN <table> ON <expr>]
//     [WHERE <expr>] [GROUP BY <cols>]
//     [ORDER BY <col> [ASC|DESC], ...] [LIMIT n]
//
// where a table-ref is a base table or a derived table
// `(SELECT ...) AS alias (col_aliases...)` — enough for all queries in the
// paper's evaluation, including TPC-H Q13.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/expression.h"

namespace doppio {
namespace sql {

struct SelectStmt;

struct TableRef {
  std::string table_name;                 // base table (empty if subquery)
  std::unique_ptr<SelectStmt> subquery;   // derived table
  std::string alias;
  std::vector<std::string> column_aliases;
};

enum class JoinType { kInner, kLeftOuter };

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef right;
  ExprPtr on;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;
};

struct OrderItem {
  std::string column;  // output-column name or alias
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

}  // namespace sql
}  // namespace doppio
