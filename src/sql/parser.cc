#include "sql/parser.h"

#include "sql/lexer.h"

namespace doppio {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseStatement() {
    DOPPIO_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelectStmt());
    Match(";");
    if (!Peek().IsKeyword("") && Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Match(std::string_view symbol_or_kw) {
    const Token& t = Peek();
    if (t.IsSymbol(symbol_or_kw) || t.IsKeyword(symbol_or_kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("SQL parse error near byte " +
                              std::to_string(Peek().position) + ": " + msg);
  }
  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "select", "from",  "where", "group", "order", "by",    "limit",
        "and",    "or",    "not",   "like",  "ilike", "as",    "left",
        "right",  "inner", "outer", "join",  "on",    "asc",   "desc",
    };
    for (const char* kw : kReserved) {
      if (word == kw) return true;
    }
    return false;
  }

  Result<SelectStmt> ParseSelectStmt() {
    if (!Match("select")) return Error("expected SELECT");
    SelectStmt stmt;

    // Select list.
    while (true) {
      SelectItem item;
      DOPPIO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match("as")) {
        DOPPIO_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      }
      stmt.items.push_back(std::move(item));
      if (!Match(",")) break;
    }

    if (!Match("from")) return Error("expected FROM");
    DOPPIO_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());

    // Joins.
    while (true) {
      JoinType type;
      if (Peek().IsKeyword("left")) {
        Advance();
        Match("outer");
        if (!Match("join")) return Error("expected JOIN after LEFT OUTER");
        type = JoinType::kLeftOuter;
      } else if (Peek().IsKeyword("inner")) {
        Advance();
        if (!Match("join")) return Error("expected JOIN after INNER");
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("join")) {
        Advance();
        type = JoinType::kInner;
      } else {
        break;
      }
      JoinClause join;
      join.type = type;
      DOPPIO_ASSIGN_OR_RETURN(join.right, ParseTableRef());
      if (!Match("on")) return Error("expected ON");
      DOPPIO_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }

    if (Match("where")) {
      DOPPIO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Match("group")) {
      if (!Match("by")) return Error("expected BY after GROUP");
      while (true) {
        DOPPIO_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdent("group-by column"));
        stmt.group_by.push_back(std::move(col));
        if (!Match(",")) break;
      }
    }
    if (Match("order")) {
      if (!Match("by")) return Error("expected BY after ORDER");
      while (true) {
        OrderItem item;
        DOPPIO_ASSIGN_OR_RETURN(item.column, ExpectIdent("order-by column"));
        if (Match("desc")) {
          item.descending = true;
        } else {
          Match("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (!Match(",")) break;
      }
    }
    if (Match("limit")) {
      if (Peek().kind != TokenKind::kNumber) return Error("expected number");
      stmt.limit = Advance().number;
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Match("(")) {
      auto sub = std::make_unique<SelectStmt>();
      DOPPIO_ASSIGN_OR_RETURN(*sub, ParseSelectStmt());
      ref.subquery = std::move(sub);
      if (!Match(")")) return Error("expected ')' after subquery");
      Match("as");
      DOPPIO_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("subquery alias"));
      if (Match("(")) {
        while (true) {
          DOPPIO_ASSIGN_OR_RETURN(std::string col,
                                  ExpectIdent("column alias"));
          ref.column_aliases.push_back(std::move(col));
          if (!Match(",")) break;
        }
        if (!Match(")")) return Error("expected ')' after column aliases");
      }
      return ref;
    }
    DOPPIO_ASSIGN_OR_RETURN(ref.table_name, ExpectIdent("table name"));
    if (Match("as")) {
      DOPPIO_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("table alias"));
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // expr := or
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DOPPIO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match("or")) {
      DOPPIO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DOPPIO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Match("and")) {
      DOPPIO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Match("not")) {
      DOPPIO_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Not(std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DOPPIO_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());

    // [NOT] LIKE / ILIKE
    bool negated = false;
    if (Peek().IsKeyword("not") &&
        (Peek(1).IsKeyword("like") || Peek(1).IsKeyword("ilike"))) {
      Advance();
      negated = true;
    }
    if (Peek().IsKeyword("like") || Peek().IsKeyword("ilike")) {
      bool ci = Peek().IsKeyword("ilike");
      Advance();
      if (Peek().kind != TokenKind::kString) {
        return Error("expected string literal after LIKE");
      }
      std::string pattern = Advance().text;
      return Expr::Like(std::move(lhs), std::move(pattern), negated, ci);
    }
    if (negated) return Error("expected LIKE after NOT");

    static const std::pair<const char*, BinOp> kOps[] = {
        {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"<=", BinOp::kLe},
        {"<", BinOp::kLt}, {">=", BinOp::kGe}, {">", BinOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (Peek().IsSymbol(sym)) {
        Advance();
        DOPPIO_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      return Expr::Int(t.number);
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return Expr::Str(t.text);
    }
    if (t.IsSymbol("*")) {
      Advance();
      return Expr::Star();
    }
    if (t.IsSymbol("(")) {
      Advance();
      DOPPIO_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!Match(")")) return Error("expected ')'");
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      if (IsReserved(t.text)) {
        return Error("unexpected keyword '" + t.text + "'");
      }
      std::string name = Advance().text;
      // Function call?
      if (Peek().IsSymbol("(")) {
        Advance();
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          while (true) {
            DOPPIO_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!Match(",")) break;
          }
        }
        if (!Match(")")) return Error("expected ')' after arguments");
        return Expr::Func(std::move(name), std::move(args));
      }
      // Qualified column a.b -> b (schemas here have unique column names).
      if (Peek().IsSymbol(".")) {
        Advance();
        DOPPIO_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        return Expr::Column(std::move(col));
      }
      return Expr::Column(std::move(name));
    }
    return Error("unexpected token in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(std::string_view input) {
  DOPPIO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return Parser(std::move(tokens)).ParseStatement();
}

}  // namespace sql
}  // namespace doppio
