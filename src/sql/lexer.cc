#include "sql/lexer.h"

#include <cctype>

namespace doppio {
namespace sql {

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError("SQL lex error at byte " + std::to_string(i) +
                              ": " + msg);
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) != 0 ||
              input[i] == '_')) {
        ++i;
      }
      token.kind = TokenKind::kIdent;
      token.raw = std::string(input.substr(start, i - start));
      token.text.reserve(token.raw.size());
      for (char rc : token.raw) {
        token.text.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(rc))));
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t start = i;
      int64_t value = 0;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i])) != 0) {
        value = value * 10 + (input[i] - '0');
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.number = value;
      token.raw = std::string(input.substr(start, i - start));
      token.text = token.raw;
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            value.push_back('\'');  // '' escape
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = value;
      token.raw = value;
      tokens.push_back(std::move(token));
      continue;
    }

    // Operators and punctuation.
    auto symbol = [&](std::string sym) {
      token.kind = TokenKind::kSymbol;
      token.text = sym;
      token.raw = sym;
      i += sym.size();
      tokens.push_back(std::move(token));
    };
    if (c == '<') {
      if (i + 1 < input.size() && input[i + 1] == '>') {
        symbol("<>");
      } else if (i + 1 < input.size() && input[i + 1] == '=') {
        symbol("<=");
      } else {
        symbol("<");
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        symbol(">=");
      } else {
        symbol(">");
      }
      continue;
    }
    if (c == '!' && i + 1 < input.size() && input[i + 1] == '=') {
      symbol("!=");
      tokens.back().text = "<>";  // normalize
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case ';':
      case '*':
      case '.':
      case '=':
        symbol(std::string(1, c));
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.position = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace doppio
