// Predicate planning: decomposes a WHERE/ON conjunction into string-filter
// fast paths (executed as bulk BAT operators, possibly on the FPGA) and a
// residual row predicate.
//
// This models the slice of query optimization the paper interacts with:
// recognizing LIKE / REGEXP_LIKE / REGEXP_FPGA / CONTAINS predicates and
// routing them to the right operator implementation.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "db/column_store.h"
#include "sql/expression.h"

namespace doppio {
namespace sql {

struct FastStringPredicate {
  std::string column;
  StringFilterSpec spec;
  /// The original expression, so the executor can demote the predicate to
  /// the residual when the fast path does not apply (e.g. derived table).
  ExprPtr original;
};

struct PlannedFilter {
  std::vector<FastStringPredicate> fast;
  /// AND of everything else; null when fully covered by fast paths.
  ExprPtr residual;
};

/// Consumes `where` (may be null) and plans it.
Result<PlannedFilter> PlanWhere(ExprPtr where);

/// Tries to recognize one conjunct as a string predicate. Returns true and
/// fills `out` on success (conjunct is consumed); false otherwise
/// (conjunct is left intact).
bool RecognizeStringPredicate(const Expr& conjunct, FastStringPredicate* out);

}  // namespace sql
}  // namespace doppio
