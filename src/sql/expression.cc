#include "sql/expression.h"

#include <functional>

#include "regex/backtrack_matcher.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/substring_search.h"
#include "regex/thompson_nfa.h"

namespace doppio {
namespace sql {

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::Int(int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLiteral;
  e->int_value = value;
  return e;
}

ExprPtr Expr::Str(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLiteral;
  e->str_value = std::move(value);
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->args.push_back(std::move(inner));
  return e;
}

ExprPtr Expr::Like(ExprPtr column, std::string pattern, bool negated,
                   bool case_insensitive) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLike;
  e->args.push_back(std::move(column));
  e->str_value = std::move(pattern);
  e->like_negated = negated;
  e->like_case_insensitive = case_insensitive;
  return e;
}

ExprPtr Expr::Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunc;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->int_value = int_value;
  e->str_value = str_value;
  e->op = op;
  e->like_negated = like_negated;
  e->like_case_insensitive = like_case_insensitive;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

namespace {
const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return name;
    case ExprKind::kIntLiteral:
      return std::to_string(int_value);
    case ExprKind::kStringLiteral:
      return "'" + str_value + "'";
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpName(op) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + args[0]->ToString() + ")";
    case ExprKind::kLike:
      return "(" + args[0]->ToString() +
             (like_negated ? " NOT" : "") +
             (like_case_insensitive ? " ILIKE '" : " LIKE '") + str_value +
             "')";
    case ExprKind::kFunc: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == ExprKind::kColumn) out->push_back(name);
  for (const auto& a : args) a->CollectColumns(out);
}

std::vector<ExprPtr> SplitConjuncts(ExprPtr expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kBinary && expr->op == BinOp::kAnd) {
    auto lhs = SplitConjuncts(std::move(expr->args[0]));
    auto rhs = SplitConjuncts(std::move(expr->args[1]));
    for (auto& e : lhs) out.push_back(std::move(e));
    for (auto& e : rhs) out.push_back(std::move(e));
    return out;
  }
  out.push_back(std::move(expr));
  return out;
}

// ---------------------------------------------------------------------------
// RowPredicate

struct RowPredicate::Impl {
  std::function<bool(int64_t)> fn;
};

RowPredicate::RowPredicate(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
RowPredicate::~RowPredicate() = default;

bool RowPredicate::Evaluate(int64_t row) const { return impl_->fn(row); }

namespace {

// Compiled value accessor: int-typed.
using IntGetter = std::function<int64_t(int64_t)>;
using StrGetter = std::function<std::string_view(int64_t)>;

Result<IntGetter> CompileIntValue(const Expr& expr, const Table& table);

Result<std::function<bool(int64_t)>> CompileBool(const Expr& expr,
                                                 const Table& table) {
  switch (expr.kind) {
    case ExprKind::kBinary: {
      if (expr.op == BinOp::kAnd || expr.op == BinOp::kOr) {
        DOPPIO_ASSIGN_OR_RETURN(auto lhs, CompileBool(*expr.args[0], table));
        DOPPIO_ASSIGN_OR_RETURN(auto rhs, CompileBool(*expr.args[1], table));
        if (expr.op == BinOp::kAnd) {
          return std::function<bool(int64_t)>(
              [lhs, rhs](int64_t row) { return lhs(row) && rhs(row); });
        }
        return std::function<bool(int64_t)>(
            [lhs, rhs](int64_t row) { return lhs(row) || rhs(row); });
      }
      DOPPIO_ASSIGN_OR_RETURN(IntGetter lhs,
                              CompileIntValue(*expr.args[0], table));
      DOPPIO_ASSIGN_OR_RETURN(IntGetter rhs,
                              CompileIntValue(*expr.args[1], table));
      BinOp op = expr.op;
      return std::function<bool(int64_t)>([lhs, rhs, op](int64_t row) {
        int64_t a = lhs(row);
        int64_t b = rhs(row);
        switch (op) {
          case BinOp::kEq:
            return a == b;
          case BinOp::kNe:
            return a != b;
          case BinOp::kLt:
            return a < b;
          case BinOp::kLe:
            return a <= b;
          case BinOp::kGt:
            return a > b;
          case BinOp::kGe:
            return a >= b;
          default:
            return false;
        }
      });
    }
    case ExprKind::kNot: {
      DOPPIO_ASSIGN_OR_RETURN(auto inner, CompileBool(*expr.args[0], table));
      return std::function<bool(int64_t)>(
          [inner](int64_t row) { return !inner(row); });
    }
    case ExprKind::kLike: {
      if (expr.args[0]->kind != ExprKind::kColumn) {
        return Status::NotImplemented("LIKE over non-column expression");
      }
      const Bat* col = table.GetColumn(expr.args[0]->name);
      if (col == nullptr || col->type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE over missing/non-string column");
      }
      DOPPIO_ASSIGN_OR_RETURN(LikeAnalysis like,
                              TranslateLike(expr.str_value));
      std::shared_ptr<StringMatcher> matcher;
      if (like.is_multi_substring) {
        DOPPIO_ASSIGN_OR_RETURN(
            auto m, MultiSubstringMatcher::Create(
                        like.substrings, expr.like_case_insensitive));
        matcher = std::move(m);
      } else {
        CompileOptions copts;
        copts.case_insensitive = expr.like_case_insensitive;
        copts.anchor_start = like.anchored_start;
        copts.anchor_end = like.anchored_end;
        DOPPIO_ASSIGN_OR_RETURN(Program program,
                                CompileProgram(*like.ast, copts));
        matcher = DfaMatcher::FromProgram(std::move(program));
      }
      bool negated = expr.like_negated;
      return std::function<bool(int64_t)>([col, matcher, negated](
                                              int64_t row) {
        return matcher->Matches(col->GetString(row)) != negated;
      });
    }
    case ExprKind::kFunc: {
      // Boolean-style functions: regexp_like(col, 'pat').
      if (expr.name == "regexp_like" && expr.args.size() == 2 &&
          expr.args[0]->kind == ExprKind::kColumn &&
          expr.args[1]->kind == ExprKind::kStringLiteral) {
        const Bat* col = table.GetColumn(expr.args[0]->name);
        if (col == nullptr || col->type() != ValueType::kString) {
          return Status::InvalidArgument(
              "regexp_like over missing/non-string column");
        }
        DOPPIO_ASSIGN_OR_RETURN(
            auto matcher, BacktrackMatcher::Compile(expr.args[1]->str_value));
        std::shared_ptr<StringMatcher> shared = std::move(matcher);
        return std::function<bool(int64_t)>([col, shared](int64_t row) {
          return shared->Matches(col->GetString(row));
        });
      }
      return Status::NotImplemented("function '" + expr.name +
                                    "' in row predicate");
    }
    default:
      return Status::NotImplemented("expression is not boolean: " +
                                    expr.ToString());
  }
}

Result<IntGetter> CompileIntValue(const Expr& expr, const Table& table) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral: {
      int64_t v = expr.int_value;
      return IntGetter([v](int64_t) { return v; });
    }
    case ExprKind::kColumn: {
      const Bat* col = table.GetColumn(expr.name);
      if (col == nullptr) {
        return Status::InvalidArgument("unknown column '" + expr.name + "'");
      }
      switch (col->type()) {
        case ValueType::kInt32:
          return IntGetter([col](int64_t row) {
            return static_cast<int64_t>(col->GetInt32(row));
          });
        case ValueType::kInt64:
          return IntGetter([col](int64_t row) { return col->GetInt64(row); });
        case ValueType::kInt16:
          return IntGetter([col](int64_t row) {
            return static_cast<int64_t>(col->GetInt16(row));
          });
        default:
          return Status::InvalidArgument("column '" + expr.name +
                                         "' is not integer-typed");
      }
    }
    default:
      return Status::NotImplemented("unsupported integer expression: " +
                                    expr.ToString());
  }
}

}  // namespace

Result<std::unique_ptr<RowPredicate>> RowPredicate::Compile(
    const Expr& expr, const Table& table) {
  DOPPIO_ASSIGN_OR_RETURN(auto fn, CompileBool(expr, table));
  auto impl = std::make_unique<Impl>();
  impl->fn = std::move(fn);
  return std::unique_ptr<RowPredicate>(new RowPredicate(std::move(impl)));
}

}  // namespace sql
}  // namespace doppio
