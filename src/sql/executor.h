// Query executor over the column-store engine.
//
// MonetDB-style operator-at-a-time execution: every stage fully
// materializes its result. The string predicates of a WHERE / ON clause
// run as bulk operators (LIKE fast path, PCRE backtracking, CONTAINS
// index, or the REGEXP_FPGA HUDF); residual predicates run as compiled row
// closures.
#pragma once

#include <string_view>

#include "common/status.h"
#include "db/column_store.h"
#include "db/engine_stats.h"
#include "db/result_set.h"
#include "sql/ast.h"

namespace doppio {
namespace sql {

struct QueryOutcome {
  ResultSet result;
  QueryStats stats;
};

/// Parses and executes `sql_text` against the engine's catalog.
Result<QueryOutcome> ExecuteQuery(ColumnStoreEngine* engine,
                                  std::string_view sql_text);

/// Executes an already-parsed statement.
Result<QueryOutcome> ExecuteStatement(ColumnStoreEngine* engine,
                                      const SelectStmt& stmt);

/// Renders the logical plan of a statement without executing it: table
/// cardinalities, join keys, how each WHERE/ON conjunct is served (string
/// fast path vs residual row predicate), grouping, ordering. The paper's
/// §9 complains the optimizer cannot see into a UDF; this is the
/// corresponding visibility on our side.
Result<std::string> ExplainQuery(ColumnStoreEngine* engine,
                                 std::string_view sql_text);

}  // namespace sql
}  // namespace doppio
