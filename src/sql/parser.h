// Recursive-descent parser for the SQL subset (see sql/ast.h).
#pragma once

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace doppio {
namespace sql {

Result<SelectStmt> ParseSelect(std::string_view input);

}  // namespace sql
}  // namespace doppio
