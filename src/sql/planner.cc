#include "sql/planner.h"

namespace doppio {
namespace sql {

namespace {

// Recognizes a regexp-style function call and determines (column, pattern).
// Both argument orders appear in the paper (REGEXP_LIKE('Strasse', col) in
// §4.1, REGEXP_LIKE(col, '...') in the evaluation queries), so both are
// accepted.
bool MatchRegexpCall(const Expr& expr, const std::string& fn,
                     std::string* column, std::string* pattern) {
  if (expr.kind != ExprKind::kFunc || expr.name != fn ||
      expr.args.size() != 2) {
    return false;
  }
  const Expr& a = *expr.args[0];
  const Expr& b = *expr.args[1];
  if (a.kind == ExprKind::kColumn && b.kind == ExprKind::kStringLiteral) {
    *column = a.name;
    *pattern = b.str_value;
    return true;
  }
  if (a.kind == ExprKind::kStringLiteral && b.kind == ExprKind::kColumn) {
    *column = b.name;
    *pattern = a.str_value;
    return true;
  }
  return false;
}

// expr compared against zero: returns +1 for "<> 0", -1 for "= 0", 0 for
// no match; sets `call` to the function-call side.
int MatchZeroComparison(const Expr& expr, const Expr** call) {
  if (expr.kind != ExprKind::kBinary ||
      (expr.op != BinOp::kNe && expr.op != BinOp::kEq)) {
    return 0;
  }
  const Expr* lhs = expr.args[0].get();
  const Expr* rhs = expr.args[1].get();
  const Expr* fn = nullptr;
  const Expr* zero = nullptr;
  if (lhs->kind == ExprKind::kFunc) {
    fn = lhs;
    zero = rhs;
  } else if (rhs->kind == ExprKind::kFunc) {
    fn = rhs;
    zero = lhs;
  } else {
    return 0;
  }
  if (zero->kind != ExprKind::kIntLiteral || zero->int_value != 0) return 0;
  *call = fn;
  return expr.op == BinOp::kNe ? +1 : -1;
}

bool RecognizeInner(const Expr& expr, bool negated,
                    FastStringPredicate* out) {
  // NOT <predicate>
  if (expr.kind == ExprKind::kNot) {
    return RecognizeInner(*expr.args[0], !negated, out);
  }

  // col [NOT] LIKE / ILIKE 'pattern'
  if (expr.kind == ExprKind::kLike &&
      expr.args[0]->kind == ExprKind::kColumn) {
    out->column = expr.args[0]->name;
    out->spec.op = StringFilterSpec::Op::kLike;
    out->spec.pattern = expr.str_value;
    out->spec.case_insensitive = expr.like_case_insensitive;
    out->spec.negated = expr.like_negated != negated;
    return true;
  }

  std::string column;
  std::string pattern;

  // REGEXP_LIKE(col, 'pat') as a boolean predicate.
  if (MatchRegexpCall(expr, "regexp_like", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kRegexpLike;
    out->spec.pattern = pattern;
    out->spec.negated = negated;
    return true;
  }
  // Bare REGEXP_FPGA / REGEXP_HYBRID used as predicates. The _CI variants
  // select the case-insensitive collation registers (paper §6.4: the
  // hardware provides collations without any performance cost).
  if (MatchRegexpCall(expr, "regexp_fpga", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kRegexpFpga;
    out->spec.pattern = pattern;
    out->spec.negated = negated;
    return true;
  }
  if (MatchRegexpCall(expr, "regexp_fpga_ci", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kRegexpFpga;
    out->spec.pattern = pattern;
    out->spec.case_insensitive = true;
    out->spec.negated = negated;
    return true;
  }
  if (MatchRegexpCall(expr, "regexp_hybrid", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kHybrid;
    out->spec.pattern = pattern;
    out->spec.negated = negated;
    return true;
  }
  // REGEXP_AUTO: let the engine's cost model pick the strategy.
  if (MatchRegexpCall(expr, "regexp_auto", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kAuto;
    out->spec.pattern = pattern;
    out->spec.negated = negated;
    return true;
  }
  // CONTAINS(col, 'a & b & c') over the inverted index.
  if (MatchRegexpCall(expr, "contains", &column, &pattern)) {
    out->column = column;
    out->spec.op = StringFilterSpec::Op::kContains;
    out->spec.pattern = pattern;
    out->spec.negated = negated;
    return true;
  }

  // REGEXP_FPGA('pat', col) <> 0   (the paper's canonical form)
  const Expr* call = nullptr;
  int sign = MatchZeroComparison(expr, &call);
  if (sign != 0 && call != nullptr) {
    bool effective_negated = (sign < 0) != negated;
    FastStringPredicate tmp;
    if (MatchRegexpCall(*call, "regexp_fpga", &column, &pattern)) {
      tmp.spec.op = StringFilterSpec::Op::kRegexpFpga;
    } else if (MatchRegexpCall(*call, "regexp_fpga_ci", &column, &pattern)) {
      tmp.spec.op = StringFilterSpec::Op::kRegexpFpga;
      tmp.spec.case_insensitive = true;
    } else if (MatchRegexpCall(*call, "regexp_hybrid", &column, &pattern)) {
      tmp.spec.op = StringFilterSpec::Op::kHybrid;
    } else if (MatchRegexpCall(*call, "regexp_auto", &column, &pattern)) {
      tmp.spec.op = StringFilterSpec::Op::kAuto;
    } else if (MatchRegexpCall(*call, "regexp_like", &column, &pattern)) {
      tmp.spec.op = StringFilterSpec::Op::kRegexpLike;
    } else {
      return false;
    }
    out->column = column;
    out->spec.op = tmp.spec.op;
    out->spec.case_insensitive = tmp.spec.case_insensitive;
    out->spec.pattern = pattern;
    out->spec.negated = effective_negated;
    return true;
  }
  return false;
}

}  // namespace

bool RecognizeStringPredicate(const Expr& conjunct,
                              FastStringPredicate* out) {
  return RecognizeInner(conjunct, /*negated=*/false, out);
}

Result<PlannedFilter> PlanWhere(ExprPtr where) {
  PlannedFilter plan;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(std::move(where));
  std::vector<ExprPtr> residual;
  for (auto& conjunct : conjuncts) {
    FastStringPredicate fast;
    if (RecognizeStringPredicate(*conjunct, &fast)) {
      fast.original = std::move(conjunct);
      plan.fast.push_back(std::move(fast));
    } else {
      residual.push_back(std::move(conjunct));
    }
  }
  // Re-AND the residual conjuncts.
  for (auto& conjunct : residual) {
    if (plan.residual == nullptr) {
      plan.residual = std::move(conjunct);
    } else {
      plan.residual = Expr::Binary(BinOp::kAnd, std::move(plan.residual),
                                   std::move(conjunct));
    }
  }
  return plan;
}

}  // namespace sql
}  // namespace doppio
