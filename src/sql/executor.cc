#include "sql/executor.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "regex/backtrack_matcher.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/substring_search.h"
#include "regex/thompson_nfa.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace doppio {
namespace sql {

namespace {

// ---------------------------------------------------------------------------
// Relation abstraction

class Rel {
 public:
  virtual ~Rel() = default;
  virtual int64_t rows() const = 0;
  virtual int num_columns() const = 0;
  virtual const std::string& column_name(int col) const = 0;
  virtual int Find(const std::string& name) const = 0;
  virtual bool IsString(int col) const = 0;
  virtual bool IsNull(int col, int64_t row) const = 0;
  virtual int64_t GetInt(int col, int64_t row) const = 0;
  virtual std::string_view GetString(int col, int64_t row) const = 0;
  /// Base table when the relation is a direct scan (enables bulk string
  /// operators); nullptr otherwise.
  virtual const Table* base_table() const { return nullptr; }
};

class TableRel : public Rel {
 public:
  explicit TableRel(const Table* table) : table_(table) {}

  int64_t rows() const override { return table_->num_rows(); }
  int num_columns() const override { return table_->num_columns(); }
  const std::string& column_name(int col) const override {
    return table_->column_name(col);
  }
  int Find(const std::string& name) const override {
    return table_->ColumnIndex(name);
  }
  bool IsString(int col) const override {
    return table_->column(col)->type() == ValueType::kString;
  }
  bool IsNull(int, int64_t) const override { return false; }
  int64_t GetInt(int col, int64_t row) const override {
    const Bat* bat = table_->column(col);
    switch (bat->type()) {
      case ValueType::kInt32:
        return bat->GetInt32(row);
      case ValueType::kInt64:
        return bat->GetInt64(row);
      case ValueType::kInt16:
        return bat->GetInt16(row);
      default:
        return 0;
    }
  }
  std::string_view GetString(int col, int64_t row) const override {
    return table_->column(col)->GetString(row);
  }
  const Table* base_table() const override { return table_; }

 private:
  const Table* table_;
};

class ResultRel : public Rel {
 public:
  ResultRel(ResultSet data, std::vector<std::string> names)
      : data_(std::move(data)), names_(std::move(names)) {
    DOPPIO_CHECK(names_.size() == data_.columns.size());
  }

  int64_t rows() const override { return data_.num_rows(); }
  int num_columns() const override { return data_.num_columns(); }
  const std::string& column_name(int col) const override {
    return names_[static_cast<size_t>(col)];
  }
  int Find(const std::string& name) const override {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  bool IsString(int col) const override {
    return data_.columns[static_cast<size_t>(col)].is_string;
  }
  bool IsNull(int col, int64_t row) const override {
    return !data_.columns[static_cast<size_t>(col)].IsValid(row);
  }
  int64_t GetInt(int col, int64_t row) const override {
    return data_.columns[static_cast<size_t>(col)]
        .ints[static_cast<size_t>(row)];
  }
  std::string_view GetString(int col, int64_t row) const override {
    return data_.columns[static_cast<size_t>(col)]
        .strings[static_cast<size_t>(row)];
  }

 private:
  ResultSet data_;
  std::vector<std::string> names_;
};

/// Materialized (left outer / inner) join: row pairs into two child rels.
class JoinRel : public Rel {
 public:
  JoinRel(std::unique_ptr<Rel> left, std::unique_ptr<Rel> right,
          std::vector<int64_t> left_rows, std::vector<int64_t> right_rows)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_rows_(std::move(left_rows)),
        right_rows_(std::move(right_rows)) {}

  int64_t rows() const override {
    return static_cast<int64_t>(left_rows_.size());
  }
  int num_columns() const override {
    return left_->num_columns() + right_->num_columns();
  }
  const std::string& column_name(int col) const override {
    return col < left_->num_columns()
               ? left_->column_name(col)
               : right_->column_name(col - left_->num_columns());
  }
  int Find(const std::string& name) const override {
    int col = left_->Find(name);
    if (col >= 0) return col;
    col = right_->Find(name);
    return col < 0 ? -1 : col + left_->num_columns();
  }
  bool IsString(int col) const override {
    return col < left_->num_columns()
               ? left_->IsString(col)
               : right_->IsString(col - left_->num_columns());
  }
  bool IsNull(int col, int64_t row) const override {
    if (col < left_->num_columns()) {
      return left_->IsNull(col, left_rows_[static_cast<size_t>(row)]);
    }
    int64_t r = right_rows_[static_cast<size_t>(row)];
    if (r < 0) return true;  // outer-join null padding
    return right_->IsNull(col - left_->num_columns(), r);
  }
  int64_t GetInt(int col, int64_t row) const override {
    if (col < left_->num_columns()) {
      return left_->GetInt(col, left_rows_[static_cast<size_t>(row)]);
    }
    int64_t r = right_rows_[static_cast<size_t>(row)];
    return r < 0 ? 0 : right_->GetInt(col - left_->num_columns(), r);
  }
  std::string_view GetString(int col, int64_t row) const override {
    if (col < left_->num_columns()) {
      return left_->GetString(col, left_rows_[static_cast<size_t>(row)]);
    }
    int64_t r = right_rows_[static_cast<size_t>(row)];
    return r < 0 ? std::string_view()
                 : right_->GetString(col - left_->num_columns(), r);
  }

 private:
  std::unique_ptr<Rel> left_;
  std::unique_ptr<Rel> right_;
  std::vector<int64_t> left_rows_;
  std::vector<int64_t> right_rows_;  // -1 = unmatched (outer join)
};

// ---------------------------------------------------------------------------
// Generic expression evaluation over a Rel (residual predicates)

struct EvalContext {
  const Rel* rel = nullptr;
  // Matchers compiled once per query, keyed by the expression node.
  std::map<const Expr*, std::shared_ptr<StringMatcher>> matchers;
};

Status PrepareMatchers(const Expr& expr, EvalContext* ctx) {
  if (expr.kind == ExprKind::kLike) {
    DOPPIO_ASSIGN_OR_RETURN(LikeAnalysis like, TranslateLike(expr.str_value));
    std::shared_ptr<StringMatcher> matcher;
    if (like.is_multi_substring) {
      DOPPIO_ASSIGN_OR_RETURN(
          auto m, MultiSubstringMatcher::Create(like.substrings,
                                                expr.like_case_insensitive));
      matcher = std::move(m);
    } else {
      CompileOptions copts;
      copts.case_insensitive = expr.like_case_insensitive;
      copts.anchor_start = like.anchored_start;
      copts.anchor_end = like.anchored_end;
      DOPPIO_ASSIGN_OR_RETURN(Program program,
                              CompileProgram(*like.ast, copts));
      matcher = DfaMatcher::FromProgram(std::move(program));
    }
    ctx->matchers[&expr] = std::move(matcher);
  }
  if (expr.kind == ExprKind::kFunc && expr.name == "regexp_like" &&
      expr.args.size() == 2) {
    const Expr* pattern_arg = nullptr;
    for (const auto& a : expr.args) {
      if (a->kind == ExprKind::kStringLiteral) pattern_arg = a.get();
    }
    if (pattern_arg != nullptr) {
      DOPPIO_ASSIGN_OR_RETURN(
          auto m, BacktrackMatcher::Compile(pattern_arg->str_value));
      ctx->matchers[&expr] = std::move(m);
    }
  }
  for (const auto& a : expr.args) {
    DOPPIO_RETURN_NOT_OK(PrepareMatchers(*a, ctx));
  }
  return Status::OK();
}

struct CellValue {
  bool is_null = false;
  int64_t i = 0;
};

Result<CellValue> EvalInt(EvalContext& ctx, const Expr& expr, int64_t row);
Result<bool> EvalBool(EvalContext& ctx, const Expr& expr, int64_t row);

Result<CellValue> EvalInt(EvalContext& ctx, const Expr& expr, int64_t row) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return CellValue{false, expr.int_value};
    case ExprKind::kColumn: {
      int col = ctx.rel->Find(expr.name);
      if (col < 0) {
        return Status::InvalidArgument("unknown column '" + expr.name + "'");
      }
      if (ctx.rel->IsNull(col, row)) return CellValue{true, 0};
      return CellValue{false, ctx.rel->GetInt(col, row)};
    }
    default:
      return Status::NotImplemented("integer expression: " + expr.ToString());
  }
}

Result<bool> EvalBool(EvalContext& ctx, const Expr& expr, int64_t row) {
  switch (expr.kind) {
    case ExprKind::kBinary: {
      if (expr.op == BinOp::kAnd) {
        DOPPIO_ASSIGN_OR_RETURN(bool lhs, EvalBool(ctx, *expr.args[0], row));
        if (!lhs) return false;
        return EvalBool(ctx, *expr.args[1], row);
      }
      if (expr.op == BinOp::kOr) {
        DOPPIO_ASSIGN_OR_RETURN(bool lhs, EvalBool(ctx, *expr.args[0], row));
        if (lhs) return true;
        return EvalBool(ctx, *expr.args[1], row);
      }
      DOPPIO_ASSIGN_OR_RETURN(CellValue a, EvalInt(ctx, *expr.args[0], row));
      DOPPIO_ASSIGN_OR_RETURN(CellValue b, EvalInt(ctx, *expr.args[1], row));
      if (a.is_null || b.is_null) return false;  // SQL: NULL comparisons
      switch (expr.op) {
        case BinOp::kEq:
          return a.i == b.i;
        case BinOp::kNe:
          return a.i != b.i;
        case BinOp::kLt:
          return a.i < b.i;
        case BinOp::kLe:
          return a.i <= b.i;
        case BinOp::kGt:
          return a.i > b.i;
        case BinOp::kGe:
          return a.i >= b.i;
        default:
          return Status::Internal("bad comparison");
      }
    }
    case ExprKind::kNot: {
      DOPPIO_ASSIGN_OR_RETURN(bool inner, EvalBool(ctx, *expr.args[0], row));
      return !inner;
    }
    case ExprKind::kLike: {
      if (expr.args[0]->kind != ExprKind::kColumn) {
        return Status::NotImplemented("LIKE over non-column expression");
      }
      int col = ctx.rel->Find(expr.args[0]->name);
      if (col < 0 || !ctx.rel->IsString(col)) {
        return Status::InvalidArgument("LIKE over missing/non-string column");
      }
      if (ctx.rel->IsNull(col, row)) return false;
      auto it = ctx.matchers.find(&expr);
      if (it == ctx.matchers.end()) {
        return Status::Internal("matcher not prepared for LIKE");
      }
      bool m = it->second->Matches(ctx.rel->GetString(col, row));
      return m != expr.like_negated;
    }
    case ExprKind::kFunc: {
      if (expr.name == "regexp_like" && expr.args.size() == 2) {
        const Expr* col_arg = nullptr;
        for (const auto& a : expr.args) {
          if (a->kind == ExprKind::kColumn) col_arg = a.get();
        }
        if (col_arg == nullptr) {
          return Status::NotImplemented("regexp_like without column arg");
        }
        int col = ctx.rel->Find(col_arg->name);
        if (col < 0 || !ctx.rel->IsString(col)) {
          return Status::InvalidArgument("regexp_like over missing column");
        }
        if (ctx.rel->IsNull(col, row)) return false;
        auto it = ctx.matchers.find(&expr);
        if (it == ctx.matchers.end()) {
          return Status::Internal("matcher not prepared for regexp_like");
        }
        return it->second->Matches(ctx.rel->GetString(col, row));
      }
      return Status::NotImplemented("function '" + expr.name +
                                    "' in predicate");
    }
    default:
      return Status::NotImplemented("boolean expression: " + expr.ToString());
  }
}

// ---------------------------------------------------------------------------
// Selection

/// Applies a planned filter over a relation; returns the selected row ids.
Result<std::vector<int64_t>> ComputeSelection(ColumnStoreEngine* engine,
                                              const Rel& rel,
                                              PlannedFilter filter,
                                              QueryStats* stats) {
  const int64_t n = rel.rows();
  std::vector<uint8_t> keep(static_cast<size_t>(n), 1);
  ExprPtr residual = std::move(filter.residual);

  for (auto& fast : filter.fast) {
    const Table* base = rel.base_table();
    const Bat* column =
        base != nullptr ? base->GetColumn(fast.column) : nullptr;
    if (column == nullptr || column->type() != ValueType::kString) {
      // Demote to residual evaluation (e.g. predicate over derived table).
      if (residual == nullptr) {
        residual = std::move(fast.original);
      } else {
        residual = Expr::Binary(BinOp::kAnd, std::move(residual),
                                std::move(fast.original));
      }
      continue;
    }
    DOPPIO_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bits,
        engine->EvalStringFilter(*column, fast.spec, stats));
    for (int64_t i = 0; i < n; ++i) {
      keep[static_cast<size_t>(i)] &= bits[static_cast<size_t>(i)];
    }
  }

  if (residual != nullptr) {
    EvalContext ctx;
    ctx.rel = &rel;
    DOPPIO_RETURN_NOT_OK(PrepareMatchers(*residual, &ctx));
    for (int64_t i = 0; i < n; ++i) {
      if (keep[static_cast<size_t>(i)] == 0) continue;
      DOPPIO_ASSIGN_OR_RETURN(bool ok, EvalBool(ctx, *residual, i));
      keep[static_cast<size_t>(i)] = ok ? 1 : 0;
    }
  }

  std::vector<int64_t> selection;
  for (int64_t i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)] != 0) selection.push_back(i);
  }
  return selection;
}

// ---------------------------------------------------------------------------
// Aggregation / projection

struct AggSpec {
  enum class Kind { kNone, kCountStar, kCount, kSum, kMin, kMax };
  Kind kind = Kind::kNone;
  int col = -1;          // input column (kNone: projected column)
  std::string out_name;
};

Result<std::vector<AggSpec>> ResolveItems(
    const SelectStmt& stmt, const Rel& rel,
    const std::vector<int>& group_cols) {
  std::vector<AggSpec> specs;
  for (const auto& item : stmt.items) {
    AggSpec spec;
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kColumn) {
      int col = rel.Find(e.name);
      if (col < 0) {
        return Status::InvalidArgument("unknown column '" + e.name + "'");
      }
      if (!stmt.group_by.empty() &&
          std::find(group_cols.begin(), group_cols.end(), col) ==
              group_cols.end()) {
        return Status::InvalidArgument("column '" + e.name +
                                       "' is not in GROUP BY");
      }
      spec.kind = AggSpec::Kind::kNone;
      spec.col = col;
      spec.out_name = item.alias.empty() ? e.name : item.alias;
    } else if (e.kind == ExprKind::kFunc) {
      const std::string& fn = e.name;
      if (fn == "count" && e.args.size() == 1 &&
          e.args[0]->kind == ExprKind::kStar) {
        spec.kind = AggSpec::Kind::kCountStar;
      } else if ((fn == "count" || fn == "sum" || fn == "min" ||
                  fn == "max") &&
                 e.args.size() == 1 &&
                 e.args[0]->kind == ExprKind::kColumn) {
        int col = rel.Find(e.args[0]->name);
        if (col < 0) {
          return Status::InvalidArgument("unknown column '" +
                                         e.args[0]->name + "'");
        }
        spec.col = col;
        if (fn == "count") spec.kind = AggSpec::Kind::kCount;
        if (fn == "sum") spec.kind = AggSpec::Kind::kSum;
        if (fn == "min") spec.kind = AggSpec::Kind::kMin;
        if (fn == "max") spec.kind = AggSpec::Kind::kMax;
      } else {
        return Status::NotImplemented("select expression: " + e.ToString());
      }
      spec.out_name = item.alias.empty() ? e.ToString() : item.alias;
    } else {
      return Status::NotImplemented("select expression: " + e.ToString());
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

// Encodes a group key (raw bytes, type-tagged per column).
void EncodeKey(const Rel& rel, const std::vector<int>& group_cols,
               int64_t row, std::string* out) {
  out->clear();
  for (int col : group_cols) {
    if (rel.IsNull(col, row)) {
      out->push_back('\2');
      continue;
    }
    if (rel.IsString(col)) {
      out->push_back('\1');
      std::string_view s = rel.GetString(col, row);
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s.data(), s.size());
    } else {
      out->push_back('\0');
      int64_t v = rel.GetInt(col, row);
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
}

struct GroupState {
  // Representative row for key columns.
  int64_t any_row = 0;
  std::vector<int64_t> accum;  // one per agg spec
  std::vector<uint8_t> seen;   // for min/max initialization
  int64_t first_index;         // insertion order
};

Result<ResultSet> AggregateOrProject(const SelectStmt& stmt, const Rel& rel,
                                     const std::vector<int64_t>& selection) {
  // Resolve grouping columns.
  std::vector<int> group_cols;
  for (const auto& name : stmt.group_by) {
    int col = rel.Find(name);
    if (col < 0) {
      return Status::InvalidArgument("unknown GROUP BY column '" + name +
                                     "'");
    }
    group_cols.push_back(col);
  }
  DOPPIO_ASSIGN_OR_RETURN(std::vector<AggSpec> specs,
                          ResolveItems(stmt, rel, group_cols));

  const bool has_aggregate =
      std::any_of(specs.begin(), specs.end(), [](const AggSpec& s) {
        return s.kind != AggSpec::Kind::kNone;
      });

  ResultSet out;
  for (const AggSpec& spec : specs) {
    OwnedColumn col;
    col.name = spec.out_name;
    col.is_string = spec.kind == AggSpec::Kind::kNone && spec.col >= 0 &&
                    rel.IsString(spec.col);
    out.columns.push_back(std::move(col));
  }

  if (!has_aggregate && stmt.group_by.empty()) {
    // Plain projection.
    for (int64_t row : selection) {
      for (size_t c = 0; c < specs.size(); ++c) {
        OwnedColumn& col = out.columns[c];
        if (col.is_string) {
          col.strings.emplace_back(rel.GetString(specs[c].col, row));
        } else {
          col.ints.push_back(rel.GetInt(specs[c].col, row));
        }
      }
    }
    return out;
  }

  // Hash aggregation (one implicit group when GROUP BY is absent).
  std::unordered_map<std::string, GroupState> groups;
  std::string key;
  for (int64_t row : selection) {
    EncodeKey(rel, group_cols, row, &key);
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& g = it->second;
    if (inserted) {
      g.any_row = row;
      g.accum.assign(specs.size(), 0);
      g.seen.assign(specs.size(), 0);
      g.first_index = static_cast<int64_t>(groups.size());
    }
    for (size_t c = 0; c < specs.size(); ++c) {
      const AggSpec& spec = specs[c];
      switch (spec.kind) {
        case AggSpec::Kind::kNone:
          break;
        case AggSpec::Kind::kCountStar:
          ++g.accum[c];
          break;
        case AggSpec::Kind::kCount:
          if (!rel.IsNull(spec.col, row)) ++g.accum[c];
          break;
        case AggSpec::Kind::kSum:
          if (!rel.IsNull(spec.col, row)) {
            g.accum[c] += rel.GetInt(spec.col, row);
          }
          break;
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax:
          if (!rel.IsNull(spec.col, row)) {
            int64_t v = rel.GetInt(spec.col, row);
            if (g.seen[c] == 0) {
              g.accum[c] = v;
              g.seen[c] = 1;
            } else if (spec.kind == AggSpec::Kind::kMin) {
              g.accum[c] = std::min(g.accum[c], v);
            } else {
              g.accum[c] = std::max(g.accum[c], v);
            }
          }
          break;
      }
    }
  }

  if (groups.empty() && stmt.group_by.empty()) {
    // Aggregates over an empty input still yield one row (count = 0).
    for (size_t c = 0; c < specs.size(); ++c) {
      out.columns[c].ints.push_back(0);
    }
    return out;
  }

  // Emit groups in first-seen order (deterministic output).
  std::vector<const std::pair<const std::string, GroupState>*> ordered;
  ordered.reserve(groups.size());
  for (const auto& entry : groups) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.first_index < b->second.first_index;
            });

  for (const auto* entry : ordered) {
    const GroupState& g = entry->second;
    for (size_t c = 0; c < specs.size(); ++c) {
      const AggSpec& spec = specs[c];
      OwnedColumn& col = out.columns[c];
      if (spec.kind == AggSpec::Kind::kNone) {
        if (col.is_string) {
          col.strings.emplace_back(rel.GetString(spec.col, g.any_row));
        } else {
          col.ints.push_back(rel.GetInt(spec.col, g.any_row));
        }
      } else {
        col.ints.push_back(g.accum[c]);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sort / limit

Status SortAndLimit(const SelectStmt& stmt, ResultSet* result) {
  if (!stmt.order_by.empty()) {
    std::vector<int> sort_cols;
    for (const auto& item : stmt.order_by) {
      const OwnedColumn* col = result->Find(item.column);
      if (col == nullptr) {
        return Status::InvalidArgument("unknown ORDER BY column '" +
                                       item.column + "'");
      }
      sort_cols.push_back(
          static_cast<int>(col - result->columns.data()));
    }
    std::vector<int64_t> perm(static_cast<size_t>(result->num_rows()));
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int64_t>(i);
    std::stable_sort(perm.begin(), perm.end(), [&](int64_t a, int64_t b) {
      for (size_t k = 0; k < sort_cols.size(); ++k) {
        const OwnedColumn& col =
            result->columns[static_cast<size_t>(sort_cols[k])];
        int cmp;
        if (col.is_string) {
          cmp = col.strings[static_cast<size_t>(a)].compare(
              col.strings[static_cast<size_t>(b)]);
        } else {
          int64_t va = col.ints[static_cast<size_t>(a)];
          int64_t vb = col.ints[static_cast<size_t>(b)];
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
        }
        if (stmt.order_by[k].descending) cmp = -cmp;
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    for (OwnedColumn& col : result->columns) {
      if (col.is_string) {
        std::vector<std::string> sorted(col.strings.size());
        for (size_t i = 0; i < perm.size(); ++i) {
          sorted[i] = std::move(col.strings[static_cast<size_t>(perm[i])]);
        }
        col.strings = std::move(sorted);
      } else {
        std::vector<int64_t> sorted(col.ints.size());
        for (size_t i = 0; i < perm.size(); ++i) {
          sorted[i] = col.ints[static_cast<size_t>(perm[i])];
        }
        col.ints = std::move(sorted);
      }
    }
  }
  if (stmt.limit >= 0 && result->num_rows() > stmt.limit) {
    for (OwnedColumn& col : result->columns) {
      if (col.is_string) {
        col.strings.resize(static_cast<size_t>(stmt.limit));
      } else {
        col.ints.resize(static_cast<size_t>(stmt.limit));
      }
      if (!col.valid.empty()) {
        col.valid.resize(static_cast<size_t>(stmt.limit));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FROM / JOIN resolution

Result<QueryOutcome> ExecuteStmtInternal(ColumnStoreEngine* engine,
                                         const SelectStmt& stmt);

Result<std::unique_ptr<Rel>> ResolveTableRef(ColumnStoreEngine* engine,
                                             const TableRef& ref,
                                             QueryStats* stats) {
  if (ref.subquery != nullptr) {
    DOPPIO_ASSIGN_OR_RETURN(QueryOutcome sub,
                            ExecuteStmtInternal(engine, *ref.subquery));
    stats->Accumulate(sub.stats);
    std::vector<std::string> names;
    for (size_t c = 0; c < sub.result.columns.size(); ++c) {
      if (c < ref.column_aliases.size()) {
        names.push_back(ref.column_aliases[c]);
      } else {
        names.push_back(sub.result.columns[c].name);
      }
    }
    return std::unique_ptr<Rel>(
        new ResultRel(std::move(sub.result), std::move(names)));
  }
  const Table* table = engine->catalog()->GetTable(ref.table_name);
  if (table == nullptr) {
    return Status::NotFound("no table '" + ref.table_name + "'");
  }
  return std::unique_ptr<Rel>(new TableRel(table));
}

/// Plans and executes one join clause against `left`.
Result<std::unique_ptr<Rel>> ExecuteJoin(ColumnStoreEngine* engine,
                                         std::unique_ptr<Rel> left,
                                         const JoinClause& join,
                                         QueryStats* stats) {
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<Rel> right,
                          ResolveTableRef(engine, join.right, stats));

  // Decompose the ON clause: one left=right equality plus predicates that
  // reference only the right side (pushed below the join — legal for
  // LEFT OUTER because a right row failing them can never match).
  ExprPtr on = join.on == nullptr ? nullptr : join.on->Clone();
  std::vector<ExprPtr> conjuncts = SplitConjuncts(std::move(on));

  int left_key = -1;
  int right_key = -1;
  std::vector<ExprPtr> right_filters;
  for (auto& conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary &&
        conjunct->op == BinOp::kEq &&
        conjunct->args[0]->kind == ExprKind::kColumn &&
        conjunct->args[1]->kind == ExprKind::kColumn) {
      const std::string& a = conjunct->args[0]->name;
      const std::string& b = conjunct->args[1]->name;
      int la = left->Find(a);
      int rb = right->Find(b);
      if (la >= 0 && rb >= 0) {
        left_key = la;
        right_key = rb;
        continue;
      }
      int lb = left->Find(b);
      int ra = right->Find(a);
      if (lb >= 0 && ra >= 0) {
        left_key = lb;
        right_key = ra;
        continue;
      }
      return Status::InvalidArgument("cannot resolve join keys: " +
                                     conjunct->ToString());
    }
    // Non-equality conjunct: must reference only right-side columns.
    std::vector<std::string> cols;
    conjunct->CollectColumns(&cols);
    for (const auto& c : cols) {
      if (right->Find(c) < 0) {
        return Status::NotImplemented(
            "ON predicate referencing the left side: " +
            conjunct->ToString());
      }
    }
    right_filters.push_back(std::move(conjunct));
  }
  if (left_key < 0) {
    return Status::NotImplemented("join without equality condition");
  }

  // Filter the right side.
  ExprPtr right_where;
  for (auto& f : right_filters) {
    right_where = right_where == nullptr
                      ? std::move(f)
                      : Expr::Binary(BinOp::kAnd, std::move(right_where),
                                     std::move(f));
  }
  DOPPIO_ASSIGN_OR_RETURN(PlannedFilter filter,
                          PlanWhere(std::move(right_where)));
  DOPPIO_ASSIGN_OR_RETURN(
      std::vector<int64_t> right_sel,
      ComputeSelection(engine, *right, std::move(filter), stats));

  // Build hash table on the right key.
  std::unordered_map<int64_t, std::vector<int64_t>> hash;
  hash.reserve(right_sel.size());
  for (int64_t r : right_sel) {
    if (right->IsNull(right_key, r)) continue;
    hash[right->GetInt(right_key, r)].push_back(r);
  }

  // Probe with the left side.
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  const bool outer = join.type == JoinType::kLeftOuter;
  for (int64_t l = 0; l < left->rows(); ++l) {
    auto it = left->IsNull(left_key, l)
                  ? hash.end()
                  : hash.find(left->GetInt(left_key, l));
    if (it == hash.end() || it->second.empty()) {
      if (outer) {
        left_rows.push_back(l);
        right_rows.push_back(-1);
      }
      continue;
    }
    for (int64_t r : it->second) {
      left_rows.push_back(l);
      right_rows.push_back(r);
    }
  }
  return std::unique_ptr<Rel>(new JoinRel(std::move(left), std::move(right),
                                          std::move(left_rows),
                                          std::move(right_rows)));
}

Result<QueryOutcome> ExecuteStmtInternal(ColumnStoreEngine* engine,
                                         const SelectStmt& stmt) {
  QueryOutcome outcome;
  // Every query starts from zeroed stats. QueryStats instances travel
  // through accumulating APIs (EvalStringFilter, CountWhere) that `+=`
  // into them; without this reset a caller-reused outcome would carry the
  // previous query's retry/fault/fallback counters and kernel fields over.
  outcome.stats.Reset();
  Stopwatch db_watch;

  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<Rel> rel,
                          ResolveTableRef(engine, stmt.from, &outcome.stats));
  for (const JoinClause& join : stmt.joins) {
    DOPPIO_ASSIGN_OR_RETURN(
        rel, ExecuteJoin(engine, std::move(rel), join, &outcome.stats));
  }

  ExprPtr where = stmt.where == nullptr ? nullptr : stmt.where->Clone();
  DOPPIO_ASSIGN_OR_RETURN(PlannedFilter filter, PlanWhere(std::move(where)));
  DOPPIO_ASSIGN_OR_RETURN(
      std::vector<int64_t> selection,
      ComputeSelection(engine, *rel, std::move(filter), &outcome.stats));

  DOPPIO_ASSIGN_OR_RETURN(outcome.result,
                          AggregateOrProject(stmt, *rel, selection));
  DOPPIO_RETURN_NOT_OK(SortAndLimit(stmt, &outcome.result));

  // Accounting: EvalStringFilter charged its own phases (software filters
  // into database_seconds, FPGA phases into udf/config/hal/hw). Everything
  // else this function did is database time; subtract the already-charged
  // wall portions so phases sum to the end-to-end wall time (with hw
  // counted as virtual time).
  double wall = db_watch.ElapsedSeconds();
  double charged = outcome.stats.database_seconds +
                   outcome.stats.udf_software_seconds +
                   outcome.stats.config_gen_seconds +
                   outcome.stats.hal_seconds +
                   outcome.stats.sim_host_seconds;
  double remainder = wall - charged;
  if (remainder > 0) outcome.stats.database_seconds += remainder;
  return outcome;
}

}  // namespace

Result<QueryOutcome> ExecuteStatement(ColumnStoreEngine* engine,
                                      const SelectStmt& stmt) {
  return ExecuteStmtInternal(engine, stmt);
}

Result<QueryOutcome> ExecuteQuery(ColumnStoreEngine* engine,
                                  std::string_view sql_text) {
  DOPPIO_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql_text));
  return ExecuteStatement(engine, stmt);
}

// ---------------------------------------------------------------------------
// EXPLAIN

namespace {

const char* FilterOpName(StringFilterSpec::Op op) {
  switch (op) {
    case StringFilterSpec::Op::kLike:
      return "like-scan";
    case StringFilterSpec::Op::kRegexpLike:
      return "scalar-regex";
    case StringFilterSpec::Op::kRegexpFpga:
      return "fpga-hudf";
    case StringFilterSpec::Op::kHybrid:
      return "hybrid-hudf";
    case StringFilterSpec::Op::kContains:
      return "inverted-index";
    case StringFilterSpec::Op::kAuto:
      return "cost-model-auto";
  }
  return "?";
}

void ExplainFilter(ExprPtr where, const std::string& pad,
                   std::string* out) {
  auto plan = PlanWhere(std::move(where));
  if (!plan.ok()) {
    *out += pad + "filter: <" + plan.status().ToString() + ">\n";
    return;
  }
  for (const auto& fast : plan->fast) {
    *out += pad + "filter [" + FilterOpName(fast.spec.op) + "] " +
            fast.column + (fast.spec.negated ? " !~ '" : " ~ '") +
            fast.spec.pattern + "'" +
            (fast.spec.case_insensitive ? " (case-insensitive)" : "") +
            "\n";
  }
  if (plan->residual != nullptr) {
    *out += pad + "filter [row-predicate] " + plan->residual->ToString() +
            "\n";
  }
}

Result<std::string> ExplainStmt(ColumnStoreEngine* engine,
                                const SelectStmt& stmt, int depth) {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  std::string out;

  // Select list.
  out += pad + "select ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.items[i].expr->ToString();
    if (!stmt.items[i].alias.empty()) out += " as " + stmt.items[i].alias;
  }
  out += "\n";

  // FROM.
  if (stmt.from.subquery != nullptr) {
    out += pad + "from derived table '" + stmt.from.alias + "':\n";
    DOPPIO_ASSIGN_OR_RETURN(
        std::string sub, ExplainStmt(engine, *stmt.from.subquery, depth + 1));
    out += sub;
  } else {
    Table* table = engine->catalog()->GetTable(stmt.from.table_name);
    out += pad + "from " + stmt.from.table_name;
    if (table != nullptr) {
      out += " (" + std::to_string(table->num_rows()) + " rows)";
    } else {
      out += " (NOT FOUND)";
    }
    out += "\n";
  }

  // Joins.
  for (const JoinClause& join : stmt.joins) {
    out += pad +
           (join.type == JoinType::kLeftOuter ? "left outer join "
                                              : "inner join ") +
           join.right.table_name;
    Table* right = engine->catalog()->GetTable(join.right.table_name);
    if (right != nullptr) {
      out += " (" + std::to_string(right->num_rows()) + " rows)";
    }
    out += "\n";
    if (join.on != nullptr) {
      auto conjuncts = SplitConjuncts(join.on->Clone());
      ExprPtr pushed;
      for (auto& c : conjuncts) {
        if (c->kind == ExprKind::kBinary && c->op == BinOp::kEq &&
            c->args[0]->kind == ExprKind::kColumn &&
            c->args[1]->kind == ExprKind::kColumn) {
          out += pad + "  hash-join key: " + c->ToString() + "\n";
        } else {
          pushed = pushed == nullptr
                       ? std::move(c)
                       : Expr::Binary(BinOp::kAnd, std::move(pushed),
                                      std::move(c));
        }
      }
      if (pushed != nullptr) {
        out += pad + "  pushed below join:\n";
        ExplainFilter(std::move(pushed), pad + "    ", &out);
      }
    }
  }

  // WHERE.
  if (stmt.where != nullptr) {
    ExplainFilter(stmt.where->Clone(), pad, &out);
  }

  // Group / order / limit.
  if (!stmt.group_by.empty()) {
    out += pad + "hash-aggregate by ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      out += (i > 0 ? ", " : "") + stmt.group_by[i];
    }
    out += "\n";
  }
  if (!stmt.order_by.empty()) {
    out += pad + "sort by ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      out += (i > 0 ? ", " : "") + stmt.order_by[i].column +
             (stmt.order_by[i].descending ? " desc" : " asc");
    }
    out += "\n";
  }
  if (stmt.limit >= 0) {
    out += pad + "limit " + std::to_string(stmt.limit) + "\n";
  }
  return out;
}

}  // namespace

Result<std::string> ExplainQuery(ColumnStoreEngine* engine,
                                 std::string_view sql_text) {
  DOPPIO_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql_text));
  return ExplainStmt(engine, stmt, 0);
}

}  // namespace sql
}  // namespace doppio
