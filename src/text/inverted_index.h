// Inverted index backing the CONTAINS operator (paper Table 1, §7.2).
//
// CONTAINS('Alan & Turing & Cheshire') is an AND over posting lists of a
// pre-built word index. The index is fast to query but must be built ahead
// of time and rebuilt to stay fresh — the paper reports > 20 minutes to
// rebuild for 2.5M tuples on DBx — which is why the FPGA operator targets
// ad-hoc, index-free queries instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"

namespace doppio {

class InvertedIndex {
 public:
  /// Builds the index over a string column. `rebuild_cost_per_row_ns`
  /// models the paper's expensive rebuild (spent as bookkeeping, reported
  /// via build_seconds, not slept).
  static Result<std::unique_ptr<InvertedIndex>> Build(const Bat& strings);

  /// Rows whose string contains every word of `query`. Query syntax is the
  /// CONTAINS conjunction: words separated by '&' (e.g. "Alan & Turing").
  Result<std::vector<int64_t>> Search(std::string_view query) const;

  /// Number of matching rows (the count(*) fast path).
  Result<int64_t> Count(std::string_view query) const;

  int64_t num_terms() const { return static_cast<int64_t>(postings_.size()); }
  int64_t num_rows() const { return num_rows_; }
  /// Approximate index memory footprint (postings + term strings).
  int64_t memory_bytes() const;

  /// True once the base column has grown past the indexed row count —
  /// the "stale index" problem of §1.
  bool IsStaleFor(const Bat& strings) const {
    return strings.count() != num_rows_;
  }

 private:
  InvertedIndex() = default;

  std::map<std::string, std::vector<int64_t>> postings_;
  int64_t num_rows_ = 0;
};

}  // namespace doppio
