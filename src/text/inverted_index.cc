#include "text/inverted_index.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace doppio {

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::Build(
    const Bat& strings) {
  if (strings.type() != ValueType::kString) {
    return Status::InvalidArgument("inverted index requires a string column");
  }
  auto index = std::unique_ptr<InvertedIndex>(new InvertedIndex());
  index->num_rows_ = strings.count();
  for (int64_t row = 0; row < strings.count(); ++row) {
    std::vector<std::string> words = TokenizeWords(strings.GetString(row));
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (auto& word : words) {
      index->postings_[std::move(word)].push_back(row);
    }
  }
  return index;
}

namespace {

// Parses "a & b & c" into its conjunct terms.
std::vector<std::string> ParseConjunction(std::string_view query) {
  std::vector<std::string> terms;
  std::string current;
  auto flush = [&]() {
    std::vector<std::string> words = TokenizeWords(current);
    // A quoted multi-word conjunct degrades to all its words (AND).
    for (auto& w : words) terms.push_back(std::move(w));
    current.clear();
  };
  for (char c : query) {
    if (c == '&') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return terms;
}

}  // namespace

Result<std::vector<int64_t>> InvertedIndex::Search(
    std::string_view query) const {
  std::vector<std::string> terms = ParseConjunction(query);
  if (terms.empty()) {
    return Status::InvalidArgument("CONTAINS query has no terms");
  }
  // Gather posting lists; a missing term means an empty result.
  std::vector<const std::vector<int64_t>*> lists;
  lists.reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) return std::vector<int64_t>{};
    lists.push_back(&it->second);
  }
  // Intersect smallest-first.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<int64_t> result = *lists[0];
  std::vector<int64_t> tmp;
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    tmp.clear();
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(tmp));
    result.swap(tmp);
  }
  return result;
}

Result<int64_t> InvertedIndex::Count(std::string_view query) const {
  DOPPIO_ASSIGN_OR_RETURN(std::vector<int64_t> rows, Search(query));
  return static_cast<int64_t>(rows.size());
}

int64_t InvertedIndex::memory_bytes() const {
  int64_t bytes = 0;
  for (const auto& [term, rows] : postings_) {
    bytes += static_cast<int64_t>(term.size()) + 32;  // node overhead
    bytes += static_cast<int64_t>(rows.size() * sizeof(int64_t));
  }
  return bytes;
}

}  // namespace doppio
