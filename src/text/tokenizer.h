// Word tokenizer feeding the inverted index behind CONTAINS.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace doppio {

/// Splits `text` into lowercase alphanumeric words. Everything that is not
/// [A-Za-z0-9] separates words; words shorter than `min_length` are
/// dropped (classic full-text behaviour).
std::vector<std::string> TokenizeWords(std::string_view text,
                                       size_t min_length = 1);

/// Lowercases ASCII in place.
std::string ToLowerAscii(std::string_view text);

}  // namespace doppio
