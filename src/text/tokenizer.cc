#include "text/tokenizer.h"

#include <cctype>

namespace doppio {

std::string ToLowerAscii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text,
                                       size_t min_length) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= min_length) words.push_back(current);
    current.clear();
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  return words;
}

}  // namespace doppio
