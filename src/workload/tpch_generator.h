// TPC-H customer/orders generator for Query 13 (paper §7.7).
//
// Scale factor 0.1 (the paper's choice, limited by the pinned shared
// memory): 15 000 customers, 150 000 orders. As in real TPC-H, one third
// of the customers place no orders, and a small fraction of order comments
// contains the "special ... requests" phrase that Q13's NOT LIKE prunes.
// A further fraction carries case-variants ("Special ... Requests") so
// ILIKE and LIKE genuinely differ (Fig. 12).
#pragma once

#include <cstdint>
#include <memory>

#include "bat/buffer.h"
#include "bat/table.h"
#include "common/status.h"

namespace doppio {

struct TpchOptions {
  double scale_factor = 0.1;
  uint64_t seed = 7;
  /// Fraction of comments with the exact "special...requests" phrase.
  double special_fraction = 0.01;
  /// Fraction with a case-variant of the phrase (hit only by ILIKE).
  double special_case_variant_fraction = 0.01;

  int64_t num_customers() const {
    return static_cast<int64_t>(scale_factor * 150'000);
  }
  int64_t num_orders() const {
    return static_cast<int64_t>(scale_factor * 1'500'000);
  }
};

/// `customer(c_custkey INT, c_name VARCHAR)`.
Result<std::unique_ptr<Table>> GenerateCustomerTable(
    const TpchOptions& options,
    BufferAllocator* allocator = MallocAllocator::Default());

/// `orders(o_orderkey INT, o_custkey INT, o_comment VARCHAR)`.
Result<std::unique_ptr<Table>> GenerateOrdersTable(
    const TpchOptions& options,
    BufferAllocator* allocator = MallocAllocator::Default());

/// The TPC-H Q13 text, with LIKE or ILIKE in the anti-join predicate.
std::string TpchQ13Sql(bool case_insensitive);

}  // namespace doppio
