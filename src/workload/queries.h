// The paper's evaluation queries Q1-Q4 and the hybrid query QH (Fig. 7,
// §7.8), with helpers to render them against any execution strategy.
#pragma once

#include <string>

namespace doppio {

enum class EvalQuery { kQ1, kQ2, kQ3, kQ4, kQH };

/// How the string predicate is executed.
enum class QueryEngineVariant {
  kMonetSoftware,  // LIKE for Q1, REGEXP_LIKE for Q2-Q4 (paper's MonetDB)
  kFpga,           // REGEXP_FPGA(...) <> 0 for all queries
  kHybrid,         // REGEXP_HYBRID(...) <> 0 (auto split / fallback)
};

/// The regex-dialect pattern of a query (what the FPGA executes).
std::string QueryPattern(EvalQuery query);

/// The LIKE pattern for Q1 (Q1 is a substring query).
std::string Q1LikePattern();

/// Full SELECT count(*) statement against `table`.`column`.
std::string QuerySql(EvalQuery query, QueryEngineVariant variant,
                     const std::string& table = "address_table",
                     const std::string& column = "address_string");

const char* QueryName(EvalQuery query);

}  // namespace doppio
