#include "workload/queries.h"

#include "common/logging.h"

namespace doppio {

std::string QueryPattern(EvalQuery query) {
  switch (query) {
    case EvalQuery::kQ1:
      return "Strasse";
    case EvalQuery::kQ2:
      return R"((Strasse|Str\.).*(8[0-9]{4}))";
    case EvalQuery::kQ3:
      return "[0-9]+(USD|EUR|GBP)";
    case EvalQuery::kQ4:
      return R"([A-Za-z]{3}\:[0-9]{4})";
    case EvalQuery::kQH:
      return R"((Strasse|Str\.).*(8[0-9]{4}).*delivery)";
  }
  return "";
}

std::string Q1LikePattern() { return "%Strasse%"; }

const char* QueryName(EvalQuery query) {
  switch (query) {
    case EvalQuery::kQ1:
      return "Q1";
    case EvalQuery::kQ2:
      return "Q2";
    case EvalQuery::kQ3:
      return "Q3";
    case EvalQuery::kQ4:
      return "Q4";
    case EvalQuery::kQH:
      return "QH";
  }
  return "?";
}

std::string QuerySql(EvalQuery query, QueryEngineVariant variant,
                     const std::string& table, const std::string& column) {
  std::string where;
  switch (variant) {
    case QueryEngineVariant::kMonetSoftware:
      if (query == EvalQuery::kQ1) {
        // Q1 uses the cheaper LIKE operator in software (paper §7.2).
        where = column + " LIKE '" + Q1LikePattern() + "'";
      } else {
        where = "REGEXP_LIKE(" + column + ", '" + QueryPattern(query) + "')";
      }
      break;
    case QueryEngineVariant::kFpga:
      where = "REGEXP_FPGA('" + QueryPattern(query) + "', " + column +
              ") <> 0";
      break;
    case QueryEngineVariant::kHybrid:
      where = "REGEXP_HYBRID('" + QueryPattern(query) + "', " + column +
              ") <> 0";
      break;
  }
  return "SELECT count(*) FROM " + table + " WHERE " + where + ";";
}

}  // namespace doppio
