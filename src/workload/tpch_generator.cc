#include "workload/tpch_generator.h"

#include <array>

#include "common/random.h"

namespace doppio {

namespace {

constexpr std::array<const char*, 24> kCommentWords = {
    "carefully", "furiously", "quickly",  "slyly",    "blithely",
    "deposits",  "accounts",  "packages", "theodolites", "pinto",
    "beans",     "foxes",     "ideas",    "platelets", "instructions",
    "asymptotes", "dependencies", "waters", "sauternes", "warhorses",
    "sleep",     "nag",       "haggle",   "bold",
};

std::string RandomComment(Rng* rng, int kind) {
  // kind: 0 plain, 1 "special ... requests", 2 case-variant.
  std::string out;
  int words = 5 + static_cast<int>(rng->NextBounded(5));
  int special_pos = kind != 0 ? 1 + static_cast<int>(rng->NextBounded(2)) : -1;
  for (int w = 0; w < words; ++w) {
    if (!out.empty()) out += " ";
    if (w == special_pos) {
      out += (kind == 2) ? "Special" : "special";
      out += " ";
      out += kCommentWords[rng->NextBounded(kCommentWords.size())];
      out += " ";
      out += (kind == 2) ? "Requests" : "requests";
      continue;
    }
    out += kCommentWords[rng->NextBounded(kCommentWords.size())];
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<Table>> GenerateCustomerTable(
    const TpchOptions& options, BufferAllocator* allocator) {
  Rng rng(options.seed);
  auto key = std::make_unique<Bat>(ValueType::kInt32, allocator);
  auto name = std::make_unique<Bat>(ValueType::kString, allocator);
  const int64_t n = options.num_customers();
  DOPPIO_RETURN_NOT_OK(key->Reserve(n));
  DOPPIO_RETURN_NOT_OK(name->Reserve(n, 24));
  for (int64_t i = 1; i <= n; ++i) {
    DOPPIO_RETURN_NOT_OK(key->AppendInt32(static_cast<int32_t>(i)));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                  static_cast<long long>(i));
    DOPPIO_RETURN_NOT_OK(name->AppendString(buf));
  }
  auto table = std::make_unique<Table>("customer");
  DOPPIO_RETURN_NOT_OK(table->AddColumn("c_custkey", std::move(key)));
  DOPPIO_RETURN_NOT_OK(table->AddColumn("c_name", std::move(name)));
  return table;
}

Result<std::unique_ptr<Table>> GenerateOrdersTable(
    const TpchOptions& options, BufferAllocator* allocator) {
  Rng rng(options.seed + 1);
  auto okey = std::make_unique<Bat>(ValueType::kInt32, allocator);
  auto ckey = std::make_unique<Bat>(ValueType::kInt32, allocator);
  auto comment = std::make_unique<Bat>(ValueType::kString, allocator);
  const int64_t n = options.num_orders();
  const int64_t customers = options.num_customers();
  DOPPIO_RETURN_NOT_OK(okey->Reserve(n));
  DOPPIO_RETURN_NOT_OK(ckey->Reserve(n));
  DOPPIO_RETURN_NOT_OK(comment->Reserve(n, 64));
  for (int64_t i = 1; i <= n; ++i) {
    DOPPIO_RETURN_NOT_OK(okey->AppendInt32(static_cast<int32_t>(i)));
    // TPC-H: customers whose key is divisible by 3 place no orders.
    int64_t cust;
    do {
      cust = 1 + static_cast<int64_t>(rng.NextBounded(
                     static_cast<uint64_t>(customers)));
    } while (cust % 3 == 0);
    DOPPIO_RETURN_NOT_OK(ckey->AppendInt32(static_cast<int32_t>(cust)));

    int kind = 0;
    double roll = rng.UniformDouble();
    if (roll < options.special_fraction) {
      kind = 1;
    } else if (roll <
               options.special_fraction +
                   options.special_case_variant_fraction) {
      kind = 2;
    }
    DOPPIO_RETURN_NOT_OK(comment->AppendString(RandomComment(&rng, kind)));
  }
  auto table = std::make_unique<Table>("orders");
  DOPPIO_RETURN_NOT_OK(table->AddColumn("o_orderkey", std::move(okey)));
  DOPPIO_RETURN_NOT_OK(table->AddColumn("o_custkey", std::move(ckey)));
  DOPPIO_RETURN_NOT_OK(table->AddColumn("o_comment", std::move(comment)));
  return table;
}

std::string TpchQ13Sql(bool case_insensitive) {
  const char* like = case_insensitive ? "ILIKE" : "LIKE";
  std::string sql =
      "SELECT c_count, COUNT(*) AS custdist FROM ("
      "SELECT c_custkey, count(o_orderkey) FROM customer "
      "LEFT OUTER JOIN orders ON c_custkey = o_custkey "
      "AND o_comment NOT ";
  sql += like;
  sql +=
      " '%special%requests%' "
      "GROUP BY c_custkey"
      ") AS c_orders (c_custkey, c_count) "
      "GROUP BY c_count "
      "ORDER BY custdist DESC, c_count DESC;";
  return sql;
}

}  // namespace doppio
