// Synthetic shipment-address workload (paper §7.1.1).
//
// Strings follow the paper's format — name|surname|street+number|zip|city
// concatenated with '|' — and are ~64 bytes by default. Hits for each
// evaluation query are injected independently, uniformly at random, with a
// configurable probability (default selectivity 0.2); the base vocabulary
// is constructed so that a non-hit row cannot accidentally match:
//   Q1  LIKE '%Strasse%'                 — base streets avoid "Strasse"
//   Q2  (Strasse|Str\.).*(8[0-9]{4})     — base zips never start with '8'
//   Q3  [0-9]+(USD|EUR|GBP)              — base strings have no currency
//   Q4  [A-Za-z]{3}\:[0-9]{4}            — base strings contain no ':'
//   QH  Q2-prefix followed by "delivery" — every Q2-style hit row also
//        carries "delivery" (paper §7.8 builds the data this way)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bat/buffer.h"
#include "bat/table.h"
#include "common/random.h"
#include "common/status.h"

namespace doppio {

struct AddressDataOptions {
  int64_t num_records = 2'500'000;
  /// Approximate string length; strings are padded with filler words.
  int64_t string_length = 64;
  /// Independent hit probability for each of Q1..Q4.
  double selectivity = 0.2;
  /// Per-query overrides (negative = use `selectivity`). The hybrid
  /// experiment (Fig. 13) sets q2_selectivity = 0 and sweeps
  /// qh_selectivity so that *every* string matching the QH prefix also
  /// contains "delivery", as the paper constructs its data.
  double q2_selectivity = -1.0;
  /// Probability of the QH hit (Q2-prefix plus "delivery"); defaults to
  /// `selectivity` when negative.
  double qh_selectivity = -1.0;
  uint64_t seed = 42;
};

/// Generates the two-column table of the paper: `id INT`,
/// `address_string VARCHAR`. BAT memory comes from `allocator`.
Result<std::unique_ptr<Table>> GenerateAddressTable(
    const AddressDataOptions& options, const std::string& table_name,
    BufferAllocator* allocator = MallocAllocator::Default());

/// One address string (exposed for tests).
std::string GenerateAddressString(Rng* rng, const AddressDataOptions& options,
                                  bool q1_hit, bool q2_hit, bool q3_hit,
                                  bool q4_hit, bool qh_hit);

}  // namespace doppio
