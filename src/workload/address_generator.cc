#include "workload/address_generator.h"

#include <array>

namespace doppio {

namespace {

// Vocabulary chosen to avoid the query patterns (see header).
constexpr std::array<const char*, 12> kFirstNames = {
    "John",  "Hans",   "Anna",  "Maria",  "Peter", "Julia",
    "Georg", "Sophie", "Lukas", "Clara",  "Felix", "Laura",
};
constexpr std::array<const char*, 12> kLastNames = {
    "Smith",  "Miller", "Meier",  "Huber",  "Keller", "Graf",
    "Weber",  "Frei",   "Brunner", "Moser", "Baumann", "Suter",
};
// No "Strasse", no "Str." in the base street suffixes.
constexpr std::array<const char*, 6> kStreetSuffixes = {
    "Gasse", "Weg", "Platz", "Allee", "Ring", "Road",
};
constexpr std::array<const char*, 10> kStreetStems = {
    "Koblenzer", "Berner",  "Wiener",  "Bremer",   "Kieler",
    "Mainzer",   "Erfurter", "Jenaer", "Bonner",   "Hagener",
};
constexpr std::array<const char*, 10> kCities = {
    "Frankfurt", "Zuerich", "Wien",     "Hamburg", "Muenchen",
    "Basel",     "Genf",    "Stuttgart", "Koeln",  "Leipzig",
};
constexpr std::array<const char*, 3> kCurrencies = {"USD", "EUR", "GBP"};

// Filler words (lowercase only: cannot create Q1/Q3/Q4 hits).
constexpr std::array<const char*, 8> kFiller = {
    "nord", "sued", "ost", "west", "alt", "neu", "gross", "klein",
};

std::string BaseZip(Rng* rng) {
  // 5 digits, first digit never '8' (that would enable a Q2 hit).
  static const char kFirst[] = "1234567 9";
  char first;
  do {
    first = kFirst[rng->NextBounded(9)];
  } while (first == ' ');
  std::string zip(1, first);
  for (int i = 0; i < 4; ++i) {
    zip.push_back(static_cast<char>('0' + rng->NextBounded(10)));
  }
  return zip;
}

}  // namespace

std::string GenerateAddressString(Rng* rng, const AddressDataOptions& options,
                                  bool q1_hit, bool q2_hit, bool q3_hit,
                                  bool q4_hit, bool qh_hit) {
  std::string out;
  out += kFirstNames[rng->NextBounded(kFirstNames.size())];
  out += "|";
  out += kLastNames[rng->NextBounded(kLastNames.size())];
  out += "|";
  out += std::to_string(1 + rng->NextBounded(199));
  out += " ";
  out += kStreetStems[rng->NextBounded(kStreetStems.size())];
  out += " ";
  if (q1_hit) {
    out += "Strasse";
  } else if (q2_hit || qh_hit) {
    out += "Str.";  // matches Q2's alternation but not Q1's substring
  } else {
    out += kStreetSuffixes[rng->NextBounded(kStreetSuffixes.size())];
  }
  out += "|";
  if (q2_hit || qh_hit) {
    std::string zip = "8";
    for (int i = 0; i < 4; ++i) {
      zip.push_back(static_cast<char>('0' + rng->NextBounded(10)));
    }
    out += zip;
  } else {
    out += BaseZip(rng);
  }
  out += "|";
  out += kCities[rng->NextBounded(kCities.size())];
  if (q3_hit) {
    // Amount immediately followed by the currency code, e.g. "42USD".
    out += "|";
    out += std::to_string(1 + rng->NextBounded(999));
    out += kCurrencies[rng->NextBounded(kCurrencies.size())];
  }
  if (q4_hit) {
    out += "|Ref:";
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>('0' + rng->NextBounded(10)));
    }
  }
  if (qh_hit) {
    out += "|delivery";
  }
  // Pad with lowercase filler towards the target length.
  while (static_cast<int64_t>(out.size()) + 5 <=
         options.string_length) {
    out += "|";
    out += kFiller[rng->NextBounded(kFiller.size())];
  }
  return out;
}

Result<std::unique_ptr<Table>> GenerateAddressTable(
    const AddressDataOptions& options, const std::string& table_name,
    BufferAllocator* allocator) {
  Rng rng(options.seed);
  const double qh = options.qh_selectivity < 0 ? options.selectivity
                                               : options.qh_selectivity;
  const double q2_sel = options.q2_selectivity < 0 ? options.selectivity
                                                   : options.q2_selectivity;

  auto id_bat = std::make_unique<Bat>(ValueType::kInt32, allocator);
  auto str_bat = std::make_unique<Bat>(ValueType::kString, allocator);
  DOPPIO_RETURN_NOT_OK(id_bat->Reserve(options.num_records));
  DOPPIO_RETURN_NOT_OK(
      str_bat->Reserve(options.num_records, options.string_length + 16));

  for (int64_t i = 0; i < options.num_records; ++i) {
    bool q1 = rng.Bernoulli(options.selectivity);
    bool q2 = !q1 && rng.Bernoulli(q2_sel);
    bool q3 = rng.Bernoulli(options.selectivity);
    bool q4 = rng.Bernoulli(options.selectivity);
    bool qh_hit = !q1 && !q2 && rng.Bernoulli(qh);
    std::string value =
        GenerateAddressString(&rng, options, q1, q2, q3, q4, qh_hit);
    DOPPIO_RETURN_NOT_OK(id_bat->AppendInt32(static_cast<int32_t>(i)));
    DOPPIO_RETURN_NOT_OK(str_bat->AppendString(value));
  }

  auto table = std::make_unique<Table>(table_name);
  DOPPIO_RETURN_NOT_OK(table->AddColumn("id", std::move(id_bat)));
  DOPPIO_RETURN_NOT_OK(
      table->AddColumn("address_string", std::move(str_bat)));
  DOPPIO_RETURN_NOT_OK(table->Validate());
  return table;
}

}  // namespace doppio
