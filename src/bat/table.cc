#include "bat/table.h"

namespace doppio {

Status Table::AddColumn(std::string name, std::unique_ptr<Bat> bat) {
  if (index_.count(name) != 0) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }
  index_[name] = static_cast<int>(columns_.size());
  column_names_.push_back(std::move(name));
  columns_.push_back(std::move(bat));
  return Status::OK();
}

Bat* Table::GetColumn(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : columns_[it->second].get();
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Status Table::Validate() const {
  for (size_t i = 1; i < columns_.size(); ++i) {
    if (columns_[i]->count() != columns_[0]->count()) {
      return Status::Internal("table '" + name_ +
                              "': column cardinality mismatch");
    }
  }
  return Status::OK();
}

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace doppio
