#include "bat/bat.h"

#include <atomic>

#include "common/logging.h"

namespace doppio {

int64_t ValueTypeWidth(ValueType type) {
  switch (type) {
    case ValueType::kInt32:
      return 4;
    case ValueType::kInt64:
      return 8;
    case ValueType::kInt16:
      return 2;
    case ValueType::kString:
      return 4;  // 32-bit heap offsets in the tail
  }
  return 0;
}

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt32:
      return "int";
    case ValueType::kInt64:
      return "bigint";
    case ValueType::kInt16:
      return "short";
    case ValueType::kString:
      return "varchar";
  }
  return "?";
}

namespace {
/// Process-wide column-identity source (never 0, never reused).
std::atomic<uint64_t> next_column_id{1};
}  // namespace

uint64_t AcquireColumnId() {
  return next_column_id.fetch_add(1, std::memory_order_relaxed);
}

Bat::Bat(ValueType type, BufferAllocator* allocator)
    : type_(type), tail_(allocator), id_(AcquireColumnId()) {
  if (type_ == ValueType::kString) {
    heap_ = std::make_unique<StringHeap>(allocator);
  }
}

Result<std::unique_ptr<Bat>> Bat::New(ValueType type, int64_t capacity,
                                      BufferAllocator* allocator) {
  auto bat = std::make_unique<Bat>(type, allocator);
  DOPPIO_RETURN_NOT_OK(bat->Reserve(capacity));
  return bat;
}

Status Bat::AppendInt32(int32_t value) {
  DOPPIO_CHECK(type_ == ValueType::kInt32);
  DOPPIO_RETURN_NOT_OK(tail_.Append(&value, sizeof(value)));
  ++count_;
  BumpVersion();
  return Status::OK();
}

Status Bat::AppendInt64(int64_t value) {
  DOPPIO_CHECK(type_ == ValueType::kInt64);
  DOPPIO_RETURN_NOT_OK(tail_.Append(&value, sizeof(value)));
  ++count_;
  BumpVersion();
  return Status::OK();
}

Status Bat::AppendInt16(int16_t value) {
  DOPPIO_CHECK(type_ == ValueType::kInt16);
  DOPPIO_RETURN_NOT_OK(tail_.Append(&value, sizeof(value)));
  ++count_;
  BumpVersion();
  return Status::OK();
}

Status Bat::AppendString(std::string_view value) {
  DOPPIO_CHECK(type_ == ValueType::kString);
  DOPPIO_ASSIGN_OR_RETURN(uint32_t offset, heap_->Append(value));
  DOPPIO_RETURN_NOT_OK(tail_.Append(&offset, sizeof(offset)));
  ++count_;
  BumpVersion();
  return Status::OK();
}

Status Bat::Reserve(int64_t n, int64_t avg_string_bytes) {
  DOPPIO_RETURN_NOT_OK(tail_.Reserve(n * ValueTypeWidth(type_)));
  if (type_ == ValueType::kString && avg_string_bytes > 0) {
    // Account for terminator + alignment padding per string.
    DOPPIO_RETURN_NOT_OK(heap_->Reserve(
        kHeapHeaderBytes + n * (avg_string_bytes + kHeapAlignment)));
  }
  return Status::OK();
}

Status Bat::AppendZeros(int64_t n) {
  DOPPIO_CHECK(type_ != ValueType::kString);
  DOPPIO_RETURN_NOT_OK(tail_.AppendZeros(n * ValueTypeWidth(type_)));
  count_ += n;
  BumpVersion();
  return Status::OK();
}

}  // namespace doppio
