// MonetDB-style string heap (paper Fig. 2).
//
// Variable-length values are stored out of line: a BAT of offsets points
// into a heap that holds NUL-terminated strings with metadata and alignment
// padding between them. String lengths are NOT stored — readers (including
// the FPGA's String Reader) scan to the terminator. The heap begins with a
// metadata block.
#pragma once

#include <cstdint>
#include <string_view>

#include "bat/buffer.h"
#include "common/status.h"

namespace doppio {

/// Bytes of heap metadata before the first string (MonetDB keeps hash/meta
/// information at the head of its string heaps).
inline constexpr int64_t kHeapHeaderBytes = 64;

/// Strings are stored at 8-byte aligned offsets; the gap after the NUL
/// terminator is the "padding" of Fig. 2.
inline constexpr int64_t kHeapAlignment = 8;

class StringHeap {
 public:
  explicit StringHeap(BufferAllocator* allocator = MallocAllocator::Default());

  /// Appends a string (with terminator and padding); returns its offset.
  Result<uint32_t> Append(std::string_view value);

  /// Reads the NUL-terminated string at `offset`.
  /// Returns InvalidArgument for offsets outside the written heap.
  Result<std::string_view> Get(uint32_t offset) const;

  /// Unchecked variant for hot loops; offset must come from Append.
  const char* GetUnchecked(uint32_t offset) const {
    return reinterpret_cast<const char*>(data_.data() + offset);
  }

  const uint8_t* data() const { return data_.data(); }
  int64_t size_bytes() const { return data_.size(); }
  int64_t string_count() const { return string_count_; }

  /// Pre-reserves heap space for bulk loads.
  Status Reserve(int64_t bytes) { return data_.Reserve(bytes); }

 private:
  Buffer data_;
  int64_t string_count_ = 0;
};

}  // namespace doppio
