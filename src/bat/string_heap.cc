#include "bat/string_heap.h"

#include <cstring>

namespace doppio {

StringHeap::StringHeap(BufferAllocator* allocator) : data_(allocator) {
  // Metadata block at the head of the heap; zeroed.
  Status st = data_.AppendZeros(kHeapHeaderBytes);
  (void)st;
}

Result<uint32_t> StringHeap::Append(std::string_view value) {
  int64_t offset = data_.size();
  if (offset > UINT32_MAX) {
    return Status::CapacityExceeded("string heap exceeds 32-bit offsets");
  }
  DOPPIO_RETURN_NOT_OK(
      data_.Append(value.data(), static_cast<int64_t>(value.size())));
  // NUL terminator.
  const char zero = '\0';
  DOPPIO_RETURN_NOT_OK(data_.Append(&zero, 1));
  // Pad so the next string starts 8-byte aligned.
  int64_t misalign = data_.size() % kHeapAlignment;
  if (misalign != 0) {
    DOPPIO_RETURN_NOT_OK(data_.AppendZeros(kHeapAlignment - misalign));
  }
  ++string_count_;
  return static_cast<uint32_t>(offset);
}

Result<std::string_view> StringHeap::Get(uint32_t offset) const {
  if (offset < kHeapHeaderBytes || offset >= data_.size()) {
    return Status::InvalidArgument("string offset outside heap");
  }
  const char* start = reinterpret_cast<const char*>(data_.data() + offset);
  // Bounded scan: the heap always ends with the final string's terminator
  // and padding, so memchr within the remaining bytes is safe.
  const void* nul = std::memchr(start, '\0',
                                static_cast<size_t>(data_.size() - offset));
  if (nul == nullptr) {
    return Status::Internal("unterminated string in heap");
  }
  return std::string_view(
      start, static_cast<size_t>(static_cast<const char*>(nul) - start));
}

}  // namespace doppio
