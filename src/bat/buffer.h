// Growable byte buffer with pluggable allocation.
//
// MonetDB places BATs in the CPU-FPGA shared region via the HAL's slab
// allocator (paper §4.2.1); tests and software-only paths use malloc. The
// BufferAllocator interface is the seam between the two.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/status.h"

namespace doppio {

/// Allocation interface for BAT backing memory.
class BufferAllocator {
 public:
  virtual ~BufferAllocator() = default;
  virtual Result<void*> Allocate(int64_t bytes) = 0;
  virtual Status Free(void* ptr) = 0;
};

/// Default allocator: plain malloc (not FPGA-visible).
class MallocAllocator : public BufferAllocator {
 public:
  Result<void*> Allocate(int64_t bytes) override {
    void* p = std::malloc(static_cast<size_t>(bytes));
    if (p == nullptr) return Status::OutOfMemory("malloc failed");
    return p;
  }
  Status Free(void* ptr) override {
    std::free(ptr);
    return Status::OK();
  }

  /// Process-wide instance for default-constructed buffers.
  static MallocAllocator* Default();
};

inline MallocAllocator* MallocAllocator::Default() {
  static MallocAllocator instance;
  return &instance;
}

/// Contiguous, growable, allocator-backed byte buffer.
class Buffer {
 public:
  explicit Buffer(BufferAllocator* allocator = MallocAllocator::Default())
      : allocator_(allocator) {}

  ~Buffer() { Release(); }

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Buffer);

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      allocator_ = other.allocator_;
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = other.capacity_ = 0;
    }
    return *this;
  }

  /// Ensures capacity for at least `bytes`; contents are preserved.
  Status Reserve(int64_t bytes) {
    if (bytes <= capacity_) return Status::OK();
    int64_t new_cap = capacity_ == 0 ? 1024 : capacity_;
    while (new_cap < bytes) new_cap *= 2;
    DOPPIO_ASSIGN_OR_RETURN(void* fresh, allocator_->Allocate(new_cap));
    const int64_t old_size = size_;
    if (old_size > 0) {
      std::memcpy(fresh, data_, static_cast<size_t>(old_size));
    }
    Release();
    data_ = static_cast<uint8_t*>(fresh);
    size_ = old_size;
    capacity_ = new_cap;
    return Status::OK();
  }

  /// Appends `bytes` bytes from `src`, growing as needed.
  Status Append(const void* src, int64_t bytes) {
    DOPPIO_RETURN_NOT_OK(Reserve(size_ + bytes));
    std::memcpy(data_ + size_, src, static_cast<size_t>(bytes));
    size_ += bytes;
    return Status::OK();
  }

  /// Grows the logical size by `bytes` of zeroed content.
  Status AppendZeros(int64_t bytes) {
    DOPPIO_RETURN_NOT_OK(Reserve(size_ + bytes));
    std::memset(data_ + size_, 0, static_cast<size_t>(bytes));
    size_ += bytes;
    return Status::OK();
  }

  /// Sets the logical size (must be within capacity).
  Status Resize(int64_t bytes) {
    DOPPIO_RETURN_NOT_OK(Reserve(bytes));
    size_ = bytes;
    return Status::OK();
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  int64_t size() const { return size_; }
  int64_t capacity() const { return capacity_; }
  BufferAllocator* allocator() const { return allocator_; }

 private:
  void Release() {
    if (data_ != nullptr) {
      Status st = allocator_->Free(data_);
      (void)st;  // Allocator mismatches are caught by allocator tests.
      data_ = nullptr;
    }
    size_ = capacity_ = 0;
  }

  BufferAllocator* allocator_ = nullptr;
  uint8_t* data_ = nullptr;
  int64_t size_ = 0;
  int64_t capacity_ = 0;
};

}  // namespace doppio
