// Relational table = named collection of equally-sized BATs, plus a small
// catalog. This is the storage-side view; query processing lives in src/db.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"

namespace doppio {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a column; all columns must stay equally sized (checked lazily by
  /// Validate, since bulk loads append column-by-column).
  Status AddColumn(std::string name, std::unique_ptr<Bat> bat);

  /// Column by name, or nullptr.
  Bat* GetColumn(const std::string& name) const;

  /// Index of a column, or -1.
  int ColumnIndex(const std::string& name) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::string& column_name(int i) const { return column_names_[i]; }
  Bat* column(int i) const { return columns_[i].get(); }

  /// Row count (0 for empty tables). All columns must agree — see Validate.
  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->count();
  }

  /// Checks that all columns have equal cardinality.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::unique_ptr<Bat>> columns_;
  std::map<std::string, int> index_;
};

/// Catalog of tables owned by a database engine instance.
class Catalog {
 public:
  Status AddTable(std::unique_ptr<Table> table);
  Table* GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace doppio
