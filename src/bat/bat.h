// Binary Association Tables — MonetDB's storage unit (paper §2.3.1).
//
// A BAT logically pairs (OID, value). Like modern MonetDB, the OID head is
// "void" (virtual: dense, starting at 0), so only the tail is materialized.
// Fixed-width tails store values directly; string tails store 32-bit offsets
// into a StringHeap. The HUDF receives exactly this representation: a
// pointer to the offset column, a pointer to the heap, the offset width and
// the tuple count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "bat/buffer.h"
#include "bat/string_heap.h"
#include "common/status.h"

namespace doppio {

enum class ValueType : int {
  kInt32,
  kInt64,
  kInt16,  // the HUDF result type ("short": match end position or 0)
  kString,
};

int64_t ValueTypeWidth(ValueType type);
const char* ValueTypeName(ValueType type);

/// Draws the next process-unique column identity (never 0, never reused).
/// Shared by Bat and store::SegmentedColumn so ids from either family can
/// key the same caches (sched/result_cache) without collision.
uint64_t AcquireColumnId();

class Bat {
 public:
  /// Creates an empty BAT with the given tail type. All backing memory
  /// (tail and heap) comes from `allocator`.
  explicit Bat(ValueType type,
               BufferAllocator* allocator = MallocAllocator::Default());

  /// Creates an empty BAT and reserves room for `capacity` tuples
  /// (mirrors BATnew(TYPE_void, tail_type, capacity, TRANSIENT)).
  static Result<std::unique_ptr<Bat>> New(
      ValueType type, int64_t capacity,
      BufferAllocator* allocator = MallocAllocator::Default());

  ValueType type() const { return type_; }
  int64_t count() const { return count_; }

  /// Process-unique column identity, assigned at construction. Never
  /// reused within a process, so caches keyed on it (sched/result_cache)
  /// cannot confuse a freed BAT's address with its successor's.
  uint64_t id() const { return id_; }

  /// Monotone content version, starting at 1 and bumped by every append.
  /// A (id, version) pair names an immutable snapshot of the column: the
  /// first `count` rows as of that version. Readable from any thread.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // --- Appends ------------------------------------------------------------
  Status AppendInt32(int32_t value);
  Status AppendInt64(int64_t value);
  Status AppendInt16(int16_t value);
  Status AppendString(std::string_view value);

  // --- Typed access (unchecked index, checked type in debug) ---------------
  int32_t GetInt32(int64_t i) const {
    return reinterpret_cast<const int32_t*>(tail_.data())[i];
  }
  int64_t GetInt64(int64_t i) const {
    return reinterpret_cast<const int64_t*>(tail_.data())[i];
  }
  int16_t GetInt16(int64_t i) const {
    return reinterpret_cast<const int16_t*>(tail_.data())[i];
  }
  /// Offset of the i-th string within the heap.
  uint32_t GetOffset(int64_t i) const {
    return reinterpret_cast<const uint32_t*>(tail_.data())[i];
  }
  /// The i-th string (views into the heap; valid until the BAT grows).
  std::string_view GetString(int64_t i) const {
    const char* p = heap_->GetUnchecked(GetOffset(i));
    return std::string_view(p);
  }

  // --- Raw access for the FPGA/HAL path ------------------------------------
  const uint8_t* tail_data() const { return tail_.data(); }
  uint8_t* mutable_tail_data() { return tail_.data(); }
  int64_t tail_bytes() const { return tail_.size(); }
  const StringHeap* heap() const { return heap_.get(); }
  StringHeap* mutable_heap() { return heap_.get(); }
  /// Offset width in bytes as passed in the FPGA job parameters.
  int64_t offset_width() const { return sizeof(uint32_t); }

  /// Reserves tail (and optionally heap) space for `n` tuples of
  /// `avg_string_bytes` average payload.
  Status Reserve(int64_t n, int64_t avg_string_bytes = 0);

  /// Appends `count` zero-initialized fixed-width slots (used for result
  /// BATs the FPGA writes into).
  Status AppendZeros(int64_t n);

  BufferAllocator* allocator() const { return tail_.allocator(); }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  ValueType type_;
  Buffer tail_;
  std::unique_ptr<StringHeap> heap_;  // only for kString
  int64_t count_ = 0;
  uint64_t id_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace doppio
