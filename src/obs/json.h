// Minimal JSON emission and validation for the observability exports.
//
// Everything the tracer and the metrics registry write — Chrome
// trace_event files, metrics dumps, figure JSON from the bench harness —
// goes through this writer so the output is well-formed by construction:
// strings are escaped, and non-finite doubles (the inf/NaN a zero-row or
// zero-duration run would otherwise produce, invalid per RFC 8259) are
// clamped to 0. `CheckJsonSyntax` is the matching strict parser, used by
// tests and CI to round-trip every emitted document.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace doppio {
namespace obs {

/// `value` when finite, `fallback` for inf/NaN (and for the inf that a
/// division by zero just produced). Use for every rate/throughput field
/// that lands in JSON.
double FiniteOr(double value, double fallback = 0);

/// numerator/denominator, 0 when the denominator is 0 or the quotient is
/// non-finite — the safe form of every MB/s-style computation.
double SafeRate(double numerator, double denominator);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by exactly one value (or Begin*).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);  // non-finite values emit 0
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Convenience: Key(k) + value.
  JsonWriter& Field(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, double value) {
    return Key(key).Double(value);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Appends `value` to `out` with JSON string escaping (no quotes added).
void AppendJsonEscaped(std::string* out, std::string_view value);

/// Strict RFC 8259 syntax check (objects, arrays, strings, numbers,
/// true/false/null; rejects NaN/Infinity literals and trailing garbage).
/// Returns OK for a single valid JSON value.
Status CheckJsonSyntax(std::string_view text);

}  // namespace obs
}  // namespace doppio
