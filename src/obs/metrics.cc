#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace doppio {
namespace obs {

namespace {
constexpr double kSumScale = 1e6;  // micro-units per unit
}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) value = 0;
  // Branchless-ish upper_bound over a handful of bounds; the vector is
  // small (<= ~24 entries) so a linear/binary scan is cache-resident.
  // lower_bound: first bound >= value, so bounds act as inclusive upper
  // bounds (the Prometheus `le` convention the header documents).
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(value * kSumScale),
                        std::memory_order_relaxed);
}

int64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return sum_micros_.load(std::memory_order_relaxed) / kSumScale;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

std::vector<double> LatencySecondsBuckets() {
  // 1us, 4us, 16us, ... x4 steps up to ~100s.
  std::vector<double> b;
  for (double v = 1e-6; v < 200.0; v *= 4.0) b.push_back(v);
  return b;
}

std::vector<double> DepthBuckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64};
}

std::vector<double> MbpsBuckets() {
  std::vector<double> b;
  for (double v = 1.0; v < 3.0e4; v *= 2.0) b.push_back(v);
  return b;
}

std::vector<double> BytesBuckets() {
  std::vector<double> b;
  for (double v = 4096.0; v < 5.0e9; v *= 4.0) b.push_back(v);
  return b;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = std::string(help);
  entry.counter = std::make_unique<Counter>();
  Counter* raw = entry.counter.get();
  entries_.emplace(std::string(name), std::move(entry));
  return raw;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = std::string(help);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* raw = entry.gauge.get();
  entries_.emplace(std::string(name), std::move(entry));
  return raw;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = std::string(help);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* raw = entry.histogram.get();
  entries_.emplace(std::string(name), std::move(entry));
  return raw;
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += name + " " + std::to_string(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += name + " " + std::to_string(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += name + " count=" + std::to_string(h.TotalCount());
        char buf[32];
        std::snprintf(buf, sizeof(buf), " sum=%.6g", FiniteOr(h.Sum()));
        out += buf;
        const auto counts = h.BucketCounts();
        const auto& bounds = h.bounds();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (counts[i] == 0) continue;
          if (i < bounds.size()) {
            std::snprintf(buf, sizeof(buf), " le%.4g=", bounds[i]);
          } else {
            std::snprintf(buf, sizeof(buf), " le_inf=");
          }
          out += buf;
          out += std::to_string(counts[i]);
        }
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == Kind::kCounter) w.Field(name, entry.counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == Kind::kGauge) w.Field(name, entry.gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) continue;
    const Histogram& h = *entry.histogram;
    w.Key(name).BeginObject();
    w.Field("count", h.TotalCount());
    w.Field("sum", h.Sum());
    w.Key("bounds").BeginArray();
    for (double b : h.bounds()) w.Double(b);
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (int64_t c : h.BucketCounts()) w.Int(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->Reset(); break;
      case Kind::kGauge: entry.gauge->Reset(); break;
      case Kind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

}  // namespace obs
}  // namespace doppio
