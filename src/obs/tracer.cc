#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "obs/json.h"

namespace doppio {
namespace obs {

namespace {

double HostNowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MicrosFromPicos(SimTime t) { return static_cast<double>(t) / 1e6; }

uint64_t CurrentThreadLane() {
  return std::hash<std::thread::id>()(std::this_thread::get_id()) % 997;
}

// Emits one B/E pair on (pid, tid) if both stamps are present and ordered.
void EmitSpan(JsonWriter& w, const char* name, int64_t pid, uint64_t tid,
              SimTime begin, SimTime end,
              const std::function<void(JsonWriter&)>& args = nullptr) {
  if (begin <= 0 || end < begin) return;
  w.BeginObject();
  w.Field("name", name);
  w.Field("ph", "B");
  w.Field("ts", MicrosFromPicos(begin));
  w.Field("pid", pid);
  w.Field("tid", static_cast<int64_t>(tid));
  if (args) {
    w.Key("args").BeginObject();
    args(w);
    w.EndObject();
  }
  w.EndObject();
  w.BeginObject();
  w.Field("name", name);
  w.Field("ph", "E");
  w.Field("ts", MicrosFromPicos(end));
  w.Field("pid", pid);
  w.Field("tid", static_cast<int64_t>(tid));
  w.EndObject();
}

void EmitMetadata(JsonWriter& w, const char* what, int64_t pid,
                  const std::string& name) {
  w.BeginObject();
  w.Field("name", what);
  w.Field("ph", "M");
  w.Field("pid", pid);
  w.Key("args").BeginObject();
  w.Field("name", name);
  w.EndObject();
  w.EndObject();
}

constexpr int64_t kVirtualPid = 1;
constexpr int64_t kHostPid = 2;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceId Tracer::BeginQuery(std::string_view label) {
  if (!enabled()) return kInvalidTraceId;
  QuerySpan span;
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.label = std::string(label);
  span.thread_id = CurrentThreadLane();
  span.host_begin_us = HostNowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  queries_.push_back(std::move(span));
  return queries_.back().id;
}

void Tracer::EndQuery(TraceId id) {
  if (id == kInvalidTraceId || !enabled()) return;
  const double now = HostNowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queries_.rbegin(); it != queries_.rend(); ++it) {
    if (it->id == id) {
      it->host_end_us = now;
      it->closed = true;
      return;
    }
  }
}

void Tracer::RecordJob(const JobTraceRecord& record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  jobs_.push_back(record);
}

void Tracer::RecordInstant(TraceId id, std::string_view name, SimTime when) {
  if (id == kInvalidTraceId || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(Instant{id, std::string(name), when});
}

double Tracer::VirtualExtent(TraceId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SimTime first = std::numeric_limits<SimTime>::max();
  SimTime last = std::numeric_limits<SimTime>::min();
  bool any = false;
  for (const auto& job : jobs_) {
    if (job.trace_id != id) continue;
    any = true;
    first = std::min(first, job.enqueue_time);
    last = std::max(last, job.finish_time);
  }
  if (!any || last <= first) return 0;
  return SecondsFromPicos(last - first);
}

int64_t Tracer::JobCount(TraceId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const auto& job : jobs_) n += (job.trace_id == id) ? 1 : 0;
  return n;
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ns");
  w.Key("traceEvents").BeginArray();

  EmitMetadata(w, "process_name", kVirtualPid, "virtual-time (FPGA)");
  EmitMetadata(w, "process_name", kHostPid, "host-time (software)");

  // Host-time query spans: the wall-clock window each query occupied on
  // its submitting thread. Rebase so the trace starts near ts=0.
  double host_base = std::numeric_limits<double>::max();
  for (const auto& q : queries_) {
    host_base = std::min(host_base, q.host_begin_us);
  }
  for (const auto& q : queries_) {
    if (!q.closed || q.host_end_us < q.host_begin_us) continue;
    w.BeginObject();
    w.Field("name", q.label);
    w.Field("ph", "B");
    w.Field("ts", q.host_begin_us - host_base);
    w.Field("pid", kHostPid);
    w.Field("tid", static_cast<int64_t>(q.thread_id));
    w.Key("args").BeginObject();
    w.Field("trace_id", static_cast<int64_t>(q.id));
    w.EndObject();
    w.EndObject();
    w.BeginObject();
    w.Field("name", q.label);
    w.Field("ph", "E");
    w.Field("ts", q.host_end_us - host_base);
    w.Field("pid", kHostPid);
    w.Field("tid", static_cast<int64_t>(q.thread_id));
    w.EndObject();
  }

  // Virtual-time job spans, one track per recorded job: the four
  // lifecycle phases are sequential on the track, so B/E pairs always
  // nest and timestamps are monotone. The track is the record's
  // insertion index, not queue_job_id — job ids restart at 0 on every
  // device, and a trace spanning several devices (e.g. one BenchSystem
  // per input size) would otherwise interleave unrelated jobs with
  // rewinding clocks on one track. Tracks are grouped per pool device by
  // striding the tid with device_id, so a DevicePool trace reads as one
  // band of tracks per clock domain; for device 0 (every single-device
  // trace) the stride vanishes and track numbering is unchanged.
  constexpr uint64_t kDeviceTrackStride = 1'000'000;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const auto& job = jobs_[i];
    const uint64_t tid = static_cast<uint64_t>(job.device_id) *
                             kDeviceTrackStride +
                         static_cast<uint64_t>(i) + 1;
    EmitSpan(w, "queue", kVirtualPid, tid, job.enqueue_time,
             job.dispatch_time);
    EmitSpan(w, "distribute", kVirtualPid, tid, job.dispatch_time,
             job.start_time);
    EmitSpan(w, "execute", kVirtualPid, tid, job.start_time,
             job.collect_start_time, [&](JsonWriter& a) {
               a.Field("job", static_cast<int64_t>(job.queue_job_id));
               a.Field("device", static_cast<int64_t>(job.device_id));
               a.Field("engine", job.engine_id);
               a.Field("pu_kernel", job.pu_kernel);
               a.Field("strings", job.strings_processed);
               a.Field("matches", job.matches);
               a.Field("bytes_streamed", job.bytes_streamed);
             });
    EmitSpan(w, "collect", kVirtualPid, tid, job.collect_start_time,
             job.done_bit_time, [&](JsonWriter& a) {
               a.Field("trace_id", static_cast<int64_t>(job.trace_id));
               a.Field("retries", static_cast<int64_t>(job.retries));
               a.Field("fault_flags", static_cast<int64_t>(job.fault_flags));
             });
  }

  // Point events (faults, retries, fallbacks) on the virtual timeline.
  for (const auto& i : instants_) {
    w.BeginObject();
    w.Field("name", i.name);
    w.Field("ph", "i");
    w.Field("ts", MicrosFromPicos(i.when));
    w.Field("pid", kVirtualPid);
    w.Field("tid", static_cast<int64_t>(0));
    w.Field("s", "p");
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  queries_.clear();
  jobs_.clear();
  instants_.clear();
}

}  // namespace obs
}  // namespace doppio
