#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace doppio {
namespace obs {

double FiniteOr(double value, double fallback) {
  return std::isfinite(value) ? value : fallback;
}

double SafeRate(double numerator, double denominator) {
  if (denominator == 0) return 0;
  return FiniteOr(numerator / denominator);
}

void AppendJsonEscaped(std::string* out, std::string_view value) {
  for (unsigned char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  AppendJsonEscaped(&out_, key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  AppendJsonEscaped(&out_, value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  value = FiniteOr(value);
  char buf[40];
  // %.17g round-trips every double; trim to something readable when the
  // short form is exact.
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Strict syntax checker

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    SkipWs();
    DOPPIO_RETURN_NOT_OK(Value());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return Status::OK();
  }

 private:
  Status Fail(const char* what) {
    return Status::InvalidArgument(std::string("bad JSON: ") + what +
                                   " at offset " + std::to_string(pos_));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Status Value() {
    if (Eof()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return StringValue();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return Status::OK();
  }

  Status Object() {
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') { ++pos_; return Status::OK(); }
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') return Fail("expected object key");
      DOPPIO_RETURN_NOT_OK(StringValue());
      SkipWs();
      if (Eof() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      DOPPIO_RETURN_NOT_OK(Value());
      SkipWs();
      if (Eof()) return Fail("unterminated object");
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return Status::OK(); }
      return Fail("expected ',' or '}'");
    }
  }

  Status Array() {
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') { ++pos_; return Status::OK(); }
    while (true) {
      SkipWs();
      DOPPIO_RETURN_NOT_OK(Value());
      SkipWs();
      if (Eof()) return Fail("unterminated array");
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return Status::OK(); }
      return Fail("expected ',' or ']'");
    }
  }

  Status StringValue() {
    ++pos_;  // '"'
    while (true) {
      if (Eof()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        if (Eof()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (Eof() || !std::isxdigit(static_cast<unsigned char>(
                               text_[pos_]))) {
                return Fail("bad \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      }
    }
  }

  Status Number() {
    const size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      // This is exactly where an unclamped inf/NaN print would land.
      return Fail("expected digit (inf/NaN are not valid JSON)");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected fraction digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected exponent digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    (void)start;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status CheckJsonSyntax(std::string_view text) {
  return JsonChecker(text).Check();
}

}  // namespace obs
}  // namespace doppio
