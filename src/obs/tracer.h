// Per-job lifecycle span tracer with a Chrome trace_event exporter.
//
// The simulator runs two clocks at once: FPGA-side phases advance virtual
// time (SimTime, picoseconds) under the device scheduler, while software
// phases burn host wall-clock. The tracer records both:
//
//  * one virtual-time track per recorded job (pid 1) carrying the span
//    chain queue -> distribute -> execute -> collect; a job's spans are
//    strictly sequential on its own track, so B/E pairs nest correctly
//    no matter how many jobs overlap in time;
//  * one host-time track per submitting thread (pid 2) carrying per-query
//    spans (BeginQuery/EndQuery).
//
// Tracing defaults OFF. `enabled()` is a single relaxed atomic load, and
// every instrumented site checks it before doing any work, so the disabled
// path costs one predictable branch — figure outputs stay byte-identical.
// Recording takes a mutex, but only once per job / per query, never per
// string or per cache line.
//
// Open exported files in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/sim_scheduler.h"
#include "common/status.h"

namespace doppio {
namespace obs {

using TraceId = uint64_t;
constexpr TraceId kInvalidTraceId = 0;

/// Everything the tracer keeps about one completed job attempt. Virtual
/// times are the JobStatus stamps; zero stamps mean the phase was never
/// reached (e.g. a dropped job) and the corresponding span is skipped.
struct JobTraceRecord {
  TraceId trace_id = kInvalidTraceId;
  uint64_t queue_job_id = 0;
  int64_t engine_id = -1;
  /// Pool index of the executing device (0 standalone). Device tracks are
  /// grouped per device in the exported trace: tid = device * stride + n.
  int32_t device_id = 0;
  SimTime enqueue_time = 0;        // descriptor entered the shared queue
  SimTime dispatch_time = 0;       // distributor picked the descriptor up
  SimTime start_time = 0;          // engine accepted the job
  SimTime collect_start_time = 0;  // engine finished streaming, collecting
  SimTime done_bit_time = 0;       // done bit store landed
  SimTime finish_time = 0;         // job considered complete
  int32_t retries = 0;
  uint32_t fault_flags = 0;
  int64_t matches = 0;
  int64_t strings_processed = 0;
  int64_t bytes_streamed = 0;
  std::string pu_kernel;
};

class Tracer {
 public:
  static Tracer& Global();

  Tracer() = default;
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Tracer);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a host-time span for one query; returns its handle (to thread
  /// through QueryStats). Returns kInvalidTraceId when tracing is off —
  /// every other method ignores kInvalidTraceId, so callers need no guard.
  TraceId BeginQuery(std::string_view label);
  void EndQuery(TraceId id);

  /// Records one completed job attempt (call once per job, after the done
  /// bit / fault resolution). No-op when tracing is off.
  void RecordJob(const JobTraceRecord& record);

  /// Marks a point event (retry, fault, fallback) on the query's timeline
  /// at virtual time `when`.
  void RecordInstant(TraceId id, std::string_view name, SimTime when);

  /// Virtual-time extent of all jobs recorded for `id`, in seconds:
  /// max(finish) - min(enqueue) — the same definition QueryStats uses for
  /// hw_seconds, so traced runs reconcile exactly. 0 if no jobs recorded.
  double VirtualExtent(TraceId id) const;
  /// Number of jobs recorded for `id`.
  int64_t JobCount(TraceId id) const;

  /// Full trace as a Chrome trace_event JSON document.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Drops all recorded data (trace ids keep advancing).
  void Clear();

 private:
  struct QuerySpan {
    TraceId id = kInvalidTraceId;
    std::string label;
    uint64_t thread_id = 0;
    double host_begin_us = 0;
    double host_end_us = 0;
    bool closed = false;
  };
  struct Instant {
    TraceId id = kInvalidTraceId;
    std::string name;
    SimTime when = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mutex_;
  std::vector<QuerySpan> queries_;
  std::vector<JobTraceRecord> jobs_;
  std::vector<Instant> instants_;
};

}  // namespace obs
}  // namespace doppio
