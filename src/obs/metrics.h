// Process-wide metrics registry (counters, gauges, fixed-bucket
// histograms) for the job path: HAL queue depth, job latency, retries,
// fallback rows, per-engine utilization, functional throughput.
//
// Design constraints, in order:
//  * updates are lock-free (one relaxed atomic RMW) so instrumented sites
//    in the HAL/device can stay on without perturbing measurements;
//  * instruments are registered once under a mutex and cached at the call
//    site (function-local static), so steady state never takes the lock;
//  * scraping (TextDump/ToJson) reads atomics only — safe to run from a
//    monitoring thread while queries execute (covered by the TSan CI job).
//
// All metrics are cumulative over the process lifetime; with multiple HAL
// instances in one process the per-engine series aggregate per engine id.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace doppio {
namespace obs {

class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Observe(double value);

  int64_t TotalCount() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  /// Sum in micro-units to keep the hot path a single integer fetch_add
  /// (atomic<double>::fetch_add compiles to a CAS loop on x86).
  std::atomic<int64_t> sum_micros_{0};
};

/// Exponential latency buckets, 1 µs .. ~100 s.
std::vector<double> LatencySecondsBuckets();
/// Small-integer depth buckets, 0 .. 64.
std::vector<double> DepthBuckets();
/// Throughput buckets in MB/s, 1 .. ~16k.
std::vector<double> MbpsBuckets();
/// Byte-size buckets, 4 KiB .. ~4 GiB (segment/page-in sizes).
std::vector<double> BytesBuckets();

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented site uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  /// Returns the named instrument, creating it on first use. The pointer
  /// is stable for the registry's lifetime; cache it. Requesting an
  /// existing name with a different kind returns nullptr.
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "");

  /// Plain-text dump, one metric per line, sorted by name.
  std::string TextDump() const;
  /// JSON export: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Zeroes every instrument (pointers stay valid). Test/bench isolation.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace obs
}  // namespace doppio
