// A string column as a chain of sealed segments plus one open staging
// segment (ROADMAP item 4: out-of-core columns + streaming ingest).
//
// Appends land in the open segment, invisible to queries. When the open
// segment reaches the target payload size (or Seal() is called), it is
// frozen, written once to the pager's spill file, and becomes part of the
// queryable chain — this is segment-granular visibility: a query admitted
// mid-ingest takes a Snapshot() and sees exactly the segments sealed at
// that instant, a stable segment-boundary prefix of the column, no matter
// how much the ingest thread appends afterwards. Sealed segments carry a
// stable (id, version=1) identity so the result cache (sched/result_cache)
// can key per-segment match blocks that survive column growth.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "store/pager.h"
#include "store/segment.h"

namespace doppio {

/// An immutable view of a column's sealed prefix, taken at admission time.
/// Segments are shared_ptrs: the snapshot stays valid however the column
/// grows (sealed segments are never mutated or dropped).
struct SegmentSnapshot {
  uint64_t column_id = 0;
  /// Column version at snapshot time: 1 + number of sealed segments, so
  /// (column_id, version) names this prefix for whole-column cache keys
  /// exactly like a Bat's (id, version).
  uint64_t version = 1;
  int64_t rows = 0;  // total rows across `segments`
  std::vector<std::shared_ptr<Segment>> segments;
};

class SegmentedColumn {
 public:
  /// `segment_target_bytes` bounds the open segment's payload before it
  /// auto-seals — default one arena page, the paper platform's 2 MB
  /// allocation granule. Small values are useful in tests to force many
  /// windows cheaply.
  explicit SegmentedColumn(Pager* pager,
                           int64_t segment_target_bytes = kSharedPageBytes);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(SegmentedColumn);

  uint64_t id() const { return id_; }
  int64_t segment_target_bytes() const { return segment_target_bytes_; }

  /// Appends one string to the open segment; seals it first when the
  /// append would push the payload past the target. Safe to call
  /// concurrently with Snapshot() from query threads.
  Status Append(std::string_view value);

  /// Seals the open segment (no-op when it is empty), making its rows
  /// visible to subsequent snapshots.
  Status Seal();

  /// The sealed prefix as of now. Lock-held copy of shared_ptrs only.
  SegmentSnapshot Snapshot() const;

  /// Rows visible to a snapshot taken now.
  int64_t sealed_rows() const;
  /// Rows appended but not yet visible (open segment).
  int64_t staged_rows() const;
  uint64_t version() const;

 private:
  Status SealLocked();

  Pager* const pager_;
  const int64_t segment_target_bytes_;
  const uint64_t id_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Segment>> sealed_;  // guarded by mutex_
  std::shared_ptr<Segment> open_;                 // guarded by mutex_
  int64_t sealed_rows_ = 0;                       // guarded by mutex_
  uint64_t version_ = 1;                          // bumped per seal
};

}  // namespace doppio
