// Byte-budgeted pager over the CPU-FPGA shared arena (ROADMAP item 4).
//
// Sealed segments live in a write-once spill file; the pager pins a
// bounded working set of them into the pinned `src/mem/` arena so the
// simulated FPGA can stream them (FpgaDevice::ValidateJob requires every
// job pointer inside the arena). Residency is managed with pin counts and
// LRU ticks, the idiom of classic database buffer managers:
//
//   Pin(segment)   — page the payload in if absent (evicting unpinned LRU
//                    victims while over budget or out of arena pages),
//                    bump the pin count, return the resident view.
//   Unpin(segment) — drop the pin; the payload stays cached until LRU
//                    eviction reclaims it.
//
// Because sealed payloads are immutable, page-out is simply FreePages —
// there is never a write-back — and a pinned segment can never be evicted
// (pin counts), so a query holding a window pinned is safe against any
// concurrent Pin pressure. All `doppio.store.*` metrics live here.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mem/arena.h"
#include "store/segment.h"

namespace doppio {

struct PagerOptions {
  /// Ceiling on resident payload bytes (page-granular accounting). The
  /// pager also respects the arena's own capacity: even under budget, an
  /// arena allocation failure triggers eviction.
  int64_t budget_bytes = int64_t{64} << 20;
};

/// A pinned segment's resident payload, laid out exactly like a Bat's
/// (tail, heap) pair. Valid until the matching Unpin.
struct PinnedSegment {
  const uint8_t* offsets = nullptr;  // rows x uint32, heap-relative
  const uint8_t* heap = nullptr;     // StringHeap image (64-byte header)
  int64_t heap_bytes = 0;
  int64_t rows = 0;
  bool paged_in = false;  // true when this Pin missed and hit the spill file
};

class Pager {
 public:
  explicit Pager(SharedArena* arena, PagerOptions options = {});
  ~Pager();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Pager);

  /// Appends a freshly sealed segment's payload to the spill file and
  /// records its file offset. The payload is NOT kept resident — the
  /// first Pin pages it in.
  Status AdoptSealed(Segment* segment, const std::vector<uint8_t>& payload);

  /// Ensures `segment` is resident and pinned. Fails with
  /// ResourceExhausted when the working set cannot fit (everything else
  /// resident is pinned), InvalidArgument for unsealed/unadopted segments.
  Result<PinnedSegment> Pin(Segment* segment);

  /// Releases one pin. The payload stays resident (LRU) until evicted.
  void Unpin(Segment* segment);

  /// Evicts every unpinned resident segment (tests / shutdown pressure).
  void DropClean();

  int64_t budget_bytes() const { return options_.budget_bytes; }
  int64_t resident_bytes() const;
  int64_t spill_bytes() const;
  SharedArena* arena() const { return arena_; }

 private:
  /// Evicts unpinned residents (LRU first) until `needed_bytes` fits the
  /// budget, or returns false when nothing more can be evicted.
  bool EvictForLocked(int64_t needed_bytes);
  void EvictOneLocked(Segment* victim);
  Status PageInLocked(Segment* segment);

  SharedArena* const arena_;
  const PagerOptions options_;

  mutable std::mutex mutex_;
  std::FILE* spill_ = nullptr;       // write-once segment payloads
  int64_t spill_bytes_ = 0;          // file high-water mark
  int64_t resident_bytes_ = 0;       // page-granular resident accounting
  uint64_t lru_clock_ = 0;           // bumped on every Pin
  std::vector<Segment*> residents_;  // segments with a live PageRun
};

}  // namespace doppio
