#include "store/stream_executor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hal/job_lifecycle.h"
#include "hw/device_pool.h"
#include "hw/kernel_backend.h"
#include "hw/perf_model.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sched/result_cache.h"

namespace doppio {

namespace {

obs::Counter& WindowsStreamedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.windows_streamed",
      "segment windows scanned by the streaming executor");
  return *c;
}

obs::Counter& WindowCacheHitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.window_cache_hits",
      "segment windows served from per-segment cached result blocks");
  return *c;
}

obs::Gauge& OverlapOccupancyGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.store.overlap_occupancy_ppm",
      "last stream's transfer/execute overlap: modeled seconds saved by "
      "double-buffering, in parts-per-million of the serial total");
  return *g;
}

obs::JobTraceRecord MakeJobRecord(obs::TraceId trace,
                                  const JobStatus& status) {
  obs::JobTraceRecord record;
  record.trace_id = trace;
  record.queue_job_id = status.queue_job_id;
  record.engine_id = status.engine_id;
  record.device_id = status.device_id;
  record.enqueue_time = status.enqueue_time;
  record.dispatch_time = status.dispatch_time;
  record.start_time = status.start_time;
  record.collect_start_time = status.collect_start_time;
  record.done_bit_time = status.done_bit_time;
  record.finish_time = status.finish_time;
  record.retries = status.retries;
  record.fault_flags = status.fault_flags.load(std::memory_order_acquire);
  record.matches = status.matches;
  record.strings_processed = status.strings_processed;
  record.bytes_streamed = status.bytes_streamed;
  record.pu_kernel = status.pu_kernel;
  return record;
}

/// One submitted (or degraded) slice of the current window.
struct WindowSlice {
  JobParams params;
  FpgaJob job;
  JobOutcome outcome;
  bool fallback = false;
  int device = 0;
};

/// Per-clock-domain virtual extent of one window's jobs.
struct ClockExtent {
  SimTime first_enqueue = std::numeric_limits<SimTime>::max();
  SimTime last_finish = 0;
  bool any = false;
};

}  // namespace

Result<HudfResult> RegexpFpgaStreamed(Hal* hal, Pager* pager,
                                      const SegmentSnapshot& snapshot,
                                      const RegexConfig& config,
                                      const StreamOptions& options) {
  if (hal == nullptr || pager == nullptr) {
    return Status::InvalidArgument("streamed scan requires a HAL and a pager");
  }
  if (options.result_cache != nullptr && options.fingerprint.empty()) {
    return Status::InvalidArgument(
        "per-segment caching requires a program fingerprint");
  }
  Stopwatch udf_watch;
  obs::Tracer& tracer = obs::Tracer::Global();
  const obs::TraceId trace = tracer.BeginQuery(options.span_name);
  DevicePool* pool = hal->pool();
  const RetryPolicy& policy = hal->retry_policy();
  const DeviceConfig& dev_config = hal->device_config();

  HudfResult out;
  out.stats.trace_id = trace;
  out.stats.strategy = "fpga-streamed";
  out.stats.rows_scanned = snapshot.rows;

  const size_t W = snapshot.segments.size();

  auto fail = [&](Status st) {
    tracer.EndQuery(trace);
    return st;
  };

  // The result BAT must live in the shared arena: every window's jobs
  // write their row range of it directly from the (simulated) device.
  {
    auto result =
        Bat::New(ValueType::kInt16, snapshot.rows, hal->bat_allocator());
    if (!result.ok()) return fail(result.status());
    out.result = std::move(*result);
    Status st = out.result->AppendZeros(snapshot.rows);
    if (!st.ok()) return fail(st);
  }
  if (snapshot.rows == 0 || W == 0) {
    out.stats.udf_software_seconds = udf_watch.ElapsedSeconds();
    tracer.EndQuery(trace);
    return out;
  }

  // Window starting rows within the stitched result.
  std::vector<int64_t> row_base(W, 0);
  for (size_t w = 1; w < W; ++w) {
    row_base[w] = row_base[w - 1] + snapshot.segments[w - 1]->rows();
  }
  DOPPIO_CHECK(row_base[W - 1] + snapshot.segments[W - 1]->rows() ==
               snapshot.rows);

  // Upfront per-segment cache probe: hit windows are served as block
  // copies and never pinned, so a fully cached repeat scan does zero
  // paging and zero device work.
  std::vector<std::shared_ptr<const sched::CachedResultBlock>> hit(W);
  if (options.result_cache != nullptr) {
    for (size_t w = 0; w < W; ++w) {
      const Segment& seg = *snapshot.segments[w];
      hit[w] = options.result_cache->Get(options.fingerprint, seg.id(),
                                         Segment::kSealedVersion, seg.rows());
      if (hit[w] != nullptr) {
        std::memcpy(out.result->mutable_tail_data() + row_base[w] * 2,
                    hit[w]->values.data(),
                    static_cast<size_t>(seg.rows()) * sizeof(uint16_t));
        out.stats.rows_matched += hit[w]->rows_matched;
        WindowCacheHitsCounter().Add(1);
      }
    }
  }

  // Pin bookkeeping: prefetched[w] holds a view pinned ahead of its turn.
  std::vector<PinnedSegment> view(W);
  std::vector<char> pinned(W, 0);
  auto unpin_all = [&]() {
    for (size_t w = 0; w < W; ++w) {
      if (pinned[w]) {
        pager->Unpin(snapshot.segments[w].get());
        pinned[w] = 0;
      }
    }
  };

  // Modeled transfer and measured execution time per window, in stitch
  // order (scanned windows only; cache hits cost nothing).
  std::vector<double> t_in;
  std::vector<double> d_exec;

  auto pin_window = [&](size_t w) -> Status {
    Segment* seg = snapshot.segments[w].get();
    auto got = pager->Pin(seg);
    if (!got.ok()) return got.status();
    view[w] = *got;
    pinned[w] = 1;
    if (got->paged_in) {
      tracer.RecordInstant(trace, "page_in", pool->device(0)->now());
    }
    return Status::OK();
  };

  Stopwatch wait_watch;
  double page_in_total = 0;
  for (size_t w = 0; w < W; ++w) {
    if (hit[w] != nullptr) continue;
    const Segment& seg = *snapshot.segments[w];
    const int64_t rows = seg.rows();

    if (!pinned[w]) {
      Status st = pin_window(w);
      if (!st.ok()) {
        unpin_all();
        return fail(st);
      }
    }
    const double window_t_in =
        view[w].paged_in ? TransferSeconds(dev_config, seg.payload_bytes())
                         : 0;
    page_in_total += window_t_in;

    // Slice this window across the pool (ShardCounts placement, exactly
    // the proportional apportionment the pooled batch executor uses).
    int partitions = options.partitions;
    if (partitions <= 0) partitions = pool->total_engines();
    partitions = static_cast<int>(
        std::min<int64_t>(partitions, std::max<int64_t>(rows, 1)));
    const int64_t chunk = (rows + partitions - 1) / partitions;
    const uint32_t* window_offsets =
        reinterpret_cast<const uint32_t*>(view[w].offsets);

    std::vector<WindowSlice> slices;
    slices.reserve(static_cast<size_t>(partitions));
    for (int p = 0; p < partitions; ++p) {
      const int64_t first = p * chunk;
      if (first >= rows) break;
      const int64_t span = std::min<int64_t>(chunk, rows - first);
      if (span <= 0) continue;
      slices.emplace_back();
      WindowSlice& slice = slices.back();
      JobParams& params = slice.params;
      params.offsets = view[w].offsets + first * sizeof(uint32_t);
      params.heap = view[w].heap;
      params.result =
          out.result->mutable_tail_data() + (row_base[w] + first) * 2;
      params.count = span;
      params.offset_width = sizeof(uint32_t);
      params.heap_bytes =
          first + span < rows
              ? static_cast<int64_t>(window_offsets[first + span])
              : view[w].heap_bytes;
      params.config = config.vector.bytes();
    }

    // Deal slices to devices proportional to free engines, then submit
    // them all before awaiting any (the window's slices overlap across
    // engines in virtual time, same as a resident partitioned scan).
    {
      std::vector<int> quota =
          pool->ShardCounts(static_cast<int>(slices.size()));
      int dev = 0;
      for (WindowSlice& slice : slices) {
        while (quota[static_cast<size_t>(dev)] == 0) {
          dev = (dev + 1) % pool->size();
        }
        slice.device = dev;
        --quota[static_cast<size_t>(dev)];
        dev = (dev + 1) % pool->size();
      }
    }
    for (WindowSlice& slice : slices) {
      Result<FpgaJob> job = SubmitJobWithRetry(pool->device(slice.device),
                                               slice.params, policy,
                                               &slice.outcome);
      if (job.ok()) {
        slice.job = *job;
        pool->NoteInflight(slice.device, +1);
      } else if (IsFallbackEligible(job.status())) {
        slice.fallback = true;
      } else {
        unpin_all();
        return fail(job.status());
      }
    }

    // Double-buffering: with this window's jobs in flight, page the NEXT
    // scanned window in now so its (modeled) transfer overlaps this
    // window's execution. A budget too tight to hold two windows degrades
    // gracefully to serial page-then-scan.
    if (options.overlap) {
      for (size_t n = w + 1; n < W; ++n) {
        if (hit[n] != nullptr) continue;
        if (!pinned[n]) {
          Status st = pin_window(n);
          if (!st.ok() && st.code() != StatusCode::kResourceExhausted) {
            // IO/validation problems are real errors; only budget
            // pressure downgrades the overlap.
            unpin_all();
            return fail(st);
          }
        }
        break;
      }
    }

    // Await this window's jobs; degrade what the device could not finish.
    std::vector<ClockExtent> extents(static_cast<size_t>(pool->size()));
    bool degraded = false;
    for (WindowSlice& slice : slices) {
      if (!slice.fallback) {
        Status st = AwaitJobWithRecovery(pool->device(slice.device),
                                         &slice.job, slice.params, policy,
                                         &slice.outcome);
        pool->NoteInflight(slice.device, -1);
        if (st.ok()) {
          const JobStatus& status = slice.job.status();
          if (trace != obs::kInvalidTraceId) {
            tracer.RecordJob(MakeJobRecord(trace, status));
          }
          ClockExtent& extent = extents[static_cast<size_t>(slice.device)];
          extent.any = true;
          extent.first_enqueue =
              std::min(extent.first_enqueue, status.enqueue_time);
          extent.last_finish =
              std::max(extent.last_finish, status.finish_time);
          out.stats.rows_matched += status.matches;
          if (out.stats.pu_kernel.empty()) {
            out.stats.pu_kernel = status.pu_kernel;
          }
          out.stats.functional_bytes += status.functional_bytes;
          out.stats.functional_seconds += status.functional_host_seconds;
        } else if (IsFallbackEligible(st)) {
          slice.fallback = true;
        } else {
          unpin_all();
          return fail(st);
        }
      }
      out.stats.job_retries += slice.outcome.retries;
      if (slice.outcome.ok && slice.outcome.fault_seen) {
        out.stats.faults_recovered += 1;
      }
      pool->NoteSlice(slice.device, slice.params.count);
    }
    for (WindowSlice& slice : slices) {
      if (!slice.fallback) continue;
      degraded = true;
      if (trace != obs::kInvalidTraceId) {
        tracer.RecordInstant(trace, "sw_fallback",
                             pool->device(slice.device)->now());
      }
      auto matches = RunHostSlice(dev_config, slice.params);
      if (!matches.ok()) {
        unpin_all();
        return fail(matches.status());
      }
      out.stats.rows_matched += *matches;
      out.stats.fallback_rows += slice.params.count;
    }

    double window_exec = 0;
    for (const ClockExtent& extent : extents) {
      if (!extent.any) continue;
      window_exec = std::max(
          window_exec,
          SecondsFromPicos(extent.last_finish - extent.first_enqueue));
    }
    t_in.push_back(window_t_in);
    d_exec.push_back(window_exec);
    out.stats.windows_streamed += 1;
    WindowsStreamedCounter().Add(1);

    // Offer the clean window back to the cache under the segment's stable
    // (id, version=1) identity so a repeat scan skips it entirely. The
    // cache's own completeness guard refuses saturated blocks.
    if (options.result_cache != nullptr && !degraded) {
      const uint8_t* tail = out.result->tail_data() + row_base[w] * 2;
      std::vector<uint16_t> values(static_cast<size_t>(rows));
      std::memcpy(values.data(), tail,
                  static_cast<size_t>(rows) * sizeof(uint16_t));
      options.result_cache->Put(options.fingerprint, seg.id(),
                                Segment::kSealedVersion, std::move(values),
                                /*degraded=*/false);
    }

    pager->Unpin(snapshot.segments[w].get());
    pinned[w] = 0;
  }
  unpin_all();  // windows prefetched but never consumed (errors avoided)

  // Stitch the per-window times. Serial: each window pages in, then
  // executes. Overlapped: one transfer in flight while one window
  // executes (double buffering) — window w's transfer starts as soon as
  // the previous transfer is done AND the previous window has started
  // executing (its buffer is in use but the link is free).
  double serial = 0;
  for (size_t i = 0; i < t_in.size(); ++i) serial += t_in[i] + d_exec[i];
  double overlapped = 0;
  {
    double prev_start = 0, prev_done_in = 0, prev_end = 0;
    for (size_t i = 0; i < t_in.size(); ++i) {
      const double done_in =
          std::max(prev_start, prev_done_in) + t_in[i];
      const double start = std::max(prev_end, done_in);
      const double end = start + d_exec[i];
      prev_start = start;
      prev_done_in = done_in;
      prev_end = end;
    }
    overlapped = prev_end;
  }
  out.stats.page_in_seconds = page_in_total;
  out.stats.hw_seconds = options.overlap ? overlapped : serial;
  if (serial > 0) {
    OverlapOccupancyGauge().Set(static_cast<int64_t>(
        (serial - overlapped) / serial * 1e6));
  }

  if (out.stats.fallback_rows > 0) {
    out.stats.strategy = "fpga-streamed+sw_fallback";
  }
  out.stats.sim_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.udf_software_seconds =
      std::max(0.0, udf_watch.ElapsedSeconds() - out.stats.sim_host_seconds);
  tracer.EndQuery(trace);
  return out;
}

}  // namespace doppio
