#include "store/segmented_column.h"

#include "bat/bat.h"
#include "bat/string_heap.h"
#include "common/logging.h"

namespace doppio {

SegmentedColumn::SegmentedColumn(Pager* pager, int64_t segment_target_bytes)
    : pager_(pager),
      segment_target_bytes_(segment_target_bytes),
      id_(AcquireColumnId()) {
  DOPPIO_CHECK(pager_ != nullptr);
  DOPPIO_CHECK(segment_target_bytes_ > kHeapHeaderBytes);
  open_ = std::make_shared<Segment>(AcquireColumnId());
}

Status SegmentedColumn::Append(std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Seal first when this append would overflow the target (worst case:
  // value + terminator + padding in the heap, 4 offset bytes + pad).
  const int64_t worst_case =
      open_->payload_bytes() + static_cast<int64_t>(value.size()) +
      kHeapAlignment + 64 + static_cast<int64_t>(sizeof(uint32_t));
  if (open_->rows() > 0 && worst_case > segment_target_bytes_) {
    DOPPIO_RETURN_NOT_OK(SealLocked());
  }
  return open_->Append(value);
}

Status SegmentedColumn::Seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_->rows() == 0) return Status::OK();
  return SealLocked();
}

Status SegmentedColumn::SealLocked() {
  DOPPIO_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, open_->Seal());
  DOPPIO_RETURN_NOT_OK(pager_->AdoptSealed(open_.get(), payload));
  sealed_rows_ += open_->rows();
  sealed_.push_back(std::move(open_));
  ++version_;
  open_ = std::make_shared<Segment>(AcquireColumnId());
  return Status::OK();
}

SegmentSnapshot SegmentedColumn::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SegmentSnapshot snap;
  snap.column_id = id_;
  snap.version = version_;
  snap.rows = sealed_rows_;
  snap.segments = sealed_;
  return snap;
}

int64_t SegmentedColumn::sealed_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sealed_rows_;
}

int64_t SegmentedColumn::staged_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_->rows();
}

uint64_t SegmentedColumn::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

}  // namespace doppio
