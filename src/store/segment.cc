#include "store/segment.h"

#include <cstring>

#include "common/logging.h"

namespace doppio {

namespace {
constexpr int64_t kPayloadAlignment = 64;  // cache line / heap header size
}  // namespace

int64_t SegmentOffsetsSpanBytes(int64_t rows) {
  const int64_t raw = rows * static_cast<int64_t>(sizeof(uint32_t));
  return (raw + kPayloadAlignment - 1) / kPayloadAlignment * kPayloadAlignment;
}

Segment::Segment(uint64_t id)
    : id_(id), staging_heap_(std::make_unique<StringHeap>()) {
  heap_bytes_ = staging_heap_->size_bytes();
}

Status Segment::Append(std::string_view value) {
  if (sealed_) {
    return Status::InvalidArgument("append to a sealed segment");
  }
  DOPPIO_ASSIGN_OR_RETURN(uint32_t offset, staging_heap_->Append(value));
  staging_offsets_.push_back(offset);
  ++rows_;
  heap_bytes_ = staging_heap_->size_bytes();
  return Status::OK();
}

Result<std::vector<uint8_t>> Segment::Seal() {
  if (sealed_) {
    return Status::InvalidArgument("segment already sealed");
  }
  sealed_ = true;
  heap_bytes_ = staging_heap_->size_bytes();
  const int64_t span = offsets_span_bytes();
  std::vector<uint8_t> payload(static_cast<size_t>(span + heap_bytes_), 0);
  if (rows_ > 0) {
    std::memcpy(payload.data(), staging_offsets_.data(),
                static_cast<size_t>(rows_) * sizeof(uint32_t));
  }
  std::memcpy(payload.data() + span, staging_heap_->data(),
              static_cast<size_t>(heap_bytes_));
  staging_offsets_.clear();
  staging_offsets_.shrink_to_fit();
  staging_heap_.reset();
  return payload;
}

std::string_view Segment::GetString(const uint8_t* payload, int64_t rows,
                                    int64_t i) {
  DOPPIO_CHECK(i >= 0 && i < rows);
  const uint32_t* offsets = reinterpret_cast<const uint32_t*>(payload);
  const uint8_t* heap = payload + SegmentOffsetsSpanBytes(rows);
  return std::string_view(
      reinterpret_cast<const char*>(heap + offsets[i]));
}

}  // namespace doppio
