// Double-buffered streaming execution over a segmented column (ROADMAP
// item 4): the out-of-core counterpart of db/hudf's batch executors.
//
// A SegmentSnapshot is scanned one segment-window at a time. Each window
// is pinned into the shared arena through the pager, sliced across the
// device pool's engines exactly like a resident scan (placement via
// ShardCounts, per-slice fault degradation via RunHostSlice), and its
// results land in the window's disjoint row range of one result BAT — so
// the stitched column of match values is bit-identical to scanning the
// same rows fully resident.
//
// Timing follows the repo's virtual-time discipline. A window that had to
// be paged in pays the modeled QPI transfer (TransferSeconds over its
// payload bytes, honoring the link model); its PU execution time is the
// measured per-clock-domain extent of its jobs. With `overlap` on, the
// windows are stitched under the classic double-buffering recurrence —
// window N+1's transfer proceeds while window N executes:
//
//   done_in[w] = max(start[w-1], done_in[w-1]) + t_in[w]
//   start[w]   = max(end[w-1], done_in[w])
//   end[w]     = start[w] + d[w]
//
// (one transfer in flight, one window executing), versus the serial
// page-then-scan sum of (t_in[w] + d[w]). The chosen stitched total is
// the query's hw_seconds; page_in_seconds and windows_streamed land in
// QueryStats, page-in instants and per-job records in the tracer.
//
// Sealed segments have stable (id, version=1) identity, so when a result
// cache is supplied each window's clean block is cached per segment and a
// repeat scan skips both the transfer AND the execution of hit windows —
// the cache composes with paging instead of fighting it.
#pragma once

#include <string>

#include "common/status.h"
#include "db/hudf.h"
#include "hal/hal.h"
#include "store/pager.h"
#include "store/segmented_column.h"

namespace doppio {

namespace sched {
class ResultCache;
}  // namespace sched

struct StreamOptions {
  /// Slices per window (0 = one per engine across the pool).
  int partitions = 0;
  /// Double-buffer: overlap window N+1's page-in with window N's
  /// execution. Off = serial page-then-scan (the bench's baseline).
  bool overlap = true;
  const char* span_name = "regexp_fpga_streamed";
  /// Optional per-segment result caching. Windows whose (fingerprint,
  /// segment id, version 1, rows) block is cached are served without
  /// pinning or scanning; clean scanned windows are offered back.
  sched::ResultCache* result_cache = nullptr;
  /// Compiled-program fingerprint keying the per-segment blocks.
  /// Required when result_cache is set.
  std::string fingerprint;
};

/// Streams `snapshot` through the device(s) window by window. The result
/// BAT covers snapshot.rows rows in segment order — bit-identical to a
/// resident scan of the same strings.
Result<HudfResult> RegexpFpgaStreamed(Hal* hal, Pager* pager,
                                      const SegmentSnapshot& snapshot,
                                      const RegexConfig& config,
                                      const StreamOptions& options = {});

}  // namespace doppio
