#include "store/pager.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

namespace {

obs::Counter& PageInsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.page_ins", "segment payloads read from the spill file");
  return *c;
}

obs::Counter& PageInBytesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.page_in_bytes", "bytes paged into the shared arena");
  return *c;
}

obs::Counter& PageOutsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.page_outs", "resident segments evicted (no write-back)");
  return *c;
}

obs::Counter& PageOutBytesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.page_out_bytes", "bytes freed back to the shared arena");
  return *c;
}

obs::Counter& PinHitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.pin_hits", "pins satisfied by an already-resident payload");
  return *c;
}

obs::Counter& SealedSegmentsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.store.sealed_segments", "segments adopted into the spill file");
  return *c;
}

obs::Gauge& ResidentBytesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.store.resident_bytes", "segment bytes pinned-or-cached in arena");
  return *g;
}

obs::Gauge& SpillBytesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.store.spill_bytes", "spill-file high-water mark");
  return *g;
}

obs::Histogram& PageInSizeHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.store.page_in_size_bytes", obs::BytesBuckets(),
      "payload size per page-in");
  return *h;
}

/// Page-granular footprint of a payload (the arena hands out whole pages).
int64_t PagesBytes(int64_t payload_bytes) {
  const int64_t pages =
      (payload_bytes + kSharedPageBytes - 1) / kSharedPageBytes;
  return std::max<int64_t>(pages, 1) * kSharedPageBytes;
}

}  // namespace

Pager::Pager(SharedArena* arena, PagerOptions options)
    : arena_(arena), options_(options) {
  DOPPIO_CHECK(arena_ != nullptr);
  spill_ = std::tmpfile();
  DOPPIO_CHECK(spill_ != nullptr);
}

Pager::~Pager() {
  DropClean();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Pinned residents at destruction are a caller bug; free anyway so the
    // arena does not leak pages in tests that tear down mid-error.
    for (Segment* seg : residents_) {
      (void)arena_->FreePages(seg->run_);
      seg->resident_ = false;
      seg->pins_ = 0;
    }
    residents_.clear();
    resident_bytes_ = 0;
    if (spill_ != nullptr) std::fclose(spill_);
  }
  ResidentBytesGauge().Set(0);
}

Status Pager::AdoptSealed(Segment* segment,
                          const std::vector<uint8_t>& payload) {
  if (segment == nullptr || !segment->sealed()) {
    return Status::InvalidArgument("pager can only adopt sealed segments");
  }
  if (static_cast<int64_t>(payload.size()) != segment->payload_bytes()) {
    return Status::InvalidArgument("segment payload size mismatch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (segment->file_offset_ >= 0) {
    return Status::AlreadyExists("segment already adopted");
  }
  if (std::fseek(spill_, 0, SEEK_END) != 0) {
    return Status::IOError("spill seek failed");
  }
  const int64_t at = std::ftell(spill_);
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), spill_) !=
          payload.size()) {
    return Status::IOError("spill write failed");
  }
  if (std::fflush(spill_) != 0) {
    return Status::IOError("spill flush failed");
  }
  segment->file_offset_ = at;
  spill_bytes_ = at + static_cast<int64_t>(payload.size());
  SealedSegmentsCounter().Add(1);
  SpillBytesGauge().Set(spill_bytes_);
  return Status::OK();
}

Result<PinnedSegment> Pager::Pin(Segment* segment) {
  if (segment == nullptr || !segment->sealed()) {
    return Status::InvalidArgument("pin requires a sealed segment");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (segment->file_offset_ < 0) {
    return Status::InvalidArgument("segment was never adopted by this pager");
  }
  PinnedSegment view;
  if (!segment->resident_) {
    DOPPIO_RETURN_NOT_OK(PageInLocked(segment));
    view.paged_in = true;
  } else {
    PinHitsCounter().Add(1);
  }
  ++segment->pins_;
  segment->lru_tick_ = ++lru_clock_;
  view.offsets = segment->run_.data;
  view.heap = segment->run_.data + segment->offsets_span_bytes();
  view.heap_bytes = segment->heap_bytes();
  view.rows = segment->rows();
  return view;
}

void Pager::Unpin(Segment* segment) {
  if (segment == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  DOPPIO_CHECK(segment->pins_ > 0);
  --segment->pins_;
}

void Pager::DropClean() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Segment*> keep;
  for (Segment* seg : residents_) {
    if (seg->pins_ > 0) {
      keep.push_back(seg);
    } else {
      EvictOneLocked(seg);
    }
  }
  residents_ = std::move(keep);
}

int64_t Pager::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

int64_t Pager::spill_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spill_bytes_;
}

bool Pager::EvictForLocked(int64_t needed_bytes) {
  while (resident_bytes_ + needed_bytes > options_.budget_bytes) {
    Segment* victim = nullptr;
    size_t victim_at = 0;
    for (size_t i = 0; i < residents_.size(); ++i) {
      Segment* seg = residents_[i];
      if (seg->pins_ > 0) continue;
      if (victim == nullptr || seg->lru_tick_ < victim->lru_tick_) {
        victim = seg;
        victim_at = i;
      }
    }
    if (victim == nullptr) return false;  // everything resident is pinned
    EvictOneLocked(victim);
    residents_.erase(residents_.begin() + static_cast<ptrdiff_t>(victim_at));
  }
  return true;
}

void Pager::EvictOneLocked(Segment* victim) {
  // Sealed payloads are write-once: eviction is just freeing the run.
  const int64_t freed = victim->run_.size_bytes();
  (void)arena_->FreePages(victim->run_);
  victim->run_ = PageRun{};
  victim->resident_ = false;
  resident_bytes_ -= freed;
  PageOutsCounter().Add(1);
  PageOutBytesCounter().Add(freed);
  ResidentBytesGauge().Set(resident_bytes_);
}

Status Pager::PageInLocked(Segment* segment) {
  const int64_t payload = std::max<int64_t>(segment->payload_bytes(), 1);
  const int64_t footprint = PagesBytes(payload);
  if (footprint > options_.budget_bytes) {
    return Status::ResourceExhausted("segment larger than the pager budget");
  }
  if (!EvictForLocked(footprint)) {
    return Status::ResourceExhausted(
        "pager budget exhausted: all resident segments are pinned");
  }
  Result<PageRun> run = arena_->AllocatePages(payload);
  while (!run.ok()) {
    // Under budget but the arena itself is out of (contiguous) pages —
    // shed LRU residents one at a time until the allocation fits.
    Segment* victim = nullptr;
    size_t victim_at = 0;
    for (size_t i = 0; i < residents_.size(); ++i) {
      Segment* seg = residents_[i];
      if (seg->pins_ > 0) continue;
      if (victim == nullptr || seg->lru_tick_ < victim->lru_tick_) {
        victim = seg;
        victim_at = i;
      }
    }
    if (victim == nullptr) return run.status();
    EvictOneLocked(victim);
    residents_.erase(residents_.begin() + static_cast<ptrdiff_t>(victim_at));
    run = arena_->AllocatePages(payload);
  }
  // Read the payload from the spill file into the fresh run.
  if (std::fseek(spill_, static_cast<long>(segment->file_offset_),
                 SEEK_SET) != 0) {
    (void)arena_->FreePages(*run);
    return Status::IOError("spill seek failed");
  }
  const size_t want = static_cast<size_t>(segment->payload_bytes());
  if (want > 0 && std::fread(run->data, 1, want, spill_) != want) {
    (void)arena_->FreePages(*run);
    return Status::IOError("spill read failed");
  }
  segment->run_ = *run;
  segment->resident_ = true;
  residents_.push_back(segment);
  resident_bytes_ += run->size_bytes();
  PageInsCounter().Add(1);
  PageInBytesCounter().Add(segment->payload_bytes());
  PageInSizeHistogram().Observe(static_cast<double>(segment->payload_bytes()));
  ResidentBytesGauge().Set(resident_bytes_);
  return Status::OK();
}

}  // namespace doppio
