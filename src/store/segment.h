// One 2 MB-aligned column segment: the paging unit of the out-of-core
// store (ROADMAP item 4).
//
// A segment has two lives. While OPEN it is a host-memory staging area —
// appended strings accumulate in a std::vector of offsets plus a regular
// StringHeap, invisible to queries. Seal() freezes it into an immutable
// payload with the layout
//
//   [offsets: rows x uint32, zero-padded to a 64-byte boundary]
//   [heap:    StringHeap image, 64-byte metadata header + strings]
//
// where each offset is heap-relative exactly as in a resident Bat, so a
// pinned segment feeds the FPGA job parameters (offsets ptr / heap ptr /
// heap_bytes / count) without any translation and every kernel backend
// runs on it unchanged. Sealed payloads are written once to the pager's
// spill file and never mutated again — page-out is just freeing the arena
// run, no write-back — which is what makes eviction safe under concurrent
// readers (pin counts, store/pager.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "bat/string_heap.h"
#include "common/macros.h"
#include "common/status.h"
#include "mem/arena.h"

namespace doppio {

class Pager;

/// Pads an offsets span of `rows` uint32s to the 64-byte cache-line
/// boundary the heap image starts at.
int64_t SegmentOffsetsSpanBytes(int64_t rows);

class Segment {
 public:
  /// `id` must come from AcquireColumnId() so sealed segments can key the
  /// shared result cache without colliding with Bat ids.
  explicit Segment(uint64_t id);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Segment);

  uint64_t id() const { return id_; }
  /// Sealed segments are immutable; their cache version is always 1.
  static constexpr uint64_t kSealedVersion = 1;

  bool sealed() const { return sealed_; }
  int64_t rows() const { return rows_; }
  /// Size of the heap image (header + strings + padding). Valid once
  /// sealed; while open it tracks the staging heap.
  int64_t heap_bytes() const { return heap_bytes_; }
  /// Offsets span including the pad to the heap's 64-byte start.
  int64_t offsets_span_bytes() const { return SegmentOffsetsSpanBytes(rows_); }
  /// Total payload bytes: offsets span + heap image.
  int64_t payload_bytes() const { return offsets_span_bytes() + heap_bytes_; }

  // --- Staging (open segments only) ---------------------------------------
  Status Append(std::string_view value);
  /// Freezes the segment and returns the serialized payload. The staging
  /// memory is released; the caller (SegmentedColumn) hands the payload to
  /// the pager's spill file.
  Result<std::vector<uint8_t>> Seal();

  /// Reads string `i` from a resident payload base pointer (tests and
  /// host-side verification; queries go through JobParams).
  static std::string_view GetString(const uint8_t* payload, int64_t rows,
                                    int64_t i);

 private:
  friend class Pager;

  const uint64_t id_;
  bool sealed_ = false;
  int64_t rows_ = 0;
  int64_t heap_bytes_ = 0;

  // Staging state (discarded at seal).
  std::vector<uint32_t> staging_offsets_;
  std::unique_ptr<StringHeap> staging_heap_;

  // Residency state. Guarded by the owning Pager's mutex — never touched
  // outside it once the segment is registered.
  int64_t file_offset_ = -1;  // position in the pager's spill file
  PageRun run_;               // valid iff resident_
  bool resident_ = false;
  int pins_ = 0;
  uint64_t lru_tick_ = 0;
};

}  // namespace doppio
