#include "regex/simd_scan.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define DOPPIO_SIMD_X86 1
#include <immintrin.h>
#endif

namespace doppio {
namespace simd {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel DetectedSimdLevel() {
#ifdef DOPPIO_SIMD_X86
  static const SimdLevel detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    return SimdLevel::kSse2;  // x86-64 baseline
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  SimdLevel level = DetectedSimdLevel();
  const char* cap = std::getenv("DOPPIO_SIMD_LEVEL");
  if (cap != nullptr) {
    if (std::strcmp(cap, "scalar") == 0) {
      level = SimdLevel::kScalar;
    } else if (std::strcmp(cap, "sse2") == 0 && level > SimdLevel::kSse2) {
      level = SimdLevel::kSse2;
    } else if (std::strcmp(cap, "avx2") == 0) {
      // Cap at avx2 == no cap; unknown values are also ignored.
    }
  }
  return level;
}

namespace {

size_t FindByteSetScalar(std::string_view haystack, size_t from,
                         const uint8_t* bytes, int n) {
  if (n == 1) {
    // libc's memchr is itself vectorized; this is the reference the wider
    // paths must agree with, and the fast path for single-byte sets.
    if (from >= haystack.size()) return std::string_view::npos;
    const void* hit = std::memchr(haystack.data() + from, bytes[0],
                                  haystack.size() - from);
    return hit == nullptr
               ? std::string_view::npos
               : static_cast<size_t>(static_cast<const char*>(hit) -
                                     haystack.data());
  }
  bool table[256] = {};
  for (int k = 0; k < n; ++k) table[bytes[k]] = true;
  for (size_t i = from; i < haystack.size(); ++i) {
    if (table[static_cast<uint8_t>(haystack[i])]) return i;
  }
  return std::string_view::npos;
}

#ifdef DOPPIO_SIMD_X86

size_t FindByteSetSse2(std::string_view haystack, size_t from,
                       const uint8_t* bytes, int n) {
  const char* data = haystack.data();
  const size_t size = haystack.size();
  __m128i needles[kMaxScanBytes];
  for (int k = 0; k < n; ++k) {
    needles[k] = _mm_set1_epi8(static_cast<char>(bytes[k]));
  }
  size_t i = from;
  for (; i + 16 <= size; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i hit = _mm_cmpeq_epi8(v, needles[0]);
    for (int k = 1; k < n; ++k) {
      hit = _mm_or_si128(hit, _mm_cmpeq_epi8(v, needles[k]));
    }
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(hit));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  return FindByteSetScalar(haystack, i, bytes, n);
}

__attribute__((target("avx2"))) size_t FindByteSetAvx2(
    std::string_view haystack, size_t from, const uint8_t* bytes, int n) {
  const char* data = haystack.data();
  const size_t size = haystack.size();
  __m256i needles[kMaxScanBytes];
  for (int k = 0; k < n; ++k) {
    needles[k] = _mm256_set1_epi8(static_cast<char>(bytes[k]));
  }
  size_t i = from;
  for (; i + 32 <= size; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i hit = _mm256_cmpeq_epi8(v, needles[0]);
    for (int k = 1; k < n; ++k) {
      hit = _mm256_or_si256(hit, _mm256_cmpeq_epi8(v, needles[k]));
    }
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(hit));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  return FindByteSetSse2(haystack, i, bytes, n);
}

#endif  // DOPPIO_SIMD_X86

}  // namespace

size_t FindByteSetAtLevel(std::string_view haystack, size_t from,
                          const uint8_t* bytes, int n, SimdLevel level) {
  if (level > DetectedSimdLevel()) level = DetectedSimdLevel();
#ifdef DOPPIO_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return FindByteSetAvx2(haystack, from, bytes, n);
    case SimdLevel::kSse2:
      return FindByteSetSse2(haystack, from, bytes, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return FindByteSetScalar(haystack, from, bytes, n);
}

size_t FindByteSet(std::string_view haystack, size_t from,
                   const uint8_t* bytes, int n) {
  return FindByteSetAtLevel(haystack, from, bytes, n, ActiveSimdLevel());
}

}  // namespace simd
}  // namespace doppio
