// Lazy-DFA executor (subset construction with cached transitions).
//
// This is the "efficient software" strategy: linear scan with one table
// lookup per byte once states are warm. It serves as the ground truth the
// hardware simulation is property-tested against, and as the CPU
// post-processing pass of hybrid execution (paper §7.8).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "regex/matcher.h"
#include "regex/thompson_nfa.h"

namespace doppio {

class DfaMatcher : public StringMatcher {
 public:
  /// Compiles `pattern` (regex dialect) with the given options.
  static Result<std::unique_ptr<DfaMatcher>> Compile(
      std::string_view pattern, const CompileOptions& options = {});

  /// Builds the matcher from an already-compiled program.
  static std::unique_ptr<DfaMatcher> FromProgram(Program program);

  MatchResult Find(std::string_view input) const override;

  /// Number of DFA states materialized so far (grows lazily).
  size_t num_states() const { return states_.size(); }

  /// Subset construction can explode for pathological patterns; when the
  /// cache exceeds this bound it is flushed and rebuilt lazily (the RE2
  /// approach), keeping memory bounded at the cost of re-deriving states.
  static constexpr size_t kMaxCachedStates = 10'000;

  /// How many times the cache was flushed (observability for tests).
  int64_t cache_flushes() const { return cache_flushes_; }

 private:
  struct DfaState {
    std::vector<int> char_insts;  // sorted kChar instruction indices
    bool accept = false;
    // Lazily filled transition table; nullptr = not yet computed.
    std::array<DfaState*, 256> next{};
  };

  explicit DfaMatcher(Program program);
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(DfaMatcher);

  // Adds the epsilon closure of `pc` into the work set.
  void AddClosure(int pc, std::vector<bool>* on_list,
                  std::vector<int>* char_insts, bool* accept) const;

  DfaState* Intern(std::vector<int> char_insts, bool accept) const;
  DfaState* Step(DfaState* state, uint8_t byte) const;

  void FlushCache() const;

  Program program_;
  mutable std::map<std::pair<std::vector<int>, bool>,
                   std::unique_ptr<DfaState>>
      states_;
  // States kept alive across cache flushes (a scan in progress may still
  // reference one); their transition pointers are reset at flush time.
  mutable std::vector<std::unique_ptr<DfaState>> retired_;
  mutable DfaState* start_state_ = nullptr;
  mutable int64_t cache_flushes_ = 0;
  bool start_accepts_ = false;  // pattern matches the empty string
};

}  // namespace doppio
