// Compiles a pattern AST into the token-level NFA of the hardware PU
// (paper §6.2-6.3).
//
// The pipeline is:
//   1. bounded repetitions are expanded by duplication ({n}, {n,m});
//   2. a Glushkov-style construction over *token occurrences*: maximal
//      literal/class runs inside a concatenation collapse into one token
//      chain (the character-sequence optimization of §6.3), and '.*' glue
//      becomes the latch flag on the preceding states — costing no
//      character matchers;
//   3. equivalent states are merged, which is what maps (Blue|Gray) onto a
//      single state with two trigger tokens;
//   4. identical token chains are deduplicated.
//
// Patterns the hardware cannot express (anchored searches, patterns that
// match the empty string) fail with CapacityExceeded — the same signal an
// over-capacity pattern produces — so callers uniformly fall back to
// software or hybrid execution.
#pragma once

#include "common/status.h"
#include "regex/matcher.h"
#include "regex/pattern_ast.h"
#include "regex/token_nfa.h"

namespace doppio {

/// Extracts the token NFA. The result is unbounded — checking it against a
/// deployed PU geometry (max characters / max states) happens in the
/// hardware config compiler.
Result<TokenNfa> ExtractTokenNfa(const AstNode& ast,
                                 const CompileOptions& options = {});

/// Convenience: parse + extract.
Result<TokenNfa> ExtractTokenNfa(std::string_view pattern,
                                 const CompileOptions& options = {});

}  // namespace doppio
