// Breadth-first NFA simulation (Thompson/Pike style).
//
// The paper notes that "in software NFAs cannot be evaluated efficiently,
// since for each new input every active state has to be updated" (§6):
// this executor is exactly that — O(|input| × |program|) with no caching —
// and doubles as a second independent oracle for the property tests.
#pragma once

#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "regex/matcher.h"
#include "regex/thompson_nfa.h"

namespace doppio {

class NfaMatcher : public StringMatcher {
 public:
  static Result<std::unique_ptr<NfaMatcher>> Compile(
      std::string_view pattern, const CompileOptions& options = {});
  static std::unique_ptr<NfaMatcher> FromProgram(Program program);

  MatchResult Find(std::string_view input) const override;

 private:
  explicit NfaMatcher(Program program) : program_(std::move(program)) {}
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(NfaMatcher);

  // Adds pc's epsilon closure to the thread list.
  void AddThread(int pc, std::vector<bool>* on_list, std::vector<int>* list,
                 bool* accept) const;

  Program program_;
};

}  // namespace doppio
