#include "regex/pattern_parser.h"

#include <cctype>

namespace doppio {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view pattern) : input_(pattern) {}

  Result<AstNodePtr> Parse() {
    auto result = ParseAlternation();
    if (!result.ok()) return result.status();
    if (!AtEnd()) {
      return Error("unexpected '" + std::string(1, Peek()) + "'");
    }
    return result;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance() { return input_[pos_++]; }
  bool Match(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("regex parse error at position " +
                              std::to_string(pos_) + ": " + msg);
  }

  Result<AstNodePtr> ParseAlternation() {
    std::vector<AstNodePtr> alts;
    auto first = ParseConcat();
    if (!first.ok()) return first.status();
    alts.push_back(std::move(*first));
    while (Match('|')) {
      auto next = ParseConcat();
      if (!next.ok()) return next.status();
      alts.push_back(std::move(*next));
    }
    return AstNode::Alternate(std::move(alts));
  }

  Result<AstNodePtr> ParseConcat() {
    std::vector<AstNodePtr> parts;
    std::string literal_run;
    auto flush_literal = [&]() {
      if (!literal_run.empty()) {
        parts.push_back(AstNode::Literal(std::move(literal_run)));
        literal_run.clear();
      }
    };

    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      bool was_group = false;
      auto atom = ParseAtom(&was_group);
      if (!atom.ok()) return atom.status();
      AstNodePtr node = std::move(*atom);

      // Repetition binds to the last atom only; if a multi-character
      // literal (not a parenthesized group) is followed by a quantifier,
      // peel its last character.
      if (!AtEnd() && IsQuantifierStart(Peek())) {
        if (!was_group && node->kind == AstKind::kLiteral &&
            node->literal.size() > 1) {
          std::string head = node->literal.substr(0, node->literal.size() - 1);
          std::string tail(1, node->literal.back());
          literal_run += head;
          node = AstNode::Literal(std::move(tail));
        }
        flush_literal();
        auto repeated = ParseQuantifier(std::move(node));
        if (!repeated.ok()) return repeated.status();
        parts.push_back(std::move(*repeated));
        continue;
      }

      if (node->kind == AstKind::kLiteral) {
        literal_run += node->literal;
      } else {
        flush_literal();
        parts.push_back(std::move(node));
      }
    }
    flush_literal();
    if (parts.empty()) return AstNode::Empty();
    return AstNode::Concat(std::move(parts));
  }

  static bool IsQuantifierStart(char c) {
    return c == '*' || c == '+' || c == '?' || c == '{';
  }

  Result<AstNodePtr> ParseQuantifier(AstNodePtr atom) {
    if (atom->kind == AstKind::kEmpty) {
      return Error("quantifier with nothing to repeat");
    }
    char q = Advance();
    int min = 0;
    int max = -1;
    switch (q) {
      case '*':
        min = 0;
        max = -1;
        break;
      case '+':
        min = 1;
        max = -1;
        break;
      case '?':
        min = 0;
        max = 1;
        break;
      case '{': {
        auto n = ParseInt();
        if (!n.ok()) return n.status();
        min = *n;
        max = min;
        if (Match(',')) {
          if (Match('}')) {
            max = -1;
            return AstNode::Repeat(std::move(atom), min, max);
          }
          auto m = ParseInt();
          if (!m.ok()) return m.status();
          max = *m;
        }
        if (!Match('}')) return Error("expected '}' in repetition");
        if (max >= 0 && max < min) {
          return Error("repetition bounds out of order");
        }
        break;
      }
      default:
        return Error("internal: bad quantifier");
    }
    // Reject double quantifiers like a** (ill-formed in this dialect).
    if (!AtEnd() && IsQuantifierStart(Peek())) {
      return Error("nested quantifier");
    }
    return AstNode::Repeat(std::move(atom), min, max);
  }

  Result<int> ParseInt() {
    if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return Error("expected number");
    }
    long value = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      value = value * 10 + (Advance() - '0');
      if (value > 4096) return Error("repetition count too large");
    }
    return static_cast<int>(value);
  }

  Result<AstNodePtr> ParseAtom(bool* was_group) {
    *was_group = false;
    char c = Advance();
    switch (c) {
      case '(': {
        auto inner = ParseAlternation();
        if (!inner.ok()) return inner.status();
        if (!Match(')')) return Error("expected ')'");
        *was_group = true;
        return inner;
      }
      case '[':
        return ParseClass();
      case '.':
        return AstNode::Class(CharSet::AnyChar());
      case '\\':
        return ParseEscape();
      case '*':
      case '+':
      case '?':
        return Error("quantifier with nothing to repeat");
      case '{':
      case '}':
      case ']':
        return Error(std::string("unescaped '") + c + "'");
      default:
        return AstNode::Literal(std::string(1, c));
    }
  }

  Result<AstNodePtr> ParseEscape() {
    if (AtEnd()) return Error("dangling escape");
    char c = Advance();
    switch (c) {
      case 'd':
        return AstNode::Class(CharSet::Range('0', '9'));
      case 'w': {
        CharSet set = CharSet::Range('a', 'z');
        set.AddRange('A', 'Z');
        set.AddRange('0', '9');
        set.Add('_');
        return AstNode::Class(set);
      }
      case 's': {
        CharSet set;
        set.Add(' ');
        set.Add('\t');
        set.Add('\r');
        set.Add('\n');
        return AstNode::Class(set);
      }
      case 'n':
        return AstNode::Literal("\n");
      case 't':
        return AstNode::Literal("\t");
      default:
        // Any other escaped byte matches itself (covers \. \: \\ etc.).
        return AstNode::Literal(std::string(1, c));
    }
  }

  Result<AstNodePtr> ParseClass() {
    CharSet set;
    bool negate = Match('^');
    bool first = true;
    while (true) {
      if (AtEnd()) return Error("unterminated character class");
      char c = Advance();
      if (c == ']' && !first) break;
      first = false;
      uint8_t lo;
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape in class");
        char esc = Advance();
        if (esc == 'd') {
          set.AddRange('0', '9');
          continue;
        }
        lo = static_cast<uint8_t>(esc);
      } else {
        lo = static_cast<uint8_t>(c);
      }
      // Range?
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] != ']') {
        Advance();  // '-'
        char hc = Advance();
        uint8_t hi;
        if (hc == '\\') {
          if (AtEnd()) return Error("dangling escape in class");
          hi = static_cast<uint8_t>(Advance());
        } else {
          hi = static_cast<uint8_t>(hc);
        }
        if (hi < lo) return Error("class range out of order");
        set.AddRange(lo, hi);
      } else {
        set.Add(lo);
      }
    }
    if (set.Empty()) return Error("empty character class");
    if (negate) set.Negate();
    return AstNode::Class(set);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstNodePtr> ParsePattern(std::string_view pattern) {
  return Parser(pattern).Parse();
}

Result<AnchoredPattern> ParseAnchoredPattern(std::string_view pattern) {
  AnchoredPattern out;
  if (!pattern.empty() && pattern.front() == '^') {
    out.anchor_start = true;
    pattern.remove_prefix(1);
  }
  if (!pattern.empty() && pattern.back() == '$') {
    // A trailing '$' is an anchor only when not escaped.
    size_t backslashes = 0;
    for (size_t i = pattern.size() - 1; i-- > 0 && pattern[i] == '\\';) {
      ++backslashes;
    }
    if (backslashes % 2 == 0) {
      out.anchor_end = true;
      pattern.remove_suffix(1);
    }
  }
  DOPPIO_ASSIGN_OR_RETURN(out.ast, ParsePattern(pattern));
  return out;
}

}  // namespace doppio
