// Recursive backtracking executor, PCRE-style.
//
// MonetDB's REGEXP_LIKE is implemented over PCRE; its cost grows with
// pattern complexity and it can go super-linear on ambiguous patterns.
// This executor reproduces that behaviour (it is the software baseline for
// Table 1 and the REGEXP_LIKE lines in Figs. 9 and 11). A step budget
// guards against catastrophic blow-up; exceeding it is reported out of band.
#pragma once

#include <memory>

#include "common/macros.h"
#include "common/status.h"
#include "regex/matcher.h"
#include "regex/thompson_nfa.h"

namespace doppio {

class BacktrackMatcher : public StringMatcher {
 public:
  static constexpr int64_t kDefaultStepBudget = 100'000'000;

  static Result<std::unique_ptr<BacktrackMatcher>> Compile(
      std::string_view pattern, const CompileOptions& options = {});
  static std::unique_ptr<BacktrackMatcher> FromProgram(Program program);

  MatchResult Find(std::string_view input) const override;

  /// True if the last Find bailed out on the step budget (result invalid).
  bool last_find_exceeded_budget() const { return budget_exceeded_; }

  void set_step_budget(int64_t steps) { step_budget_ = steps; }

  /// Total backtracking steps across all Find calls (cost instrumentation).
  int64_t total_steps() const { return total_steps_; }

 private:
  explicit BacktrackMatcher(Program program) : program_(std::move(program)) {}
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(BacktrackMatcher);

  bool Run(int pc, size_t pos, std::string_view input, size_t* end) const;

  Program program_;
  int64_t step_budget_ = kDefaultStepBudget;
  mutable int64_t steps_ = 0;
  mutable int64_t total_steps_ = 0;
  mutable bool budget_exceeded_ = false;
};

}  // namespace doppio
