// Recursive-descent parser for the SQL regular-expression dialect
// (the subset exercised by REGEXP_LIKE queries in the paper):
//
//   alternation:  a|b
//   grouping:     (ab)
//   classes:      [abc] [a-z0-9] [^x] and '.'
//   repetition:   * + ? {n} {n,} {n,m}
//   escapes:      \. \* \+ \? \( \) \[ \] \{ \} \| \\ \: \- \d \w \s
//
// Backreferences are not part of the dialect. '^' and '$' are supported
// only at the very edges of the pattern (SQL REGEXP_LIKE semantics:
// containment test unless explicitly anchored); the hardware engine
// performs unanchored search, so anchored patterns fall back to software.
#pragma once

#include <string_view>

#include "common/status.h"
#include "regex/matcher.h"
#include "regex/pattern_ast.h"

namespace doppio {

/// Parses `pattern` into an AST. Errors carry the offending position.
/// '^' / '$' inside the pattern are literal characters here.
Result<AstNodePtr> ParsePattern(std::string_view pattern);

struct AnchoredPattern {
  AstNodePtr ast;
  bool anchor_start = false;
  bool anchor_end = false;

  /// Folds the anchors into compile options (preserving other fields).
  CompileOptions Options(CompileOptions base = {}) const {
    base.anchor_start = base.anchor_start || anchor_start;
    base.anchor_end = base.anchor_end || anchor_end;
    return base;
  }
};

/// Parses a pattern with optional edge anchors: a leading '^' and/or a
/// trailing unescaped '$' are stripped into flags; everything else is
/// handed to ParsePattern.
Result<AnchoredPattern> ParseAnchoredPattern(std::string_view pattern);

}  // namespace doppio
