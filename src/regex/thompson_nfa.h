// Thompson construction: AST -> byte-level NFA program.
//
// The program is a list of instructions in the style of Thompson's original
// regex machine (Char / Split / Jmp / Accept). It is the single compiled
// form behind three executors with very different cost profiles:
//   * BacktrackMatcher — recursive backtracking, PCRE-like (the slow
//     software baseline of the paper's Table 1),
//   * NfaMatcher      — breadth-first NFA simulation,
//   * DfaMatcher      — lazy subset construction (ground truth + the
//     hybrid-execution post-processor).
#pragma once

#include <vector>

#include "common/status.h"
#include "regex/matcher.h"
#include "regex/pattern_ast.h"

namespace doppio {

enum class OpCode : uint8_t { kChar, kSplit, kJmp, kAccept };

struct Inst {
  OpCode op;
  CharSet chars;  // kChar only
  int x = -1;     // kSplit: preferred branch; kJmp: target
  int y = -1;     // kSplit: alternate branch
};

class Program {
 public:
  Program() = default;
  Program(std::vector<Inst> insts, CompileOptions options)
      : insts_(std::move(insts)), options_(options) {}

  const std::vector<Inst>& insts() const { return insts_; }
  int start() const { return 0; }
  const CompileOptions& options() const { return options_; }
  int size() const { return static_cast<int>(insts_.size()); }

 private:
  std::vector<Inst> insts_;
  CompileOptions options_;
};

/// Compiles `ast` into a program. Bounded repetitions are expanded by
/// duplication; the expansion is capped (CapacityExceeded beyond ~64 Ki
/// instructions) to keep pathological patterns from exhausting memory.
Result<Program> CompileProgram(const AstNode& ast,
                               const CompileOptions& options = {});

}  // namespace doppio
