#include "regex/dfa_matcher.h"

#include <algorithm>

#include "regex/pattern_parser.h"

namespace doppio {

Result<std::unique_ptr<DfaMatcher>> DfaMatcher::Compile(
    std::string_view pattern, const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  DOPPIO_ASSIGN_OR_RETURN(
      Program program, CompileProgram(*parsed.ast, parsed.Options(options)));
  return FromProgram(std::move(program));
}

std::unique_ptr<DfaMatcher> DfaMatcher::FromProgram(Program program) {
  return std::unique_ptr<DfaMatcher>(new DfaMatcher(std::move(program)));
}

DfaMatcher::DfaMatcher(Program program) : program_(std::move(program)) {
  std::vector<bool> on_list(static_cast<size_t>(program_.size()), false);
  std::vector<int> char_insts;
  bool accept = false;
  AddClosure(program_.start(), &on_list, &char_insts, &accept);
  start_accepts_ = accept;
  std::sort(char_insts.begin(), char_insts.end());
  start_state_ = Intern(std::move(char_insts), accept);
}

void DfaMatcher::AddClosure(int pc, std::vector<bool>* on_list,
                            std::vector<int>* char_insts,
                            bool* accept) const {
  if ((*on_list)[static_cast<size_t>(pc)]) return;
  (*on_list)[static_cast<size_t>(pc)] = true;
  const Inst& inst = program_.insts()[static_cast<size_t>(pc)];
  switch (inst.op) {
    case OpCode::kChar:
      char_insts->push_back(pc);
      break;
    case OpCode::kAccept:
      *accept = true;
      break;
    case OpCode::kJmp:
      AddClosure(inst.x, on_list, char_insts, accept);
      break;
    case OpCode::kSplit:
      AddClosure(inst.x, on_list, char_insts, accept);
      AddClosure(inst.y, on_list, char_insts, accept);
      break;
  }
}

DfaMatcher::DfaState* DfaMatcher::Intern(std::vector<int> char_insts,
                                         bool accept) const {
  auto key = std::make_pair(char_insts, accept);
  auto it = states_.find(key);
  if (it != states_.end()) return it->second.get();
  auto state = std::make_unique<DfaState>();
  state->char_insts = std::move(char_insts);
  state->accept = accept;
  DfaState* raw = state.get();
  states_.emplace(std::move(key), std::move(state));
  return raw;
}

void DfaMatcher::FlushCache() const {
  ++cache_flushes_;
  states_.clear();
  for (auto& kept : retired_) kept->next.fill(nullptr);
  // Rebuild the start state.
  std::vector<bool> on_list(static_cast<size_t>(program_.size()), false);
  std::vector<int> char_insts;
  bool accept = false;
  AddClosure(program_.start(), &on_list, &char_insts, &accept);
  std::sort(char_insts.begin(), char_insts.end());
  start_state_ = Intern(std::move(char_insts), accept);
}

DfaMatcher::DfaState* DfaMatcher::Step(DfaState* state, uint8_t byte) const {
  DfaState* cached = state->next[byte];
  if (cached != nullptr) return cached;

  if (states_.size() >= kMaxCachedStates) {
    // Keep the in-flight state alive, then flush everything else.
    auto key = std::make_pair(state->char_insts, state->accept);
    auto it = states_.find(key);
    if (it != states_.end()) {
      retired_.push_back(std::move(it->second));
      states_.erase(it);
    }
    state->next.fill(nullptr);
    FlushCache();
  }

  std::vector<bool> on_list(static_cast<size_t>(program_.size()), false);
  std::vector<int> char_insts;
  bool accept = false;
  for (int pc : state->char_insts) {
    const Inst& inst = program_.insts()[static_cast<size_t>(pc)];
    if (inst.chars.Test(byte)) {
      AddClosure(pc + 1, &on_list, &char_insts, &accept);
    }
  }
  if (!program_.options().anchor_start) {
    // Unanchored search: a new match attempt may begin at every byte.
    for (int pc : start_state_->char_insts) {
      AddClosure(pc, &on_list, &char_insts, &accept);
    }
    accept = accept || start_accepts_;
  }
  std::sort(char_insts.begin(), char_insts.end());
  char_insts.erase(std::unique(char_insts.begin(), char_insts.end()),
                   char_insts.end());
  DfaState* next = Intern(std::move(char_insts), accept);
  state->next[byte] = next;
  return next;
}

MatchResult DfaMatcher::Find(std::string_view input) const {
  const bool anchor_end = program_.options().anchor_end;
  DfaState* state = start_state_;
  if (!anchor_end && state->accept) {
    return MatchResult{true, 0};  // pattern matches the empty string
  }
  for (size_t i = 0; i < input.size(); ++i) {
    state = Step(state, static_cast<uint8_t>(input[i]));
    if (!anchor_end && state->accept) {
      return MatchResult{true, static_cast<int32_t>(i + 1)};
    }
    if (state->char_insts.empty() && !state->accept) {
      // Dead state: no live threads and no way to start new ones
      // (anchored search only; unanchored always reseeds).
      if (program_.options().anchor_start) return MatchResult{};
    }
  }
  if (anchor_end && state->accept) {
    return MatchResult{true, static_cast<int32_t>(input.size())};
  }
  return MatchResult{};
}

}  // namespace doppio
