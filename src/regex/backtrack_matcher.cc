#include "regex/backtrack_matcher.h"

#include "regex/pattern_parser.h"

namespace doppio {

Result<std::unique_ptr<BacktrackMatcher>> BacktrackMatcher::Compile(
    std::string_view pattern, const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  DOPPIO_ASSIGN_OR_RETURN(
      Program program, CompileProgram(*parsed.ast, parsed.Options(options)));
  return FromProgram(std::move(program));
}

std::unique_ptr<BacktrackMatcher> BacktrackMatcher::FromProgram(
    Program program) {
  return std::unique_ptr<BacktrackMatcher>(
      new BacktrackMatcher(std::move(program)));
}

bool BacktrackMatcher::Run(int pc, size_t pos, std::string_view input,
                           size_t* end) const {
  // Iterative on the main thread of control; recursion only at kSplit,
  // exactly like a classic backtracking VM.
  while (true) {
    if (++steps_ > step_budget_) {
      budget_exceeded_ = true;
      return false;
    }
    const Inst& inst = program_.insts()[static_cast<size_t>(pc)];
    switch (inst.op) {
      case OpCode::kChar:
        if (pos >= input.size() ||
            !inst.chars.Test(static_cast<uint8_t>(input[pos]))) {
          return false;
        }
        ++pos;
        ++pc;
        break;
      case OpCode::kJmp:
        pc = inst.x;
        break;
      case OpCode::kSplit:
        if (Run(inst.x, pos, input, end)) return true;
        if (budget_exceeded_) return false;
        pc = inst.y;
        break;
      case OpCode::kAccept:
        if (program_.options().anchor_end && pos != input.size()) {
          return false;
        }
        *end = pos;
        return true;
    }
  }
}

MatchResult BacktrackMatcher::Find(std::string_view input) const {
  steps_ = 0;
  budget_exceeded_ = false;
  size_t end = 0;
  // Leftmost semantics: try every start position in order, greedy within.
  size_t max_start = program_.options().anchor_start ? 0 : input.size();
  for (size_t start = 0; start <= max_start; ++start) {
    if (Run(program_.start(), start, input, &end)) {
      total_steps_ += steps_;
      return MatchResult{true, static_cast<int32_t>(end)};
    }
    if (budget_exceeded_) break;
  }
  total_steps_ += steps_;
  return MatchResult{};
}

}  // namespace doppio
