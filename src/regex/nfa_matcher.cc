#include "regex/nfa_matcher.h"

#include "regex/pattern_parser.h"

namespace doppio {

Result<std::unique_ptr<NfaMatcher>> NfaMatcher::Compile(
    std::string_view pattern, const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  DOPPIO_ASSIGN_OR_RETURN(
      Program program, CompileProgram(*parsed.ast, parsed.Options(options)));
  return FromProgram(std::move(program));
}

std::unique_ptr<NfaMatcher> NfaMatcher::FromProgram(Program program) {
  return std::unique_ptr<NfaMatcher>(new NfaMatcher(std::move(program)));
}

void NfaMatcher::AddThread(int pc, std::vector<bool>* on_list,
                           std::vector<int>* list, bool* accept) const {
  if ((*on_list)[static_cast<size_t>(pc)]) return;
  (*on_list)[static_cast<size_t>(pc)] = true;
  const Inst& inst = program_.insts()[static_cast<size_t>(pc)];
  switch (inst.op) {
    case OpCode::kChar:
      list->push_back(pc);
      break;
    case OpCode::kAccept:
      *accept = true;
      break;
    case OpCode::kJmp:
      AddThread(inst.x, on_list, list, accept);
      break;
    case OpCode::kSplit:
      AddThread(inst.x, on_list, list, accept);
      AddThread(inst.y, on_list, list, accept);
      break;
  }
}

MatchResult NfaMatcher::Find(std::string_view input) const {
  const bool anchor_start = program_.options().anchor_start;
  const bool anchor_end = program_.options().anchor_end;
  const size_t n_inst = static_cast<size_t>(program_.size());

  std::vector<int> current;
  std::vector<int> next;
  std::vector<bool> on_list(n_inst, false);
  bool accept = false;

  AddThread(program_.start(), &on_list, &current, &accept);
  if (accept && !anchor_end) return MatchResult{true, 0};

  for (size_t i = 0; i < input.size(); ++i) {
    uint8_t byte = static_cast<uint8_t>(input[i]);
    next.clear();
    std::fill(on_list.begin(), on_list.end(), false);
    bool next_accept = false;
    for (int pc : current) {
      const Inst& inst = program_.insts()[static_cast<size_t>(pc)];
      if (inst.chars.Test(byte)) {
        AddThread(pc + 1, &on_list, &next, &next_accept);
      }
    }
    if (!anchor_start) {
      AddThread(program_.start(), &on_list, &next, &next_accept);
      // Re-seeding re-reports the trivial empty match; only a real
      // transition counts here, so mask it out unless the start closure
      // accepted through consumed input. Empty-matching patterns already
      // returned above for the unanchored case.
    }
    if (next_accept && !anchor_end) {
      return MatchResult{true, static_cast<int32_t>(i + 1)};
    }
    accept = next_accept;
    std::swap(current, next);
  }
  if (anchor_end && accept) {
    return MatchResult{true, static_cast<int32_t>(input.size())};
  }
  return MatchResult{};
}

}  // namespace doppio
