#include "regex/token_nfa.h"

#include <sstream>

namespace doppio {

std::string TokenNfa::ToString() const {
  std::ostringstream out;
  auto spec_str = [](const CharSpec& spec) {
    if (spec.any) return std::string(".");
    std::string s;
    if (spec.ranges.size() > 1 ||
        (spec.ranges.size() == 1 && spec.ranges[0].lo != spec.ranges[0].hi)) {
      s.push_back('[');
      for (const auto& r : spec.ranges) {
        s.push_back(static_cast<char>(r.lo));
        if (r.hi != r.lo) {
          s.push_back('-');
          s.push_back(static_cast<char>(r.hi));
        }
      }
      s.push_back(']');
    } else if (!spec.ranges.empty()) {
      s.push_back(static_cast<char>(spec.ranges[0].lo));
    }
    return s;
  };
  for (size_t t = 0; t < tokens.size(); ++t) {
    out << "T" << t << " = ";
    for (const CharSpec& spec : tokens[t].chain) out << spec_str(spec);
    out << "\n";
  }
  for (size_t s = 0; s < states.size(); ++s) {
    const HwState& state = states[s];
    out << "S" << s << ": triggers={";
    for (size_t i = 0; i < state.trigger_tokens.size(); ++i) {
      out << (i > 0 ? "," : "") << "T" << state.trigger_tokens[i];
    }
    out << "} preds={";
    for (size_t i = 0; i < state.pred_states.size(); ++i) {
      out << (i > 0 ? "," : "") << "S" << state.pred_states[i];
    }
    out << "}";
    if (state.latch) out << " latch";
    if (state.accept) out << " accept";
    out << "\n";
  }
  return out.str();
}

Status TokenNfa::Validate() const {
  if (states.empty()) return Status::Internal("token NFA without states");
  bool has_accept = false;
  for (const HwState& state : states) {
    if (state.accept) has_accept = true;
    if (state.pattern_tag < 0 || state.pattern_tag > 63) {
      return Status::Internal("pattern tag out of range [0, 63]");
    }
    if (state.trigger_tokens.empty()) {
      return Status::Internal("state without trigger tokens");
    }
    for (int t : state.trigger_tokens) {
      if (t < 0 || t >= static_cast<int>(tokens.size())) {
        return Status::Internal("trigger token index out of range");
      }
    }
    for (int p : state.pred_states) {
      if (p < 0 || p >= static_cast<int>(states.size())) {
        return Status::Internal("predecessor state index out of range");
      }
    }
  }
  if (!has_accept) return Status::Internal("token NFA without accept state");
  const int num_patterns = NumPatterns();
  if (num_patterns > 1) {
    std::vector<char> tag_accepts(static_cast<size_t>(num_patterns), 0);
    for (const HwState& state : states) {
      if (state.accept) tag_accepts[static_cast<size_t>(state.pattern_tag)] = 1;
    }
    for (int p = 0; p < num_patterns; ++p) {
      if (tag_accepts[static_cast<size_t>(p)] == 0) {
        return Status::Internal("pattern-set member without accept state");
      }
    }
  }
  for (const HwToken& token : tokens) {
    if (token.chain.empty()) return Status::Internal("empty token chain");
    if (token.length() > 64) {
      return Status::Internal("token chain exceeds 64 matchers");
    }
    for (const CharSpec& spec : token.chain) {
      if (!spec.any && spec.ranges.empty()) {
        return Status::Internal("empty character spec");
      }
    }
  }
  return Status::OK();
}

std::optional<std::vector<int>> AnalyzeChainShape(const TokenNfa& nfa) {
  // A tagged union is never one chain (every member contributes its own
  // start-gated head); reject up front so set programs can't claim the
  // single-stream literal fast path.
  if (nfa.NumPatterns() > 1) return std::nullopt;
  const int n = nfa.NumStates();
  int start = -1;
  for (int s = 0; s < n; ++s) {
    if (nfa.states[static_cast<size_t>(s)].pred_states.empty()) {
      if (start != -1) return std::nullopt;  // two chain heads
      start = s;
    }
  }
  if (start < 0) return std::nullopt;

  // Walk the chain; reject any fan-out, fan-in, or self-loop.
  std::vector<int> order = {start};
  std::vector<char> visited(static_cast<size_t>(n), 0);
  visited[static_cast<size_t>(start)] = 1;
  int current = start;
  while (static_cast<int>(order.size()) < n) {
    int next = -1;
    for (int s = 0; s < n; ++s) {
      if (visited[static_cast<size_t>(s)] != 0) continue;
      const auto& preds = nfa.states[static_cast<size_t>(s)].pred_states;
      if (preds.size() == 1 && preds[0] == current) {
        if (next != -1) return std::nullopt;  // fan-out from `current`
        next = s;
      } else {
        for (int p : preds) {
          if (p == current) return std::nullopt;  // feeds a join state
        }
      }
    }
    if (next == -1) return std::nullopt;  // chain broken before covering all
    visited[static_cast<size_t>(next)] = 1;
    order.push_back(next);
    current = next;
  }

  for (size_t i = 0; i < order.size(); ++i) {
    const HwState& state = nfa.states[static_cast<size_t>(order[i])];
    const bool last = i + 1 == order.size();
    if (state.trigger_tokens.size() != 1) return std::nullopt;
    if (last ? !state.accept : (!state.latch || state.accept)) {
      return std::nullopt;
    }
    if (i > 0 && (state.pred_states.size() != 1 ||
                  state.pred_states[0] != order[i - 1])) {
      return std::nullopt;
    }
  }
  return order;
}

Result<TokenNfa> BuildUnionNfa(const std::vector<const TokenNfa*>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("empty pattern set");
  }
  if (members.size() > 64) {
    return Status::InvalidArgument("pattern set exceeds 64 members");
  }
  TokenNfa out;
  for (size_t k = 0; k < members.size(); ++k) {
    const TokenNfa& m = *members[k];
    Status valid = m.Validate();
    if (!valid.ok()) return valid;
    if (m.NumPatterns() != 1) {
      return Status::InvalidArgument("pattern-set member is itself a set");
    }
    // Identical tokens are shared across members: the per-state trigger
    // bitmask makes reuse free, and it is the capacity win that lets more
    // members fit one PU.
    std::vector<int> token_map(m.tokens.size(), -1);
    for (size_t t = 0; t < m.tokens.size(); ++t) {
      for (size_t u = 0; u < out.tokens.size(); ++u) {
        if (out.tokens[u] == m.tokens[t]) {
          token_map[t] = static_cast<int>(u);
          break;
        }
      }
      if (token_map[t] < 0) {
        token_map[t] = static_cast<int>(out.tokens.size());
        out.tokens.push_back(m.tokens[t]);
      }
    }
    const int state_base = out.NumStates();
    for (const HwState& s : m.states) {
      HwState copy = s;
      copy.pattern_tag = static_cast<int>(k);
      for (int& t : copy.trigger_tokens) t = token_map[static_cast<size_t>(t)];
      for (int& p : copy.pred_states) p += state_base;
      out.states.push_back(std::move(copy));
    }
  }
  if (out.tokens.size() > 255 || out.states.size() > 255) {
    return Status::CapacityExceeded(
        "pattern-set union exceeds the config-vector format");
  }
  return out;
}

Result<TokenNfa> ExtractMemberNfa(const TokenNfa& union_nfa, int pattern_tag) {
  if (pattern_tag < 0 || pattern_tag >= union_nfa.NumPatterns()) {
    return Status::InvalidArgument("pattern tag not present in union");
  }
  TokenNfa out;
  std::vector<int> state_map(union_nfa.states.size(), -1);
  std::vector<int> token_map(union_nfa.tokens.size(), -1);
  for (size_t s = 0; s < union_nfa.states.size(); ++s) {
    if (union_nfa.states[s].pattern_tag != pattern_tag) continue;
    state_map[s] = out.NumStates();
    out.states.push_back(union_nfa.states[s]);
  }
  for (HwState& s : out.states) {
    s.pattern_tag = 0;
    for (int& t : s.trigger_tokens) {
      if (token_map[static_cast<size_t>(t)] < 0) {
        token_map[static_cast<size_t>(t)] =
            static_cast<int>(out.tokens.size());
        out.tokens.push_back(union_nfa.tokens[static_cast<size_t>(t)]);
      }
      t = token_map[static_cast<size_t>(t)];
    }
    for (int& p : s.pred_states) {
      // Union members are disjoint, so every predecessor carries the same
      // tag and was remapped above.
      if (state_map[static_cast<size_t>(p)] < 0) {
        return Status::Internal("union member references a foreign state");
      }
      p = state_map[static_cast<size_t>(p)];
    }
  }
  Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

TokenNfaMatcher::TokenNfaMatcher(TokenNfa nfa) : nfa_(std::move(nfa)) {
  // One edge instance per (trigger token, state) pair. Each edge carries
  // its own chain progress, which models the per-state gating of the chain
  // start (equivalently: the hardware's predecessor-delay registers).
  for (size_t s = 0; s < nfa_.states.size(); ++s) {
    for (int t : nfa_.states[s].trigger_tokens) {
      Edge e;
      e.token = t;
      e.state = static_cast<int>(s);
      e.chain_len = nfa_.tokens[static_cast<size_t>(t)].length();
      e.fired_bit = uint64_t{1} << (e.chain_len - 1);
      edges_.push_back(e);
    }
  }
}

MatchResult TokenNfaMatcher::Find(std::string_view input) const {
  const size_t num_states = nfa_.states.size();
  std::vector<uint64_t> progress(edges_.size(), 0);
  std::vector<uint8_t> active(num_states, 0);
  std::vector<uint8_t> next_active(num_states, 0);

  for (size_t i = 0; i < input.size(); ++i) {
    uint8_t byte = static_cast<uint8_t>(input[i]);
    std::fill(next_active.begin(), next_active.end(), 0);

    for (size_t e = 0; e < edges_.size(); ++e) {
      const Edge& edge = edges_[e];
      const HwState& state = nfa_.states[static_cast<size_t>(edge.state)];
      // Gate: chain may start this cycle if a predecessor was active at
      // the end of the previous cycle (or the state is start-gated).
      uint64_t gate = 1;
      if (!state.pred_states.empty()) {
        gate = 0;
        for (int p : state.pred_states) {
          if (active[static_cast<size_t>(p)] != 0) {
            gate = 1;
            break;
          }
        }
      }
      // Advance the chain: each set bit is an in-flight partial match.
      uint64_t shifted = (progress[e] << 1) | gate;
      // Mask by which chain positions match the current byte.
      const HwToken& token = nfa_.tokens[static_cast<size_t>(edge.token)];
      uint64_t mask = 0;
      for (int j = 0; j < edge.chain_len; ++j) {
        if (token.chain[static_cast<size_t>(j)].Test(byte)) {
          mask |= uint64_t{1} << j;
        }
      }
      progress[e] = shifted & mask;
      if ((progress[e] & edge.fired_bit) != 0) {
        next_active[static_cast<size_t>(edge.state)] = 1;
      }
    }
    for (size_t s = 0; s < num_states; ++s) {
      if (nfa_.states[s].latch && active[s] != 0) next_active[s] = 1;
    }
    std::swap(active, next_active);
    for (size_t s = 0; s < num_states; ++s) {
      if (nfa_.states[s].accept && active[s] != 0) {
        return MatchResult{true, static_cast<int32_t>(i + 1)};
      }
    }
  }
  return MatchResult{};
}

std::vector<MatchResult> TokenNfaMatcher::FindSet(std::string_view input) const {
  const size_t num_states = nfa_.states.size();
  const int num_patterns = nfa_.NumPatterns();
  std::vector<MatchResult> out(static_cast<size_t>(num_patterns));
  std::vector<uint64_t> progress(edges_.size(), 0);
  std::vector<uint8_t> active(num_states, 0);
  std::vector<uint8_t> next_active(num_states, 0);

  int remaining = num_patterns;
  for (size_t i = 0; i < input.size() && remaining > 0; ++i) {
    uint8_t byte = static_cast<uint8_t>(input[i]);
    std::fill(next_active.begin(), next_active.end(), 0);
    for (size_t e = 0; e < edges_.size(); ++e) {
      const Edge& edge = edges_[e];
      const HwState& state = nfa_.states[static_cast<size_t>(edge.state)];
      uint64_t gate = 1;
      if (!state.pred_states.empty()) {
        gate = 0;
        for (int p : state.pred_states) {
          if (active[static_cast<size_t>(p)] != 0) {
            gate = 1;
            break;
          }
        }
      }
      uint64_t shifted = (progress[e] << 1) | gate;
      const HwToken& token = nfa_.tokens[static_cast<size_t>(edge.token)];
      uint64_t mask = 0;
      for (int j = 0; j < edge.chain_len; ++j) {
        if (token.chain[static_cast<size_t>(j)].Test(byte)) {
          mask |= uint64_t{1} << j;
        }
      }
      progress[e] = shifted & mask;
      if ((progress[e] & edge.fired_bit) != 0) {
        next_active[static_cast<size_t>(edge.state)] = 1;
      }
    }
    for (size_t s = 0; s < num_states; ++s) {
      if (nfa_.states[s].latch && active[s] != 0) next_active[s] = 1;
    }
    std::swap(active, next_active);
    for (size_t s = 0; s < num_states; ++s) {
      const HwState& state = nfa_.states[s];
      if (!state.accept || active[s] == 0) continue;
      MatchResult& r = out[static_cast<size_t>(state.pattern_tag)];
      if (!r.matched) {
        r.matched = true;
        r.end = static_cast<int32_t>(i + 1);
        --remaining;
      }
    }
  }
  return out;
}

}  // namespace doppio
