#include "regex/token_extractor.h"

#include <algorithm>
#include <map>
#include <set>

#include "regex/pattern_parser.h"

namespace doppio {

namespace {

constexpr int kMaxPositions = 4096;

bool IsAnyClass(const AstNode& node) {
  return node.kind == AstKind::kCharClass &&
         node.char_class == CharSet::AnyChar();
}

bool IsDotStar(const AstNode& node) {
  return node.kind == AstKind::kRepeat && node.repeat_min == 0 &&
         node.repeat_max == -1 && IsAnyClass(*node.children[0]);
}

bool IsChainable(const AstNode& node) {
  return node.kind == AstKind::kLiteral || node.kind == AstKind::kCharClass;
}

// Flattens nested concatenations into one child list.
void CollectConcatChildren(const AstNode& node,
                           std::vector<const AstNode*>* out) {
  for (const auto& child : node.children) {
    if (child->kind == AstKind::kConcat) {
      CollectConcatChildren(*child, out);
    } else {
      out->push_back(child.get());
    }
  }
}

// Expands bounded repetitions so only *, +, ? remain.
Result<AstNodePtr> ExpandRepeats(const AstNode& node, int* budget) {
  if (--(*budget) < 0) {
    return Status::CapacityExceeded("pattern expansion too large");
  }
  switch (node.kind) {
    case AstKind::kEmpty:
    case AstKind::kLiteral:
    case AstKind::kCharClass:
      return node.Clone();
    case AstKind::kConcat:
    case AstKind::kAlternate: {
      std::vector<AstNodePtr> children;
      children.reserve(node.children.size());
      for (const auto& child : node.children) {
        DOPPIO_ASSIGN_OR_RETURN(AstNodePtr expanded,
                                ExpandRepeats(*child, budget));
        children.push_back(std::move(expanded));
      }
      return node.kind == AstKind::kConcat
                 ? AstNode::Concat(std::move(children))
                 : AstNode::Alternate(std::move(children));
    }
    case AstKind::kRepeat: {
      DOPPIO_ASSIGN_OR_RETURN(AstNodePtr child,
                              ExpandRepeats(*node.children[0], budget));
      int min = node.repeat_min;
      int max = node.repeat_max;
      // Canonical forms pass through.
      if ((min == 0 || min == 1) && max == -1) {
        return AstNode::Repeat(std::move(child), min, max);
      }
      if (min == 0 && max == 1) {
        return AstNode::Repeat(std::move(child), 0, 1);
      }
      *budget -= min;
      if (*budget < 0) {
        return Status::CapacityExceeded("pattern expansion too large");
      }
      std::vector<AstNodePtr> parts;
      for (int i = 0; i < min; ++i) parts.push_back(child->Clone());
      if (max == -1) {
        parts.push_back(AstNode::Repeat(child->Clone(), 0, -1));
      } else {
        for (int i = min; i < max; ++i) {
          parts.push_back(AstNode::Repeat(child->Clone(), 0, 1));
        }
      }
      if (parts.empty()) return AstNode::Empty();
      return AstNode::Concat(std::move(parts));
    }
  }
  return Status::Internal("unknown AST node");
}

class Extractor {
 public:
  explicit Extractor(const CompileOptions& options) : options_(options) {}

  Result<TokenNfa> Run(const AstNode& ast) {
    if (options_.anchor_start || options_.anchor_end) {
      return Status::CapacityExceeded(
          "hardware engine performs unanchored search only");
    }
    int budget = kMaxPositions;
    DOPPIO_ASSIGN_OR_RETURN(AstNodePtr expanded, ExpandRepeats(ast, &budget));
    DOPPIO_ASSIGN_OR_RETURN(Frag frag, Build(*expanded));
    if (frag.nullable) {
      return Status::CapacityExceeded(
          "pattern matches the empty string; predicate is trivially true "
          "and not mappable to the hardware engine");
    }
    if (frag.last.empty() || positions_.empty()) {
      return Status::CapacityExceeded("pattern has no matchable tokens");
    }
    return Assemble(frag);
  }

 private:
  struct Frag {
    std::vector<int> first;
    std::vector<int> last;
    bool nullable = false;
  };

  struct State {
    std::set<int> tokens;  // position-token ids, deduped later
    std::set<int> preds;
    bool start_gated = false;
    bool latch = false;
    bool accept = false;
    bool alive = true;
  };

  CharSpec SpecFromSet(CharSet set) const {
    if (options_.case_insensitive) set.FoldCase();
    // User-specified collation (§6.4): equivalence classes land in the
    // character matchers' extra compare registers.
    for (const auto& [a, b] : options_.collation_equivalents) {
      if (set.Test(a)) set.Add(b);
      if (set.Test(b)) set.Add(a);
    }
    CharSpec spec;
    if (set == CharSet::All()) {
      spec.any = true;
      return spec;
    }
    int run_start = -1;
    for (int c = 0; c <= 256; ++c) {
      bool in = c < 256 && set.Test(static_cast<uint8_t>(c));
      if (in && run_start < 0) run_start = c;
      if (!in && run_start >= 0) {
        spec.ranges.push_back(CharSpec::Range{static_cast<uint8_t>(run_start),
                                              static_cast<uint8_t>(c - 1)});
        run_start = -1;
      }
    }
    return spec;
  }

  void AppendToChain(HwToken* chain, const AstNode& node) const {
    if (node.kind == AstKind::kLiteral) {
      for (char c : node.literal) {
        chain->chain.push_back(
            SpecFromSet(CharSet::Single(static_cast<uint8_t>(c))));
      }
    } else {
      chain->chain.push_back(SpecFromSet(node.char_class));
    }
  }

  Result<int> NewPosition(HwToken token) {
    if (static_cast<int>(positions_.size()) >= kMaxPositions) {
      return Status::CapacityExceeded("too many token positions");
    }
    if (token.length() > 64) {
      return Status::CapacityExceeded(
          "token chain exceeds the 64-matcher shift-register depth");
    }
    positions_.push_back(std::move(token));
    pos_latch_.push_back(false);
    follow_.emplace_back();
    return static_cast<int>(positions_.size()) - 1;
  }

  void Connect(const std::vector<int>& from, const std::vector<int>& to) {
    for (int q : from) {
      for (int p : to) follow_[static_cast<size_t>(q)].insert(p);
    }
  }

  Frag ConcatFrags(Frag a, const Frag& b) {
    Connect(a.last, b.first);
    Frag out;
    out.first = a.first;
    if (a.nullable) {
      out.first.insert(out.first.end(), b.first.begin(), b.first.end());
    }
    out.last = b.last;
    if (b.nullable) {
      out.last.insert(out.last.end(), a.last.begin(), a.last.end());
    }
    out.nullable = a.nullable && b.nullable;
    return out;
  }

  Result<Frag> Build(const AstNode& node) {
    switch (node.kind) {
      case AstKind::kEmpty:
        return Frag{{}, {}, true};
      case AstKind::kLiteral:
      case AstKind::kCharClass: {
        HwToken token;
        AppendToChain(&token, node);
        if (token.chain.empty()) return Frag{{}, {}, true};  // empty literal
        DOPPIO_ASSIGN_OR_RETURN(int p, NewPosition(std::move(token)));
        return Frag{{p}, {p}, false};
      }
      case AstKind::kConcat: {
        Frag acc{{}, {}, true};
        // Flatten nested concatenations (bounded-repeat expansion creates
        // them) so literal/class runs merge across the nesting into one
        // token chain.
        std::vector<const AstNode*> children;
        CollectConcatChildren(node, &children);
        size_t i = 0;
        while (i < children.size()) {
          const AstNode& child = *children[i];
          if (IsDotStar(child)) {
            // '.*' glue: latch the states currently able to end the prefix.
            // Leading '.*' (empty last set) is a no-op: search is
            // unanchored anyway.
            for (int p : acc.last) pos_latch_[static_cast<size_t>(p)] = true;
            ++i;
            continue;
          }
          if (IsChainable(child)) {
            // Character-sequence optimization (§6.3): collapse the maximal
            // run of literals/classes into one token chain.
            HwToken token;
            while (i < children.size() && IsChainable(*children[i])) {
              AppendToChain(&token, *children[i]);
              ++i;
            }
            if (token.chain.empty()) continue;  // run of empty literals
            DOPPIO_ASSIGN_OR_RETURN(int p, NewPosition(std::move(token)));
            acc = ConcatFrags(std::move(acc), Frag{{p}, {p}, false});
            continue;
          }
          DOPPIO_ASSIGN_OR_RETURN(Frag sub, Build(child));
          acc = ConcatFrags(std::move(acc), sub);
          ++i;
        }
        return acc;
      }
      case AstKind::kAlternate: {
        Frag out{{}, {}, false};
        for (const auto& child : node.children) {
          DOPPIO_ASSIGN_OR_RETURN(Frag sub, Build(*child));
          out.first.insert(out.first.end(), sub.first.begin(),
                           sub.first.end());
          out.last.insert(out.last.end(), sub.last.begin(), sub.last.end());
          out.nullable = out.nullable || sub.nullable;
        }
        return out;
      }
      case AstKind::kRepeat: {
        // Only *, +, ? reach here (bounded forms were expanded).
        if (IsDotStar(node)) {
          // Bare '.*' outside a concat: nullable glue with no positions.
          return Frag{{}, {}, true};
        }
        DOPPIO_ASSIGN_OR_RETURN(Frag sub, Build(*node.children[0]));
        if (node.repeat_max == -1) {
          Connect(sub.last, sub.first);  // loop back (re-trigger)
        }
        sub.nullable = sub.nullable || node.repeat_min == 0;
        return sub;
      }
    }
    return Status::Internal("unknown AST node");
  }

  // Builds states from positions, merges equivalent ones, dedupes tokens.
  Result<TokenNfa> Assemble(const Frag& frag) {
    const size_t n = positions_.size();
    std::vector<State> states(n);
    std::set<int> first_set(frag.first.begin(), frag.first.end());
    for (size_t p = 0; p < n; ++p) {
      states[p].tokens.insert(static_cast<int>(p));
      states[p].latch = pos_latch_[p];
      states[p].start_gated = first_set.count(static_cast<int>(p)) > 0;
    }
    for (size_t q = 0; q < n; ++q) {
      for (int p : follow_[q]) {
        if (!states[static_cast<size_t>(p)].start_gated) {
          states[static_cast<size_t>(p)].preds.insert(static_cast<int>(q));
        }
      }
    }
    for (int p : frag.last) states[static_cast<size_t>(p)].accept = true;

    MergeEquivalentStates(&states);
    return Materialize(states);
  }

  static std::set<int> NormalizeSelf(const std::set<int>& in, int self) {
    std::set<int> out;
    for (int v : in) out.insert(v == self ? -1 : v);
    return out;
  }

  void MergeEquivalentStates(std::vector<State>* states) const {
    const int n = static_cast<int>(states->size());
    // Successor sets (rebuilt after each merge round).
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::set<int>> succs(static_cast<size_t>(n));
      for (int s = 0; s < n; ++s) {
        if (!(*states)[static_cast<size_t>(s)].alive) continue;
        for (int p : (*states)[static_cast<size_t>(s)].preds) {
          succs[static_cast<size_t>(p)].insert(s);
        }
      }
      for (int a = 0; a < n && !changed; ++a) {
        State& sa = (*states)[static_cast<size_t>(a)];
        if (!sa.alive) continue;
        for (int b = a + 1; b < n; ++b) {
          State& sb = (*states)[static_cast<size_t>(b)];
          if (!sb.alive) continue;
          if (sa.latch != sb.latch || sa.accept != sb.accept ||
              sa.start_gated != sb.start_gated) {
            continue;
          }
          // No cross references (other than self loops).
          if (sa.preds.count(b) != 0 || sb.preds.count(a) != 0) continue;
          if (NormalizeSelf(sa.preds, a) != NormalizeSelf(sb.preds, b)) {
            continue;
          }
          if (NormalizeSelf(succs[static_cast<size_t>(a)], a) !=
              NormalizeSelf(succs[static_cast<size_t>(b)], b)) {
            continue;
          }
          // Merge b into a.
          sa.tokens.insert(sb.tokens.begin(), sb.tokens.end());
          bool b_self = sb.preds.count(b) != 0;
          sb.alive = false;
          if (b_self) sa.preds.insert(a);
          for (int s = 0; s < n; ++s) {
            State& st = (*states)[static_cast<size_t>(s)];
            if (!st.alive) continue;
            if (st.preds.erase(b) != 0) st.preds.insert(a);
          }
          changed = true;
          break;
        }
      }
    }
  }

  Result<TokenNfa> Materialize(const std::vector<State>& states) const {
    // Order states: non-accept first, accept last (paper: the end state is
    // the highest-indexed one).
    std::vector<int> order;
    for (size_t s = 0; s < states.size(); ++s) {
      if (states[s].alive && !states[s].accept) {
        order.push_back(static_cast<int>(s));
      }
    }
    for (size_t s = 0; s < states.size(); ++s) {
      if (states[s].alive && states[s].accept) {
        order.push_back(static_cast<int>(s));
      }
    }
    std::map<int, int> remap;
    for (size_t i = 0; i < order.size(); ++i) {
      remap[order[i]] = static_cast<int>(i);
    }

    TokenNfa nfa;
    std::map<std::vector<CharSpec>, int> token_ids;
    auto intern_token = [&](const HwToken& token) {
      auto it = token_ids.find(token.chain);
      if (it != token_ids.end()) return it->second;
      int id = static_cast<int>(nfa.tokens.size());
      nfa.tokens.push_back(token);
      token_ids[token.chain] = id;
      return id;
    };

    for (int old_id : order) {
      const State& st = states[static_cast<size_t>(old_id)];
      HwState out;
      std::set<int> trigger_set;
      for (int pos : st.tokens) {
        trigger_set.insert(intern_token(positions_[static_cast<size_t>(pos)]));
      }
      out.trigger_tokens.assign(trigger_set.begin(), trigger_set.end());
      for (int p : st.preds) {
        out.pred_states.push_back(remap.at(p));
      }
      std::sort(out.pred_states.begin(), out.pred_states.end());
      out.latch = st.latch;
      out.accept = st.accept;
      nfa.states.push_back(std::move(out));
    }
    DOPPIO_RETURN_NOT_OK(nfa.Validate());
    return nfa;
  }

  const CompileOptions& options_;
  std::vector<HwToken> positions_;
  std::vector<bool> pos_latch_;
  std::vector<std::set<int>> follow_;
};

}  // namespace

Result<TokenNfa> ExtractTokenNfa(const AstNode& ast,
                                 const CompileOptions& options) {
  return Extractor(options).Run(ast);
}

Result<TokenNfa> ExtractTokenNfa(std::string_view pattern,
                                 const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(AstNodePtr ast, ParsePattern(pattern));
  return ExtractTokenNfa(*ast, options);
}

}  // namespace doppio
