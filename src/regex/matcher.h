// Common matcher interface shared by every regular-expression execution
// strategy (software backtracking / NFA simulation / lazy DFA, and the
// simulated hardware PU).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace doppio {

/// Result of an unanchored search over one string.
///
/// `end` follows the paper's HUDF convention: the 1-based position of the
/// match's last character (equivalently: bytes consumed when the match
/// completed). 0 together with matched=true denotes an empty match at the
/// start of the string; matched=false always has end==0.
struct MatchResult {
  bool matched = false;
  int32_t end = 0;

  bool operator==(const MatchResult& other) const {
    return matched == other.matched && end == other.end;
  }
};

/// Compilation options shared by all strategies.
struct CompileOptions {
  /// ASCII case-insensitive matching (ILIKE / case-insensitive collation).
  bool case_insensitive = false;
  /// Pattern must match starting at the first byte.
  bool anchor_start = false;
  /// Pattern must match up to the last byte.
  bool anchor_end = false;
  /// User-specified collation (paper §6.4): pairs of bytes treated as
  /// equivalent in both directions — e.g. {'a', 0xE4} lets 'a' in the
  /// pattern also match 'ä' (latin-1). Applied symmetrically on top of
  /// case folding. In hardware these live in the character matchers'
  /// extra compare registers.
  std::vector<std::pair<uint8_t, uint8_t>> collation_equivalents;

  bool HasCollation() const { return !collation_equivalents.empty(); }
};

class StringMatcher {
 public:
  virtual ~StringMatcher() = default;

  /// Finds the earliest-ending match in `input` (strategies differ only in
  /// cost, not in the matched/unmatched outcome).
  virtual MatchResult Find(std::string_view input) const = 0;

  /// Convenience: true if the pattern occurs in `input`.
  bool Matches(std::string_view input) const { return Find(input).matched; }
};

}  // namespace doppio
