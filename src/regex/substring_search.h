// Substring search algorithms backing the SQL LIKE fast path.
//
// The paper cites Knuth-Morris-Pratt and Boyer-Moore as the efficient
// software algorithms for string matching (§8.1); MonetDB's LIKE is an
// optimized scan of this kind. A LIKE pattern %s1%s2%...% reduces to
// ordered, non-overlapping occurrences of s1..sn.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "regex/matcher.h"

namespace doppio {

/// memchr skip loop + memcmp verify: leans on libc's SWAR/SIMD byte scan
/// to find candidate positions of the needle's first byte, then compares
/// the remainder. Typically the fastest option for short, case-sensitive
/// needles; index of the first occurrence at or after `from`, or npos.
size_t FindLiteralScan(std::string_view haystack, std::string_view needle,
                       size_t from = 0);

/// Boyer-Moore-Horspool: bad-character shifts, sublinear on text that
/// rarely contains the needle's bytes.
class BoyerMooreMatcher {
 public:
  explicit BoyerMooreMatcher(std::string needle, bool case_insensitive = false);

  /// Index of the first occurrence, or npos.
  size_t Find(std::string_view haystack, size_t from = 0) const;

  const std::string& needle() const { return needle_; }

 private:
  std::string needle_;
  bool case_insensitive_;
  std::array<size_t, 256> shift_;
};

/// Knuth-Morris-Pratt: linear worst case via the failure function.
class KmpMatcher {
 public:
  explicit KmpMatcher(std::string needle, bool case_insensitive = false);

  size_t Find(std::string_view haystack, size_t from = 0) const;

  const std::string& needle() const { return needle_; }

 private:
  std::string needle_;
  bool case_insensitive_;
  std::vector<int> failure_;
};

/// Ordered multi-substring matcher: implements LIKE '%s1%s2%...%'.
/// Matches when s1..sn occur in order without overlap.
class MultiSubstringMatcher : public StringMatcher {
 public:
  static Result<std::unique_ptr<MultiSubstringMatcher>> Create(
      std::vector<std::string> substrings, bool case_insensitive = false);

  /// Matches the full StringMatcher contract: `end` is one past the last
  /// character of the final substring occurrence.
  MatchResult Find(std::string_view input) const override;

 private:
  explicit MultiSubstringMatcher(std::vector<BoyerMooreMatcher> stages)
      : stages_(std::move(stages)) {}

  std::vector<BoyerMooreMatcher> stages_;
};

}  // namespace doppio
