#include "regex/charset_analysis.h"

#include <map>
#include <vector>

namespace doppio {

namespace {

// Enumerates the byte set of a spec by testing all 256 byte values — robust
// against redundant or overlapping range encodings.
int MatchedBytes(const CharSpec& spec, uint8_t out[2]) {
  int count = 0;
  for (int b = 0; b < 256; ++b) {
    if (spec.Test(static_cast<uint8_t>(b))) {
      if (count < 2) out[count] = static_cast<uint8_t>(b);
      if (++count > 2) return count;  // more than a pair: caller gives up
    }
  }
  return count;
}

bool IsAsciiLetter(uint8_t c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

}  // namespace

bool SpecIsExactByte(const CharSpec& spec, uint8_t* byte) {
  if (spec.any) return false;
  uint8_t bytes[2];
  if (MatchedBytes(spec, bytes) != 1) return false;
  *byte = bytes[0];
  return true;
}

bool SpecIsCaseFoldPair(const CharSpec& spec, uint8_t* lower) {
  if (spec.any) return false;
  uint8_t bytes[2];
  if (MatchedBytes(spec, bytes) != 2) return false;
  if (!IsAsciiLetter(bytes[0]) || bytes[1] != (bytes[0] ^ 0x20)) {
    return false;
  }
  *lower = bytes[0] | 0x20;
  return true;
}

std::optional<TokenLiteral> TokenToLiteral(const HwToken& token) {
  TokenLiteral literal;
  bool saw_fold_pair = false;
  bool saw_exact_letter = false;
  for (const CharSpec& spec : token.chain) {
    uint8_t byte;
    if (SpecIsExactByte(spec, &byte)) {
      if (IsAsciiLetter(byte)) saw_exact_letter = true;
      literal.needle.push_back(static_cast<char>(byte));
    } else if (SpecIsCaseFoldPair(spec, &byte)) {
      saw_fold_pair = true;
      literal.needle.push_back(static_cast<char>(byte));
    } else {
      return std::nullopt;
    }
  }
  // A global fold flag cannot express "this letter exact, that one either
  // case" — such chains stay on the general kernels.
  if (saw_fold_pair && saw_exact_letter) return std::nullopt;
  literal.case_insensitive = saw_fold_pair;
  return literal;
}

int ComputeByteClasses(const TokenNfa& nfa,
                       std::array<uint16_t, 256>* classes) {
  // Signature of a byte: one bit per (token, chain position) spec.
  size_t num_specs = 0;
  for (const HwToken& token : nfa.tokens) num_specs += token.chain.size();
  const size_t words = (num_specs + 63) / 64;

  std::map<std::vector<uint64_t>, uint16_t> seen;
  for (int b = 0; b < 256; ++b) {
    std::vector<uint64_t> sig(words, 0);
    size_t bit = 0;
    for (const HwToken& token : nfa.tokens) {
      for (const CharSpec& spec : token.chain) {
        if (spec.Test(static_cast<uint8_t>(b))) {
          sig[bit / 64] |= uint64_t{1} << (bit % 64);
        }
        ++bit;
      }
    }
    auto [it, inserted] =
        seen.emplace(std::move(sig), static_cast<uint16_t>(seen.size()));
    (*classes)[static_cast<size_t>(b)] = it->second;
  }
  return static_cast<int>(seen.size());
}

}  // namespace doppio
