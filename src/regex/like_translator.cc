#include "regex/like_translator.h"

namespace doppio {

Result<LikeAnalysis> TranslateLike(std::string_view like_pattern,
                                   char escape) {
  LikeAnalysis out;

  // Tokenize into literal segments and wildcards.
  struct Segment {
    bool percent = false;     // '%'
    bool underscore = false;  // '_'
    std::string literal;      // otherwise
  };
  std::vector<Segment> segments;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      segments.push_back(Segment{false, false, std::move(current)});
      current.clear();
    }
  };

  size_t i = 0;
  while (i < like_pattern.size()) {
    char c = like_pattern[i];
    if (escape != '\0' && c == escape) {
      if (i + 1 >= like_pattern.size()) {
        return Status::ParseError("LIKE pattern ends with escape character");
      }
      current.push_back(like_pattern[i + 1]);
      i += 2;
      continue;
    }
    if (c == '%') {
      flush();
      if (segments.empty() || !segments.back().percent) {
        segments.push_back(Segment{true, false, ""});
      }
      ++i;
      continue;
    }
    if (c == '_') {
      flush();
      segments.push_back(Segment{false, true, ""});
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  flush();

  out.anchored_start = segments.empty() || !segments.front().percent;
  out.anchored_end = segments.empty() || !segments.back().percent;

  // Multi-substring form: %s1%s2%...% with only literal segments between.
  out.is_multi_substring = !out.anchored_start && !out.anchored_end;
  for (const Segment& seg : segments) {
    if (seg.underscore) out.is_multi_substring = false;
    if (!seg.percent && !seg.underscore && out.is_multi_substring) {
      out.substrings.push_back(seg.literal);
    }
  }
  if (out.substrings.empty()) out.is_multi_substring = false;

  // Build the AST. Search semantics are unanchored, so a leading/trailing
  // '%' simply disappears; its absence sets the anchor flags the executors
  // honor.
  std::vector<AstNodePtr> parts;
  for (size_t k = 0; k < segments.size(); ++k) {
    const Segment& seg = segments[k];
    if (seg.percent) {
      bool edge = (k == 0) || (k + 1 == segments.size());
      if (edge) continue;
      parts.push_back(
          AstNode::Repeat(AstNode::Class(CharSet::AnyChar()), 0, -1));
    } else if (seg.underscore) {
      parts.push_back(AstNode::Class(CharSet::AnyChar()));
    } else {
      parts.push_back(AstNode::Literal(seg.literal));
    }
  }

  AstNodePtr ast =
      parts.empty() ? AstNode::Empty() : AstNode::Concat(std::move(parts));
  out.regex = ast->ToString();
  out.ast = std::move(ast);
  return out;
}

}  // namespace doppio
