// Character-spec analysis shared by the compiled PU kernels (hw/pu_kernel)
// and anything else that wants to specialize execution by pattern shape.
//
// Two kinds of analysis live here:
//  * literal reduction — recognizing that a token chain matches exactly one
//    byte string (possibly up to ASCII case), which lets a whole PU program
//    collapse into substring search;
//  * byte-equivalence classes — the RE2 trick of partitioning the 256-byte
//    alphabet into groups the program cannot tell apart, which shrinks
//    lazy-DFA transition tables and speeds up subset construction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "regex/token_nfa.h"

namespace doppio {

/// True iff `spec` matches exactly one byte; sets *byte.
bool SpecIsExactByte(const CharSpec& spec, uint8_t* byte);

/// True iff `spec` matches exactly an ASCII letter and its case
/// counterpart (the collation-register encoding of case-insensitive
/// matching); sets *lower to the lowercase byte.
bool SpecIsCaseFoldPair(const CharSpec& spec, uint8_t* lower);

/// A token chain reduced to a plain needle. `needle` holds the bytes as
/// written except that case-fold pairs are stored lowercase and flip
/// `case_insensitive` — mixing exact letters with fold pairs in one chain
/// is not representable and yields nullopt.
struct TokenLiteral {
  std::string needle;
  bool case_insensitive = false;
};
std::optional<TokenLiteral> TokenToLiteral(const HwToken& token);

/// Partitions 0..255 into equivalence classes: two bytes share a class
/// when every character spec of every token treats them identically, so
/// the whole program (and any DFA built over it) cannot distinguish them.
/// Fills classes[b] with the class id of byte b; returns the class count.
int ComputeByteClasses(const TokenNfa& nfa,
                       std::array<uint16_t, 256>* classes);

}  // namespace doppio
