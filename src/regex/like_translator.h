// SQL LIKE pattern handling.
//
// LIKE patterns compose literal text with '%' (any sequence) and '_' (any
// single character). Two consumers exist:
//  * the software fast path: a pattern of the form %s1%s2%...% is a
//    sequential multi-substring search (see substring_search.h);
//  * the FPGA path: every LIKE pattern is translated to the regex dialect
//    and compiled to a configuration vector like any other expression.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "regex/pattern_ast.h"

namespace doppio {

struct LikeAnalysis {
  /// Equivalent pattern in the regex dialect (metacharacters escaped).
  std::string regex;
  /// AST of the same.
  AstNodePtr ast;
  /// True when the pattern is %s1%s2%...% (with leading and trailing %),
  /// i.e. an unanchored ordered multi-substring search.
  bool is_multi_substring = false;
  /// The substrings s1..sn when is_multi_substring.
  std::vector<std::string> substrings;
  /// True if the pattern is anchored at the start (no leading %).
  bool anchored_start = false;
  /// True if the pattern is anchored at the end (no trailing %).
  bool anchored_end = false;
};

/// Translates a LIKE pattern. `escape` is the SQL ESCAPE character
/// (0 = none). Fails on a dangling escape.
Result<LikeAnalysis> TranslateLike(std::string_view like_pattern,
                                   char escape = '\\');

}  // namespace doppio
