// Abstract syntax tree for the SQL regular-expression dialect the paper's
// engine supports: literals, '.', character classes with ranges and
// negation, grouping, alternation, and the repetition operators
// * + ? {n} {n,} {n,m}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "regex/charset.h"

namespace doppio {

enum class AstKind : int {
  kEmpty,      // matches the empty string
  kLiteral,    // a fixed byte sequence
  kCharClass,  // one byte from a CharSet
  kConcat,     // children in sequence
  kAlternate,  // any one child
  kRepeat,     // child repeated [min, max] times; max < 0 means unbounded
};

struct AstNode;
using AstNodePtr = std::unique_ptr<AstNode>;

struct AstNode {
  AstKind kind;

  std::string literal;            // kLiteral
  CharSet char_class;             // kCharClass
  std::vector<AstNodePtr> children;  // kConcat / kAlternate
  int repeat_min = 0;             // kRepeat
  int repeat_max = 0;             // kRepeat; -1 = unbounded

  static AstNodePtr Empty();
  static AstNodePtr Literal(std::string text);
  static AstNodePtr Class(CharSet set);
  static AstNodePtr Concat(std::vector<AstNodePtr> children);
  static AstNodePtr Alternate(std::vector<AstNodePtr> children);
  static AstNodePtr Repeat(AstNodePtr child, int min, int max);

  /// Deep copy.
  AstNodePtr Clone() const;

  /// Canonical textual rendering (re-parsable for the supported dialect).
  std::string ToString() const;

  /// True if this subtree can match the empty string.
  bool MatchesEmpty() const;

  /// Minimum number of bytes any match of this subtree consumes.
  int MinLength() const;

  /// Applies ASCII case folding to every literal and class in the subtree
  /// (used for ILIKE and case-insensitive collations).
  void FoldCase();
};

}  // namespace doppio
