#include "regex/bitparallel.h"

namespace doppio {

std::optional<BitParallelProgram> BitParallelProgram::Compile(
    const TokenNfa& nfa) {
  std::optional<std::vector<int>> chain = AnalyzeChainShape(nfa);
  if (!chain.has_value()) return std::nullopt;

  BitParallelProgram program;
  program.stages_.reserve(chain->size());
  for (int state_index : *chain) {
    const HwState& state = nfa.states[static_cast<size_t>(state_index)];
    const HwToken& token =
        nfa.tokens[static_cast<size_t>(state.trigger_tokens[0])];
    const int len = token.length();
    if (len <= 0 || len > 64) return std::nullopt;  // must fit one word

    Stage stage;
    stage.length = len;
    stage.accept_bit = uint64_t{1} << (len - 1);
    stage.masks.fill(0);
    for (int b = 0; b < 256; ++b) {
      uint64_t mask = 0;
      for (int j = 0; j < len; ++j) {
        if (token.chain[static_cast<size_t>(j)].Test(
                static_cast<uint8_t>(b))) {
          mask |= uint64_t{1} << j;
        }
      }
      stage.masks[static_cast<size_t>(b)] = mask;
    }

    // Anchor: the position matching the fewest distinct bytes, if that
    // count is small enough for the SIMD set scan. Rarer anchors mean
    // fewer candidate windows to verify.
    int best_offset = -1;
    int best_count = simd::kMaxScanBytes + 1;
    for (int j = 0; j < len; ++j) {
      int count = 0;
      for (int b = 0; b < 256 && count < best_count; ++b) {
        if ((stage.masks[static_cast<size_t>(b)] >> j) & 1) ++count;
      }
      if (count > 0 && count < best_count) {
        best_count = count;
        best_offset = j;
      }
    }
    if (best_offset >= 0 && best_count <= simd::kMaxScanBytes) {
      stage.anchor_offset = best_offset;
      for (int b = 0; b < 256; ++b) {
        if ((stage.masks[static_cast<size_t>(b)] >> best_offset) & 1) {
          stage.anchor_bytes[static_cast<size_t>(stage.num_anchor_bytes++)] =
              static_cast<uint8_t>(b);
        }
      }
    }
    program.stages_.push_back(std::move(stage));
  }
  return program;
}

size_t BitParallelProgram::Stage::FindEnd(std::string_view input,
                                          size_t from,
                                          simd::SimdLevel level) const {
  const size_t m = static_cast<size_t>(length);
  if (input.size() < m || from > input.size() - m) {
    return std::string_view::npos;
  }
  if (anchor_offset >= 0) {
    // Candidate scan: occurrences of the rare byte(s) at the anchor
    // offset, verified against the full fixed-length window. Candidates
    // arrive in increasing position, so the first verified window is the
    // earliest occurrence (fixed length: earliest start == earliest end).
    size_t c = from + static_cast<size_t>(anchor_offset);
    while (true) {
      c = simd::FindByteSetAtLevel(input, c, anchor_bytes.data(),
                                   num_anchor_bytes, level);
      if (c == std::string_view::npos) return std::string_view::npos;
      const size_t start = c - static_cast<size_t>(anchor_offset);
      if (start + m > input.size()) return std::string_view::npos;
      bool verified = true;
      for (size_t j = 0; j < m; ++j) {
        if (((masks[static_cast<uint8_t>(input[start + j])] >> j) & 1) == 0) {
          verified = false;
          break;
        }
      }
      if (verified) return start + m;
      ++c;
    }
  }
  // Shift-And: bit j of `d` tracks "chain positions 0..j matched, ending
  // here". Two ops per byte, all prefix attempts in parallel.
  uint64_t d = 0;
  for (size_t i = from; i < input.size(); ++i) {
    d = ((d << 1) | 1) & masks[static_cast<uint8_t>(input[i])];
    if ((d & accept_bit) != 0) return i + 1;
  }
  return std::string_view::npos;
}

uint16_t BitParallelProgram::Find(std::string_view input,
                                  simd::SimdLevel level) const {
  size_t pos = 0;
  for (const Stage& stage : stages_) {
    const size_t end = stage.FindEnd(input, pos, level);
    if (end == std::string_view::npos) return 0;
    pos = end;
  }
  return pos > 65535 ? 65535 : static_cast<uint16_t>(pos);
}

int BitParallelProgram::num_anchored_stages() const {
  int n = 0;
  for (const Stage& stage : stages_) n += stage.anchor_offset >= 0 ? 1 : 0;
  return n;
}

}  // namespace doppio
