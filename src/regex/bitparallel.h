// Bit-parallel (Baeza-Yates–Gonnet Shift-And) execution of chain-shaped
// PU programs on the host CPU.
//
// A chain-shaped token NFA (regex/token_nfa.h AnalyzeChainShape) is an
// ordered sequence of fixed-length token chains glued by '.*' latches —
// LIKE '%t1%t2%...%' where each t_i is a sequence of character specs, not
// just exact bytes. Each stage becomes one Shift-And machine: the match
// state is a single word whose bit j means "the first j+1 positions of
// the chain match, ending at the current byte", stepped with two ALU ops
// per byte:
//
//     D' = ((D << 1) | 1) & B[byte]
//
// where B is the 256-entry position-mask table built from the CharSpecs.
// On top of that, every stage with a *rare* position — a spec matching at
// most simd::kMaxScanBytes distinct bytes — skips via the SIMD candidate
// scan (regex/simd_scan.h): find the next occurrence of the rare byte(s),
// verify the fixed-length window around it directly. Text that cannot
// contain the stage then streams at memchr speed instead of byte-at-a-
// time automaton speed.
//
// Results are bit-identical to the PU kernels by construction: stages are
// fixed-length, so greedy earliest-occurrence search per stage yields the
// same first-accept position as the NFA semantics (the same argument the
// literal kernel relies on), and the verification logic is the CharSpec
// masks themselves.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "regex/simd_scan.h"
#include "regex/token_nfa.h"

namespace doppio {

class BitParallelProgram {
 public:
  /// Compiles a chain-shaped token NFA whose every stage fits a 64-bit
  /// word; nullopt when the shape or the word bound does not hold.
  static std::optional<BitParallelProgram> Compile(const TokenNfa& nfa);

  /// PU ProcessString semantics: 1-based position of the first match's
  /// last character saturated at 65535, or 0 for no match. Callers in a
  /// per-string loop should resolve simd::ActiveSimdLevel() once and pass
  /// it explicitly — the level lookup reads the environment.
  uint16_t Find(std::string_view input) const {
    return Find(input, simd::ActiveSimdLevel());
  }
  uint16_t Find(std::string_view input, simd::SimdLevel level) const;

  int num_stages() const { return static_cast<int>(stages_.size()); }
  /// Stages whose rare-position anchor enables the SIMD candidate scan.
  int num_anchored_stages() const;

 private:
  struct Stage {
    std::array<uint64_t, 256> masks;  // bit j: byte matches chain pos j
    int length = 0;
    uint64_t accept_bit = 0;  // 1 << (length - 1)
    /// Rare position driving the candidate scan; -1 = none (plain
    /// Shift-And loop).
    int anchor_offset = -1;
    std::array<uint8_t, simd::kMaxScanBytes> anchor_bytes{};
    int num_anchor_bytes = 0;

    /// One-past-end index of the earliest occurrence starting at or
    /// after `from`, or npos.
    size_t FindEnd(std::string_view input, size_t from,
                   simd::SimdLevel level) const;
  };

  std::vector<Stage> stages_;
};

}  // namespace doppio
