#include "regex/pattern_ast.h"

#include <algorithm>

namespace doppio {

AstNodePtr AstNode::Empty() {
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kEmpty;
  return node;
}

AstNodePtr AstNode::Literal(std::string text) {
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kLiteral;
  node->literal = std::move(text);
  return node;
}

AstNodePtr AstNode::Class(CharSet set) {
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kCharClass;
  node->char_class = set;
  return node;
}

AstNodePtr AstNode::Concat(std::vector<AstNodePtr> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kConcat;
  node->children = std::move(children);
  return node;
}

AstNodePtr AstNode::Alternate(std::vector<AstNodePtr> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kAlternate;
  node->children = std::move(children);
  return node;
}

AstNodePtr AstNode::Repeat(AstNodePtr child, int min, int max) {
  auto node = std::make_unique<AstNode>();
  node->kind = AstKind::kRepeat;
  node->children.push_back(std::move(child));
  node->repeat_min = min;
  node->repeat_max = max;
  return node;
}

AstNodePtr AstNode::Clone() const {
  auto node = std::make_unique<AstNode>();
  node->kind = kind;
  node->literal = literal;
  node->char_class = char_class;
  node->repeat_min = repeat_min;
  node->repeat_max = repeat_max;
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

namespace {

// Escapes regex metacharacters in a literal for round-trippable rendering.
std::string EscapeLiteral(const std::string& text) {
  static const std::string kMeta = R"(.*+?()[]{}|\:)";
  std::string out;
  for (char c : text) {
    if (kMeta.find(c) != std::string::npos) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string AstNode::ToString() const {
  switch (kind) {
    case AstKind::kEmpty:
      return "";
    case AstKind::kLiteral:
      return EscapeLiteral(literal);
    case AstKind::kCharClass: {
      if (char_class == CharSet::AnyChar()) return ".";
      return char_class.ToString();
    }
    case AstKind::kConcat: {
      std::string out;
      for (const auto& child : children) {
        bool needs_group = child->kind == AstKind::kAlternate;
        if (needs_group) out.push_back('(');
        out += child->ToString();
        if (needs_group) out.push_back(')');
      }
      return out;
    }
    case AstKind::kAlternate: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out.push_back('|');
        out += children[i]->ToString();
      }
      out.push_back(')');
      return out;
    }
    case AstKind::kRepeat: {
      const AstNode& child = *children[0];
      std::string inner = child.ToString();
      bool needs_group =
          child.kind == AstKind::kConcat || child.kind == AstKind::kAlternate ||
          (child.kind == AstKind::kLiteral && child.literal.size() > 1);
      if (needs_group) inner = "(" + inner + ")";
      if (repeat_min == 0 && repeat_max < 0) return inner + "*";
      if (repeat_min == 1 && repeat_max < 0) return inner + "+";
      if (repeat_min == 0 && repeat_max == 1) return inner + "?";
      if (repeat_max == repeat_min) {
        return inner + "{" + std::to_string(repeat_min) + "}";
      }
      if (repeat_max < 0) {
        return inner + "{" + std::to_string(repeat_min) + ",}";
      }
      return inner + "{" + std::to_string(repeat_min) + "," +
             std::to_string(repeat_max) + "}";
    }
  }
  return "";
}

bool AstNode::MatchesEmpty() const {
  switch (kind) {
    case AstKind::kEmpty:
      return true;
    case AstKind::kLiteral:
      return literal.empty();
    case AstKind::kCharClass:
      return false;
    case AstKind::kConcat:
      return std::all_of(children.begin(), children.end(),
                         [](const AstNodePtr& c) { return c->MatchesEmpty(); });
    case AstKind::kAlternate:
      return std::any_of(children.begin(), children.end(),
                         [](const AstNodePtr& c) { return c->MatchesEmpty(); });
    case AstKind::kRepeat:
      return repeat_min == 0 || children[0]->MatchesEmpty();
  }
  return false;
}

int AstNode::MinLength() const {
  switch (kind) {
    case AstKind::kEmpty:
      return 0;
    case AstKind::kLiteral:
      return static_cast<int>(literal.size());
    case AstKind::kCharClass:
      return 1;
    case AstKind::kConcat: {
      int total = 0;
      for (const auto& c : children) total += c->MinLength();
      return total;
    }
    case AstKind::kAlternate: {
      int best = INT32_MAX;
      for (const auto& c : children) best = std::min(best, c->MinLength());
      return best;
    }
    case AstKind::kRepeat:
      return repeat_min * children[0]->MinLength();
  }
  return 0;
}

void AstNode::FoldCase() {
  switch (kind) {
    case AstKind::kCharClass:
      char_class.FoldCase();
      break;
    case AstKind::kLiteral:
      // Literals with letters become per-char folded classes only at
      // compile time; here we keep the literal but record nothing. The
      // compilers consult `fold_case` in CompileOptions instead. For AST
      // level folding we lowercase the literal.
      for (char& c : literal) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      break;
    default:
      break;
  }
  for (auto& child : children) child->FoldCase();
}

}  // namespace doppio
