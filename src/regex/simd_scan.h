// SIMD byte-scan primitives for the host-side matcher backends.
//
// Everything here is a *candidate finder*: given a haystack and a small
// set of target bytes, return the first position whose byte is in the
// set. The callers (regex/bitparallel, hw/kernel_backend) verify
// candidates with exact logic, so these scans only ever have to be
// conservative-complete, never precise — which is what makes the three
// implementations (AVX2, SSE2, scalar table walk) trivially
// bit-equivalent.
//
// Dispatch is by runtime CPUID (GCC/Clang function multi-targeting with
// __builtin_cpu_supports), so one binary runs the widest path the host
// supports and falls back to scalar everywhere else. The active level can
// be capped for testing with DOPPIO_SIMD_LEVEL=scalar|sse2|avx2 — the
// equivalence sweeps run every reachable level against the scalar
// reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace doppio {
namespace simd {

/// Widest vector path a scan may take, in increasing order.
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Stable short tag ("scalar" / "sse2" / "avx2") for stats and benches.
const char* SimdLevelName(SimdLevel level);

/// What the CPU supports (CPUID; computed once). x86-64 always reports at
/// least kSse2; other architectures report kScalar.
SimdLevel DetectedSimdLevel();

/// DetectedSimdLevel() capped by DOPPIO_SIMD_LEVEL when set (unknown
/// values are ignored). Read per call so tests can flip the cap.
SimdLevel ActiveSimdLevel();

/// Maximum distinct target bytes FindByteSet accepts.
inline constexpr int kMaxScanBytes = 4;

/// First index >= `from` whose byte equals one of bytes[0..n), or npos.
/// n must be in [1, kMaxScanBytes]. All levels return identical results.
size_t FindByteSet(std::string_view haystack, size_t from,
                   const uint8_t* bytes, int n);

/// Same, at an explicit level (equivalence tests; levels above
/// DetectedSimdLevel() are clamped to it).
size_t FindByteSetAtLevel(std::string_view haystack, size_t from,
                          const uint8_t* bytes, int n, SimdLevel level);

}  // namespace simd
}  // namespace doppio
