// Token-level NFA: the abstract machine implemented by the FPGA's
// Processing Unit (paper §6).
//
// A *token* is a chain of Character Matchers — each matching an exact byte
// (possibly with case/collation alternatives) or a [lo-hi] range, the
// latter realized by a coupled matcher pair. The *State Graph* is a set of
// states where
//   * a state is activated when one of its trigger tokens completes AND one
//     of its predecessor states was active when that token started
//     (states with no predecessors are start-gated: always enabled),
//   * a state with the `latch` flag stays active once activated — this is
//     how '.*' glue costs no character matchers,
//   * a state may be its own predecessor (re-trigger), which implements '+'
//     over a token,
//   * match is signalled the first time an accept state activates; the
//     reported value is the 1-based position of the match's last character.
//
// TokenNfaMatcher executes these semantics in plain software and is the
// reference model the cycle-level PU simulator is tested against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "regex/matcher.h"

namespace doppio {

/// One Character Matcher position within a token chain.
struct CharSpec {
  /// Matches any byte (wildcard '.'); costs a coupled matcher pair.
  bool any = false;
  /// Inclusive byte ranges; a single exact byte is {c, c}. A spec with k
  /// entries needs k compare registers (2 per true range via pairing).
  struct Range {
    uint8_t lo;
    uint8_t hi;
    auto operator<=>(const Range&) const = default;
  };
  std::vector<Range> ranges;

  bool Test(uint8_t c) const {
    if (any) return true;
    for (const Range& r : ranges) {
      if (c >= r.lo && c <= r.hi) return true;
    }
    return false;
  }

  /// Character-matcher slots consumed (paper §6.3: a range couples two
  /// matchers; an exact byte uses one). Case/collation alternatives are
  /// free: every deployed matcher carries the extra compare registers
  /// whether or not a query uses them (paper §6.4), so a pair of
  /// single-byte ranges that are case counterparts costs one slot.
  int MatcherCost() const {
    if (any) return 2;
    int cost = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      const Range& r = ranges[i];
      if (r.lo != r.hi) {
        cost += 2;
        continue;
      }
      // Case-counterpart single byte already charged with its partner?
      bool is_collation_alt = false;
      for (size_t j = 0; j < i; ++j) {
        const Range& p = ranges[j];
        if (p.lo == p.hi && (p.lo ^ 0x20) == r.lo) {
          is_collation_alt = true;
          break;
        }
      }
      if (!is_collation_alt) cost += 1;
    }
    return cost;
  }

  auto operator<=>(const CharSpec&) const = default;
};

struct HwToken {
  std::vector<CharSpec> chain;

  int length() const { return static_cast<int>(chain.size()); }
  int MatcherCost() const {
    int cost = 0;
    for (const CharSpec& spec : chain) cost += spec.MatcherCost();
    return cost;
  }
  auto operator<=>(const HwToken&) const = default;
};

struct HwState {
  /// Tokens whose completion can activate this state.
  std::vector<int> trigger_tokens;
  /// Predecessor states gating the trigger chains; empty = start-gated.
  /// May contain the state's own index (re-trigger / '+').
  std::vector<int> pred_states;
  bool latch = false;
  bool accept = false;
  /// Member-pattern tag for set-compiled programs (union-NFA with tagged
  /// accepts, docs/PATTERN_SETS.md): accept activation reports a match for
  /// output stream `pattern_tag`. 0 for ordinary single-pattern programs.
  /// Bounded to [0, 63] so a set's streams fit one uint64 mask.
  int pattern_tag = 0;
};

/// The runtime-parameterizable program of one Processing Unit.
struct TokenNfa {
  std::vector<HwToken> tokens;
  std::vector<HwState> states;

  int NumStates() const { return static_cast<int>(states.size()); }
  /// Number of tagged output streams: max pattern_tag + 1. A plain
  /// single-pattern program reports 1.
  int NumPatterns() const {
    int max_tag = 0;
    for (const HwState& s : states) max_tag = std::max(max_tag, s.pattern_tag);
    return max_tag + 1;
  }
  /// Total character-matcher slots the configuration occupies.
  int TotalMatchers() const {
    int cost = 0;
    for (const HwToken& t : tokens) cost += t.MatcherCost();
    return cost;
  }
  /// Longest token chain (bounds the PU shift-register depth).
  int MaxChainLength() const {
    int len = 0;
    for (const HwToken& t : tokens) len = std::max(len, t.length());
    return len;
  }

  /// Human-readable dump for debugging and golden tests.
  std::string ToString() const;

  /// Structural sanity checks (indices in range, accept reachable, ...).
  Status Validate() const;
};

/// If the state graph is a single chain s_0 -> s_1 -> ... -> s_{k-1}
/// where s_0 is start-gated, every non-final state latches (the '.*'
/// glue) and only the final state accepts, each state has exactly one
/// trigger token, and there is no fan-in, fan-out or self-loop, returns
/// the state indices in chain order; nullopt otherwise.
///
/// Such a program is exactly LIKE '%t_0%t_1%...%' over fixed-length
/// token chains: ordered, non-overlapping occurrences, and greedy
/// earliest matching per stage yields the same first-accept position as
/// the NFA semantics. This one analysis backs both the literal PU kernel
/// (hw/pu_kernel) and the bit-parallel host backend (regex/bitparallel).
std::optional<std::vector<int>> AnalyzeChainShape(const TokenNfa& nfa);

/// Builds the union automaton of `members` with tagged accepts: member k's
/// states are copied with pattern_tag = k, predecessor indices rebased, and
/// structurally identical tokens deduplicated across members (the trigger
/// bitmask makes a shared token free). Members stay fully disjoint in the
/// state graph, so each tagged stream behaves exactly as the member run
/// alone. Fails with InvalidArgument for an empty set, a member that is
/// itself a set, or more than 64 members; CapacityExceeded when the union
/// overflows the config-vector format (255 tokens/states).
Result<TokenNfa> BuildUnionNfa(const std::vector<const TokenNfa*>& members);

/// Extracts member `pattern_tag` of a union back out as a standalone
/// single-pattern NFA (tags cleared, tokens/states renumbered). Inverse of
/// BuildUnionNfa per member; used by the SIMD backend to run chain-shaped
/// members bit-parallel.
Result<TokenNfa> ExtractMemberNfa(const TokenNfa& union_nfa, int pattern_tag);

/// Software execution of the PU semantics (the reference model).
class TokenNfaMatcher : public StringMatcher {
 public:
  explicit TokenNfaMatcher(TokenNfa nfa);

  MatchResult Find(std::string_view input) const override;

  /// Set semantics over a tagged union: per-stream first-accept positions
  /// (index = pattern_tag, size = nfa().NumPatterns()). The scan runs until
  /// every stream has matched or the input ends; stream p of the result is
  /// bit-identical to Find() on member p alone.
  std::vector<MatchResult> FindSet(std::string_view input) const;

  const TokenNfa& nfa() const { return nfa_; }

 private:
  struct Edge {
    int token;
    int state;
    int chain_len;
    uint64_t fired_bit;
  };

  TokenNfa nfa_;
  std::vector<Edge> edges_;
};

}  // namespace doppio
