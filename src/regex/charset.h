// 256-way byte set used as the character-class representation throughout
// the regex stack (parser, Thompson program, DFA) .
#pragma once

#include <bitset>
#include <cctype>
#include <cstdint>
#include <string>

namespace doppio {

class CharSet {
 public:
  CharSet() = default;

  static CharSet Single(uint8_t c) {
    CharSet s;
    s.bits_.set(c);
    return s;
  }
  static CharSet Range(uint8_t lo, uint8_t hi) {
    CharSet s;
    for (int c = lo; c <= hi; ++c) s.bits_.set(static_cast<size_t>(c));
    return s;
  }
  /// '.' — any byte. The dialect matches whole SQL values (no line
  /// semantics), and the hardware wildcard matcher is also byte-blind, so
  /// both execution paths agree exactly.
  static CharSet AnyChar() {
    CharSet s;
    s.bits_.set();
    return s;
  }
  static CharSet All() {
    CharSet s;
    s.bits_.set();
    return s;
  }

  void Add(uint8_t c) { bits_.set(c); }
  void AddRange(uint8_t lo, uint8_t hi) {
    for (int c = lo; c <= hi; ++c) bits_.set(static_cast<size_t>(c));
  }
  void Negate() { bits_.flip(); }
  void UnionWith(const CharSet& other) { bits_ |= other.bits_; }

  /// Adds the case counterpart of every ASCII letter currently in the set.
  void FoldCase() {
    for (int c = 'a'; c <= 'z'; ++c) {
      if (bits_.test(static_cast<size_t>(c))) {
        bits_.set(static_cast<size_t>(c - 'a' + 'A'));
      }
    }
    for (int c = 'A'; c <= 'Z'; ++c) {
      if (bits_.test(static_cast<size_t>(c))) {
        bits_.set(static_cast<size_t>(c - 'A' + 'a'));
      }
    }
  }

  bool Test(uint8_t c) const { return bits_.test(c); }
  size_t Count() const { return bits_.count(); }
  bool Empty() const { return bits_.none(); }

  bool operator==(const CharSet& other) const { return bits_ == other.bits_; }

  /// Debug rendering, e.g. "[a-c8]".
  std::string ToString() const;

 private:
  std::bitset<256> bits_;
};

inline std::string CharSet::ToString() const {
  std::string out = "[";
  int run_start = -1;
  auto flush = [&](int end) {
    if (run_start < 0) return;
    auto emit = [&](int c) {
      if (std::isprint(c) != 0) {
        // Keep the rendering re-parsable: escape class metacharacters.
        if (c == ']' || c == '\\' || c == '-' || c == '^') {
          out.push_back('\\');
        }
        out.push_back(static_cast<char>(c));
      } else {
        // Backslash + raw byte: the class parser takes any escaped byte
        // literally, so this stays exactly re-parsable.
        out.push_back('\\');
        out.push_back(static_cast<char>(c));
      }
    };
    emit(run_start);
    if (end - 1 > run_start) {
      if (end - 1 > run_start + 1) out.push_back('-');
      emit(end - 1);
    }
    run_start = -1;
  };
  for (int c = 0; c < 256; ++c) {
    if (Test(static_cast<uint8_t>(c))) {
      if (run_start < 0) run_start = c;
    } else {
      flush(c);
    }
  }
  flush(256);
  out.push_back(']');
  return out;
}

}  // namespace doppio
