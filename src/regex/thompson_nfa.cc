#include "regex/thompson_nfa.h"

namespace doppio {

namespace {

constexpr int kMaxInstructions = 64 * 1024;

class Compiler {
 public:
  explicit Compiler(const CompileOptions& options) : options_(options) {}

  Result<Program> Compile(const AstNode& ast) {
    DOPPIO_RETURN_NOT_OK(Emit(ast));
    DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kAccept, {}, -1, -1}));
    return Program(std::move(insts_), options_);
  }

 private:
  Status Push(Inst inst) {
    if (static_cast<int>(insts_.size()) >= kMaxInstructions) {
      return Status::CapacityExceeded(
          "regex program exceeds instruction limit");
    }
    insts_.push_back(std::move(inst));
    return Status::OK();
  }

  int Here() const { return static_cast<int>(insts_.size()); }

  CharSet MaybeFold(CharSet set) const {
    if (options_.case_insensitive) set.FoldCase();
    for (const auto& [a, b] : options_.collation_equivalents) {
      if (set.Test(a)) set.Add(b);
      if (set.Test(b)) set.Add(a);
    }
    return set;
  }

  // Emits code for `node`; on completion, control falls through to the
  // next instruction after the emitted block.
  Status Emit(const AstNode& node) {
    switch (node.kind) {
      case AstKind::kEmpty:
        return Status::OK();
      case AstKind::kLiteral: {
        for (char c : node.literal) {
          DOPPIO_RETURN_NOT_OK(
              Push(Inst{OpCode::kChar,
                        MaybeFold(CharSet::Single(static_cast<uint8_t>(c))),
                        -1, -1}));
        }
        return Status::OK();
      }
      case AstKind::kCharClass:
        return Push(
            Inst{OpCode::kChar, MaybeFold(node.char_class), -1, -1});
      case AstKind::kConcat: {
        for (const auto& child : node.children) {
          DOPPIO_RETURN_NOT_OK(Emit(*child));
        }
        return Status::OK();
      }
      case AstKind::kAlternate: {
        // Chain of splits; each branch jumps to the common exit.
        std::vector<int> jumps;
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (i + 1 < node.children.size()) {
            int split_pc = Here();
            DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kSplit, {}, -1, -1}));
            insts_[split_pc].x = Here();
            DOPPIO_RETURN_NOT_OK(Emit(*node.children[i]));
            int jmp_pc = Here();
            DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kJmp, {}, -1, -1}));
            jumps.push_back(jmp_pc);
            insts_[split_pc].y = Here();
          } else {
            DOPPIO_RETURN_NOT_OK(Emit(*node.children[i]));
          }
        }
        for (int pc : jumps) insts_[pc].x = Here();
        return Status::OK();
      }
      case AstKind::kRepeat:
        return EmitRepeat(node);
    }
    return Status::Internal("unknown AST node");
  }

  Status EmitRepeat(const AstNode& node) {
    const AstNode& child = *node.children[0];
    int min = node.repeat_min;
    int max = node.repeat_max;

    // Mandatory copies.
    for (int i = 0; i < min; ++i) {
      DOPPIO_RETURN_NOT_OK(Emit(child));
    }
    if (max < 0) {
      // Kleene star tail: L1: split L2, L3; L2: child; jmp L1; L3:
      int split_pc = Here();
      DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kSplit, {}, -1, -1}));
      insts_[split_pc].x = Here();  // greedy: try the loop body first
      DOPPIO_RETURN_NOT_OK(Emit(child));
      DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kJmp, {}, split_pc, -1}));
      insts_[split_pc].y = Here();
      return Status::OK();
    }
    // Bounded optional copies: each may bail to the common exit.
    std::vector<int> splits;
    for (int i = min; i < max; ++i) {
      int split_pc = Here();
      DOPPIO_RETURN_NOT_OK(Push(Inst{OpCode::kSplit, {}, -1, -1}));
      insts_[split_pc].x = Here();
      splits.push_back(split_pc);
      DOPPIO_RETURN_NOT_OK(Emit(child));
    }
    for (int pc : splits) insts_[pc].y = Here();
    return Status::OK();
  }

  const CompileOptions& options_;
  std::vector<Inst> insts_;
};

}  // namespace

Result<Program> CompileProgram(const AstNode& ast,
                               const CompileOptions& options) {
  return Compiler(options).Compile(ast);
}

}  // namespace doppio
