#include "regex/substring_search.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace doppio {

size_t FindLiteralScan(std::string_view haystack, std::string_view needle,
                       size_t from) {
  const size_t m = needle.size();
  if (m == 0) return from <= haystack.size() ? from : std::string_view::npos;
  if (haystack.size() < m || from > haystack.size() - m) {
    return std::string_view::npos;
  }
  const char first = needle[0];
  // Distance from the needle's first byte to its next occurrence inside
  // the needle (m when it never recurs). After a candidate verified j
  // bytes, the window text *is* the needle's j-byte prefix, so the next
  // possible candidate starts at pos + min(restart, j) — never just
  // pos + 1, and never past a start the prefix could still contain
  // (needle "aab" on "aaab" must retry at pos + 1).
  size_t restart = 1;
  while (restart < m && needle[restart] != first) ++restart;
  const char* base = haystack.data();
  size_t pos = from;
  const size_t last_start = haystack.size() - m;
  while (pos <= last_start) {
    const void* hit = std::memchr(base + pos, first, last_start - pos + 1);
    if (hit == nullptr) return std::string_view::npos;
    pos = static_cast<size_t>(static_cast<const char*>(hit) - base);
    size_t j = 1;
    while (j < m && base[pos + j] == needle[j]) ++j;
    if (j == m) return pos;
    pos += std::min(restart, j);
  }
  return std::string_view::npos;
}

namespace {
inline uint8_t Fold(uint8_t c, bool fold) {
  return fold ? static_cast<uint8_t>(std::tolower(c)) : c;
}
}  // namespace

BoyerMooreMatcher::BoyerMooreMatcher(std::string needle,
                                     bool case_insensitive)
    : needle_(std::move(needle)), case_insensitive_(case_insensitive) {
  const size_t m = needle_.size();
  shift_.fill(m == 0 ? 1 : m);
  for (size_t i = 0; m > 0 && i + 1 < m; ++i) {
    uint8_t c = Fold(static_cast<uint8_t>(needle_[i]), case_insensitive_);
    shift_[c] = m - 1 - i;
    if (case_insensitive_) {
      shift_[static_cast<uint8_t>(std::toupper(c))] = m - 1 - i;
    }
  }
}

size_t BoyerMooreMatcher::Find(std::string_view haystack, size_t from) const {
  const size_t m = needle_.size();
  if (m == 0) return from <= haystack.size() ? from : std::string_view::npos;
  if (haystack.size() < m) return std::string_view::npos;

  size_t pos = from;
  while (pos + m <= haystack.size()) {
    size_t j = m;
    while (j > 0 &&
           Fold(static_cast<uint8_t>(haystack[pos + j - 1]),
                case_insensitive_) ==
               Fold(static_cast<uint8_t>(needle_[j - 1]), case_insensitive_)) {
      --j;
    }
    if (j == 0) return pos;
    uint8_t last = Fold(static_cast<uint8_t>(haystack[pos + m - 1]),
                        case_insensitive_);
    pos += shift_[last];
  }
  return std::string_view::npos;
}

KmpMatcher::KmpMatcher(std::string needle, bool case_insensitive)
    : needle_(std::move(needle)), case_insensitive_(case_insensitive) {
  const size_t m = needle_.size();
  failure_.assign(m, 0);
  for (size_t i = 1; i < m; ++i) {
    int k = failure_[i - 1];
    uint8_t ci = Fold(static_cast<uint8_t>(needle_[i]), case_insensitive_);
    while (k > 0 && Fold(static_cast<uint8_t>(needle_[static_cast<size_t>(k)]),
                         case_insensitive_) != ci) {
      k = failure_[static_cast<size_t>(k - 1)];
    }
    if (Fold(static_cast<uint8_t>(needle_[static_cast<size_t>(k)]),
             case_insensitive_) == ci) {
      ++k;
    }
    failure_[i] = k;
  }
}

size_t KmpMatcher::Find(std::string_view haystack, size_t from) const {
  const size_t m = needle_.size();
  if (m == 0) return from <= haystack.size() ? from : std::string_view::npos;
  int k = 0;
  for (size_t i = from; i < haystack.size(); ++i) {
    uint8_t c = Fold(static_cast<uint8_t>(haystack[i]), case_insensitive_);
    while (k > 0 && Fold(static_cast<uint8_t>(needle_[static_cast<size_t>(k)]),
                         case_insensitive_) != c) {
      k = failure_[static_cast<size_t>(k - 1)];
    }
    if (Fold(static_cast<uint8_t>(needle_[static_cast<size_t>(k)]),
             case_insensitive_) == c) {
      ++k;
    }
    if (static_cast<size_t>(k) == m) return i + 1 - m;
  }
  return std::string_view::npos;
}

Result<std::unique_ptr<MultiSubstringMatcher>> MultiSubstringMatcher::Create(
    std::vector<std::string> substrings, bool case_insensitive) {
  if (substrings.empty()) {
    return Status::InvalidArgument("need at least one substring");
  }
  std::vector<BoyerMooreMatcher> stages;
  stages.reserve(substrings.size());
  for (auto& s : substrings) {
    if (s.empty()) {
      return Status::InvalidArgument("empty substring in LIKE pattern");
    }
    stages.emplace_back(std::move(s), case_insensitive);
  }
  return std::unique_ptr<MultiSubstringMatcher>(
      new MultiSubstringMatcher(std::move(stages)));
}

MatchResult MultiSubstringMatcher::Find(std::string_view input) const {
  size_t pos = 0;
  for (const BoyerMooreMatcher& stage : stages_) {
    size_t hit = stage.Find(input, pos);
    if (hit == std::string_view::npos) return MatchResult{};
    pos = hit + stage.needle().size();
  }
  return MatchResult{true, static_cast<int32_t>(pos)};
}

}  // namespace doppio
