// Wall-clock stopwatch used by the software-side measurements. FPGA-side
// timings come from the simulator's virtual clock, never from this class.
#pragma once

#include <chrono>
#include <cstdint>

namespace doppio {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace doppio
