#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace doppio {

ThreadPool::ThreadPool(int num_threads) {
  DOPPIO_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    shutdown_ = true;
    joined_ = true;
  }
  cv_.notify_all();
  // Workers exit only once the queue is empty (WorkerLoop), so every task
  // queued before this point runs to completion — futures handed out by
  // Submit() are all ready when the joins return.
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) {
      // The workers are gone (or going): queueing now could strand the
      // task forever. Run it inline so the future still completes and no
      // submission is lost — late stragglers degrade to caller-pays.
      lock.unlock();
      task();
      return future;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::atomic<int> next{0};
  auto body = [&] {
    while (true) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::future<void>> futures;
  int helpers = std::min<int>(num_threads(), n) - 1;
  futures.reserve(static_cast<size_t>(std::max(helpers, 0)));
  for (int i = 0; i < helpers; ++i) futures.push_back(Submit(body));
  body();  // Caller participates.
  for (auto& f : futures) f.wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace doppio
