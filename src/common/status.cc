#include "common/status.h"

namespace doppio {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimingViolation:
      return "TimingViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace doppio
