// Status and Result<T>: exception-free error handling in the style of
// Apache Arrow / RocksDB. Library code returns Status (or Result<T>) for
// every fallible operation; exceptions are not used.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace doppio {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kCapacityExceeded = 5,  // pattern does not fit the deployed PU geometry
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kTimingViolation = 9,  // circuit configuration fails timing closure
  kParseError = 10,
  kUnavailable = 11,       // transient device fault; retrying may succeed
  kDeadlineExceeded = 12,  // job missed its wait deadline
  kResourceExhausted = 13,  // a bounded queue/pool is full; drain and retry
  kOverloaded = 14,  // admission control rejected the request; back off
};

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Mirrors the Arrow/RocksDB idiom mandated by the project style.
class Status {
 public:
  Status() noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimingViolation(std::string msg) {
    return Status(StatusCode::kTimingViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsTimingViolation() const {
    return code() == StatusCode::kTimingViolation;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status)                          // NOLINT implicit
      : value_(std::move(status)) {
    assert(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<T, Status> value_;
};

const char* StatusCodeName(StatusCode code);

/// Classifies a hardware-path error for the degradation machinery: true
/// when a software matcher can still serve the query (device overloaded,
/// unavailable, job lost or too big for the deployed geometry), false for
/// errors a re-execution cannot fix (bad arguments, broken patterns,
/// internal invariant violations). Used by the HUDF fallback path and
/// REGEXP_AUTO to distinguish "use software" from "fail the query".
inline bool IsFallbackEligible(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:         // transient device fault
    case StatusCode::kDeadlineExceeded:    // stuck/lost job
    case StatusCode::kIOError:             // legacy queue back-pressure
    case StatusCode::kResourceExhausted:   // job ring full; drains over time
    case StatusCode::kCapacityExceeded:    // pattern exceeds PU geometry
    case StatusCode::kNotImplemented:      // e.g. unsupported offset width
    case StatusCode::kTimingViolation:     // config fails timing closure
      return true;
    default:
      // Note kOverloaded is deliberately NOT fallback-eligible: it is an
      // admission-control verdict, not a device fault — the client must
      // back off rather than burn CPU re-running the query in software.
      return false;
  }
}

}  // namespace doppio
