// Common helper macros, following the Arrow/RocksDB conventions.
#pragma once

#define DOPPIO_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

// Propagates a non-OK Status out of the current function.
#define DOPPIO_RETURN_NOT_OK(expr)              \
  do {                                          \
    ::doppio::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

// Assigns the value of a Result<T> expression to `lhs`, or propagates the
// error Status.
#define DOPPIO_CONCAT_IMPL(a, b) a##b
#define DOPPIO_CONCAT(a, b) DOPPIO_CONCAT_IMPL(a, b)

#define DOPPIO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define DOPPIO_ASSIGN_OR_RETURN(lhs, rexpr) \
  DOPPIO_ASSIGN_OR_RETURN_IMPL(             \
      DOPPIO_CONCAT(_doppio_result_, __LINE__), lhs, rexpr)
