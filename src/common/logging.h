// Minimal leveled logging with a process-wide severity threshold.
#pragma once

#include <sstream>
#include <string>

namespace doppio {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level that is emitted (default: kWarning,
/// so library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace doppio

#define DOPPIO_LOG(level)                                          \
  ::doppio::internal::LogMessage(::doppio::LogLevel::k##level,     \
                                 __FILE__, __LINE__)

// Invariant check that aborts with a message; active in all build types.
#define DOPPIO_CHECK(cond)                                             \
  if (!(cond))                                                         \
  ::doppio::internal::LogMessage(::doppio::LogLevel::kError, __FILE__, \
                                 __LINE__)                             \
      << "Check failed: " #cond " ",                                   \
      ::abort()
