#include "common/random.h"

#include <cassert>

namespace doppio {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to seed the xoshiro state from a single value.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::string Rng::AsciiLower(size_t length) {
  static const std::string kAlphabet = "abcdefghijklmnopqrstuvwxyz";
  return FromAlphabet(kAlphabet, length);
}

std::string Rng::FromAlphabet(const std::string& alphabet, size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[NextBounded(alphabet.size())]);
  }
  return out;
}

}  // namespace doppio
