// Deterministic pseudo-random generator for workload synthesis and
// property tests. Wraps a fixed-algorithm engine so results are stable
// across standard library implementations.
#pragma once

#include <cstdint>
#include <string>

namespace doppio {

/// xoshiro256** — small, fast, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string AsciiLower(size_t length);

  /// Random string drawn from the given alphabet.
  std::string FromAlphabet(const std::string& alphabet, size_t length);

 private:
  uint64_t state_[4];
};

}  // namespace doppio
