// Fixed-size worker pool used to model MonetDB's intra-operator parallelism
// (the paper's machine exposes 10 cores; the column store partitions BATs
// ten ways and fans work out to a pool of this kind).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace doppio {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues `fn`; returns a future completing when it has run. After
  /// Shutdown() the task runs inline on the calling thread instead (the
  /// future still completes) — no submission is ever silently dropped.
  std::future<void> Submit(std::function<void()> fn);

  /// Drains every queued task and joins the workers. Deterministic: all
  /// futures handed out by Submit() before this call are completed when it
  /// returns — queued work is executed, never discarded. Idempotent; also
  /// run by the destructor. The scheduler relies on this to guarantee that
  /// CPU-routed slices are never lost on teardown.
  void Shutdown();

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// invocations finish. The calling thread also participates.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  bool joined_ = false;
};

}  // namespace doppio
