// Size and rate unit helpers shared across the performance models.
#pragma once

#include <cstdint>

namespace doppio {

inline constexpr int64_t kKiB = int64_t{1} << 10;
inline constexpr int64_t kMiB = int64_t{1} << 20;
inline constexpr int64_t kGiB = int64_t{1} << 30;

inline constexpr int64_t kKB = 1000;
inline constexpr int64_t kMB = 1000 * 1000;
inline constexpr int64_t kGB = 1000 * 1000 * 1000;

/// One CPU-FPGA cache line as seen by the QPI endpoint: 512 bits.
inline constexpr int64_t kCacheLineBytes = 64;

inline constexpr double GBps(double gigabytes_per_second) {
  return gigabytes_per_second * 1e9;
}

}  // namespace doppio
