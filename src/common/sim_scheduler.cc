#include "common/sim_scheduler.h"

#include "common/logging.h"

namespace doppio {

void SimScheduler::ScheduleAt(SimTime when, std::function<void()> fn) {
  DOPPIO_CHECK(when >= now());
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime SimScheduler::Run() {
  while (!queue_.empty()) {
    // The event callback may schedule more events, so copy out first.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_.store(ev.when, std::memory_order_relaxed);
    ev.fn();
  }
  return now();
}

bool SimScheduler::RunOne() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_.store(ev.when, std::memory_order_relaxed);
  ev.fn();
  return true;
}

SimTime SimScheduler::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_.store(ev.when, std::memory_order_relaxed);
    ev.fn();
  }
  if (now() < deadline) now_.store(deadline, std::memory_order_relaxed);
  return now();
}

}  // namespace doppio
