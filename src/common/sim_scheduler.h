// Virtual-time discrete-event scheduler.
//
// The FPGA half of the system is simulated: its timings are expressed on a
// virtual clock (picosecond resolution) that advances only when events are
// processed. Client-scaling experiments (Fig. 11) run the whole closed-loop
// system — clients, job queue, engines — on this scheduler so that queueing
// behaviour emerges without tying simulated rates to host wall-clock speed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/macros.h"

namespace doppio {

/// Virtual time in picoseconds. Picoseconds keep exact integer arithmetic
/// for both the 200 MHz (5000 ps) and 400 MHz (2500 ps) clock domains.
using SimTime = int64_t;

inline constexpr SimTime kPicosPerSecond = 1'000'000'000'000LL;

inline constexpr SimTime PicosFromSeconds(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kPicosPerSecond));
}

inline constexpr double SecondsFromPicos(SimTime picos) {
  return static_cast<double>(picos) / static_cast<double>(kPicosPerSecond);
}

class SimScheduler {
 public:
  SimScheduler() = default;
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(SimScheduler);

  /// The clock is atomic so client threads may read it without the
  /// owning device's lock (deadline computation, trace stamps) while a
  /// waiter advances it under the lock; all queue mutation and event
  /// execution remain externally serialized.
  SimTime now() const { return now_.load(std::memory_order_relaxed); }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now()).
  /// Events at equal times run in scheduling order (stable).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` picoseconds from now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now() + delay, std::move(fn));
  }

  /// Runs events until the queue is empty. Returns the final virtual time.
  SimTime Run();

  /// Runs events until virtual time exceeds `deadline` or the queue drains.
  SimTime RunUntil(SimTime deadline);

  /// Runs exactly one event; returns false if the queue is empty.
  bool RunOne();

  /// Virtual time of the earliest pending event, or kNoEvent when the
  /// queue is empty. Lets deadline waiters decide whether advancing the
  /// clock can still help before the deadline (see
  /// FpgaDevice::WaitForJobUntil).
  static constexpr SimTime kNoEvent = -1;
  SimTime NextEventTime() const {
    return queue_.empty() ? kNoEvent : queue_.top().when;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-breaker for stable ordering
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::atomic<SimTime> now_{0};
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace doppio
