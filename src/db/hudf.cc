#include "db/hudf.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/stopwatch.h"

namespace doppio {

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         const RegexConfig& config,
                                         int partitions) {
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }
  if (partitions <= 0) partitions = hal->device_config().num_engines;
  partitions = static_cast<int>(
      std::min<int64_t>(partitions, std::max<int64_t>(input.count(), 1)));

  Stopwatch udf_watch;
  HudfResult out;
  out.stats.strategy = "fpga";  // partitioning is internal to the operator
  out.stats.rows_scanned = input.count();

  DOPPIO_ASSIGN_OR_RETURN(
      out.result,
      Bat::New(ValueType::kInt16, input.count(), hal->bat_allocator()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  // One job per slice; all slices share the heap and the result BAT.
  Stopwatch hal_watch;
  const int64_t chunk = (input.count() + partitions - 1) / partitions;
  const uint32_t* all_offsets =
      reinterpret_cast<const uint32_t*>(input.tail_data());
  std::vector<FpgaJob> jobs;
  for (int p = 0; p < partitions; ++p) {
    const int64_t first = p * chunk;
    if (first >= input.count()) break;
    const int64_t rows = std::min<int64_t>(chunk, input.count() - first);
    JobParams params;
    params.offsets = input.tail_data() + first * input.offset_width();
    params.heap = input.heap()->data();
    params.result = out.result->mutable_tail_data() + first * 2;
    params.count = rows;
    params.offset_width = static_cast<int32_t>(input.offset_width());
    // Heap extent of this slice: up to the next slice's first string (the
    // heap is written in row order), or the heap end for the last slice.
    params.heap_bytes =
        first + rows < input.count()
            ? static_cast<int64_t>(all_offsets[first + rows])
            : input.heap()->size_bytes();
    params.config = config.vector.bytes();
    DOPPIO_ASSIGN_OR_RETURN(JobId id,
                            hal->device()->Submit(std::move(params)));
    jobs.emplace_back(hal->device(), id);
  }
  out.stats.hal_seconds = hal_watch.ElapsedSeconds();

  Stopwatch wait_watch;
  SimTime first_enqueue = std::numeric_limits<SimTime>::max();
  SimTime last_finish = 0;
  for (FpgaJob& job : jobs) {
    DOPPIO_RETURN_NOT_OK(job.Wait());
    const JobStatus& status = job.status();
    first_enqueue = std::min(first_enqueue, status.enqueue_time);
    last_finish = std::max(last_finish, status.finish_time);
    out.stats.rows_matched += status.matches;
    if (out.stats.pu_kernel.empty()) out.stats.pu_kernel = status.pu_kernel;
    out.stats.functional_bytes += status.functional_bytes;
    out.stats.functional_seconds += status.functional_host_seconds;
  }
  out.stats.sim_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.hw_seconds = SecondsFromPicos(last_finish - first_enqueue);
  out.stats.udf_software_seconds =
      std::max(0.0, udf_watch.ElapsedSeconds() - out.stats.hal_seconds -
                        out.stats.sim_host_seconds);
  return out;
}

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         std::string_view pattern,
                                         const CompileOptions& options,
                                         int partitions) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(
      HudfResult out, RegexpFpgaPartitioned(hal, input, config, partitions));
  out.stats.config_gen_seconds = config.compile_seconds;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(HudfResult out, RegexpFpga(hal, input, config));
  out.stats.config_gen_seconds = config.compile_seconds;
  out.stats.udf_software_seconds -= config.compile_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              const RegexConfig& config) {
  Stopwatch udf_watch;
  HudfResult out;
  out.stats.strategy = "fpga";
  out.stats.rows_scanned = input.count();

  // Allocate the result BAT (BATnew(TYPE_void, TYPE_short, count)).
  DOPPIO_ASSIGN_OR_RETURN(
      out.result,
      Bat::New(ValueType::kInt16, input.count(), hal->bat_allocator()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  // Create the FPGA job through the HAL and busy-wait on the done bit.
  Stopwatch hal_watch;
  DOPPIO_ASSIGN_OR_RETURN(FpgaJob job,
                          hal->CreateRegexJob(input, out.result.get(),
                                              config));
  out.stats.hal_seconds = hal_watch.ElapsedSeconds();

  // The busy-wait advances the simulator's virtual clock; the host time it
  // burns doing so is a simulation artifact and is excluded from the
  // software phases. The hardware phase is virtual time.
  Stopwatch wait_watch;
  DOPPIO_RETURN_NOT_OK(job.Wait());
  const double wait_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.sim_host_seconds = wait_host_seconds;
  out.stats.hw_seconds = job.HwSeconds();  // virtual (simulated) time
  out.stats.rows_matched = job.status().matches;
  out.stats.pu_kernel = job.status().pu_kernel;
  out.stats.functional_bytes = job.status().functional_bytes;
  out.stats.functional_seconds = job.status().functional_host_seconds;
  out.stats.udf_software_seconds = udf_watch.ElapsedSeconds() -
                                   out.stats.hal_seconds -
                                   wait_host_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  return out;
}

}  // namespace doppio
