#include "db/hudf.h"

#include <algorithm>
#include <limits>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "hw/output_collector.h"
#include "hw/processing_unit.h"
#include "hw/string_reader.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace doppio {

namespace {

obs::Counter& FallbackRowsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.db.fallback_rows",
      "rows re-matched in software after the hardware path gave up");
  return *c;
}

/// Snapshot of one completed job's lifecycle stamps for the tracer.
obs::JobTraceRecord MakeJobRecord(obs::TraceId trace,
                                  const JobStatus& status) {
  obs::JobTraceRecord record;
  record.trace_id = trace;
  record.queue_job_id = status.queue_job_id;
  record.engine_id = status.engine_id;
  record.enqueue_time = status.enqueue_time;
  record.dispatch_time = status.dispatch_time;
  record.start_time = status.start_time;
  record.collect_start_time = status.collect_start_time;
  record.done_bit_time = status.done_bit_time;
  record.finish_time = status.finish_time;
  record.retries = status.retries;
  record.fault_flags = status.fault_flags.load(std::memory_order_acquire);
  record.matches = status.matches;
  record.strings_processed = status.strings_processed;
  record.bytes_streamed = status.bytes_streamed;
  record.pu_kernel = status.pu_kernel;
  return record;
}

/// Software degradation path: re-executes one job slice on the host
/// through the same compiled PU program the engines run, writing raw
/// 16-bit match indexes into the slice's result range. Bit-identical to
/// the hardware functional pass by construction — same ConfigVector
/// decode, same kernel, same saturation — so a degraded query returns
/// exactly the BAT a healthy device would have produced. Returns the
/// slice's match count.
Result<int64_t> RunSliceInSoftware(const DeviceConfig& device,
                                   const JobParams& params) {
  DOPPIO_ASSIGN_OR_RETURN(ConfigVector cv,
                          ConfigVector::FromBytes(params.config));
  DOPPIO_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPuProgram> program,
                          CompiledPuProgram::Compile(cv, device));
  ProcessingUnit pu(device);
  pu.Configure(std::move(program));
  StringReader reader(params);
  OutputCollector collector(params);
  while (reader.HasMore()) {
    DOPPIO_ASSIGN_OR_RETURN(StringReader::Block block, reader.ReadBlock());
    for (std::string_view s : block.strings) {
      DOPPIO_RETURN_NOT_OK(collector.Append(pu.ProcessString(s)));
    }
  }
  return collector.matches();
}

}  // namespace

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         const RegexConfig& config,
                                         int partitions) {
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }
  if (partitions <= 0) partitions = hal->device_config().num_engines;
  partitions = static_cast<int>(
      std::min<int64_t>(partitions, std::max<int64_t>(input.count(), 1)));

  Stopwatch udf_watch;
  obs::Tracer& tracer = obs::Tracer::Global();
  const obs::TraceId trace = tracer.BeginQuery("regexp_fpga_partitioned");
  HudfResult out;
  out.stats.trace_id = trace;
  out.stats.strategy = "fpga";  // partitioning is internal to the operator
  out.stats.rows_scanned = input.count();

  DOPPIO_ASSIGN_OR_RETURN(
      out.result,
      Bat::New(ValueType::kInt16, input.count(), hal->bat_allocator()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  if (input.count() == 0) {
    // Degenerate job: no rows means no slices. Without this guard the
    // submit loop below produces no jobs and the hardware phase would be
    // derived from an empty min/max (a bogus negative duration).
    out.stats.udf_software_seconds = udf_watch.ElapsedSeconds();
    tracer.EndQuery(trace);
    return out;
  }

  const RetryPolicy& policy = hal->retry_policy();

  // One job per slice; all slices share the heap and the result BAT.
  // Every slice is submitted before any is waited on, so slices overlap
  // in virtual time across engines.
  Stopwatch hal_watch;
  const int64_t chunk = (input.count() + partitions - 1) / partitions;
  const uint32_t* all_offsets =
      reinterpret_cast<const uint32_t*>(input.tail_data());
  struct Slice {
    JobParams params;     // kept alive across resubmissions
    FpgaJob job;          // invalid when the submit itself degraded
    JobOutcome outcome;
    bool fallback = false;
  };
  std::vector<Slice> slices;
  for (int p = 0; p < partitions; ++p) {
    const int64_t first = p * chunk;
    if (first >= input.count()) break;
    const int64_t rows = std::min<int64_t>(chunk, input.count() - first);
    if (rows <= 0) continue;
    slices.emplace_back();
    Slice& slice = slices.back();
    JobParams& params = slice.params;
    params.offsets = input.tail_data() + first * input.offset_width();
    params.heap = input.heap()->data();
    params.result = out.result->mutable_tail_data() + first * 2;
    params.count = rows;
    params.offset_width = static_cast<int32_t>(input.offset_width());
    // Heap extent of this slice: up to the next slice's first string (the
    // heap is written in row order), or the heap end for the last slice.
    params.heap_bytes =
        first + rows < input.count()
            ? static_cast<int64_t>(all_offsets[first + rows])
            : input.heap()->size_bytes();
    params.config = config.vector.bytes();
    Result<FpgaJob> job =
        SubmitJobWithRetry(hal->device(), params, policy, &slice.outcome);
    if (job.ok()) {
      slice.job = *job;
    } else if (IsFallbackEligible(job.status())) {
      slice.fallback = true;
    } else {
      return job.status();
    }
  }
  out.stats.hal_seconds = hal_watch.ElapsedSeconds();

  Stopwatch wait_watch;
  SimTime first_enqueue = std::numeric_limits<SimTime>::max();
  SimTime last_finish = 0;
  bool any_hw = false;
  for (Slice& slice : slices) {
    if (!slice.fallback) {
      Status st = AwaitJobWithRecovery(hal->device(), &slice.job,
                                       slice.params, policy, &slice.outcome);
      if (st.ok()) {
        const JobStatus& status = slice.job.status();
        any_hw = true;
        if (trace != obs::kInvalidTraceId) {
          tracer.RecordJob(MakeJobRecord(trace, status));
        }
        first_enqueue = std::min(first_enqueue, status.enqueue_time);
        last_finish = std::max(last_finish, status.finish_time);
        out.stats.rows_matched += status.matches;
        if (out.stats.pu_kernel.empty()) {
          out.stats.pu_kernel = status.pu_kernel;
        }
        out.stats.functional_bytes += status.functional_bytes;
        out.stats.functional_seconds += status.functional_host_seconds;
      } else if (IsFallbackEligible(st)) {
        slice.fallback = true;
      } else {
        return st;
      }
    }
    out.stats.job_retries += slice.outcome.retries;
    if (slice.outcome.ok && slice.outcome.fault_seen) {
      out.stats.faults_recovered += 1;
    }
  }
  // Slices the device could not complete degrade to the software matchers
  // (the query must not fail for a fault the CPU can absorb).
  for (Slice& slice : slices) {
    if (!slice.fallback) continue;
    if (trace != obs::kInvalidTraceId) {
      tracer.RecordInstant(trace, "sw_fallback", hal->device()->now());
    }
    DOPPIO_ASSIGN_OR_RETURN(
        int64_t matches,
        RunSliceInSoftware(hal->device_config(), slice.params));
    out.stats.rows_matched += matches;
    out.stats.fallback_rows += slice.params.count;
    FallbackRowsCounter().Add(slice.params.count);
  }
  if (out.stats.fallback_rows > 0) out.stats.strategy = "fpga+sw_fallback";
  out.stats.sim_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.hw_seconds =
      any_hw ? SecondsFromPicos(last_finish - first_enqueue) : 0;
  out.stats.udf_software_seconds =
      std::max(0.0, udf_watch.ElapsedSeconds() - out.stats.hal_seconds -
                        out.stats.sim_host_seconds);
  tracer.EndQuery(trace);
  return out;
}

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         std::string_view pattern,
                                         const CompileOptions& options,
                                         int partitions) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(
      HudfResult out, RegexpFpgaPartitioned(hal, input, config, partitions));
  out.stats.config_gen_seconds = config.compile_seconds;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(HudfResult out, RegexpFpga(hal, input, config));
  out.stats.config_gen_seconds = config.compile_seconds;
  out.stats.udf_software_seconds -= config.compile_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              const RegexConfig& config) {
  Stopwatch udf_watch;
  obs::Tracer& tracer = obs::Tracer::Global();
  const obs::TraceId trace = tracer.BeginQuery("regexp_fpga");
  HudfResult out;
  out.stats.trace_id = trace;
  out.stats.strategy = "fpga";
  out.stats.rows_scanned = input.count();

  // Allocate the result BAT (BATnew(TYPE_void, TYPE_short, count)).
  DOPPIO_ASSIGN_OR_RETURN(
      out.result,
      Bat::New(ValueType::kInt16, input.count(), hal->bat_allocator()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  if (input.count() == 0) {
    out.stats.udf_software_seconds = udf_watch.ElapsedSeconds();
    tracer.EndQuery(trace);
    return out;
  }

  const RetryPolicy& policy = hal->retry_policy();

  // Create the FPGA job through the HAL and busy-wait on the done bit,
  // under the bounded-retry lifecycle.
  Stopwatch hal_watch;
  DOPPIO_ASSIGN_OR_RETURN(
      JobParams params,
      hal->BuildRegexJobParams(input, out.result.get(), config));
  JobOutcome outcome;
  Result<FpgaJob> job =
      SubmitJobWithRetry(hal->device(), params, policy, &outcome);
  out.stats.hal_seconds = hal_watch.ElapsedSeconds();

  // The busy-wait advances the simulator's virtual clock; the host time it
  // burns doing so is a simulation artifact and is excluded from the
  // software phases. The hardware phase is virtual time.
  Stopwatch wait_watch;
  bool fallback = false;
  if (job.ok()) {
    FpgaJob handle = *job;
    Status wait_status = AwaitJobWithRecovery(hal->device(), &handle, params,
                                              policy, &outcome);
    if (wait_status.ok()) {
      if (trace != obs::kInvalidTraceId) {
        tracer.RecordJob(MakeJobRecord(trace, handle.status()));
      }
      out.stats.hw_seconds = handle.HwSeconds();  // virtual (simulated) time
      out.stats.rows_matched = handle.status().matches;
      out.stats.pu_kernel = handle.status().pu_kernel;
      out.stats.functional_bytes = handle.status().functional_bytes;
      out.stats.functional_seconds = handle.status().functional_host_seconds;
    } else if (IsFallbackEligible(wait_status)) {
      fallback = true;
    } else {
      return wait_status;
    }
  } else if (IsFallbackEligible(job.status())) {
    fallback = true;
  } else {
    return job.status();
  }

  if (fallback) {
    if (trace != obs::kInvalidTraceId) {
      tracer.RecordInstant(trace, "sw_fallback", hal->device()->now());
    }
    DOPPIO_ASSIGN_OR_RETURN(
        int64_t matches, RunSliceInSoftware(hal->device_config(), params));
    out.stats.rows_matched = matches;
    out.stats.fallback_rows = params.count;
    out.stats.strategy = "fpga+sw_fallback";
    FallbackRowsCounter().Add(params.count);
  }
  out.stats.job_retries = outcome.retries;
  if (outcome.ok && outcome.fault_seen) out.stats.faults_recovered = 1;

  const double wait_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.sim_host_seconds = wait_host_seconds;
  out.stats.udf_software_seconds = udf_watch.ElapsedSeconds() -
                                   out.stats.hal_seconds -
                                   wait_host_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  tracer.EndQuery(trace);
  return out;
}

}  // namespace doppio
