#include "db/hudf.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hw/config_compiler.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "regex/dfa_matcher.h"

namespace doppio {

namespace {

obs::Counter& FallbackRowsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.db.fallback_rows",
      "rows re-matched in software after the hardware path gave up");
  return *c;
}

/// Snapshot of one completed job's lifecycle stamps for the tracer.
obs::JobTraceRecord MakeJobRecord(obs::TraceId trace,
                                  const JobStatus& status) {
  obs::JobTraceRecord record;
  record.trace_id = trace;
  record.queue_job_id = status.queue_job_id;
  record.engine_id = status.engine_id;
  record.device_id = status.device_id;
  record.enqueue_time = status.enqueue_time;
  record.dispatch_time = status.dispatch_time;
  record.start_time = status.start_time;
  record.collect_start_time = status.collect_start_time;
  record.done_bit_time = status.done_bit_time;
  record.finish_time = status.finish_time;
  record.retries = status.retries;
  record.fault_flags = status.fault_flags.load(std::memory_order_acquire);
  record.matches = status.matches;
  record.strings_processed = status.strings_processed;
  record.bytes_streamed = status.bytes_streamed;
  record.pu_kernel = status.pu_kernel;
  return record;
}

/// One submitted (or degraded) slice of a batched query.
struct Slice {
  JobParams params;  // kept alive across resubmissions
  FpgaJob job;       // invalid when the submit itself degraded
  JobOutcome outcome;
  bool fallback = false;
};

/// Per-query bookkeeping across the batch's submit/await phases.
struct QueryRun {
  FpgaBatchQuery* query = nullptr;
  Stopwatch udf_watch;  // started when the query enters the batch
  obs::TraceId trace = obs::kInvalidTraceId;
  std::vector<Slice> slices;
};

/// Demultiplexes a set-compiled query's row-major staging results
/// (out.result: count x streams 16-bit values) into per-stream columns
/// (FpgaBatchQuery::set_outputs). No-op at streams == 1. Byte-wise copy:
/// the raw device values pass through untouched, so every stream is
/// bit-identical to running its member pattern alone.
Status DemuxSetOutputs(Hal* hal, FpgaBatchQuery& q) {
  if (q.streams <= 1) return Status::OK();
  const int streams = q.streams;
  // q.rows/q.first_row were normalized in Phase 0: the admission snapshot
  // span, not whatever the input has grown to by demux time.
  const int64_t n = q.rows - q.first_row;
  q.set_outputs.clear();
  q.set_outputs.resize(static_cast<size_t>(streams));
  const uint8_t* staging = q.out.result->tail_data();
  for (int k = 0; k < streams; ++k) {
    HudfResult& out = q.set_outputs[static_cast<size_t>(k)];
    DOPPIO_ASSIGN_OR_RETURN(
        out.result, Bat::New(ValueType::kInt16, n, hal->bat_allocator()));
    DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(n));
    uint8_t* dst = out.result->mutable_tail_data();
    int64_t matched = 0;
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t lo = staging[(i * streams + k) * 2];
      const uint8_t hi = staging[(i * streams + k) * 2 + 1];
      dst[i * 2] = lo;
      dst[i * 2 + 1] = hi;
      if ((lo | hi) != 0) ++matched;
    }
    // The shared scan's phase/trace stats, with this stream's own count.
    out.stats = q.out.stats;
    out.stats.rows_matched = matched;
  }
  return Status::OK();
}

}  // namespace

Result<HudfResult> RunDfaScanInSoftware(const Bat& input,
                                        std::string_view pattern,
                                        const CompileOptions& options,
                                        int64_t rows) {
  HudfResult out;
  Stopwatch cpu_watch;
  const int64_t n =
      rows < 0 ? input.count() : std::min<int64_t>(rows, input.count());
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<DfaMatcher> matcher,
                          DfaMatcher::Compile(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(out.result, Bat::New(ValueType::kInt16, n));
  int64_t matched = 0;
  for (int64_t i = 0; i < n; ++i) {
    MatchResult m = matcher->Find(input.GetString(i));
    int16_t value =
        m.matched ? static_cast<int16_t>(std::min<int32_t>(
                        std::max<int32_t>(m.end, 1), 32767))
                  : 0;
    if (m.matched) ++matched;
    DOPPIO_RETURN_NOT_OK(out.result->AppendInt16(value));
  }
  out.stats.strategy = "software";
  out.stats.rows_scanned = n;
  out.stats.rows_matched = matched;
  out.stats.udf_software_seconds = cpu_watch.ElapsedSeconds();
  return out;
}

Result<HudfResult> RegexpHost(const DeviceConfig& device, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options) {
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }
  Stopwatch udf_watch;
  HudfResult out;
  out.stats.rows_scanned = input.count();

  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          CompileRegexConfig(pattern, device, options));
  out.stats.config_gen_seconds = config.compile_seconds;
  DOPPIO_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledPuProgram> program,
      CompiledPuProgram::Compile(config.vector, device));

  DOPPIO_ASSIGN_OR_RETURN(out.result,
                          Bat::New(ValueType::kInt16, input.count()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  HostSliceInfo info;
  if (input.count() > 0) {
    JobParams params;
    params.offsets = input.tail_data();
    params.heap = input.heap()->data();
    params.result = out.result->mutable_tail_data();
    params.count = input.count();
    params.offset_width = static_cast<int32_t>(input.offset_width());
    params.heap_bytes = input.heap()->size_bytes();
    params.config = config.vector.bytes();
    DOPPIO_ASSIGN_OR_RETURN(
        int64_t matches,
        RunHostSlice(device, params, std::move(program), &info));
    out.stats.rows_matched = matches;
  } else {
    info.backend = BackendRegistry::Global().ChooseHost(*program).id();
  }
  out.stats.strategy = std::string("host-") + BackendName(info.backend);
  out.stats.pu_kernel = info.kernel;
  out.stats.udf_software_seconds =
      std::max(0.0, udf_watch.ElapsedSeconds() - config.compile_seconds);
  return out;
}

Status RegexpFpgaBatch(Hal* hal,
                       const std::vector<FpgaBatchQuery*>& queries) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const RetryPolicy& policy = hal->retry_policy();
  const int num_engines = hal->device_config().num_engines;

  std::vector<QueryRun> runs;
  runs.reserve(queries.size());

  // On any fatal (non-fallback) error, close the spans already opened so
  // the tracer's per-query bookkeeping stays balanced.
  auto fail = [&](Status st) {
    for (QueryRun& run : runs) tracer.EndQuery(run.trace);
    return st;
  };

  // Phase 0: validate every query, open its span, allocate its result BAT.
  for (FpgaBatchQuery* q : queries) {
    if (q == nullptr || q->input == nullptr || q->config == nullptr) {
      return fail(Status::InvalidArgument("null batch query"));
    }
    if (q->input->type() != ValueType::kString) {
      return fail(
          Status::InvalidArgument("regex job input must be a string BAT"));
    }
    if (q->streams < 1 || q->streams > 64) {
      return fail(
          Status::InvalidArgument("batch query streams out of range [1, 64]"));
    }
    runs.emplace_back();
    QueryRun& run = runs.back();
    run.query = q;
    run.trace = tracer.BeginQuery(q->span_name);
    // Normalize the admission snapshot: -1 (or an over-count) means "all
    // rows as of now". From here on the executor reads q->rows only, so a
    // concurrent append cannot change the scanned extent mid-wave.
    if (q->rows < 0 || q->rows > q->input->count()) {
      q->rows = q->input->count();
    }
    if (q->first_row < 0) q->first_row = 0;
    if (q->first_row > q->rows) q->first_row = q->rows;
    const int64_t span = q->rows - q->first_row;
    HudfResult& out = q->out;
    out.stats.trace_id = run.trace;
    // Partitioning is internal to the operator; a set-compiled config
    // surfaces as its own strategy so demuxed streams are attributable.
    out.stats.strategy = q->streams > 1 ? "fpga-set" : "fpga";
    out.stats.rows_scanned = span;

    // streams > 1: the result BAT is the row-major staging area for every
    // stream; DemuxSetOutputs splits it per member after the wave.
    auto result =
        Bat::New(ValueType::kInt16, span * q->streams, hal->bat_allocator());
    if (!result.ok()) return fail(result.status());
    out.result = std::move(*result);
    Status st = out.result->AppendZeros(span * q->streams);
    if (!st.ok()) return fail(st);
  }

  // Phase 1: slice and submit every query before any is waited on, so all
  // queries of the wave overlap in virtual time across the engines.
  for (QueryRun& run : runs) {
    FpgaBatchQuery& q = *run.query;
    const Bat& input = *q.input;
    const int64_t base = q.first_row;  // admission snapshot (Phase 0)
    const int64_t limit = q.rows;
    const int64_t span = limit - base;
    if (span == 0) continue;  // degenerate: no rows, no slices

    int partitions = q.partitions;
    if (partitions <= 0) partitions = num_engines;
    partitions = static_cast<int>(
        std::min<int64_t>(partitions, std::max<int64_t>(span, 1)));

    Stopwatch hal_watch;
    const int64_t chunk = (span + partitions - 1) / partitions;
    const uint32_t* all_offsets =
        reinterpret_cast<const uint32_t*>(input.tail_data());
    for (int p = 0; p < partitions; ++p) {
      const int64_t first = base + p * chunk;
      if (first >= limit) break;
      const int64_t rows = std::min<int64_t>(chunk, limit - first);
      if (rows <= 0) continue;
      run.slices.emplace_back();
      Slice& slice = run.slices.back();
      JobParams& params = slice.params;
      params.offsets = input.tail_data() + first * input.offset_width();
      params.heap = input.heap()->data();
      params.result =
          q.out.result->mutable_tail_data() + (first - base) * 2 * q.streams;
      params.count = rows;
      params.streams = q.streams;
      params.offset_width = static_cast<int32_t>(input.offset_width());
      // Heap extent of this slice: up to the next slice's first string
      // (the heap is written in row order), or the heap end for the last
      // slice.
      params.heap_bytes =
          first + rows < input.count()
              ? static_cast<int64_t>(all_offsets[first + rows])
              : input.heap()->size_bytes();
      params.config = q.config->vector.bytes();
      params.timing_only = q.timing_only;
      Result<FpgaJob> job =
          SubmitJobWithRetry(hal->device(), params, policy, &slice.outcome);
      if (job.ok()) {
        slice.job = *job;
      } else if (IsFallbackEligible(job.status())) {
        slice.fallback = true;
      } else {
        return fail(job.status());
      }
    }
    q.out.stats.hal_seconds = hal_watch.ElapsedSeconds();
  }

  // Phase 2: await each query's slices in submission order, degrade the
  // slices the device could not complete, finalize per-query stats.
  for (QueryRun& run : runs) {
    FpgaBatchQuery& q = *run.query;
    HudfResult& out = q.out;

    if (q.rows - q.first_row == 0) {
      Status st = DemuxSetOutputs(hal, q);
      if (!st.ok()) return fail(st);
      out.stats.udf_software_seconds = run.udf_watch.ElapsedSeconds();
      tracer.EndQuery(run.trace);
      continue;
    }

    Stopwatch wait_watch;
    SimTime first_enqueue = std::numeric_limits<SimTime>::max();
    SimTime last_finish = 0;
    bool any_hw = false;
    for (Slice& slice : run.slices) {
      if (!slice.fallback) {
        Status st = AwaitJobWithRecovery(hal->device(), &slice.job,
                                         slice.params, policy,
                                         &slice.outcome);
        if (st.ok()) {
          const JobStatus& status = slice.job.status();
          any_hw = true;
          if (run.trace != obs::kInvalidTraceId) {
            tracer.RecordJob(MakeJobRecord(run.trace, status));
          }
          first_enqueue = std::min(first_enqueue, status.enqueue_time);
          last_finish = std::max(last_finish, status.finish_time);
          out.stats.rows_matched += status.matches;
          if (out.stats.pu_kernel.empty()) {
            out.stats.pu_kernel = status.pu_kernel;
          }
          out.stats.functional_bytes += status.functional_bytes;
          out.stats.functional_seconds += status.functional_host_seconds;
        } else if (IsFallbackEligible(st)) {
          slice.fallback = true;
        } else {
          return fail(st);
        }
      }
      out.stats.job_retries += slice.outcome.retries;
      if (slice.outcome.ok && slice.outcome.fault_seen) {
        out.stats.faults_recovered += 1;
      }
    }
    // Slices the device could not complete degrade to the software
    // matchers (the query must not fail for a fault the CPU can absorb).
    for (Slice& slice : run.slices) {
      if (!slice.fallback) continue;
      if (run.trace != obs::kInvalidTraceId) {
        tracer.RecordInstant(run.trace, "sw_fallback",
                             hal->device()->now());
      }
      auto matches = RunHostSlice(hal->device_config(), slice.params);
      if (!matches.ok()) return fail(matches.status());
      out.stats.rows_matched += *matches;
      out.stats.fallback_rows += slice.params.count;
      FallbackRowsCounter().Add(slice.params.count);
    }
    if (out.stats.fallback_rows > 0) {
      out.stats.strategy =
          q.streams > 1 ? "fpga-set+sw_fallback" : "fpga+sw_fallback";
    }
    out.stats.sim_host_seconds = wait_watch.ElapsedSeconds();
    out.stats.hw_seconds =
        any_hw ? SecondsFromPicos(last_finish - first_enqueue) : 0;
    out.stats.udf_software_seconds =
        std::max(0.0, run.udf_watch.ElapsedSeconds() -
                          out.stats.hal_seconds -
                          out.stats.sim_host_seconds);
    Status demux = DemuxSetOutputs(hal, q);
    if (!demux.ok()) return fail(demux);
    tracer.EndQuery(run.trace);
  }
  return Status::OK();
}

namespace {

/// One slice of a pooled batch: a Slice plus its placement state.
struct PoolSlice {
  JobParams params;
  FpgaJob job;
  JobOutcome outcome;
  bool fallback = false;
  bool resolved = false;
  int device = -1;    // pool member currently owning this slice
  int query = -1;     // index into the runs vector
};

/// Per-(query, device) virtual-time extent. Device clocks are independent
/// domains, so a query's hardware phase is the MAX of its per-device
/// extents, never a difference of stamps from two different clocks.
struct ClockExtent {
  SimTime first_enqueue = std::numeric_limits<SimTime>::max();
  SimTime last_finish = 0;
  bool any = false;
};

}  // namespace

Status RegexpFpgaBatchPooled(Hal* hal,
                             const std::vector<FpgaBatchQuery*>& queries) {
  DevicePool* pool = hal->pool();
  // A pool of one IS the paper's single-device deployment: take the exact
  // historical path so results, stats and virtual timing stay bit- and
  // byte-identical (the N=1 invariant device_pool_test pins).
  if (pool->size() == 1) return RegexpFpgaBatch(hal, queries);

  obs::Tracer& tracer = obs::Tracer::Global();
  const RetryPolicy& policy = hal->retry_policy();
  const int num_devices = pool->size();

  std::vector<QueryRun> runs;
  runs.reserve(queries.size());
  auto fail = [&](Status st) {
    for (QueryRun& run : runs) tracer.EndQuery(run.trace);
    return st;
  };

  // Phase 0: validate every query, open its span, allocate its result BAT
  // (identical to the single-device batch).
  for (FpgaBatchQuery* q : queries) {
    if (q == nullptr || q->input == nullptr || q->config == nullptr) {
      return fail(Status::InvalidArgument("null batch query"));
    }
    if (q->input->type() != ValueType::kString) {
      return fail(
          Status::InvalidArgument("regex job input must be a string BAT"));
    }
    if (q->streams < 1 || q->streams > 64) {
      return fail(
          Status::InvalidArgument("batch query streams out of range [1, 64]"));
    }
    runs.emplace_back();
    QueryRun& run = runs.back();
    run.query = q;
    run.trace = tracer.BeginQuery(q->span_name);
    if (q->rows < 0 || q->rows > q->input->count()) {
      q->rows = q->input->count();
    }
    if (q->first_row < 0) q->first_row = 0;
    if (q->first_row > q->rows) q->first_row = q->rows;
    const int64_t span = q->rows - q->first_row;
    HudfResult& out = q->out;
    out.stats.trace_id = run.trace;
    out.stats.strategy = q->streams > 1 ? "fpga-set" : "fpga";
    out.stats.rows_scanned = span;
    auto result =
        Bat::New(ValueType::kInt16, span * q->streams, hal->bat_allocator());
    if (!result.ok()) return fail(result.status());
    out.result = std::move(*result);
    Status st = out.result->AppendZeros(span * q->streams);
    if (!st.ok()) return fail(st);
  }

  // Phase 1: slice every query. The default partition count spans the
  // whole pool (one slice per engine across every member) so a query can
  // use all devices at once. Nothing is submitted yet — placement decides
  // where each slice goes.
  std::vector<PoolSlice> slices;
  for (size_t qi = 0; qi < runs.size(); ++qi) {
    QueryRun& run = runs[qi];
    FpgaBatchQuery& q = *run.query;
    const Bat& input = *q.input;
    const int64_t base = q.first_row;  // admission snapshot (Phase 0)
    const int64_t limit = q.rows;
    const int64_t span = limit - base;
    if (span == 0) continue;

    int partitions = q.partitions;
    if (partitions <= 0) partitions = pool->total_engines();
    partitions = static_cast<int>(
        std::min<int64_t>(partitions, std::max<int64_t>(span, 1)));

    Stopwatch hal_watch;
    const int64_t chunk = (span + partitions - 1) / partitions;
    const uint32_t* all_offsets =
        reinterpret_cast<const uint32_t*>(input.tail_data());
    for (int p = 0; p < partitions; ++p) {
      const int64_t first = base + p * chunk;
      if (first >= limit) break;
      const int64_t rows = std::min<int64_t>(chunk, limit - first);
      if (rows <= 0) continue;
      slices.emplace_back();
      PoolSlice& slice = slices.back();
      slice.query = static_cast<int>(qi);
      JobParams& params = slice.params;
      params.offsets = input.tail_data() + first * input.offset_width();
      params.heap = input.heap()->data();
      params.result =
          q.out.result->mutable_tail_data() + (first - base) * 2 * q.streams;
      params.count = rows;
      params.streams = q.streams;
      params.offset_width = static_cast<int32_t>(input.offset_width());
      params.heap_bytes =
          first + rows < input.count()
              ? static_cast<int64_t>(all_offsets[first + rows])
              : input.heap()->size_bytes();
      params.config = q.config->vector.bytes();
      params.timing_only = q.timing_only;
    }
    // Slicing cost is the pooled path's HAL phase; submission cost is
    // folded into the drain below (it interleaves queries).
    q.out.stats.hal_seconds = hal_watch.ElapsedSeconds();
  }

  // Placement: apportion the wave across the pool proportional to each
  // member's free engines (largest-remainder, deterministic), then deal
  // slices to their device round-robin so every device sees a mix of
  // queries rather than one query's whole tail.
  std::vector<std::deque<PoolSlice*>> pending(
      static_cast<size_t>(num_devices));
  {
    std::vector<int> quota = pool->ShardCounts(static_cast<int>(slices.size()));
    int d = 0;
    for (PoolSlice& slice : slices) {
      while (quota[static_cast<size_t>(d)] == 0) d = (d + 1) % num_devices;
      pending[static_cast<size_t>(d)].push_back(&slice);
      --quota[static_cast<size_t>(d)];
      d = (d + 1) % num_devices;
    }
  }

  int64_t remaining = static_cast<int64_t>(slices.size());
  std::vector<std::deque<PoolSlice*>> inflight(
      static_cast<size_t>(num_devices));
  // Per-(query, device) clock extents for the hardware phase.
  std::vector<std::vector<ClockExtent>> extents(
      runs.size(),
      std::vector<ClockExtent>(static_cast<size_t>(num_devices)));

  Status fatal = Status::OK();
  // A device whose last resolution degraded to software is *suspect*: it
  // keeps draining work already queued to it but does not steal more
  // until it completes a slice in hardware again. Keeps a stalled member
  // from stealing back the backlog that was just rebalanced away from it.
  std::vector<char> suspect(static_cast<size_t>(num_devices), 0);
  // Submit `slice` on device `d`. A submit that degrades resolves the
  // slice immediately (it runs in software after the drain).
  auto submit_one = [&](PoolSlice* slice, int d) {
    slice->device = d;
    Result<FpgaJob> job = SubmitJobWithRetry(pool->device(d), slice->params,
                                             policy, &slice->outcome);
    if (job.ok()) {
      slice->job = *job;
      inflight[static_cast<size_t>(d)].push_back(slice);
      pool->NoteInflight(d, +1);
      return true;
    }
    if (IsFallbackEligible(job.status())) {
      slice->fallback = true;
      slice->resolved = true;
      suspect[static_cast<size_t>(d)] = 1;
      --remaining;
      return true;
    }
    fatal = job.status();
    return false;
  };
  // Keep device `d` loaded up to its engine count. A device whose own
  // backlog ran dry steals queued slices from the most backlogged member
  // (ties to the lowest index) — this is what drains a healthy pool
  // around a fault-stalled device.
  auto top_up = [&](int d) {
    const int cap = pool->device(d)->config().num_engines;
    while (static_cast<int>(inflight[static_cast<size_t>(d)].size()) < cap) {
      if (pending[static_cast<size_t>(d)].empty()) {
        if (suspect[static_cast<size_t>(d)]) return true;  // no stealing
        int victim = -1;
        size_t victim_backlog = 0;
        for (int v = 0; v < num_devices; ++v) {
          if (v == d) continue;
          const size_t backlog = pending[static_cast<size_t>(v)].size();
          if (backlog > victim_backlog) {
            victim = v;
            victim_backlog = backlog;
          }
        }
        if (victim < 0) return true;  // nothing left anywhere
        // Steal from the BACK of the victim's queue: the victim keeps its
        // next-up work, the thief takes the tail it would reach last.
        PoolSlice* stolen = pending[static_cast<size_t>(victim)].back();
        pending[static_cast<size_t>(victim)].pop_back();
        pending[static_cast<size_t>(d)].push_back(stolen);
        pool->NoteSteal(victim, d);
      }
      PoolSlice* slice = pending[static_cast<size_t>(d)].front();
      pending[static_cast<size_t>(d)].pop_front();
      if (!submit_one(slice, d)) return false;
    }
    return true;
  };

  // Drain: visit devices round-robin, await one in-flight slice per visit
  // (a device's clock advances only while the host waits on it), then
  // top the device back up. Deterministic: placement, visit order and
  // steal choice depend only on queue sizes, never host timing.
  Stopwatch wait_watch;
  for (int d = 0; d < num_devices; ++d) {
    if (!top_up(d)) return fail(fatal);
  }
  while (remaining > 0) {
    bool progress = false;
    for (int d = 0; d < num_devices && remaining > 0; ++d) {
      if (inflight[static_cast<size_t>(d)].empty() && !top_up(d)) {
        return fail(fatal);
      }
      if (inflight[static_cast<size_t>(d)].empty()) continue;
      PoolSlice* slice = inflight[static_cast<size_t>(d)].front();
      inflight[static_cast<size_t>(d)].pop_front();
      pool->NoteInflight(d, -1);
      QueryRun& run = runs[static_cast<size_t>(slice->query)];
      HudfResult& out = run.query->out;
      Status st = AwaitJobWithRecovery(pool->device(d), &slice->job,
                                       slice->params, policy,
                                       &slice->outcome);
      if (st.ok()) {
        const JobStatus& status = slice->job.status();
        if (run.trace != obs::kInvalidTraceId) {
          tracer.RecordJob(MakeJobRecord(run.trace, status));
        }
        ClockExtent& extent =
            extents[static_cast<size_t>(slice->query)][static_cast<size_t>(d)];
        extent.any = true;
        extent.first_enqueue =
            std::min(extent.first_enqueue, status.enqueue_time);
        extent.last_finish = std::max(extent.last_finish, status.finish_time);
        out.stats.rows_matched += status.matches;
        if (out.stats.pu_kernel.empty()) {
          out.stats.pu_kernel = status.pu_kernel;
        }
        out.stats.functional_bytes += status.functional_bytes;
        out.stats.functional_seconds += status.functional_host_seconds;
        suspect[static_cast<size_t>(d)] = 0;
      } else if (IsFallbackEligible(st)) {
        slice->fallback = true;
        suspect[static_cast<size_t>(d)] = 1;
        // Fault feedback: this device just burned its whole retry budget
        // on a slice. Hand its queued backlog to the other members (each
        // takes a share, round-robin) instead of feeding more work into a
        // device that is demonstrably failing — this is what drains a
        // pool around a stalled member.
        if (num_devices > 1) {
          int thief = (d + 1) % num_devices;
          while (!pending[static_cast<size_t>(d)].empty()) {
            PoolSlice* moved = pending[static_cast<size_t>(d)].front();
            pending[static_cast<size_t>(d)].pop_front();
            if (thief == d) thief = (thief + 1) % num_devices;
            pending[static_cast<size_t>(thief)].push_back(moved);
            pool->NoteSteal(d, thief);
            thief = (thief + 1) % num_devices;
          }
        }
      } else {
        return fail(st);
      }
      slice->resolved = true;
      --remaining;
      progress = true;
      pool->NoteSlice(d, slice->params.count);
      if (!top_up(d)) return fail(fatal);
    }
    // Every device idle with slices unresolved would be a livelock; the
    // loop structure above always resolves at least one slice per pass.
    DOPPIO_CHECK(progress);
  }
  const double drain_seconds = wait_watch.ElapsedSeconds();

  // Degrade the slices no device could complete, then finalize per-query
  // stats. hw_seconds is the max per-clock-domain extent.
  for (size_t qi = 0; qi < runs.size(); ++qi) {
    QueryRun& run = runs[qi];
    FpgaBatchQuery& q = *run.query;
    HudfResult& out = q.out;
    if (q.rows - q.first_row == 0) {
      Status st = DemuxSetOutputs(hal, q);
      if (!st.ok()) return fail(st);
      out.stats.udf_software_seconds = run.udf_watch.ElapsedSeconds();
      tracer.EndQuery(run.trace);
      continue;
    }
    for (PoolSlice& slice : slices) {
      if (slice.query != static_cast<int>(qi)) continue;
      if (slice.fallback) {
        if (run.trace != obs::kInvalidTraceId) {
          tracer.RecordInstant(run.trace, "sw_fallback",
                               pool->device(slice.device)->now());
        }
        auto matches = RunHostSlice(hal->device_config(), slice.params);
        if (!matches.ok()) return fail(matches.status());
        out.stats.rows_matched += *matches;
        out.stats.fallback_rows += slice.params.count;
        FallbackRowsCounter().Add(slice.params.count);
      }
      out.stats.job_retries += slice.outcome.retries;
      if (slice.outcome.ok && slice.outcome.fault_seen) {
        out.stats.faults_recovered += 1;
      }
    }
    if (out.stats.fallback_rows > 0) {
      out.stats.strategy =
          q.streams > 1 ? "fpga-set+sw_fallback" : "fpga+sw_fallback";
    }
    double hw_seconds = 0;
    for (const ClockExtent& extent : extents[qi]) {
      if (!extent.any) continue;
      hw_seconds = std::max(
          hw_seconds,
          SecondsFromPicos(extent.last_finish - extent.first_enqueue));
    }
    out.stats.hw_seconds = hw_seconds;
    // The drain interleaves every query; its host cost is attributed to
    // each (it is a simulation artifact either way).
    out.stats.sim_host_seconds = drain_seconds;
    out.stats.udf_software_seconds =
        std::max(0.0, run.udf_watch.ElapsedSeconds() -
                          out.stats.hal_seconds -
                          out.stats.sim_host_seconds);
    Status demux = DemuxSetOutputs(hal, q);
    if (!demux.ok()) return fail(demux);
    tracer.EndQuery(run.trace);
  }
  return Status::OK();
}

Result<HudfResult> RegexpFpgaPartitionedPooled(Hal* hal, const Bat& input,
                                               const RegexConfig& config,
                                               int partitions) {
  FpgaBatchQuery query;
  query.input = &input;
  query.config = &config;
  query.partitions = partitions;
  query.span_name = "regexp_fpga_pooled";
  std::vector<FpgaBatchQuery*> batch{&query};
  DOPPIO_RETURN_NOT_OK(RegexpFpgaBatchPooled(hal, batch));
  return std::move(query.out);
}

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         const RegexConfig& config,
                                         int partitions) {
  // A batch of one: identical slicing, submission order and virtual-time
  // behaviour to the historical single-query partitioned path.
  FpgaBatchQuery query;
  query.input = &input;
  query.config = &config;
  query.partitions = partitions;
  query.span_name = "regexp_fpga_partitioned";
  std::vector<FpgaBatchQuery*> batch{&query};
  DOPPIO_RETURN_NOT_OK(RegexpFpgaBatch(hal, batch));
  return std::move(query.out);
}

Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         std::string_view pattern,
                                         const CompileOptions& options,
                                         int partitions) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(
      HudfResult out, RegexpFpgaPartitioned(hal, input, config, partitions));
  out.stats.config_gen_seconds = config.compile_seconds;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options) {
  Stopwatch config_watch;
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          hal->CompileConfig(pattern, options));
  DOPPIO_ASSIGN_OR_RETURN(HudfResult out, RegexpFpga(hal, input, config));
  out.stats.config_gen_seconds = config.compile_seconds;
  out.stats.udf_software_seconds -= config.compile_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  return out;
}

Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              const RegexConfig& config) {
  Stopwatch udf_watch;
  obs::Tracer& tracer = obs::Tracer::Global();
  const obs::TraceId trace = tracer.BeginQuery("regexp_fpga");
  HudfResult out;
  out.stats.trace_id = trace;
  out.stats.strategy = "fpga";
  out.stats.rows_scanned = input.count();

  // Allocate the result BAT (BATnew(TYPE_void, TYPE_short, count)).
  DOPPIO_ASSIGN_OR_RETURN(
      out.result,
      Bat::New(ValueType::kInt16, input.count(), hal->bat_allocator()));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(input.count()));

  if (input.count() == 0) {
    out.stats.udf_software_seconds = udf_watch.ElapsedSeconds();
    tracer.EndQuery(trace);
    return out;
  }

  const RetryPolicy& policy = hal->retry_policy();

  // Create the FPGA job through the HAL and busy-wait on the done bit,
  // under the bounded-retry lifecycle.
  Stopwatch hal_watch;
  DOPPIO_ASSIGN_OR_RETURN(
      JobParams params,
      hal->BuildRegexJobParams(input, out.result.get(), config));
  JobOutcome outcome;
  Result<FpgaJob> job =
      SubmitJobWithRetry(hal->device(), params, policy, &outcome);
  out.stats.hal_seconds = hal_watch.ElapsedSeconds();

  // The busy-wait advances the simulator's virtual clock; the host time it
  // burns doing so is a simulation artifact and is excluded from the
  // software phases. The hardware phase is virtual time.
  Stopwatch wait_watch;
  bool fallback = false;
  if (job.ok()) {
    FpgaJob handle = *job;
    Status wait_status = AwaitJobWithRecovery(hal->device(), &handle, params,
                                              policy, &outcome);
    if (wait_status.ok()) {
      if (trace != obs::kInvalidTraceId) {
        tracer.RecordJob(MakeJobRecord(trace, handle.status()));
      }
      out.stats.hw_seconds = handle.HwSeconds();  // virtual (simulated) time
      out.stats.rows_matched = handle.status().matches;
      out.stats.pu_kernel = handle.status().pu_kernel;
      out.stats.functional_bytes = handle.status().functional_bytes;
      out.stats.functional_seconds = handle.status().functional_host_seconds;
    } else if (IsFallbackEligible(wait_status)) {
      fallback = true;
    } else {
      return wait_status;
    }
  } else if (IsFallbackEligible(job.status())) {
    fallback = true;
  } else {
    return job.status();
  }

  if (fallback) {
    if (trace != obs::kInvalidTraceId) {
      tracer.RecordInstant(trace, "sw_fallback", hal->device()->now());
    }
    DOPPIO_ASSIGN_OR_RETURN(int64_t matches,
                            RunHostSlice(hal->device_config(), params));
    out.stats.rows_matched = matches;
    out.stats.fallback_rows = params.count;
    out.stats.strategy = "fpga+sw_fallback";
    FallbackRowsCounter().Add(params.count);
  }
  out.stats.job_retries = outcome.retries;
  if (outcome.ok && outcome.fault_seen) out.stats.faults_recovered = 1;

  const double wait_host_seconds = wait_watch.ElapsedSeconds();
  out.stats.sim_host_seconds = wait_host_seconds;
  out.stats.udf_software_seconds = udf_watch.ElapsedSeconds() -
                                   out.stats.hal_seconds -
                                   wait_host_seconds;
  if (out.stats.udf_software_seconds < 0) out.stats.udf_software_seconds = 0;
  tracer.EndQuery(trace);
  return out;
}

}  // namespace doppio
