// Row-store engine standing in for the commercial system "DBx" that the
// paper compares against (Table 1, Figs. 9b/11b).
//
// Behavioural properties reproduced:
//  * rows are stored contiguously (N-ary storage); a scan touches whole
//    rows and extracts the queried field tuple-at-a-time;
//  * strictly one thread per query — throughput rises with the number of
//    concurrent clients, response time scales linearly with input size;
//  * CONTAINS runs over a pre-built inverted index whose (re)build is
//    expensive and performed ahead of query time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bat/buffer.h"
#include "bat/table.h"
#include "common/macros.h"
#include "common/status.h"
#include "db/column_store.h"
#include "db/engine_stats.h"
#include "text/inverted_index.h"

namespace doppio {

class RowStoreEngine {
 public:
  RowStoreEngine() = default;
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(RowStoreEngine);

  /// Copies a columnar table into row-major storage.
  Status LoadTable(const Table& source);

  /// SELECT count(*) FROM `table` WHERE `column` <matches spec>, executed
  /// single-threaded row-at-a-time. Returns the count; fills `stats`.
  Result<int64_t> CountWhere(const std::string& table,
                             const std::string& column,
                             const StringFilterSpec& spec,
                             QueryStats* stats = nullptr);

  /// Pre-builds the CONTAINS index (reports the build cost — the paper
  /// notes > 20 minutes for 2.5M tuples on the real DBx).
  Result<double> BuildContainsIndex(const std::string& table,
                                    const std::string& column);

  int64_t num_rows(const std::string& table) const;
  bool HasTable(const std::string& table) const {
    return tables_.count(table) != 0;
  }

 private:
  struct RowTable {
    std::vector<std::string> column_names;
    std::vector<ValueType> column_types;
    // Row-major serialization: fixed-width ints inline, strings as
    // u32 length + bytes.
    std::vector<uint8_t> data;
    std::vector<int64_t> row_offsets;  // + sentinel end offset
    std::map<std::string, std::unique_ptr<InvertedIndex>> contains;
    // Kept solely to rebuild CONTAINS indexes (they index string BATs).
    std::map<std::string, std::unique_ptr<Bat>> index_source;

    int64_t rows() const {
      return static_cast<int64_t>(row_offsets.size()) - 1;
    }
  };

  /// Extracts column `col` of the row starting at `offset` as a view.
  std::string_view ExtractString(const RowTable& table, int64_t row,
                                 int col) const;

  std::map<std::string, RowTable> tables_;
};

}  // namespace doppio
