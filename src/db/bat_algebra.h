// BAT algebra kernel (paper §2.3, §4.2.2).
//
// MonetDB executes queries as sequences of BAT-algebra operators, each a
// tight loop over whole BATs with fully materialized intermediates — the
// execution model that makes a BAT-at-a-time hardware UDF cheap to call.
// These are the kernel primitives that model provides, in the classic
// MonetDB style: selections produce candidate (OID) lists, projections
// fetch values through candidate lists, joins return matching OID pairs.
//
// All results are materialized BATs allocated from the given allocator
// (the HAL's shared allocator inside the HUDF-enabled engine).
#pragma once

#include <cstdint>
#include <memory>

#include "bat/bat.h"
#include "common/status.h"

namespace doppio {
namespace batalg {

/// Candidate list: a kInt64 BAT of row ids (OIDs), ascending.
using CandidateList = std::unique_ptr<Bat>;

/// select(b, v): OIDs of rows whose integer value equals `v`.
Result<CandidateList> SelectEq(
    const Bat& column, int64_t value,
    BufferAllocator* allocator = MallocAllocator::Default());

/// thetaselect(b, lo, hi): OIDs with lo <= value <= hi (int columns).
Result<CandidateList> SelectRange(
    const Bat& column, int64_t lo, int64_t hi,
    BufferAllocator* allocator = MallocAllocator::Default());

/// select over a boolean-ish short column (the HUDF result): OIDs with a
/// nonzero (or zero, when `select_zero`) value — how REGEXP_FPGA's result
/// BAT becomes a candidate list.
Result<CandidateList> SelectNonZero(
    const Bat& shorts, bool select_zero = false,
    BufferAllocator* allocator = MallocAllocator::Default());

/// projection(cands, b): values of `column` at the candidate OIDs, in
/// candidate order (MonetDB's leftfetchjoin).
Result<std::unique_ptr<Bat>> Project(
    const Bat& candidates, const Bat& column,
    BufferAllocator* allocator = MallocAllocator::Default());

/// join(l, r): OID pairs (li, ri) with l.value == r.value (int columns).
struct JoinResult {
  CandidateList left;
  CandidateList right;
};
Result<JoinResult> HashJoin(
    const Bat& left, const Bat& right,
    BufferAllocator* allocator = MallocAllocator::Default());

/// intersect(a, b): candidate lists intersection (both ascending).
Result<CandidateList> Intersect(
    const Bat& a, const Bat& b,
    BufferAllocator* allocator = MallocAllocator::Default());

/// group(b): dense group ids per row plus one representative OID per
/// group (MonetDB's group.new on an int column).
struct GroupResult {
  std::unique_ptr<Bat> group_ids;       // kInt64, |column| entries
  std::unique_ptr<Bat> representatives; // kInt64, one OID per group
};
Result<GroupResult> Group(
    const Bat& column,
    BufferAllocator* allocator = MallocAllocator::Default());

/// count per group id (groups must be dense ids from Group()).
Result<std::unique_ptr<Bat>> GroupCount(
    const Bat& group_ids, int64_t num_groups,
    BufferAllocator* allocator = MallocAllocator::Default());

/// aggr.count(cands): scalar count of a candidate list (trivial but part
/// of the kernel surface).
int64_t Count(const Bat& candidates);

}  // namespace batalg
}  // namespace doppio
