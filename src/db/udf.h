// User-defined-function registry (paper §2.3.2, §4.1).
//
// MonetDB compiles UDFs directly into the engine and lets them operate on
// whole BATs — the property that makes hardware offload viable (per-tuple
// UDF interfaces would drown the accelerator in invocation overhead).
// This registry models that: a UDF is a named BAT -> BAT function. The
// software REGEXP_LIKE and the hardware REGEXP_FPGA register here with the
// same signature and are interchangeable in queries, exactly as in the
// paper's example SQL.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "hal/hal.h"

namespace doppio {

/// A BAT-at-a-time string UDF: input string column + pattern -> short
/// column (nonzero = match position, 0 = no match).
using StringBatUdf = std::function<Result<std::unique_ptr<Bat>>(
    const Bat& input, const std::string& pattern)>;

class UdfRegistry {
 public:
  Status Register(const std::string& name, StringBatUdf udf);
  /// nullptr when not registered.
  const StringBatUdf* Lookup(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, StringBatUdf> udfs_;
};

/// Registers the built-in UDFs:
///   regexp_like  — software (PCRE-style backtracking)
///   regexp_dfa   — software (lazy DFA)
///   regexp_fpga  — hardware (requires `hal`; skipped when null)
///   regexp_hybrid— hardware with automatic hybrid/software fallback
Status RegisterBuiltinUdfs(UdfRegistry* registry, Hal* hal);

}  // namespace doppio
