#include "db/column_store.h"

#include "common/stopwatch.h"
#include "db/cost_model.h"
#include "db/hudf.h"
#include "db/hybrid_executor.h"
#include "hw/config_compiler.h"
#include "regex/backtrack_matcher.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/substring_search.h"
#include "sched/result_cache.h"
#include "store/stream_executor.h"

namespace doppio {

ColumnStoreEngine::ColumnStoreEngine(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

ColumnStoreEngine::~ColumnStoreEngine() = default;

BufferAllocator* ColumnStoreEngine::allocator() const {
  if (options_.hal != nullptr) return options_.hal->bat_allocator();
  return MallocAllocator::Default();
}

const OperatorCostModel& ColumnStoreEngine::cost_model() {
  if (cost_model_ == nullptr) {
    OperatorCostModel::Calibration calibration =
        OperatorCostModel::Measure(options_.num_threads);
    DeviceConfig device = options_.hal != nullptr
                              ? options_.hal->device_config()
                              : DeviceConfig{};
    cost_model_ =
        std::make_unique<OperatorCostModel>(device, calibration);
  }
  return *cost_model_;
}

bool ColumnStoreEngine::ColumnEpochGuard::TryBeginRead() {
  // Dekker handshake, reader side: publish the reader count first, then
  // check for a writer. Sequential consistency gives a total order over
  // the four accesses, so a racing writer either sees our increment (and
  // backs off) or we see its flag (and back off) — never neither.
  readers.fetch_add(1, std::memory_order_seq_cst);
  if (writer.load(std::memory_order_seq_cst)) {
    readers.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }
  return true;
}

void ColumnStoreEngine::ColumnEpochGuard::EndRead() {
  readers.fetch_sub(1, std::memory_order_seq_cst);
}

bool ColumnStoreEngine::ColumnEpochGuard::TryBeginWrite() {
  bool expected = false;
  if (!writer.compare_exchange_strong(expected, true,
                                      std::memory_order_seq_cst)) {
    return false;  // another append holds the column
  }
  if (readers.load(std::memory_order_seq_cst) != 0) {
    writer.store(false, std::memory_order_seq_cst);
    return false;  // a scan is in flight
  }
  return true;
}

void ColumnStoreEngine::ColumnEpochGuard::EndWrite() {
  writer.store(false, std::memory_order_seq_cst);
}

ColumnStoreEngine::ColumnEpochGuard* ColumnStoreEngine::EpochGuardFor(
    uint64_t column_id) {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  std::unique_ptr<ColumnEpochGuard>& slot = epoch_guards_[column_id];
  if (slot == nullptr) slot = std::make_unique<ColumnEpochGuard>();
  return slot.get();
}

void ColumnStoreEngine::ParallelOverRows(
    int64_t num_rows, const std::function<void(int64_t, int64_t, int)>& fn) {
  const int parts = partitions();
  if (parts <= 1 || num_rows < 1024) {
    fn(0, num_rows, 0);
    return;
  }
  const int64_t chunk = (num_rows + parts - 1) / parts;
  pool_->ParallelFor(parts, [&](int p) {
    int64_t first = p * chunk;
    int64_t end = std::min<int64_t>(num_rows, first + chunk);
    if (first < end) fn(first, end, p);
  });
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalStringFilter(
    const Bat& column, const StringFilterSpec& spec, QueryStats* stats) {
  if (column.type() != ValueType::kString) {
    return Status::InvalidArgument("string filter over non-string column");
  }
  ColumnEpochGuard* epoch = EpochGuardFor(column.id());
  if (!epoch->TryBeginRead()) {
    return Status::Overloaded(
        "ingest in progress on the scanned column; retry the scan");
  }
  struct ReadRelease {
    ColumnEpochGuard* g;
    ~ReadRelease() { g->EndRead(); }
  } epoch_release{epoch};
  // The cost-model strategy: predict each candidate's runtime and rewrite
  // the spec to the cheapest one before execution.
  StringFilterSpec effective = spec;
  if (spec.op == StringFilterSpec::Op::kAuto) {
    TableStats table_stats;
    table_stats.rows = column.count();
    table_stats.heap_bytes = column.heap()->size_bytes();
    OperatorCostModel::Choice choice = cost_model().Choose(
        spec, table_stats, options_.hal != nullptr);
    effective.op = choice.op;
    if (!choice.rewritten_pattern.empty()) {
      effective.pattern = choice.rewritten_pattern;
    }
  }

  Stopwatch watch;
  Result<std::vector<uint8_t>> result = [&]() {
    switch (effective.op) {
      case StringFilterSpec::Op::kLike:
        return EvalLike(column, effective);
      case StringFilterSpec::Op::kRegexpLike:
        return EvalRegexp(column, effective);
      case StringFilterSpec::Op::kRegexpFpga:
      case StringFilterSpec::Op::kHybrid:
        return EvalFpga(column, effective, stats);
      case StringFilterSpec::Op::kContains:
        return EvalContains(column, effective);
      case StringFilterSpec::Op::kAuto:
        break;  // unreachable: rewritten above
    }
    return Result<std::vector<uint8_t>>(
        Status::Internal("unknown string filter op"));
  }();
  if (!result.ok()) return result.status();

  std::vector<uint8_t>& bits = *result;
  int64_t matched = 0;
  if (spec.negated) {
    for (auto& b : bits) b = b == 0 ? 1 : 0;
  }
  for (uint8_t b : bits) matched += b;
  if (stats != nullptr) {
    stats->rows_scanned += column.count();
    stats->rows_matched += matched;
    const bool was_auto = spec.op == StringFilterSpec::Op::kAuto;
    // FPGA strategies fill their own phase breakdown in EvalFpga; the
    // software paths charge the database phase.
    std::string strategy = stats->strategy;
    if (effective.op == StringFilterSpec::Op::kLike ||
        effective.op == StringFilterSpec::Op::kRegexpLike ||
        effective.op == StringFilterSpec::Op::kContains) {
      stats->database_seconds += watch.ElapsedSeconds();
      switch (effective.op) {
        case StringFilterSpec::Op::kLike:
          strategy = spec.case_insensitive ? "ilike" : "like";
          break;
        case StringFilterSpec::Op::kRegexpLike:
          strategy = "regexp_like";
          break;
        default:
          strategy = "contains";
          break;
      }
      stats->strategy = strategy;
    }
    if (was_auto) stats->strategy = "auto->" + stats->strategy;
  }
  return result;
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalLike(
    const Bat& column, const StringFilterSpec& spec) {
  DOPPIO_ASSIGN_OR_RETURN(LikeAnalysis like, TranslateLike(spec.pattern));
  std::vector<uint8_t> bits(static_cast<size_t>(column.count()), 0);

  // MonetDB serves case-sensitive %s1%s2% patterns with its optimized
  // substring scan, but ILIKE falls back to the (slower) PCRE-based path
  // — reproduced here by routing it through the automaton matcher, which
  // is what makes ILIKE roughly twice as expensive (paper Fig. 12).
  if (like.is_multi_substring && !spec.case_insensitive) {
    // The %s1%s2% fast path: ordered substring search (BMH stages).
    Status worker_status = Status::OK();
    std::mutex status_mutex;
    ParallelOverRows(column.count(), [&](int64_t first, int64_t end, int) {
      auto matcher = MultiSubstringMatcher::Create(like.substrings,
                                                   spec.case_insensitive);
      if (!matcher.ok()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        worker_status = matcher.status();
        return;
      }
      for (int64_t i = first; i < end; ++i) {
        bits[static_cast<size_t>(i)] =
            (*matcher)->Matches(column.GetString(i)) ? 1 : 0;
      }
    });
    DOPPIO_RETURN_NOT_OK(worker_status);
    return bits;
  }

  // General LIKE (underscores or anchors): lazy DFA over the translated
  // regex with anchor flags.
  CompileOptions copts;
  copts.case_insensitive = spec.case_insensitive;
  copts.anchor_start = like.anchored_start;
  copts.anchor_end = like.anchored_end;
  Status worker_status = Status::OK();
  std::mutex status_mutex;
  ParallelOverRows(column.count(), [&](int64_t first, int64_t end, int) {
    auto matcher_result = CompileProgram(*like.ast, copts);
    if (!matcher_result.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex);
      worker_status = matcher_result.status();
      return;
    }
    auto matcher = DfaMatcher::FromProgram(std::move(*matcher_result));
    for (int64_t i = first; i < end; ++i) {
      bits[static_cast<size_t>(i)] =
          matcher->Matches(column.GetString(i)) ? 1 : 0;
    }
  });
  DOPPIO_RETURN_NOT_OK(worker_status);
  return bits;
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalRegexp(
    const Bat& column, const StringFilterSpec& spec) {
  // MonetDB's REGEXP_LIKE is a scalar SQL function over PCRE: the engine
  // invokes it tuple-at-a-time, paying the PCRE setup on every call
  // (exactly the per-tuple UDF invocation overhead the paper's §9 calls
  // out, and what makes Table 1's REGEXP_LIKE an order of magnitude
  // slower than the BAT-at-a-time LIKE). We reproduce that faithfully:
  // pattern compilation happens per tuple, backtracking execution per
  // match.
  CompileOptions copts;
  copts.case_insensitive = spec.case_insensitive;
  // Validate the pattern once so errors surface deterministically.
  DOPPIO_RETURN_NOT_OK(
      BacktrackMatcher::Compile(spec.pattern, copts).status());
  std::vector<uint8_t> bits(static_cast<size_t>(column.count()), 0);
  Status worker_status = Status::OK();
  std::mutex status_mutex;
  ParallelOverRows(column.count(), [&](int64_t first, int64_t end, int) {
    for (int64_t i = first; i < end; ++i) {
      // Scalar invocation: compile + execute per tuple.
      auto matcher = BacktrackMatcher::Compile(spec.pattern, copts);
      if (!matcher.ok()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        worker_status = matcher.status();
        return;
      }
      bits[static_cast<size_t>(i)] =
          (*matcher)->Matches(column.GetString(i)) ? 1 : 0;
      if ((*matcher)->last_find_exceeded_budget()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        worker_status =
            Status::Internal("backtracking step budget exceeded");
        return;
      }
    }
  });
  DOPPIO_RETURN_NOT_OK(worker_status);
  return bits;
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalFpga(
    const Bat& column, const StringFilterSpec& spec, QueryStats* stats) {
  if (options_.hal == nullptr) {
    return Status::InvalidArgument(
        "REGEXP_FPGA requires a HAL-enabled engine");
  }
  CompileOptions copts;
  copts.case_insensitive = spec.case_insensitive;

  std::unique_ptr<Bat> result;
  QueryStats local;
  Status hw_status = Status::OK();
  if (spec.op == StringFilterSpec::Op::kHybrid) {
    Result<HybridResult> hybrid =
        ExecuteHybrid(options_.hal, column, spec.pattern, copts,
                      /*gate=*/nullptr, options_.result_cache);
    if (hybrid.ok()) {
      result = std::move(hybrid->result);
      local = hybrid->stats;
    } else {
      hw_status = hybrid.status();
    }
  } else {
    // The engine-side HUDF partitions one query's data across all Regex
    // Engines (paper §7.5).
    Result<HudfResult> hw =
        RegexpFpgaPartitioned(options_.hal, column, spec.pattern, copts);
    if (hw.ok()) {
      result = std::move(hw->result);
      local = hw->stats;
    } else {
      hw_status = hw.status();
    }
  }
  if (!hw_status.ok()) {
    // The layers below degrade per-slice; an error that still reaches the
    // scan operator and is fallback-eligible (device refused the job
    // outright) degrades the whole predicate to the software matchers.
    // Capacity is the exception: it is a planning-time property of the
    // pattern, and the explicit REGEXP_FPGA operator surfaces it — the
    // documented route around an oversized pattern is the AUTO/HYBRID
    // planner, which splits or goes software *by plan*, not by fault.
    if (!IsFallbackEligible(hw_status) || hw_status.IsCapacityExceeded()) {
      return hw_status;
    }
    Stopwatch sw_watch;
    DOPPIO_ASSIGN_OR_RETURN(std::vector<uint8_t> bits,
                            EvalRegexp(column, spec));
    if (stats != nullptr) {
      QueryStats degraded;
      degraded.strategy = "fpga+sw_fallback";
      degraded.udf_software_seconds = sw_watch.ElapsedSeconds();
      degraded.fallback_rows = column.count();
      stats->Accumulate(degraded);
    }
    return bits;
  }
  if (stats != nullptr) {
    // Do not double count volumes; phases only.
    local.rows_scanned = 0;
    local.rows_matched = 0;
    stats->Accumulate(local);
  }
  std::vector<uint8_t> bits(static_cast<size_t>(column.count()), 0);
  for (int64_t i = 0; i < column.count(); ++i) {
    bits[static_cast<size_t>(i)] = result->GetInt16(i) != 0 ? 1 : 0;
  }
  return bits;
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalContains(
    const Bat& column, const StringFilterSpec& spec) {
  const InvertedIndex* index = contains_index(&column);
  if (index == nullptr) {
    return Status::InvalidArgument(
        "CONTAINS requires a pre-built inverted index on the column");
  }
  if (index->IsStaleFor(column)) {
    return Status::InvalidArgument(
        "inverted index is stale; rebuild it first");
  }
  DOPPIO_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                          index->Search(spec.pattern));
  std::vector<uint8_t> bits(static_cast<size_t>(column.count()), 0);
  for (int64_t row : rows) bits[static_cast<size_t>(row)] = 1;
  return bits;
}

Result<uint64_t> ColumnStoreEngine::AppendToColumn(
    const std::string& table, const std::string& column,
    const std::vector<std::string>& values) {
  Table* t = catalog_.GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Bat* col = t->GetColumn(column);
  if (col == nullptr) {
    return Status::NotFound("no column '" + column + "'");
  }
  if (col->type() != ValueType::kString) {
    return Status::InvalidArgument("AppendToColumn requires a string column");
  }
  // Epoch guard: an append reallocates the BAT's offsets/heap, so it must
  // not overlap a scan of the same column. The conflict is surfaced as a
  // typed, retryable error rather than a blocking wait (or a race).
  ColumnEpochGuard* epoch = EpochGuardFor(col->id());
  if (!epoch->TryBeginWrite()) {
    return Status::Overloaded(
        "scan in flight over the target column; retry the append");
  }
  struct WriteRelease {
    ColumnEpochGuard* g;
    ~WriteRelease() { g->EndWrite(); }
  } epoch_release{epoch};
  for (const std::string& value : values) {
    DOPPIO_RETURN_NOT_OK(col->AppendString(value));
  }
  if (options_.result_cache != nullptr) {
    options_.result_cache->InvalidateColumn(col->id());
  }
  return col->version();
}

Status ColumnStoreEngine::BuildContainsIndex(const std::string& table,
                                             const std::string& column) {
  Table* t = catalog_.GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Bat* col = t->GetColumn(column);
  if (col == nullptr) {
    return Status::NotFound("no column '" + column + "'");
  }
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<InvertedIndex> index,
                          InvertedIndex::Build(*col));
  contains_indexes_[col] = std::move(index);
  return Status::OK();
}

const InvertedIndex* ColumnStoreEngine::contains_index(
    const Bat* column) const {
  auto it = contains_indexes_.find(column);
  return it == contains_indexes_.end() ? nullptr : it->second.get();
}

namespace {
std::string SegmentedKey(const std::string& table, const std::string& column) {
  return table + '\x1f' + column;
}
}  // namespace

Pager* ColumnStoreEngine::pager() {
  if (options_.hal == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(segmented_mutex_);
  if (pager_ == nullptr) {
    PagerOptions popts;
    if (options_.pager_budget_bytes > 0) {
      popts.budget_bytes = options_.pager_budget_bytes;
    }
    pager_ = std::make_unique<Pager>(options_.hal->arena(), popts);
  }
  return pager_.get();
}

Status ColumnStoreEngine::CreateSegmentedColumn(const std::string& table,
                                                const std::string& column) {
  if (options_.hal == nullptr) {
    return Status::InvalidArgument(
        "segmented columns require a HAL-enabled engine");
  }
  Pager* p = pager();  // construct outside segmented_mutex_
  std::lock_guard<std::mutex> lock(segmented_mutex_);
  const std::string key = SegmentedKey(table, column);
  if (segmented_.count(key) > 0) {
    return Status::AlreadyExists("segmented column '" + table + "." + column +
                                 "' already exists");
  }
  const int64_t target = options_.segment_target_bytes > 0
                             ? options_.segment_target_bytes
                             : kSharedPageBytes;
  segmented_[key] = std::make_unique<SegmentedColumn>(p, target);
  return Status::OK();
}

SegmentedColumn* ColumnStoreEngine::segmented_column(
    const std::string& table, const std::string& column) {
  std::lock_guard<std::mutex> lock(segmented_mutex_);
  auto it = segmented_.find(SegmentedKey(table, column));
  return it == segmented_.end() ? nullptr : it->second.get();
}

Result<uint64_t> ColumnStoreEngine::AppendToSegmented(
    const std::string& table, const std::string& column,
    const std::vector<std::string>& values, bool seal) {
  SegmentedColumn* col = segmented_column(table, column);
  if (col == nullptr) {
    return Status::NotFound("no segmented column '" + table + "." + column +
                            "'");
  }
  for (const std::string& value : values) {
    DOPPIO_RETURN_NOT_OK(col->Append(value));
  }
  if (seal) DOPPIO_RETURN_NOT_OK(col->Seal());
  // No result-cache invalidation: sealed segments are immutable and cached
  // per (segment id, version), so pre-append blocks stay exactly valid.
  return col->version();
}

Result<std::vector<uint8_t>> ColumnStoreEngine::EvalSegmentedFilter(
    const std::string& table, const std::string& column,
    const StringFilterSpec& spec, QueryStats* stats) {
  if (options_.hal == nullptr) {
    return Status::InvalidArgument(
        "segmented scans require a HAL-enabled engine");
  }
  SegmentedColumn* col = segmented_column(table, column);
  if (col == nullptr) {
    return Status::NotFound("no segmented column '" + table + "." + column +
                            "'");
  }
  switch (spec.op) {
    case StringFilterSpec::Op::kRegexpFpga:
    case StringFilterSpec::Op::kHybrid:
    case StringFilterSpec::Op::kAuto:
      break;
    default:
      return Status::InvalidArgument(
          "segmented columns are scanned by the streaming executor; use "
          "REGEXP_FPGA (or AUTO)");
  }
  CompileOptions copts;
  copts.case_insensitive = spec.case_insensitive;
  DOPPIO_ASSIGN_OR_RETURN(
      RegexConfig config,
      CompileRegexConfig(spec.pattern, options_.hal->device_config(), copts));

  // The scan runs over the sealed snapshot taken here; rows still staged
  // in the open segment are invisible by design (segment-granular
  // visibility), so a concurrent AppendToSegmented cannot perturb it.
  const SegmentSnapshot snapshot = col->Snapshot();
  StreamOptions sopts;
  if (options_.result_cache != nullptr) {
    sopts.result_cache = options_.result_cache;
    const std::vector<uint8_t>& fp = config.vector.bytes();
    sopts.fingerprint.assign(fp.begin(), fp.end());
  }
  DOPPIO_ASSIGN_OR_RETURN(
      HudfResult hw,
      RegexpFpgaStreamed(options_.hal, pager(), snapshot, config, sopts));

  std::vector<uint8_t> bits(static_cast<size_t>(snapshot.rows), 0);
  for (int64_t i = 0; i < snapshot.rows; ++i) {
    bits[static_cast<size_t>(i)] = hw.result->GetInt16(i) != 0 ? 1 : 0;
  }
  int64_t matched = 0;
  if (spec.negated) {
    for (auto& b : bits) b = b == 0 ? 1 : 0;
  }
  for (uint8_t b : bits) matched += b;
  if (stats != nullptr) {
    hw.stats.rows_scanned = 0;  // volumes counted once, below
    hw.stats.rows_matched = 0;
    stats->Accumulate(hw.stats);
    stats->rows_scanned += snapshot.rows;
    stats->rows_matched += matched;
    if (spec.op == StringFilterSpec::Op::kAuto) {
      stats->strategy = "auto->" + stats->strategy;
    }
  }
  return bits;
}

}  // namespace doppio
