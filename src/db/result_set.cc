#include "db/result_set.h"

#include <sstream>

namespace doppio {

std::string ResultSet::ToString(int64_t max_rows) const {
  std::ostringstream out;
  for (size_t c = 0; c < columns.size(); ++c) {
    out << (c > 0 ? " | " : "") << columns[c].name;
  }
  out << "\n";
  const int64_t rows = std::min(num_rows(), max_rows);
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out << " | ";
      const OwnedColumn& col = columns[c];
      if (!col.IsValid(r)) {
        out << "NULL";
      } else if (col.is_string) {
        out << col.strings[static_cast<size_t>(r)];
      } else {
        out << col.ints[static_cast<size_t>(r)];
      }
    }
    out << "\n";
  }
  if (num_rows() > rows) {
    out << "... (" << num_rows() - rows << " more rows)\n";
  }
  return out.str();
}

}  // namespace doppio
