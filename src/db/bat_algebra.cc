#include "db/bat_algebra.h"

#include <unordered_map>
#include <vector>

namespace doppio {
namespace batalg {

namespace {

Result<int64_t> IntAt(const Bat& column, int64_t row) {
  switch (column.type()) {
    case ValueType::kInt32:
      return static_cast<int64_t>(column.GetInt32(row));
    case ValueType::kInt64:
      return column.GetInt64(row);
    case ValueType::kInt16:
      return static_cast<int64_t>(column.GetInt16(row));
    case ValueType::kString:
      return Status::InvalidArgument("integer operator on string BAT");
  }
  return Status::Internal("unknown BAT type");
}

Status CheckIntColumn(const Bat& column) {
  if (column.type() == ValueType::kString) {
    return Status::InvalidArgument("integer operator on string BAT");
  }
  return Status::OK();
}

}  // namespace

Result<CandidateList> SelectEq(const Bat& column, int64_t value,
                               BufferAllocator* allocator) {
  return SelectRange(column, value, value, allocator);
}

Result<CandidateList> SelectRange(const Bat& column, int64_t lo, int64_t hi,
                                  BufferAllocator* allocator) {
  DOPPIO_RETURN_NOT_OK(CheckIntColumn(column));
  auto out = std::make_unique<Bat>(ValueType::kInt64, allocator);
  for (int64_t row = 0; row < column.count(); ++row) {
    DOPPIO_ASSIGN_OR_RETURN(int64_t v, IntAt(column, row));
    if (v >= lo && v <= hi) {
      DOPPIO_RETURN_NOT_OK(out->AppendInt64(row));
    }
  }
  return out;
}

Result<CandidateList> SelectNonZero(const Bat& shorts, bool select_zero,
                                    BufferAllocator* allocator) {
  if (shorts.type() != ValueType::kInt16) {
    return Status::InvalidArgument(
        "SelectNonZero expects a short (HUDF result) BAT");
  }
  auto out = std::make_unique<Bat>(ValueType::kInt64, allocator);
  for (int64_t row = 0; row < shorts.count(); ++row) {
    bool nonzero = shorts.GetInt16(row) != 0;
    if (nonzero != select_zero) {
      DOPPIO_RETURN_NOT_OK(out->AppendInt64(row));
    }
  }
  return out;
}

Result<std::unique_ptr<Bat>> Project(const Bat& candidates,
                                     const Bat& column,
                                     BufferAllocator* allocator) {
  if (candidates.type() != ValueType::kInt64) {
    return Status::InvalidArgument("candidate list must be a kInt64 BAT");
  }
  auto out = std::make_unique<Bat>(column.type(), allocator);
  for (int64_t i = 0; i < candidates.count(); ++i) {
    int64_t row = candidates.GetInt64(i);
    if (row < 0 || row >= column.count()) {
      return Status::InvalidArgument("candidate OID out of range");
    }
    switch (column.type()) {
      case ValueType::kInt32:
        DOPPIO_RETURN_NOT_OK(out->AppendInt32(column.GetInt32(row)));
        break;
      case ValueType::kInt64:
        DOPPIO_RETURN_NOT_OK(out->AppendInt64(column.GetInt64(row)));
        break;
      case ValueType::kInt16:
        DOPPIO_RETURN_NOT_OK(out->AppendInt16(column.GetInt16(row)));
        break;
      case ValueType::kString:
        DOPPIO_RETURN_NOT_OK(out->AppendString(column.GetString(row)));
        break;
    }
  }
  return out;
}

Result<JoinResult> HashJoin(const Bat& left, const Bat& right,
                            BufferAllocator* allocator) {
  DOPPIO_RETURN_NOT_OK(CheckIntColumn(left));
  DOPPIO_RETURN_NOT_OK(CheckIntColumn(right));
  // Build on the smaller side.
  const bool build_left = left.count() <= right.count();
  const Bat& build = build_left ? left : right;
  const Bat& probe = build_left ? right : left;

  std::unordered_map<int64_t, std::vector<int64_t>> table;
  table.reserve(static_cast<size_t>(build.count()));
  for (int64_t row = 0; row < build.count(); ++row) {
    DOPPIO_ASSIGN_OR_RETURN(int64_t v, IntAt(build, row));
    table[v].push_back(row);
  }

  JoinResult out;
  out.left = std::make_unique<Bat>(ValueType::kInt64, allocator);
  out.right = std::make_unique<Bat>(ValueType::kInt64, allocator);
  for (int64_t row = 0; row < probe.count(); ++row) {
    DOPPIO_ASSIGN_OR_RETURN(int64_t v, IntAt(probe, row));
    auto it = table.find(v);
    if (it == table.end()) continue;
    for (int64_t match : it->second) {
      int64_t l = build_left ? match : row;
      int64_t r = build_left ? row : match;
      DOPPIO_RETURN_NOT_OK(out.left->AppendInt64(l));
      DOPPIO_RETURN_NOT_OK(out.right->AppendInt64(r));
    }
  }
  return out;
}

Result<CandidateList> Intersect(const Bat& a, const Bat& b,
                                BufferAllocator* allocator) {
  if (a.type() != ValueType::kInt64 || b.type() != ValueType::kInt64) {
    return Status::InvalidArgument("candidate lists must be kInt64 BATs");
  }
  auto out = std::make_unique<Bat>(ValueType::kInt64, allocator);
  int64_t i = 0;
  int64_t j = 0;
  while (i < a.count() && j < b.count()) {
    int64_t va = a.GetInt64(i);
    int64_t vb = b.GetInt64(j);
    if (va == vb) {
      DOPPIO_RETURN_NOT_OK(out->AppendInt64(va));
      ++i;
      ++j;
    } else if (va < vb) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

Result<GroupResult> Group(const Bat& column, BufferAllocator* allocator) {
  DOPPIO_RETURN_NOT_OK(CheckIntColumn(column));
  GroupResult out;
  out.group_ids = std::make_unique<Bat>(ValueType::kInt64, allocator);
  out.representatives = std::make_unique<Bat>(ValueType::kInt64, allocator);
  std::unordered_map<int64_t, int64_t> ids;
  for (int64_t row = 0; row < column.count(); ++row) {
    DOPPIO_ASSIGN_OR_RETURN(int64_t v, IntAt(column, row));
    auto [it, inserted] =
        ids.try_emplace(v, static_cast<int64_t>(ids.size()));
    if (inserted) {
      DOPPIO_RETURN_NOT_OK(out.representatives->AppendInt64(row));
    }
    DOPPIO_RETURN_NOT_OK(out.group_ids->AppendInt64(it->second));
  }
  return out;
}

Result<std::unique_ptr<Bat>> GroupCount(const Bat& group_ids,
                                        int64_t num_groups,
                                        BufferAllocator* allocator) {
  if (group_ids.type() != ValueType::kInt64) {
    return Status::InvalidArgument("group ids must be a kInt64 BAT");
  }
  auto out = std::make_unique<Bat>(ValueType::kInt64, allocator);
  DOPPIO_RETURN_NOT_OK(out->AppendZeros(num_groups));
  int64_t* counts = reinterpret_cast<int64_t*>(out->mutable_tail_data());
  for (int64_t row = 0; row < group_ids.count(); ++row) {
    int64_t g = group_ids.GetInt64(row);
    if (g < 0 || g >= num_groups) {
      return Status::InvalidArgument("group id out of range");
    }
    ++counts[g];
  }
  return out;
}

int64_t Count(const Bat& candidates) { return candidates.count(); }

}  // namespace batalg
}  // namespace doppio
