// Operator cost model and strategy chooser.
//
// The paper's discussion (§9) points out that a UDF is a black box to the
// query optimizer: it can neither cost the FPGA operator nor decide
// between hardware and software execution. This module provides exactly
// that missing piece — enabled by the hardware's *predictable*,
// complexity-independent cost function (property II of §5):
//  * software LIKE:        bytes / (scan throughput x cores)
//  * software REGEXP_LIKE: rows x per-tuple scalar-invocation cost / cores
//  * FPGA:                 the closed-form QPI/engine model (hw/perf_model)
//  * hybrid:               FPGA prefix + selectivity x automaton pass
// Scan throughputs are calibrated once per process by a quick
// micro-measurement, so predictions track the actual host.
#pragma once

#include <string>

#include "common/status.h"
#include "db/column_store.h"
#include "hw/device_config.h"
#include "hw/kernel_backend.h"

namespace doppio {

struct TableStats {
  int64_t rows = 0;
  int64_t heap_bytes = 0;

  double avg_string_bytes() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(heap_bytes) /
                           static_cast<double>(rows);
  }
};

class OperatorCostModel {
 public:
  struct Calibration {
    double like_bytes_per_sec = 0;   // substring fast-path scan (one core)
    double dfa_bytes_per_sec = 0;    // automaton scan (one core)
    double simd_bytes_per_sec = 0;   // bit-parallel SIMD backend (one core)
    double regexp_tuple_seconds = 0; // scalar regex invocation per tuple
    int cpu_cores = 10;              // the machine model (paper: 10)
  };

  /// Calibrates the software throughputs with a short micro-measurement
  /// (a few milliseconds).
  static Calibration Measure(int cpu_cores = 10);

  OperatorCostModel(const DeviceConfig& device, Calibration calibration);

  // --- Per-strategy predictions (seconds for one query) --------------------
  double PredictLike(const TableStats& stats) const;
  double PredictRegexpLike(const TableStats& stats) const;
  /// Fails with CapacityExceeded when the pattern cannot be mapped.
  Result<double> PredictFpga(const std::string& pattern,
                             const TableStats& stats) const;
  /// Segment-aware prediction for the out-of-core streaming executor
  /// (docs/STORAGE.md): the column is scanned in `windows` equal
  /// segment-windows, each paying a modeled QPI transfer for the bytes
  /// not already resident (`resident_bytes` of the payload are pinned
  /// and transfer-free). With `overlap` the double-buffering recurrence
  /// hides the smaller of transfer/execute per window; without it the
  /// windows are serial page-then-scan. `windows` <= 1 and everything
  /// resident degenerates to PredictFpga exactly. Fails with
  /// CapacityExceeded when the pattern cannot be mapped.
  Result<double> PredictFpgaStreamed(const std::string& pattern,
                                     const TableStats& stats, int windows,
                                     int64_t resident_bytes = 0,
                                     bool overlap = true) const;
  /// `prefix_selectivity`: expected fraction the CPU post-processes.
  Result<double> PredictHybrid(const std::string& pattern,
                               const TableStats& stats,
                               double prefix_selectivity = 0.2) const;

  struct HostPrediction {
    double seconds = 0;
    /// Which host backend the registry would run (drives the throughput
    /// the prediction used).
    BackendId backend = BackendId::kCpuScalar;
  };
  /// Predicted one-core host execution of the compiled PU program
  /// through the kernel-backend registry (the scheduler's kCpuProgram
  /// route). Fails with CapacityExceeded when the pattern cannot be
  /// mapped onto the deployed geometry.
  Result<HostPrediction> PredictHostProgram(const std::string& pattern,
                                            const TableStats& stats) const;

  struct Choice {
    StringFilterSpec::Op op = StringFilterSpec::Op::kRegexpLike;
    double predicted_seconds = 0;
    std::string reason;
    /// Non-empty when the chosen operator needs the pattern in a
    /// different syntax (e.g. a substring regex rewritten to a LIKE
    /// pattern for the fast path).
    std::string rewritten_pattern;
  };

  /// Picks the cheapest strategy for `spec` over a table with `stats`.
  /// For kAuto specs the pattern is in the regex dialect. `fpga_available`
  /// reflects whether a HAL is attached.
  Choice Choose(const StringFilterSpec& spec, const TableStats& stats,
                bool fpga_available) const;

  const Calibration& calibration() const { return calibration_; }

 private:
  DeviceConfig device_;
  Calibration calibration_;
};

}  // namespace doppio
