#include "db/udf.h"

#include <algorithm>

#include "db/hudf.h"
#include "db/hybrid_executor.h"
#include "regex/backtrack_matcher.h"
#include "regex/dfa_matcher.h"

namespace doppio {

Status UdfRegistry::Register(const std::string& name, StringBatUdf udf) {
  if (udfs_.count(name) != 0) {
    return Status::AlreadyExists("UDF '" + name + "' already registered");
  }
  udfs_[name] = std::move(udf);
  return Status::OK();
}

const StringBatUdf* UdfRegistry::Lookup(const std::string& name) const {
  auto it = udfs_.find(name);
  return it == udfs_.end() ? nullptr : &it->second;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(udfs_.size());
  for (const auto& [name, _] : udfs_) names.push_back(name);
  return names;
}

namespace {

template <typename MatcherT>
Result<std::unique_ptr<Bat>> RunSoftwareMatcher(const Bat& input,
                                                const std::string& pattern) {
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<MatcherT> matcher,
                          MatcherT::Compile(pattern));
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<Bat> result,
                          Bat::New(ValueType::kInt16, input.count()));
  for (int64_t i = 0; i < input.count(); ++i) {
    MatchResult m = matcher->Find(input.GetString(i));
    int16_t value = 0;
    if (m.matched) {
      value = static_cast<int16_t>(
          std::min<int32_t>(std::max<int32_t>(m.end, 1), 32767));
    }
    DOPPIO_RETURN_NOT_OK(result->AppendInt16(value));
  }
  return result;
}

}  // namespace

Status RegisterBuiltinUdfs(UdfRegistry* registry, Hal* hal) {
  DOPPIO_RETURN_NOT_OK(registry->Register(
      "regexp_like", [](const Bat& input, const std::string& pattern) {
        return RunSoftwareMatcher<BacktrackMatcher>(input, pattern);
      }));
  DOPPIO_RETURN_NOT_OK(registry->Register(
      "regexp_dfa", [](const Bat& input, const std::string& pattern) {
        return RunSoftwareMatcher<DfaMatcher>(input, pattern);
      }));
  if (hal != nullptr) {
    DOPPIO_RETURN_NOT_OK(registry->Register(
        "regexp_fpga", [hal](const Bat& input, const std::string& pattern)
                           -> Result<std::unique_ptr<Bat>> {
          DOPPIO_ASSIGN_OR_RETURN(HudfResult hw,
                                  RegexpFpga(hal, input, pattern));
          return std::move(hw.result);
        }));
    DOPPIO_RETURN_NOT_OK(registry->Register(
        "regexp_hybrid", [hal](const Bat& input, const std::string& pattern)
                             -> Result<std::unique_ptr<Bat>> {
          DOPPIO_ASSIGN_OR_RETURN(HybridResult hybrid,
                                  ExecuteHybrid(hal, input, pattern));
          return std::move(hybrid.result);
        }));
  }
  return Status::OK();
}

}  // namespace doppio
