#include "db/hybrid_executor.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "hw/config_compiler.h"
#include "hw/kernel_backend.h"
#include "obs/metrics.h"
#include "regex/pattern_parser.h"
#include "sched/result_cache.h"

namespace doppio {

namespace {

obs::Counter& HybridStrategyCounter(HybridStrategy strategy) {
  static obs::Counter* fpga = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_fpga_only", "hybrid plans served fully on FPGA");
  static obs::Counter* split = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_split",
      "hybrid plans split FPGA prefix + CPU postprocess");
  static obs::Counter* software = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_software_only",
      "hybrid plans served fully in software");
  switch (strategy) {
    case HybridStrategy::kFpgaOnly: return *fpga;
    case HybridStrategy::kHybrid: return *split;
    case HybridStrategy::kSoftwareOnly: break;
  }
  return *software;
}

bool IsDotStarNode(const AstNode& node) {
  return node.kind == AstKind::kRepeat && node.repeat_min == 0 &&
         node.repeat_max == -1 &&
         node.children[0]->kind == AstKind::kCharClass &&
         node.children[0]->char_class == CharSet::AnyChar();
}

// Clones children [0, end) of a concat into a prefix AST.
AstNodePtr ConcatPrefix(const AstNode& concat, size_t end) {
  std::vector<AstNodePtr> parts;
  parts.reserve(end);
  for (size_t i = 0; i < end; ++i) {
    parts.push_back(concat.children[i]->Clone());
  }
  return AstNode::Concat(std::move(parts));
}

// Full-pattern scan on the software matchers (the planner's software
// strategy, and the degradation target when the hardware path fails with
// a fallback-eligible error). Shares the implementation with the
// scheduler's over-capacity CPU route (db/hudf.h).
Result<HybridResult> RunSoftwareScan(const Bat& input,
                                     std::string_view pattern,
                                     const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(HudfResult scan,
                          RunDfaScanInSoftware(input, pattern, options));
  HybridResult out;
  out.result = std::move(scan.result);
  out.stats = std::move(scan.stats);
  return out;
}

// Result-cache keys are the compiled program's identity: the canonical
// config-vector bytes (the same convention sched::ProgramCache uses), so
// a scheduler-cached scan and a direct-submit scan of the same pattern
// resolve to the same entry.
std::string FingerprintOf(const RegexConfig& config) {
  const std::vector<uint8_t>& bytes = config.vector.bytes();
  return std::string(bytes.begin(), bytes.end());
}

// Materializes a cached block as the int16 result BAT the device scan
// would have produced.
Result<std::unique_ptr<Bat>> BatFromBlock(const sched::CachedResultBlock& block,
                                          BufferAllocator* allocator) {
  DOPPIO_ASSIGN_OR_RETURN(
      std::unique_ptr<Bat> bat,
      Bat::New(ValueType::kInt16, block.rows(), allocator));
  DOPPIO_RETURN_NOT_OK(bat->AppendZeros(block.rows()));
  if (block.rows() > 0) {
    std::memcpy(bat->mutable_tail_data(), block.values.data(),
                block.values.size() * sizeof(uint16_t));
  }
  return bat;
}

// Offers a completed device-semantics scan to the result cache. The
// completeness guard lives in ResultCache::Put — degraded or saturated
// blocks are refused there, so callers only classify degradation.
void OfferToCache(sched::ResultCache* cache, const std::string& fingerprint,
                  uint64_t column_id, uint64_t column_version,
                  const Bat& result, bool degraded) {
  const uint16_t* values =
      reinterpret_cast<const uint16_t*>(result.tail_data());
  cache->Put(fingerprint, column_id, column_version,
             std::vector<uint16_t>(values, values + result.count()),
             degraded);
}

// Pre-filter subsumption (docs/RESULT_CACHE.md): a cached scan of a
// '.*'-cut prefix of `pattern` is a *complete* candidate set for it — the
// full unanchored pattern can only match rows where the prefix matched —
// so the full compiled program refines just the candidate rows on the
// host backend. Probes the cut prefixes longest-first on the same column
// snapshot; returns the refined result on a hit, nullopt when no usable
// entry exists. Best-effort by design: internal failures fall through to
// the normal offload rather than surfacing as errors.
std::optional<HybridResult> TryPrefilterRefine(
    sched::ResultCache* cache, Hal* hal, const Bat& input,
    const RegexConfig& full_config, std::string_view pattern,
    uint64_t column_id, uint64_t column_version, int64_t rows,
    const CompileOptions& options) {
  auto parsed = ParseAnchoredPattern(pattern);
  if (!parsed.ok() || parsed->anchor_start || parsed->anchor_end) {
    return std::nullopt;
  }
  AstNodePtr ast = std::move(parsed->ast);
  if (ast->kind != AstKind::kConcat) return std::nullopt;
  std::vector<size_t> cut_points;
  for (size_t i = 0; i < ast->children.size(); ++i) {
    if (IsDotStarNode(*ast->children[i])) cut_points.push_back(i);
  }

  bool probed = false;
  for (auto it = cut_points.rbegin(); it != cut_points.rend(); ++it) {
    if (*it == 0) continue;  // empty prefix subsumes nothing
    AstNodePtr prefix = ConcatPrefix(*ast, *it);
    auto prefix_config =
        CompileRegexConfig(*prefix, hal->device_config(), options);
    if (!prefix_config.ok()) continue;
    probed = true;
    std::shared_ptr<const sched::CachedResultBlock> block = cache->Get(
        FingerprintOf(*prefix_config), column_id, column_version, rows);
    if (block == nullptr) continue;

    auto program =
        CompiledPuProgram::Compile(full_config.vector, hal->device_config());
    if (!program.ok()) break;
    auto result = Bat::New(ValueType::kInt16, rows, hal->bat_allocator());
    if (!result.ok() || !(*result)->AppendZeros(rows).ok()) break;
    Stopwatch refine_watch;
    HostSliceInfo info;
    auto matches = RunHostCandidates(
        hal->device_config(), input, rows, block->values.data(), *program,
        reinterpret_cast<uint16_t*>((*result)->mutable_tail_data()), &info);
    if (!matches.ok()) break;

    int64_t candidates = 0;
    for (uint16_t v : block->values) candidates += (v != 0);
    cache->CountPrefilterUse(rows - candidates);

    HybridResult out;
    out.result = std::move(*result);
    out.strategy = HybridStrategy::kFpgaOnly;
    out.cpu_postprocessed = candidates;
    out.stats.strategy = "fpga+cache_prefilter";
    out.stats.pu_kernel = info.kernel;
    out.stats.rows_scanned = rows;
    out.stats.rows_matched = *matches;
    out.stats.udf_software_seconds = refine_watch.ElapsedSeconds();
    return out;
  }
  if (probed) cache->CountPrefilterReject();
  return std::nullopt;
}

// Partial-extent reuse (docs/RESULT_CACHE.md): an earlier, shorter
// version of an append-only column is a row-identical prefix of the
// current one — AppendString only adds rows. A cached block for such a
// version answers rows [0, block->rows()) verbatim; only the appended
// tail needs scanning, which runs on the host backend with full device
// Match semantics so the merged column is bit-identical to a full scan.
// Best-effort like TryPrefilterRefine: failures fall through to offload.
std::optional<HybridResult> TryPrefixTailServe(
    sched::ResultCache* cache, Hal* hal, const Bat& input,
    const RegexConfig& full_config, const std::string& fingerprint,
    uint64_t column_id, int64_t rows) {
  std::shared_ptr<const sched::CachedResultBlock> block =
      cache->GetPrefix(fingerprint, column_id, rows);
  if (block == nullptr) return std::nullopt;
  const int64_t prefix_rows = block->rows();

  auto program =
      CompiledPuProgram::Compile(full_config.vector, hal->device_config());
  if (!program.ok()) return std::nullopt;
  auto result = Bat::New(ValueType::kInt16, rows, hal->bat_allocator());
  if (!result.ok() || !(*result)->AppendZeros(rows).ok()) return std::nullopt;
  std::memcpy((*result)->mutable_tail_data(), block->values.data(),
              static_cast<size_t>(prefix_rows) * sizeof(uint16_t));

  Stopwatch tail_watch;
  JobParams params;
  params.offsets = input.tail_data() + prefix_rows * input.offset_width();
  params.heap = input.heap()->data();
  params.result =
      (*result)->mutable_tail_data() + prefix_rows * sizeof(uint16_t);
  params.count = rows - prefix_rows;
  params.heap_bytes = input.heap()->size_bytes();
  params.config = full_config.vector.bytes();
  HostSliceInfo info;
  auto tail_matches =
      RunHostSlice(hal->device_config(), params, *program, &info);
  if (!tail_matches.ok()) return std::nullopt;

  HybridResult out;
  out.result = std::move(*result);
  out.strategy = HybridStrategy::kFpgaOnly;
  out.stats.strategy = "fpga+cache_prefix";
  out.stats.pu_kernel = info.kernel;
  out.stats.rows_scanned = rows - prefix_rows;  // only the tail was scanned
  out.stats.rows_matched = block->rows_matched + *tail_matches;
  out.stats.udf_software_seconds = tail_watch.ElapsedSeconds();
  return out;
}

}  // namespace

Result<HybridPlan> PlanHybrid(std::string_view pattern,
                              const DeviceConfig& device,
                              const CompileOptions& options) {
  HybridPlan plan;
  plan.full_pattern = std::string(pattern);

  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  if (parsed.anchor_start || parsed.anchor_end) {
    // The hardware searches unanchored, and splitting an anchored pattern
    // would change its semantics: software handles it end to end.
    plan.strategy = HybridStrategy::kSoftwareOnly;
    return plan;
  }
  AstNodePtr ast = std::move(parsed.ast);
  auto full = CompileRegexConfig(*ast, device, options);
  if (full.ok()) {
    plan.strategy = HybridStrategy::kFpgaOnly;
    plan.fpga_pattern = plan.full_pattern;
    return plan;
  }
  if (!full.status().IsCapacityExceeded()) return full.status();

  // Split at '.*' boundaries: try the longest prefix first.
  if (ast->kind == AstKind::kConcat) {
    std::vector<size_t> cut_points;  // index of each top-level dot-star
    for (size_t i = 0; i < ast->children.size(); ++i) {
      if (IsDotStarNode(*ast->children[i])) cut_points.push_back(i);
    }
    for (auto it = cut_points.rbegin(); it != cut_points.rend(); ++it) {
      if (*it == 0) continue;  // empty prefix
      AstNodePtr prefix = ConcatPrefix(*ast, *it);
      auto attempt = CompileRegexConfig(*prefix, device, options);
      if (attempt.ok()) {
        plan.strategy = HybridStrategy::kHybrid;
        plan.fpga_pattern = prefix->ToString();
        return plan;
      }
      if (!attempt.status().IsCapacityExceeded()) return attempt.status();
    }
  }
  plan.strategy = HybridStrategy::kSoftwareOnly;
  return plan;
}

Result<HybridResult> ExecuteHybrid(Hal* hal, const Bat& input,
                                   std::string_view pattern,
                                   const CompileOptions& options,
                                   RegexAdmissionGate* gate,
                                   sched::ResultCache* cache) {
  Stopwatch total_watch;
  DOPPIO_ASSIGN_OR_RETURN(HybridPlan plan,
                          PlanHybrid(pattern, hal->device_config(), options));

  HybridResult out;
  out.strategy = plan.strategy;
  HybridStrategyCounter(plan.strategy).Add();

  // Admission snapshot for cache keying: the column identity and version
  // observed now. A concurrent append bumps the version, so entries
  // written under this snapshot can never serve the grown column.
  const uint64_t column_id = input.id();
  const uint64_t column_version = input.version();
  const int64_t snapshot_rows = input.count();

  // FPGA offloads go through the admission gate when one is installed;
  // Overloaded rejects are surfaced to the caller (back off, don't
  // degrade), everything else behaves exactly like direct submission.
  auto offload = [&](std::string_view fpga_pattern) {
    return gate != nullptr ? gate->ExecuteRegex(input, fpga_pattern, options)
                           : RegexpFpga(hal, input, fpga_pattern, options);
  };

  if (plan.strategy == HybridStrategy::kFpgaOnly) {
    std::string fingerprint;
    if (cache != nullptr) {
      auto config = CompileRegexConfig(pattern, hal->device_config(), options);
      if (config.ok()) {
        fingerprint = FingerprintOf(*config);
        // Exact hit: this program already scanned this column version in
        // full. Every backend (device, host program, cache) is
        // bit-identical by construction, so the block serves any caller.
        if (auto block = cache->Get(fingerprint, column_id, column_version,
                                    snapshot_rows)) {
          DOPPIO_ASSIGN_OR_RETURN(
              out.result, BatFromBlock(*block, hal->bat_allocator()));
          out.stats.strategy = "fpga-cache";
          out.stats.rows_scanned = snapshot_rows;
          out.stats.rows_matched = block->rows_matched;
          out.stats.udf_software_seconds = total_watch.ElapsedSeconds();
          return out;
        }
        // Subsumption: refine a cached coarser ('.*'-cut prefix) scan
        // instead of rescanning the column.
        std::optional<HybridResult> refined = TryPrefilterRefine(
            cache, hal, input, *config, pattern, column_id, column_version,
            snapshot_rows, options);
        if (refined.has_value()) {
          // The refined block has full device semantics — cache it under
          // the full pattern so the next repeat is an exact hit.
          OfferToCache(cache, fingerprint, column_id, column_version,
                       *refined->result, /*degraded=*/false);
          return std::move(*refined);
        }
        // Partial-extent reuse: a cached scan of a shorter (pre-append)
        // version of this column serves the prefix; only the appended
        // tail is scanned. The merged block is cached under the current
        // version so the next repeat is an exact hit.
        std::optional<HybridResult> served = TryPrefixTailServe(
            cache, hal, input, *config, fingerprint, column_id,
            snapshot_rows);
        if (served.has_value()) {
          OfferToCache(cache, fingerprint, column_id, column_version,
                       *served->result, /*degraded=*/false);
          return std::move(*served);
        }
      }
    }
    // A pinned host backend (DOPPIO_FORCE_BACKEND=scalar|simd) runs the
    // compiled program through the kernel-backend registry instead of
    // offloading — same program, bit-identical results.
    const std::optional<BackendId> forced = ForcedBackend();
    if (forced == BackendId::kCpuScalar || forced == BackendId::kCpuSimd) {
      DOPPIO_ASSIGN_OR_RETURN(
          HudfResult host,
          RegexpHost(hal->device_config(), input, pattern, options));
      out.result = std::move(host.result);
      out.stats = std::move(host.stats);
      if (cache != nullptr && !fingerprint.empty() && out.result != nullptr) {
        OfferToCache(cache, fingerprint, column_id, column_version,
                     *out.result, out.stats.fallback_rows > 0);
      }
      return out;
    }
    Result<HudfResult> hw = offload(pattern);
    if (!hw.ok()) {
      // The HUDF degrades per-slice internally; an error surfacing here
      // that is still fallback-eligible (e.g. the device rejects the job
      // outright) degrades the whole operator to software.
      if (!IsFallbackEligible(hw.status())) return hw.status();
      DOPPIO_ASSIGN_OR_RETURN(out,
                              RunSoftwareScan(input, pattern, options));
      out.strategy = plan.strategy;
      out.stats.strategy = "fpga+sw_fallback";
      return out;
    }
    out.result = std::move(hw->result);
    out.stats = hw->stats;
    // A gated offload already passed through the scheduler, whose own
    // MaybeCacheResult pass inserts the block; only the direct-submit
    // path caches here.
    if (cache != nullptr && gate == nullptr && !fingerprint.empty() &&
        out.result != nullptr) {
      OfferToCache(cache, fingerprint, column_id, column_version,
                   *out.result, out.stats.fallback_rows > 0);
    }
    return out;
  }

  if (plan.strategy == HybridStrategy::kHybrid) {
    // A cached scan of the prefix replaces the device pre-filter wholesale:
    // the candidate set is identical to what the offload would produce
    // (the completeness guard keeps saturated/degraded scans out of the
    // cache), so the post-process below yields bit-identical results.
    std::string prefix_fingerprint;
    std::shared_ptr<const sched::CachedResultBlock> prefix_block;
    if (cache != nullptr) {
      auto prefix_config = CompileRegexConfig(plan.fpga_pattern,
                                              hal->device_config(), options);
      if (prefix_config.ok()) {
        prefix_fingerprint = FingerprintOf(*prefix_config);
        prefix_block = cache->Get(prefix_fingerprint, column_id,
                                  column_version, snapshot_rows);
        if (prefix_block == nullptr) cache->CountPrefilterReject();
      }
    }

    HudfResult hw;
    if (prefix_block != nullptr) {
      DOPPIO_ASSIGN_OR_RETURN(
          hw.result, BatFromBlock(*prefix_block, hal->bat_allocator()));
      hw.stats.rows_scanned = snapshot_rows;
      hw.stats.rows_matched = prefix_block->rows_matched;
      cache->CountPrefilterUse(snapshot_rows);
    } else {
      // FPGA pre-filter on the prefix.
      Result<HudfResult> hw_attempt = offload(plan.fpga_pattern);
      if (!hw_attempt.ok()) {
        if (!IsFallbackEligible(hw_attempt.status())) {
          return hw_attempt.status();
        }
        // Without the pre-filter the full pattern runs in software.
        DOPPIO_ASSIGN_OR_RETURN(out,
                                RunSoftwareScan(input, pattern, options));
        out.strategy = plan.strategy;
        out.stats.strategy = "fpga+sw_fallback";
        return out;
      }
      hw = std::move(*hw_attempt);
      // Cache the prefix scan now — the post-process below overwrites the
      // candidate block in place. Gated offloads are cached by the
      // scheduler; caching them here too would double-account.
      if (cache != nullptr && gate == nullptr &&
          !prefix_fingerprint.empty() && hw.result != nullptr) {
        OfferToCache(cache, prefix_fingerprint, column_id, column_version,
                     *hw.result, hw.stats.fallback_rows > 0);
      }
    }
    out.stats = hw.stats;
    out.stats.strategy =
        prefix_block != nullptr ? "hybrid+cache_prefilter" : "hybrid";

    // CPU post-processing of the tuples that passed, against the full
    // expression (lazy DFA; the prefix already pruned the bulk).
    Stopwatch cpu_watch;
    DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<DfaMatcher> matcher,
                            DfaMatcher::Compile(pattern, options));
    int64_t matched = 0;
    for (int64_t i = 0; i < hw.result->count(); ++i) {
      int16_t prefilter = hw.result->GetInt16(i);
      if (prefilter == 0) continue;
      ++out.cpu_postprocessed;
      MatchResult m = matcher->Find(input.GetString(i));
      if (!m.matched) {
        reinterpret_cast<int16_t*>(hw.result->mutable_tail_data())[i] = 0;
      } else {
        reinterpret_cast<int16_t*>(hw.result->mutable_tail_data())[i] =
            static_cast<int16_t>(std::min<int32_t>(m.end, 32767));
        ++matched;
      }
    }
    out.stats.udf_software_seconds += cpu_watch.ElapsedSeconds();
    out.stats.rows_matched = matched;
    out.result = std::move(hw.result);
    return out;
  }

  // Pure software fallback.
  DOPPIO_ASSIGN_OR_RETURN(HybridResult sw,
                          RunSoftwareScan(input, pattern, options));
  sw.strategy = plan.strategy;
  return sw;
}

}  // namespace doppio
