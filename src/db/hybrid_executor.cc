#include "db/hybrid_executor.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "hw/config_compiler.h"
#include "obs/metrics.h"
#include "regex/pattern_parser.h"

namespace doppio {

namespace {

obs::Counter& HybridStrategyCounter(HybridStrategy strategy) {
  static obs::Counter* fpga = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_fpga_only", "hybrid plans served fully on FPGA");
  static obs::Counter* split = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_split",
      "hybrid plans split FPGA prefix + CPU postprocess");
  static obs::Counter* software = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hybrid.plans_software_only",
      "hybrid plans served fully in software");
  switch (strategy) {
    case HybridStrategy::kFpgaOnly: return *fpga;
    case HybridStrategy::kHybrid: return *split;
    case HybridStrategy::kSoftwareOnly: break;
  }
  return *software;
}

bool IsDotStarNode(const AstNode& node) {
  return node.kind == AstKind::kRepeat && node.repeat_min == 0 &&
         node.repeat_max == -1 &&
         node.children[0]->kind == AstKind::kCharClass &&
         node.children[0]->char_class == CharSet::AnyChar();
}

// Clones children [0, end) of a concat into a prefix AST.
AstNodePtr ConcatPrefix(const AstNode& concat, size_t end) {
  std::vector<AstNodePtr> parts;
  parts.reserve(end);
  for (size_t i = 0; i < end; ++i) {
    parts.push_back(concat.children[i]->Clone());
  }
  return AstNode::Concat(std::move(parts));
}

// Full-pattern scan on the software matchers (the planner's software
// strategy, and the degradation target when the hardware path fails with
// a fallback-eligible error). Shares the implementation with the
// scheduler's over-capacity CPU route (db/hudf.h).
Result<HybridResult> RunSoftwareScan(const Bat& input,
                                     std::string_view pattern,
                                     const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(HudfResult scan,
                          RunDfaScanInSoftware(input, pattern, options));
  HybridResult out;
  out.result = std::move(scan.result);
  out.stats = std::move(scan.stats);
  return out;
}

}  // namespace

Result<HybridPlan> PlanHybrid(std::string_view pattern,
                              const DeviceConfig& device,
                              const CompileOptions& options) {
  HybridPlan plan;
  plan.full_pattern = std::string(pattern);

  DOPPIO_ASSIGN_OR_RETURN(AnchoredPattern parsed,
                          ParseAnchoredPattern(pattern));
  if (parsed.anchor_start || parsed.anchor_end) {
    // The hardware searches unanchored, and splitting an anchored pattern
    // would change its semantics: software handles it end to end.
    plan.strategy = HybridStrategy::kSoftwareOnly;
    return plan;
  }
  AstNodePtr ast = std::move(parsed.ast);
  auto full = CompileRegexConfig(*ast, device, options);
  if (full.ok()) {
    plan.strategy = HybridStrategy::kFpgaOnly;
    plan.fpga_pattern = plan.full_pattern;
    return plan;
  }
  if (!full.status().IsCapacityExceeded()) return full.status();

  // Split at '.*' boundaries: try the longest prefix first.
  if (ast->kind == AstKind::kConcat) {
    std::vector<size_t> cut_points;  // index of each top-level dot-star
    for (size_t i = 0; i < ast->children.size(); ++i) {
      if (IsDotStarNode(*ast->children[i])) cut_points.push_back(i);
    }
    for (auto it = cut_points.rbegin(); it != cut_points.rend(); ++it) {
      if (*it == 0) continue;  // empty prefix
      AstNodePtr prefix = ConcatPrefix(*ast, *it);
      auto attempt = CompileRegexConfig(*prefix, device, options);
      if (attempt.ok()) {
        plan.strategy = HybridStrategy::kHybrid;
        plan.fpga_pattern = prefix->ToString();
        return plan;
      }
      if (!attempt.status().IsCapacityExceeded()) return attempt.status();
    }
  }
  plan.strategy = HybridStrategy::kSoftwareOnly;
  return plan;
}

Result<HybridResult> ExecuteHybrid(Hal* hal, const Bat& input,
                                   std::string_view pattern,
                                   const CompileOptions& options,
                                   RegexAdmissionGate* gate) {
  Stopwatch total_watch;
  DOPPIO_ASSIGN_OR_RETURN(HybridPlan plan,
                          PlanHybrid(pattern, hal->device_config(), options));

  HybridResult out;
  out.strategy = plan.strategy;
  HybridStrategyCounter(plan.strategy).Add();

  // FPGA offloads go through the admission gate when one is installed;
  // Overloaded rejects are surfaced to the caller (back off, don't
  // degrade), everything else behaves exactly like direct submission.
  auto offload = [&](std::string_view fpga_pattern) {
    return gate != nullptr ? gate->ExecuteRegex(input, fpga_pattern, options)
                           : RegexpFpga(hal, input, fpga_pattern, options);
  };

  if (plan.strategy == HybridStrategy::kFpgaOnly) {
    // A pinned host backend (DOPPIO_FORCE_BACKEND=scalar|simd) runs the
    // compiled program through the kernel-backend registry instead of
    // offloading — same program, bit-identical results.
    const std::optional<BackendId> forced = ForcedBackend();
    if (forced == BackendId::kCpuScalar || forced == BackendId::kCpuSimd) {
      DOPPIO_ASSIGN_OR_RETURN(
          HudfResult host,
          RegexpHost(hal->device_config(), input, pattern, options));
      out.result = std::move(host.result);
      out.stats = std::move(host.stats);
      return out;
    }
    Result<HudfResult> hw = offload(pattern);
    if (!hw.ok()) {
      // The HUDF degrades per-slice internally; an error surfacing here
      // that is still fallback-eligible (e.g. the device rejects the job
      // outright) degrades the whole operator to software.
      if (!IsFallbackEligible(hw.status())) return hw.status();
      DOPPIO_ASSIGN_OR_RETURN(out,
                              RunSoftwareScan(input, pattern, options));
      out.strategy = plan.strategy;
      out.stats.strategy = "fpga+sw_fallback";
      return out;
    }
    out.result = std::move(hw->result);
    out.stats = hw->stats;
    return out;
  }

  if (plan.strategy == HybridStrategy::kHybrid) {
    // FPGA pre-filter on the prefix.
    Result<HudfResult> hw_attempt = offload(plan.fpga_pattern);
    if (!hw_attempt.ok()) {
      if (!IsFallbackEligible(hw_attempt.status())) {
        return hw_attempt.status();
      }
      // Without the pre-filter the full pattern runs in software.
      DOPPIO_ASSIGN_OR_RETURN(out,
                              RunSoftwareScan(input, pattern, options));
      out.strategy = plan.strategy;
      out.stats.strategy = "fpga+sw_fallback";
      return out;
    }
    HudfResult hw = std::move(*hw_attempt);
    out.stats = hw.stats;
    out.stats.strategy = "hybrid";

    // CPU post-processing of the tuples that passed, against the full
    // expression (lazy DFA; the prefix already pruned the bulk).
    Stopwatch cpu_watch;
    DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<DfaMatcher> matcher,
                            DfaMatcher::Compile(pattern, options));
    int64_t matched = 0;
    for (int64_t i = 0; i < input.count(); ++i) {
      int16_t prefilter = hw.result->GetInt16(i);
      if (prefilter == 0) continue;
      ++out.cpu_postprocessed;
      MatchResult m = matcher->Find(input.GetString(i));
      if (!m.matched) {
        reinterpret_cast<int16_t*>(hw.result->mutable_tail_data())[i] = 0;
      } else {
        reinterpret_cast<int16_t*>(hw.result->mutable_tail_data())[i] =
            static_cast<int16_t>(std::min<int32_t>(m.end, 32767));
        ++matched;
      }
    }
    out.stats.udf_software_seconds += cpu_watch.ElapsedSeconds();
    out.stats.rows_matched = matched;
    out.result = std::move(hw.result);
    return out;
  }

  // Pure software fallback.
  DOPPIO_ASSIGN_OR_RETURN(HybridResult sw,
                          RunSoftwareScan(input, pattern, options));
  sw.strategy = plan.strategy;
  return sw;
}

}  // namespace doppio
