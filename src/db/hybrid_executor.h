// Hybrid CPU-FPGA execution (paper §6.4, §7.8).
//
// When a pattern needs more character matchers or states than the deployed
// PU provides, it is split at a '.*' wildcard: the longest prefix that fits
// runs on the FPGA as a pre-filter, and only the matching tuples are
// post-processed on the CPU against the full expression. If no prefix
// fits, execution falls back to pure software.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "bat/bat.h"
#include "common/status.h"
#include "db/engine_stats.h"
#include "db/hudf.h"
#include "hal/hal.h"
#include "regex/dfa_matcher.h"
#include "regex/pattern_ast.h"

namespace doppio {

enum class HybridStrategy { kFpgaOnly, kHybrid, kSoftwareOnly };

struct HybridPlan {
  HybridStrategy strategy = HybridStrategy::kSoftwareOnly;
  /// The prefix offloaded to the FPGA (kHybrid/kFpgaOnly).
  std::string fpga_pattern;
  /// Elements of the full pattern (always post-processed for kHybrid).
  std::string full_pattern;
};

/// Decides how to execute `pattern` on the given deployment.
Result<HybridPlan> PlanHybrid(std::string_view pattern,
                              const DeviceConfig& device,
                              const CompileOptions& options = {});

struct HybridResult {
  /// Boolean-ish short column: nonzero = the full pattern matches.
  std::unique_ptr<Bat> result;
  QueryStats stats;
  HybridStrategy strategy = HybridStrategy::kSoftwareOnly;
  /// Tuples the FPGA pre-filter passed on to the CPU (kHybrid).
  int64_t cpu_postprocessed = 0;
};

/// Executes a pattern with automatic FPGA/hybrid/software selection.
///
/// When `gate` is non-null, every FPGA offload (the kFpgaOnly pattern and
/// the kHybrid pre-filter prefix) is admitted through it instead of being
/// submitted straight at the device — the multi-tenant scheduler
/// (src/sched) implements the gate with session quotas, fair sharing and
/// cross-query batching. A null gate is the paper's direct-submit path.
Result<HybridResult> ExecuteHybrid(Hal* hal, const Bat& input,
                                   std::string_view pattern,
                                   const CompileOptions& options = {},
                                   RegexAdmissionGate* gate = nullptr);

}  // namespace doppio
