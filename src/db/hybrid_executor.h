// Hybrid CPU-FPGA execution (paper §6.4, §7.8).
//
// When a pattern needs more character matchers or states than the deployed
// PU provides, it is split at a '.*' wildcard: the longest prefix that fits
// runs on the FPGA as a pre-filter, and only the matching tuples are
// post-processed on the CPU against the full expression. If no prefix
// fits, execution falls back to pure software.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "bat/bat.h"
#include "common/status.h"
#include "db/engine_stats.h"
#include "db/hudf.h"
#include "hal/hal.h"
#include "regex/dfa_matcher.h"
#include "regex/pattern_ast.h"

namespace doppio {
namespace sched {
class ResultCache;
}  // namespace sched

enum class HybridStrategy { kFpgaOnly, kHybrid, kSoftwareOnly };

struct HybridPlan {
  HybridStrategy strategy = HybridStrategy::kSoftwareOnly;
  /// The prefix offloaded to the FPGA (kHybrid/kFpgaOnly).
  std::string fpga_pattern;
  /// Elements of the full pattern (always post-processed for kHybrid).
  std::string full_pattern;
};

/// Decides how to execute `pattern` on the given deployment.
Result<HybridPlan> PlanHybrid(std::string_view pattern,
                              const DeviceConfig& device,
                              const CompileOptions& options = {});

struct HybridResult {
  /// Boolean-ish short column: nonzero = the full pattern matches.
  std::unique_ptr<Bat> result;
  QueryStats stats;
  HybridStrategy strategy = HybridStrategy::kSoftwareOnly;
  /// Tuples the FPGA pre-filter passed on to the CPU (kHybrid).
  int64_t cpu_postprocessed = 0;
};

/// Executes a pattern with automatic FPGA/hybrid/software selection.
///
/// When `gate` is non-null, every FPGA offload (the kFpgaOnly pattern and
/// the kHybrid pre-filter prefix) is admitted through it instead of being
/// submitted straight at the device — the multi-tenant scheduler
/// (src/sched) implements the gate with session quotas, fair sharing and
/// cross-query batching. A null gate is the paper's direct-submit path.
///
/// When `cache` is non-null (docs/RESULT_CACHE.md), the executor consults
/// the versioned match-result cache against the column's admission
/// snapshot (id, version, row count):
///  * kFpgaOnly — an exact (fingerprint, column, version) hit is served
///    straight from the cached block ("fpga-cache"); otherwise a cached
///    scan of a '.*'-cut prefix of the pattern subsumes it as a complete
///    candidate set, and the full program refines only candidate rows on
///    the host backend ("fpga+cache_prefilter", bit-identical to a full
///    device scan by construction).
///  * kHybrid — a cached prefix scan replaces the device pre-filter
///    entirely ("hybrid+cache_prefilter"); the CPU post-process is
///    unchanged.
/// Completed device-semantics scans are offered back to the cache when
/// gate == nullptr (a gated offload is cached by the scheduler itself).
/// A null cache is the paper's every-query-rescans path.
Result<HybridResult> ExecuteHybrid(Hal* hal, const Bat& input,
                                   std::string_view pattern,
                                   const CompileOptions& options = {},
                                   RegexAdmissionGate* gate = nullptr,
                                   sched::ResultCache* cache = nullptr);

}  // namespace doppio
