// Column-store engine standing in for MonetDB (paper §2.3, §7.1).
//
// Matches the integration-relevant behaviour of the real system:
//  * tables are collections of BATs; string columns use offset+heap;
//  * operators are BAT-at-a-time and fully materialize intermediates;
//  * a query's string predicate is served by one of the strategies the
//    paper compares — LIKE fast path, PCRE-style REGEXP_LIKE, CONTAINS
//    over a pre-built inverted index, or the REGEXP_FPGA HUDF;
//  * intra-operator parallelism partitions the input horizontally across
//    `num_threads` (10 on the paper's machine); `sequential_pipe` disables
//    it, as the paper does for the modified MonetDB build.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bat/table.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/engine_stats.h"
#include "hal/hal.h"
#include "text/inverted_index.h"

namespace doppio {

namespace sched {
class ResultCache;
}  // namespace sched

/// A string predicate as it appears in a WHERE clause.
struct StringFilterSpec {
  enum class Op {
    kLike,        // LIKE / ILIKE (fast substring path where possible)
    kRegexpLike,  // REGEXP_LIKE via PCRE-style backtracking
    kRegexpFpga,  // REGEXP_FPGA HUDF (needs a HAL)
    kHybrid,      // REGEXP_FPGA with automatic hybrid fallback
    kContains,    // CONTAINS over the inverted index
    kAuto,        // cost-model-driven choice among the above (see
                  // db/cost_model.h — the optimizer capability §9 wants)
  };
  Op op = Op::kLike;
  std::string pattern;
  bool case_insensitive = false;
  bool negated = false;
};

class ColumnStoreEngine {
 public:
  struct Options {
    int num_threads = 10;
    bool sequential_pipe = false;
    /// When set, REGEXP_FPGA is available and BATs should be allocated
    /// from the HAL's shared-memory allocator.
    Hal* hal = nullptr;
    /// Optional versioned match-result cache (docs/RESULT_CACHE.md). The
    /// hybrid strategy reuses cached pre-filters through it, and ingest
    /// (AppendToColumn) invalidates the mutated column explicitly. Null =
    /// exact pre-cache behaviour.
    sched::ResultCache* result_cache = nullptr;
  };

  explicit ColumnStoreEngine(const Options& options);
  ~ColumnStoreEngine();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ColumnStoreEngine);

  Catalog* catalog() { return &catalog_; }
  ThreadPool* pool() { return pool_.get(); }
  Hal* hal() const { return options_.hal; }
  const Options& options() const { return options_; }

  /// Allocator for new BATs: the HAL's shared allocator when available
  /// (every BAT in FPGA-visible memory, §4.2.1), else malloc.
  BufferAllocator* allocator() const;

  /// Evaluates a string predicate over a column; returns one byte per row
  /// (1 = row satisfies the predicate, after negation is applied).
  Result<std::vector<uint8_t>> EvalStringFilter(const Bat& column,
                                                const StringFilterSpec& spec,
                                                QueryStats* stats);

  /// Streaming-ingest helper: appends `values` to table.column. Every
  /// append bumps the column's content version (Bat::version), so
  /// snapshot-keyed result caches stop serving pre-append entries; when a
  /// result cache is attached (Options::result_cache) the column is also
  /// invalidated explicitly, freeing its budget immediately. Returns the
  /// column's post-append version. Callers must serialize ingest against
  /// in-flight scans of the same column (the BAT may reallocate).
  Result<uint64_t> AppendToColumn(const std::string& table,
                                  const std::string& column,
                                  const std::vector<std::string>& values);

  /// Builds (or rebuilds) the CONTAINS index for table.column.
  Status BuildContainsIndex(const std::string& table,
                            const std::string& column);
  const InvertedIndex* contains_index(const Bat* column) const;

  /// Effective partition count for intra-operator parallelism.
  int partitions() const {
    return options_.sequential_pipe ? 1 : options_.num_threads;
  }

  /// The engine's operator cost model (calibrated lazily on first use).
  const class OperatorCostModel& cost_model();

 private:
  Result<std::vector<uint8_t>> EvalLike(const Bat& column,
                                        const StringFilterSpec& spec);
  Result<std::vector<uint8_t>> EvalRegexp(const Bat& column,
                                          const StringFilterSpec& spec);
  Result<std::vector<uint8_t>> EvalFpga(const Bat& column,
                                        const StringFilterSpec& spec,
                                        QueryStats* stats);
  Result<std::vector<uint8_t>> EvalContains(const Bat& column,
                                            const StringFilterSpec& spec);

  /// Runs `fn(first_row, end_row, partition)` across partitions.
  void ParallelOverRows(int64_t num_rows,
                        const std::function<void(int64_t, int64_t, int)>& fn);

  Options options_;
  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<const Bat*, std::unique_ptr<InvertedIndex>> contains_indexes_;
  std::unique_ptr<class OperatorCostModel> cost_model_;
};

}  // namespace doppio
