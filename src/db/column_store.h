// Column-store engine standing in for MonetDB (paper §2.3, §7.1).
//
// Matches the integration-relevant behaviour of the real system:
//  * tables are collections of BATs; string columns use offset+heap;
//  * operators are BAT-at-a-time and fully materialize intermediates;
//  * a query's string predicate is served by one of the strategies the
//    paper compares — LIKE fast path, PCRE-style REGEXP_LIKE, CONTAINS
//    over a pre-built inverted index, or the REGEXP_FPGA HUDF;
//  * intra-operator parallelism partitions the input horizontally across
//    `num_threads` (10 on the paper's machine); `sequential_pipe` disables
//    it, as the paper does for the modified MonetDB build.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bat/table.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/engine_stats.h"
#include "hal/hal.h"
#include "store/pager.h"
#include "store/segmented_column.h"
#include "text/inverted_index.h"

namespace doppio {

namespace sched {
class ResultCache;
}  // namespace sched

/// A string predicate as it appears in a WHERE clause.
struct StringFilterSpec {
  enum class Op {
    kLike,        // LIKE / ILIKE (fast substring path where possible)
    kRegexpLike,  // REGEXP_LIKE via PCRE-style backtracking
    kRegexpFpga,  // REGEXP_FPGA HUDF (needs a HAL)
    kHybrid,      // REGEXP_FPGA with automatic hybrid fallback
    kContains,    // CONTAINS over the inverted index
    kAuto,        // cost-model-driven choice among the above (see
                  // db/cost_model.h — the optimizer capability §9 wants)
  };
  Op op = Op::kLike;
  std::string pattern;
  bool case_insensitive = false;
  bool negated = false;
};

class ColumnStoreEngine {
 public:
  struct Options {
    int num_threads = 10;
    bool sequential_pipe = false;
    /// When set, REGEXP_FPGA is available and BATs should be allocated
    /// from the HAL's shared-memory allocator.
    Hal* hal = nullptr;
    /// Optional versioned match-result cache (docs/RESULT_CACHE.md). The
    /// hybrid strategy reuses cached pre-filters through it, and ingest
    /// (AppendToColumn) invalidates the mutated column explicitly. Null =
    /// exact pre-cache behaviour.
    sched::ResultCache* result_cache = nullptr;
    /// Byte budget for the out-of-core pager's resident working set
    /// (segmented columns only; docs/STORAGE.md). 0 = pager default.
    int64_t pager_budget_bytes = 0;
    /// Target sealed-segment payload size for segmented columns.
    /// 0 = one shared-arena page (2 MiB).
    int64_t segment_target_bytes = 0;
  };

  explicit ColumnStoreEngine(const Options& options);
  ~ColumnStoreEngine();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ColumnStoreEngine);

  Catalog* catalog() { return &catalog_; }
  ThreadPool* pool() { return pool_.get(); }
  Hal* hal() const { return options_.hal; }
  const Options& options() const { return options_; }

  /// Allocator for new BATs: the HAL's shared allocator when available
  /// (every BAT in FPGA-visible memory, §4.2.1), else malloc.
  BufferAllocator* allocator() const;

  /// Evaluates a string predicate over a column; returns one byte per row
  /// (1 = row satisfies the predicate, after negation is applied). Holds
  /// the column's epoch guard in read mode for the duration of the scan;
  /// a concurrent AppendToColumn on the same column observes the guard
  /// and fails with Overloaded instead of reallocating the BAT under the
  /// scan. A scan arriving while an append holds the guard fails the same
  /// way (both are retryable).
  Result<std::vector<uint8_t>> EvalStringFilter(const Bat& column,
                                                const StringFilterSpec& spec,
                                                QueryStats* stats);

  /// Streaming-ingest helper: appends `values` to table.column. Every
  /// append bumps the column's content version (Bat::version), so
  /// snapshot-keyed result caches stop serving pre-append entries; when a
  /// result cache is attached (Options::result_cache) the column is also
  /// invalidated explicitly, freeing its budget immediately. Returns the
  /// column's post-append version. Ingest is serialized against in-flight
  /// scans by the column's epoch guard: an append racing a scan of the
  /// same column returns Overloaded (typed, retryable) instead of
  /// reallocating the BAT under it. Segmented columns (AppendToSegmented)
  /// do not need the guard — scans there run over immutable sealed
  /// snapshots.
  Result<uint64_t> AppendToColumn(const std::string& table,
                                  const std::string& column,
                                  const std::vector<std::string>& values);

  // ---- Out-of-core segmented columns (src/store, docs/STORAGE.md) ----

  /// The engine's segment pager, lazily constructed over the HAL arena
  /// with Options::pager_budget_bytes. Null when the engine has no HAL.
  Pager* pager();

  /// Registers an out-of-core segmented string column named
  /// `table.column`. Segmented columns live beside the resident BAT
  /// catalog: rows arrive through AppendToSegmented, seal into immutable
  /// spill-backed segments, and are scanned by streaming windows through
  /// the device (EvalSegmentedFilter). Requires a HAL.
  Status CreateSegmentedColumn(const std::string& table,
                               const std::string& column);

  /// Looks up a segmented column registered by CreateSegmentedColumn.
  SegmentedColumn* segmented_column(const std::string& table,
                                    const std::string& column);

  /// Streaming ingest into a segmented column. Visibility is
  /// segment-granular: rows become scannable when their segment seals
  /// (automatically at the segment-size target, or immediately when
  /// `seal` is set). Scans snapshot the sealed chain, so ingest never
  /// conflicts with an in-flight scan — no epoch guard, no Overloaded.
  /// Sealed segments are immutable with stable (id, version) identity,
  /// so cached per-segment result blocks survive the append (nothing to
  /// invalidate). Returns the column's post-append version.
  Result<uint64_t> AppendToSegmented(const std::string& table,
                                     const std::string& column,
                                     const std::vector<std::string>& values,
                                     bool seal = false);

  /// Evaluates a string predicate over a segmented column's sealed
  /// snapshot via the double-buffered streaming executor. Returns one
  /// byte per sealed row, bit-identical to EvalStringFilter over a
  /// resident BAT holding the same strings. Only the FPGA strategies
  /// stream (kRegexpFpga / kHybrid / kAuto all route there).
  Result<std::vector<uint8_t>> EvalSegmentedFilter(
      const std::string& table, const std::string& column,
      const StringFilterSpec& spec, QueryStats* stats);

  /// Builds (or rebuilds) the CONTAINS index for table.column.
  Status BuildContainsIndex(const std::string& table,
                            const std::string& column);
  const InvertedIndex* contains_index(const Bat* column) const;

  /// Effective partition count for intra-operator parallelism.
  int partitions() const {
    return options_.sequential_pipe ? 1 : options_.num_threads;
  }

  /// The engine's operator cost model (calibrated lazily on first use).
  const class OperatorCostModel& cost_model();

 private:
  /// Ingest/query epoch guard for one resident column (keyed by Bat id).
  /// A Dekker-style try-rwlock: scans take the read side, AppendToColumn
  /// the write side, and a conflict returns false (mapped to Overloaded)
  /// instead of blocking — sequential consistency guarantees at least one
  /// of two racing sides observes the other.
  struct ColumnEpochGuard {
    std::atomic<int32_t> readers{0};
    std::atomic<bool> writer{false};
    bool TryBeginRead();
    void EndRead();
    bool TryBeginWrite();
    void EndWrite();
  };
  ColumnEpochGuard* EpochGuardFor(uint64_t column_id);

  Result<std::vector<uint8_t>> EvalLike(const Bat& column,
                                        const StringFilterSpec& spec);
  Result<std::vector<uint8_t>> EvalRegexp(const Bat& column,
                                          const StringFilterSpec& spec);
  Result<std::vector<uint8_t>> EvalFpga(const Bat& column,
                                        const StringFilterSpec& spec,
                                        QueryStats* stats);
  Result<std::vector<uint8_t>> EvalContains(const Bat& column,
                                            const StringFilterSpec& spec);

  /// Runs `fn(first_row, end_row, partition)` across partitions.
  void ParallelOverRows(int64_t num_rows,
                        const std::function<void(int64_t, int64_t, int)>& fn);

  Options options_;
  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<const Bat*, std::unique_ptr<InvertedIndex>> contains_indexes_;
  std::unique_ptr<class OperatorCostModel> cost_model_;

  std::mutex epoch_mutex_;  // guards the guard map, not the guards
  std::map<uint64_t, std::unique_ptr<ColumnEpochGuard>> epoch_guards_;

  std::mutex segmented_mutex_;  // guards pager_ construction + registry
  std::unique_ptr<Pager> pager_;
  std::map<std::string, std::unique_ptr<SegmentedColumn>> segmented_;
};

}  // namespace doppio
