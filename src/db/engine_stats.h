// Per-query timing breakdown (paper Fig. 10): time spent in the database
// proper, in the UDF's software part, generating the configuration vector,
// in the HAL, and in the hardware execution itself.
//
// Software phases are host wall-clock; the hardware phase is virtual
// (simulated) time.
#pragma once

#include <cstdint>
#include <string>

namespace doppio {

struct QueryStats {
  // Phase breakdown, seconds.
  double database_seconds = 0;    // everything but the UDF
  double udf_software_seconds = 0;  // UDF overhead minus the parts below
  double config_gen_seconds = 0;  // pattern -> configuration vector
  double hal_seconds = 0;         // job creation/bookkeeping in the HAL
  double hw_seconds = 0;          // virtual time on the FPGA (queue+exec)

  /// Host time spent *running the simulator* (busy-wait draining virtual
  /// events). A measurement artifact: excluded from every phase and from
  /// TotalSeconds(), tracked so callers can reconcile wall clocks.
  double sim_host_seconds = 0;

  // Volume.
  int64_t rows_scanned = 0;
  int64_t rows_matched = 0;

  // Fault-tolerance accounting (all zero on a fault-free run; only then
  // are they printed, so baseline figure output is unchanged).
  int32_t job_retries = 0;      // job resubmissions across all slices
  int32_t faults_recovered = 0; // jobs that saw a fault but still completed
  int64_t fallback_rows = 0;    // rows re-matched in software after the
                                // hardware path gave up

  /// Which execution strategy served the string predicate.
  std::string strategy;

  /// Which compiled PU kernel the hardware path's functional pass used
  /// ("literal" / "lazy-dfa" / "nfa-loop"), and its host-side throughput.
  /// Simulator observability — orthogonal to the virtual-time phases.
  std::string pu_kernel;
  int64_t functional_bytes = 0;
  double functional_seconds = 0;

  /// Functional-pass host throughput in MB/s (0 when unmeasured).
  double FunctionalMbps() const {
    return functional_seconds > 0
               ? static_cast<double>(functional_bytes) / 1e6 /
                     functional_seconds
               : 0;
  }

  double TotalSeconds() const {
    return database_seconds + udf_software_seconds + config_gen_seconds +
           hal_seconds + hw_seconds;
  }

  std::string ToString() const;

  /// Accumulates phase times and volumes (for multi-operator queries).
  void Accumulate(const QueryStats& other);
};

}  // namespace doppio
