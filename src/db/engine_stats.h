// Per-query timing breakdown (paper Fig. 10): time spent in the database
// proper, in the UDF's software part, generating the configuration vector,
// in the HAL, and in the hardware execution itself.
//
// Software phases are host wall-clock; the hardware phase is virtual
// (simulated) time.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace doppio {

struct QueryStats {
  // Phase breakdown, seconds.
  double database_seconds = 0;    // everything but the UDF
  double udf_software_seconds = 0;  // UDF overhead minus the parts below
  double config_gen_seconds = 0;  // pattern -> configuration vector
  double hal_seconds = 0;         // job creation/bookkeeping in the HAL
  double hw_seconds = 0;          // virtual time on the FPGA (queue+exec)

  /// Host time spent *running the simulator* (busy-wait draining virtual
  /// events). A measurement artifact: excluded from every phase and from
  /// TotalSeconds(), tracked so callers can reconcile wall clocks.
  double sim_host_seconds = 0;

  // Volume.
  int64_t rows_scanned = 0;
  int64_t rows_matched = 0;

  // Fault-tolerance accounting (all zero on a fault-free run; only then
  // are they printed, so baseline figure output is unchanged).
  int32_t job_retries = 0;      // job resubmissions across all slices
  int32_t faults_recovered = 0; // jobs that saw a fault but still completed
  int64_t fallback_rows = 0;    // rows re-matched in software after the
                                // hardware path gave up

  // Out-of-core streaming accounting (store/stream_executor; zero on the
  // resident path, so baseline figure output is unchanged).
  int32_t windows_streamed = 0;   // segment windows scanned by this query
  double page_in_seconds = 0;     // modeled QPI time paying segment faults

  /// Which execution strategy served the string predicate.
  std::string strategy;

  /// Which compiled PU kernel the hardware path's functional pass used
  /// ("literal" / "lazy-dfa" / "nfa-loop"), and its host-side throughput.
  /// Simulator observability — orthogonal to the virtual-time phases.
  std::string pu_kernel;
  int64_t functional_bytes = 0;
  double functional_seconds = 0;

  /// Per-query span handle into obs::Tracer (kInvalidTraceId / 0 when
  /// tracing is off). Lets callers pull the trace's virtual extent or
  /// job count for the query that produced these stats.
  uint64_t trace_id = 0;

  /// Functional-pass host throughput in MB/s. 0 when unmeasured, and 0
  /// (never inf/NaN) for zero-byte or zero-duration runs — this value is
  /// serialized into JSON, where non-finite numbers are invalid.
  double FunctionalMbps() const {
    if (functional_seconds <= 0) return 0;
    const double mbps = static_cast<double>(functional_bytes) / 1e6 /
                        functional_seconds;
    return std::isfinite(mbps) ? mbps : 0;
  }

  /// Returns every field to its just-constructed state. Call at query
  /// start: QueryStats objects are reused across queries on a session,
  /// and without an explicit reset the fault-tolerance counters
  /// (job_retries, faults_recovered, fallback_rows) and kernel fields
  /// carry over from the previous query.
  void Reset() { *this = QueryStats(); }

  double TotalSeconds() const {
    return database_seconds + udf_software_seconds + config_gen_seconds +
           hal_seconds + hw_seconds;
  }

  std::string ToString() const;

  /// Accumulates phase times and volumes (for multi-operator queries).
  void Accumulate(const QueryStats& other);
};

}  // namespace doppio
