#include "db/cost_model.h"

#include <algorithm>

#include "common/random.h"
#include "common/stopwatch.h"
#include "db/hybrid_executor.h"
#include "hw/config_compiler.h"
#include "hw/perf_model.h"
#include "hw/pu_kernel.h"
#include "regex/backtrack_matcher.h"
#include "regex/bitparallel.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/pattern_parser.h"
#include "regex/substring_search.h"

namespace doppio {

OperatorCostModel::Calibration OperatorCostModel::Measure(int cpu_cores) {
  Calibration cal;
  cal.cpu_cores = cpu_cores;

  // Synthetic corpus: a few hundred KB of address-like text.
  Rng rng(123);
  std::vector<std::string> corpus;
  int64_t bytes = 0;
  while (bytes < 400'000) {
    corpus.push_back(rng.FromAlphabet(
        "abcdefghijklmnopqrstuvwxyz|0123456789 ", 64));
    bytes += 64;
  }

  {
    BoyerMooreMatcher bm("Strasse");
    Stopwatch watch;
    size_t sink = 0;
    for (const auto& s : corpus) sink += bm.Find(s) != std::string::npos;
    cal.like_bytes_per_sec =
        static_cast<double>(bytes) / std::max(1e-9, watch.ElapsedSeconds());
    (void)sink;
  }
  {
    auto dfa = DfaMatcher::Compile("(st|ra).*(s[0-9]e)");
    Stopwatch watch;
    size_t sink = 0;
    for (const auto& s : corpus) sink += (*dfa)->Matches(s);
    cal.dfa_bytes_per_sec =
        static_cast<double>(bytes) / std::max(1e-9, watch.ElapsedSeconds());
    (void)sink;
  }
  {
    // Bit-parallel SIMD backend over a word-sized automaton stage
    // ("s[0-9]e"-shaped: rare anchor byte + mask verification).
    TokenNfa nfa;
    HwToken token;
    token.chain.push_back(CharSpec{false, {{'s', 's'}}});
    token.chain.push_back(CharSpec{false, {{'0', '9'}}});
    token.chain.push_back(CharSpec{false, {{'e', 'e'}}});
    nfa.tokens.push_back(std::move(token));
    HwState state;
    state.trigger_tokens = {0};
    state.accept = true;
    nfa.states.push_back(std::move(state));
    std::optional<BitParallelProgram> bp = BitParallelProgram::Compile(nfa);
    Stopwatch watch;
    size_t sink = 0;
    for (const auto& s : corpus) sink += bp->Find(s) != 0;
    cal.simd_bytes_per_sec =
        static_cast<double>(bytes) / std::max(1e-9, watch.ElapsedSeconds());
    (void)sink;
  }
  {
    // Scalar regex path: compile + match per tuple.
    Stopwatch watch;
    size_t sink = 0;
    const int kSamples = 500;
    for (int i = 0; i < kSamples; ++i) {
      auto matcher =
          BacktrackMatcher::Compile("(st|ra).*(s[0-9]e)");
      sink += (*matcher)->Matches(corpus[static_cast<size_t>(i) %
                                         corpus.size()]);
    }
    cal.regexp_tuple_seconds = watch.ElapsedSeconds() / kSamples;
    (void)sink;
  }
  return cal;
}

OperatorCostModel::OperatorCostModel(const DeviceConfig& device,
                                     Calibration calibration)
    : device_(device), calibration_(calibration) {}

double OperatorCostModel::PredictLike(const TableStats& stats) const {
  return static_cast<double>(stats.heap_bytes) /
         (calibration_.like_bytes_per_sec *
          static_cast<double>(calibration_.cpu_cores));
}

double OperatorCostModel::PredictRegexpLike(const TableStats& stats) const {
  return static_cast<double>(stats.rows) * calibration_.regexp_tuple_seconds /
         static_cast<double>(calibration_.cpu_cores);
}

Result<double> OperatorCostModel::PredictFpga(const std::string& pattern,
                                              const TableStats& stats) const {
  // Confirms the pattern maps onto the deployed geometry.
  DOPPIO_RETURN_NOT_OK(
      CompileRegexConfig(pattern, device_).status());
  PerfEstimate est =
      EstimateJob(device_, stats.rows, stats.heap_bytes, /*engines=*/1);
  return est.seconds;
}

Result<double> OperatorCostModel::PredictFpgaStreamed(
    const std::string& pattern, const TableStats& stats, int windows,
    int64_t resident_bytes, bool overlap) const {
  DOPPIO_RETURN_NOT_OK(CompileRegexConfig(pattern, device_).status());
  if (windows <= 0) windows = 1;
  PerfEstimate est =
      EstimateJob(device_, stats.rows, stats.heap_bytes, /*engines=*/1);
  // Payload = offsets + heap, exactly what the pager moves per window.
  const int64_t payload =
      stats.rows * 4 + stats.heap_bytes;
  const int64_t paged = std::max<int64_t>(0, payload - resident_bytes);
  const double d_w = est.seconds / static_cast<double>(windows);
  const double t_w =
      paged > 0 ? TransferSeconds(device_, paged / windows) : 0.0;
  if (!overlap) {
    return est.seconds + t_w * static_cast<double>(windows);
  }
  // Uniform-window closed form of the double-buffering recurrence: the
  // first transfer and last execution are exposed, every other window
  // hides the smaller of (transfer, execute) behind the larger.
  return t_w + d_w +
         static_cast<double>(windows - 1) * std::max(t_w, d_w);
}

Result<double> OperatorCostModel::PredictHybrid(
    const std::string& pattern, const TableStats& stats,
    double prefix_selectivity) const {
  DOPPIO_ASSIGN_OR_RETURN(HybridPlan plan, PlanHybrid(pattern, device_));
  if (plan.strategy == HybridStrategy::kSoftwareOnly) {
    // Automaton pass over everything.
    return static_cast<double>(stats.heap_bytes) /
           (calibration_.dfa_bytes_per_sec *
            static_cast<double>(calibration_.cpu_cores));
  }
  PerfEstimate est =
      EstimateJob(device_, stats.rows, stats.heap_bytes, /*engines=*/1);
  if (plan.strategy == HybridStrategy::kFpgaOnly) return est.seconds;
  const double postprocess =
      prefix_selectivity * static_cast<double>(stats.heap_bytes) /
      (calibration_.dfa_bytes_per_sec *
       static_cast<double>(calibration_.cpu_cores));
  return est.seconds + postprocess;
}

Result<OperatorCostModel::HostPrediction> OperatorCostModel::PredictHostProgram(
    const std::string& pattern, const TableStats& stats) const {
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          CompileRegexConfig(pattern, device_));
  DOPPIO_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledPuProgram> program,
      CompiledPuProgram::Compile(config.vector, device_));

  HostPrediction out;
  out.backend = BackendRegistry::Global().ChooseHost(*program).id();
  double bytes_per_sec = calibration_.dfa_bytes_per_sec;
  if (out.backend == BackendId::kCpuSimd &&
      calibration_.simd_bytes_per_sec > 0) {
    bytes_per_sec = calibration_.simd_bytes_per_sec;
  } else if (program->kernel() == PuKernelKind::kLiteral &&
             calibration_.like_bytes_per_sec > 0) {
    bytes_per_sec = calibration_.like_bytes_per_sec;
  }
  if (bytes_per_sec <= 0) {
    return Status::Internal("cost model is not calibrated");
  }
  // One pool worker runs the slice: no core scaling here.
  out.seconds = static_cast<double>(stats.heap_bytes) / bytes_per_sec;
  return out;
}

namespace {

// If `ast` is literals glued only by '.*' — i.e. an ordered multi-
// substring search — returns the equivalent LIKE pattern (%s1%s2%...%).
bool RegexAsLikePattern(const AstNode& ast, std::string* like_pattern) {
  std::vector<const AstNode*> parts;
  if (ast.kind == AstKind::kLiteral) {
    parts.push_back(&ast);
  } else if (ast.kind == AstKind::kConcat) {
    for (const auto& child : ast.children) parts.push_back(child.get());
  } else {
    return false;
  }
  std::string out = "%";
  bool any_literal = false;
  for (const AstNode* part : parts) {
    if (part->kind == AstKind::kLiteral) {
      for (char c : part->literal) {
        if (c == '%' || c == '_' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('%');
      any_literal = true;
      continue;
    }
    bool is_dot_star = part->kind == AstKind::kRepeat &&
                       part->repeat_min == 0 && part->repeat_max == -1 &&
                       part->children[0]->kind == AstKind::kCharClass &&
                       part->children[0]->char_class == CharSet::AnyChar();
    if (!is_dot_star) return false;
    // '.*' between literals is already implied by the '%' separators.
  }
  if (!any_literal) return false;
  *like_pattern = out;
  return true;
}

}  // namespace

OperatorCostModel::Choice OperatorCostModel::Choose(
    const StringFilterSpec& spec, const TableStats& stats,
    bool fpga_available) const {
  // Determine the regex-dialect pattern, and whether the substring fast
  // path applies (with the pattern it would need).
  std::string pattern = spec.pattern;
  bool like_fast_path = false;
  std::string like_pattern;

  if (spec.op == StringFilterSpec::Op::kLike) {
    auto like = TranslateLike(spec.pattern);
    if (like.ok()) {
      pattern = like->regex;
      if (!like->anchored_start && !like->anchored_end &&
          like->is_multi_substring && !spec.case_insensitive) {
        like_fast_path = true;
        like_pattern = spec.pattern;  // already in LIKE syntax
      }
    }
  } else if (!spec.case_insensitive) {
    auto ast = ParsePattern(spec.pattern);
    if (ast.ok() && RegexAsLikePattern(**ast, &like_pattern)) {
      like_fast_path = true;
    }
  }

  Choice best;
  best.op = StringFilterSpec::Op::kRegexpLike;
  best.predicted_seconds = PredictRegexpLike(stats);
  best.reason = "scalar regex baseline";

  if (like_fast_path) {
    double seconds = PredictLike(stats);
    if (seconds < best.predicted_seconds) {
      best = {StringFilterSpec::Op::kLike, seconds, "substring fast path",
              spec.op == StringFilterSpec::Op::kLike ? "" : like_pattern};
    }
  }
  if (fpga_available) {
    auto fpga = PredictFpga(pattern, stats);
    if (fpga.ok() && *fpga < best.predicted_seconds) {
      best = {StringFilterSpec::Op::kRegexpFpga, *fpga,
              "hardware engine (fits deployed geometry)",
              spec.op == StringFilterSpec::Op::kLike ? pattern : ""};
    } else if (!fpga.ok()) {
      auto hybrid = PredictHybrid(pattern, stats);
      if (hybrid.ok() && *hybrid < best.predicted_seconds) {
        best = {StringFilterSpec::Op::kHybrid, *hybrid,
                "hybrid: FPGA prefix + CPU post-processing",
                spec.op == StringFilterSpec::Op::kLike ? pattern : ""};
      }
    }
  }
  return best;
}

}  // namespace doppio
