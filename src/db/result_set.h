// Materialized intermediate/final results of the query executor.
//
// MonetDB's execution model materializes every intermediate as BATs
// (paper §4.2.2); this is the executor-side equivalent: fully materialized
// typed columns with optional validity (nulls only arise from outer joins).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace doppio {

struct OwnedColumn {
  std::string name;
  // Exactly one of these holds data.
  std::vector<int64_t> ints;
  std::vector<std::string> strings;
  bool is_string = false;
  // Validity mask; empty = all valid.
  std::vector<uint8_t> valid;

  int64_t size() const {
    return is_string ? static_cast<int64_t>(strings.size())
                     : static_cast<int64_t>(ints.size());
  }
  bool IsValid(int64_t row) const {
    return valid.empty() || valid[static_cast<size_t>(row)] != 0;
  }
};

struct ResultSet {
  std::vector<OwnedColumn> columns;

  int64_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }
  int num_columns() const { return static_cast<int>(columns.size()); }

  const OwnedColumn* Find(const std::string& name) const {
    for (const auto& col : columns) {
      if (col.name == name) return &col;
    }
    return nullptr;
  }

  /// Scalar convenience for count(*) style results.
  Result<int64_t> ScalarInt() const {
    if (num_rows() != 1 || columns.empty() || columns[0].is_string) {
      return Status::InvalidArgument("result is not a scalar integer");
    }
    return columns[0].ints[0];
  }

  /// Debug rendering (header + rows, pipe separated).
  std::string ToString(int64_t max_rows = 20) const;
};

}  // namespace doppio
