#include "db/engine_stats.h"

#include <sstream>

namespace doppio {

std::string QueryStats::ToString() const {
  std::ostringstream out;
  out << "total=" << TotalSeconds() << "s"
      << " db=" << database_seconds << "s"
      << " udf_sw=" << udf_software_seconds << "s"
      << " config=" << config_gen_seconds << "s"
      << " hal=" << hal_seconds << "s"
      << " hw=" << hw_seconds << "s"
      << " scanned=" << rows_scanned << " matched=" << rows_matched
      << " strategy=" << strategy;
  if (!pu_kernel.empty()) {
    out << " pu_kernel=" << pu_kernel
        << " functional_mbps=" << FunctionalMbps();
  }
  if (job_retries != 0 || faults_recovered != 0 || fallback_rows != 0) {
    out << " retries=" << job_retries
        << " faults_recovered=" << faults_recovered
        << " fallback_rows=" << fallback_rows;
  }
  return out.str();
}

void QueryStats::Accumulate(const QueryStats& other) {
  database_seconds += other.database_seconds;
  udf_software_seconds += other.udf_software_seconds;
  config_gen_seconds += other.config_gen_seconds;
  hal_seconds += other.hal_seconds;
  hw_seconds += other.hw_seconds;
  sim_host_seconds += other.sim_host_seconds;
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  job_retries += other.job_retries;
  faults_recovered += other.faults_recovered;
  fallback_rows += other.fallback_rows;
  windows_streamed += other.windows_streamed;
  page_in_seconds += other.page_in_seconds;
  if (strategy.empty()) {
    strategy = other.strategy;
  } else if (!other.strategy.empty() && other.strategy != strategy) {
    strategy += "+" + other.strategy;
  }
  functional_bytes += other.functional_bytes;
  functional_seconds += other.functional_seconds;
  if (trace_id == 0) trace_id = other.trace_id;
  if (pu_kernel.empty()) {
    pu_kernel = other.pu_kernel;
  } else if (!other.pu_kernel.empty() && other.pu_kernel != pu_kernel) {
    pu_kernel += "+" + other.pu_kernel;
  }
}

}  // namespace doppio
