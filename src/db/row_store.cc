#include "db/row_store.h"

#include <cstring>

#include "common/stopwatch.h"
#include "regex/backtrack_matcher.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/substring_search.h"
#include "regex/thompson_nfa.h"

namespace doppio {

namespace {

void AppendRaw(std::vector<uint8_t>* out, const void* src, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(src);
  out->insert(out->end(), p, p + n);
}

}  // namespace

Status RowStoreEngine::LoadTable(const Table& source) {
  DOPPIO_RETURN_NOT_OK(source.Validate());
  if (tables_.count(source.name()) != 0) {
    return Status::AlreadyExists("table '" + source.name() + "' exists");
  }
  RowTable table;
  for (int c = 0; c < source.num_columns(); ++c) {
    table.column_names.push_back(source.column_name(c));
    table.column_types.push_back(source.column(c)->type());
  }
  const int64_t rows = source.num_rows();
  table.row_offsets.reserve(static_cast<size_t>(rows) + 1);
  for (int64_t r = 0; r < rows; ++r) {
    table.row_offsets.push_back(static_cast<int64_t>(table.data.size()));
    for (int c = 0; c < source.num_columns(); ++c) {
      const Bat* col = source.column(c);
      switch (col->type()) {
        case ValueType::kInt32: {
          int64_t v = col->GetInt32(r);
          AppendRaw(&table.data, &v, sizeof(v));
          break;
        }
        case ValueType::kInt64: {
          int64_t v = col->GetInt64(r);
          AppendRaw(&table.data, &v, sizeof(v));
          break;
        }
        case ValueType::kInt16: {
          int64_t v = col->GetInt16(r);
          AppendRaw(&table.data, &v, sizeof(v));
          break;
        }
        case ValueType::kString: {
          std::string_view s = col->GetString(r);
          uint32_t len = static_cast<uint32_t>(s.size());
          AppendRaw(&table.data, &len, sizeof(len));
          AppendRaw(&table.data, s.data(), s.size());
          break;
        }
      }
    }
  }
  table.row_offsets.push_back(static_cast<int64_t>(table.data.size()));
  tables_[source.name()] = std::move(table);
  return Status::OK();
}

std::string_view RowStoreEngine::ExtractString(const RowTable& table,
                                               int64_t row, int col) const {
  const uint8_t* p = table.data.data() + table.row_offsets[static_cast<size_t>(row)];
  for (int c = 0; c < col; ++c) {
    if (table.column_types[static_cast<size_t>(c)] == ValueType::kString) {
      uint32_t len;
      std::memcpy(&len, p, sizeof(len));
      p += sizeof(len) + len;
    } else {
      p += sizeof(int64_t);
    }
  }
  uint32_t len;
  std::memcpy(&len, p, sizeof(len));
  return std::string_view(reinterpret_cast<const char*>(p + sizeof(len)),
                          len);
}

Result<int64_t> RowStoreEngine::CountWhere(const std::string& table_name,
                                           const std::string& column,
                                           const StringFilterSpec& spec,
                                           QueryStats* stats) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  const RowTable& table = it->second;
  int col = -1;
  for (size_t c = 0; c < table.column_names.size(); ++c) {
    if (table.column_names[c] == column) col = static_cast<int>(c);
  }
  if (col < 0) return Status::NotFound("no column '" + column + "'");
  if (table.column_types[static_cast<size_t>(col)] != ValueType::kString) {
    return Status::InvalidArgument("string filter over non-string column");
  }

  Stopwatch watch;
  int64_t count = 0;

  if (spec.op == StringFilterSpec::Op::kContains) {
    auto idx = table.contains.find(column);
    if (idx == table.contains.end()) {
      return Status::InvalidArgument(
          "CONTAINS requires a pre-built index (BuildContainsIndex)");
    }
    DOPPIO_ASSIGN_OR_RETURN(count, idx->second->Count(spec.pattern));
    if (spec.negated) count = table.rows() - count;
  } else {
    // Build the matcher once, then scan row-at-a-time, single-threaded.
    std::unique_ptr<StringMatcher> matcher;
    CompileOptions copts;
    copts.case_insensitive = spec.case_insensitive;
    switch (spec.op) {
      case StringFilterSpec::Op::kLike: {
        DOPPIO_ASSIGN_OR_RETURN(LikeAnalysis like,
                                TranslateLike(spec.pattern));
        if (like.is_multi_substring) {
          DOPPIO_ASSIGN_OR_RETURN(
              matcher, MultiSubstringMatcher::Create(
                           like.substrings, spec.case_insensitive));
        } else {
          copts.anchor_start = like.anchored_start;
          copts.anchor_end = like.anchored_end;
          DOPPIO_ASSIGN_OR_RETURN(Program program,
                                  CompileProgram(*like.ast, copts));
          matcher = DfaMatcher::FromProgram(std::move(program));
        }
        break;
      }
      case StringFilterSpec::Op::kRegexpLike: {
        DOPPIO_ASSIGN_OR_RETURN(
            matcher, BacktrackMatcher::Compile(spec.pattern, copts));
        break;
      }
      default:
        return Status::NotImplemented(
            "DBx has no FPGA operator (that is the point of the paper)");
    }
    if (spec.op == StringFilterSpec::Op::kRegexpLike) {
      // Scalar regex function: PCRE-style setup per row (see the column
      // store's EvalRegexp for the rationale).
      for (int64_t r = 0; r < table.rows(); ++r) {
        DOPPIO_ASSIGN_OR_RETURN(
            auto per_row, BacktrackMatcher::Compile(spec.pattern, copts));
        bool m = per_row->Matches(ExtractString(table, r, col));
        if (m != spec.negated) ++count;
      }
    } else {
      for (int64_t r = 0; r < table.rows(); ++r) {
        bool m = matcher->Matches(ExtractString(table, r, col));
        if (m != spec.negated) ++count;
      }
    }
  }

  if (stats != nullptr) {
    stats->database_seconds += watch.ElapsedSeconds();
    stats->rows_scanned += table.rows();
    stats->rows_matched += count;
    stats->strategy = "dbx";
  }
  return count;
}

Result<double> RowStoreEngine::BuildContainsIndex(
    const std::string& table_name, const std::string& column) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  RowTable& table = it->second;
  int col = -1;
  for (size_t c = 0; c < table.column_names.size(); ++c) {
    if (table.column_names[c] == column) col = static_cast<int>(c);
  }
  if (col < 0) return Status::NotFound("no column '" + column + "'");

  Stopwatch watch;
  // Materialize the strings into a BAT for the index builder.
  auto bat = std::make_unique<Bat>(ValueType::kString);
  for (int64_t r = 0; r < table.rows(); ++r) {
    DOPPIO_RETURN_NOT_OK(bat->AppendString(ExtractString(table, r, col)));
  }
  DOPPIO_ASSIGN_OR_RETURN(std::unique_ptr<InvertedIndex> index,
                          InvertedIndex::Build(*bat));
  table.contains[column] = std::move(index);
  table.index_source[column] = std::move(bat);
  return watch.ElapsedSeconds();
}

int64_t RowStoreEngine::num_rows(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.rows();
}

}  // namespace doppio
