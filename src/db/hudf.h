// The Hardware User Defined Function: REGEXP_FPGA (paper §4.1).
//
// Mirrors the paper's regexp_fpga() pseudo-code: convert the pattern into
// a configuration vector, allocate the result BAT, create the FPGA job
// through the HAL, busy-wait on the done bit, hand the result BAT back.
// The returned column is of type short: nonzero = 1-based position of the
// match's last character, zero = no match.
#pragma once

#include <memory>
#include <string_view>

#include "bat/bat.h"
#include "common/status.h"
#include "db/engine_stats.h"
#include "hal/hal.h"
#include "regex/matcher.h"

namespace doppio {

struct HudfResult {
  std::unique_ptr<Bat> result;  // kInt16, one entry per input string
  QueryStats stats;             // udf/config/hal/hw phase breakdown
};

/// Runs the REGEXP_FPGA HUDF over a string BAT. The pattern uses the regex
/// dialect (LIKE patterns are translated before reaching this layer).
/// Fails with CapacityExceeded when the pattern does not fit the deployed
/// geometry — callers fall back to hybrid or software execution.
Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options = {});

/// Variant reusing an already-compiled configuration (amortizes compile
/// time across concurrent clients issuing the same query).
Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              const RegexConfig& config);

/// Single-query intra-operator parallelism (paper §7.5: "the FPGA
/// parallelizes by horizontally partitioning the data to the four Regex
/// Engines"): the BAT is split into `partitions` slices, one job per
/// engine, all sharing the string heap; results land in disjoint slices
/// of one result BAT. 0 = one partition per deployed engine.
Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         const RegexConfig& config,
                                         int partitions = 0);

/// Pattern-level convenience for the partitioned variant.
Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         std::string_view pattern,
                                         const CompileOptions& options = {},
                                         int partitions = 0);

}  // namespace doppio
