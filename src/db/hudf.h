// The Hardware User Defined Function: REGEXP_FPGA (paper §4.1).
//
// Mirrors the paper's regexp_fpga() pseudo-code: convert the pattern into
// a configuration vector, allocate the result BAT, create the FPGA job
// through the HAL, busy-wait on the done bit, hand the result BAT back.
// The returned column is of type short: nonzero = 1-based position of the
// match's last character, zero = no match.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "db/engine_stats.h"
#include "hal/hal.h"
#include "hw/kernel_backend.h"
#include "hw/pu_kernel.h"
#include "regex/matcher.h"

namespace doppio {

struct HudfResult {
  std::unique_ptr<Bat> result;  // kInt16, one entry per input string
  QueryStats stats;             // udf/config/hal/hw phase breakdown
};

/// Runs the REGEXP_FPGA HUDF over a string BAT. The pattern uses the regex
/// dialect (LIKE patterns are translated before reaching this layer).
/// Fails with CapacityExceeded when the pattern does not fit the deployed
/// geometry — callers fall back to hybrid or software execution.
/// Deliberately pinned to pool device 0: this is the paper's single-job
/// fast path; multi-device spreading happens in the partitioned/batched
/// executors below.
Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options = {});

/// Variant reusing an already-compiled configuration (amortizes compile
/// time across concurrent clients issuing the same query).
Result<HudfResult> RegexpFpga(Hal* hal, const Bat& input,
                              const RegexConfig& config);

/// Single-query intra-operator parallelism (paper §7.5: "the FPGA
/// parallelizes by horizontally partitioning the data to the four Regex
/// Engines"): the BAT is split into `partitions` slices, one job per
/// engine, all sharing the string heap; results land in disjoint slices
/// of one result BAT. 0 = one partition per deployed engine.
Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         const RegexConfig& config,
                                         int partitions = 0);

/// Pattern-level convenience for the partitioned variant.
Result<HudfResult> RegexpFpgaPartitioned(Hal* hal, const Bat& input,
                                         std::string_view pattern,
                                         const CompileOptions& options = {},
                                         int partitions = 0);

/// One query of a cross-query batched submission (the multi-tenant
/// scheduler's coalescing unit, src/sched). Each query keeps its own input
/// BAT, result BAT and QueryStats — results are demultiplexed per query by
/// construction because every job slice writes a disjoint result range.
struct FpgaBatchQuery {
  const Bat* input = nullptr;
  const RegexConfig* config = nullptr;
  /// Slices for this query (0 = one per deployed engine). Batched callers
  /// typically spread the engines across the batch instead.
  int partitions = 0;
  /// Tracer span name for this query's lifecycle.
  const char* span_name = "regexp_fpga_batch";
  /// Simulator-only throughput knob (see JobParams::timing_only): derive
  /// exact traffic/timing but skip the functional pass (results zeroed).
  bool timing_only = false;
  /// Admission-time row snapshot: scan only the first `rows` rows of
  /// `input` (-1 = whatever `input->count()` is at execution time). The
  /// scheduler pins this at Submit so an append landing between admission
  /// and wave execution cannot leak post-snapshot rows into the result.
  /// Normalized to min(rows, input->count()) during Phase-0 validation.
  int64_t rows = -1;
  /// First row to scan (partial-extent execution): the device scans rows
  /// [first_row, rows) and `out.result` holds exactly that span. 0 = the
  /// classic full scan, byte-identical to before this field existed. The
  /// scheduler sets it when a cached prefix block already answers
  /// [0, first_row) so only a grown column's appended tail is re-scanned.
  /// Clamped to [0, rows] during Phase-0 validation.
  int64_t first_row = 0;
  /// Output streams of `config` (1..64). 1 = the classic single-pattern
  /// scan, byte-identical to before streams existed. > 1 = `config` is a
  /// set-compiled program (CompileRegexSetConfig) with that many tagged
  /// accept streams: `out.result` then holds count x streams 16-bit
  /// values row-major (the raw device layout) and `set_outputs` the
  /// per-stream demux. Must equal the compiled program's pattern count.
  int streams = 1;
  HudfResult out;  // populated by RegexpFpgaBatch
  /// streams > 1 only: set_outputs[k] is member k's own kInt16 column
  /// over the input rows — bit-identical to running that member alone.
  /// Each carries the wave's shared stats with its own rows_matched.
  std::vector<HudfResult> set_outputs;
};

/// Shared partitioned submission across queries: every slice of every
/// query is submitted before any is waited on, so the queries overlap
/// across the engines in virtual time (the paper's Fig. 11 multi-client
/// scenario, but coalesced into one wave instead of raced). Each query
/// degrades per-slice to the software matchers exactly like the
/// single-query path; a batch of one is behaviour- and timing-identical
/// to RegexpFpgaPartitioned. Targets device 0 only — the paper's
/// single-device path.
Status RegexpFpgaBatch(Hal* hal, const std::vector<FpgaBatchQuery*>& queries);

/// Device-aware variant over the HAL's whole DevicePool. With a pool of
/// one this IS RegexpFpgaBatch (same code path, bit- and byte-identical
/// results, stats and virtual timing). With N devices it shards every
/// query's slices across the pool proportional to each device's free
/// engines, caps in-flight slices per device at its engine count so a
/// backlog stays stealable, and lets a device that runs dry steal queued
/// slices from the most backlogged member — so one fault-stalled device
/// degrades its own in-flight slices to software while the healthy
/// devices absorb its backlog. Per-query `hw_seconds` is the maximum
/// per-clock-domain extent (device clocks are independent; cross-device
/// time differences are meaningless). Placement, stealing and results
/// are fully deterministic for a given pool state.
Status RegexpFpgaBatchPooled(Hal* hal,
                             const std::vector<FpgaBatchQuery*>& queries);

/// Single-query convenience over the pooled path. `partitions` 0 = one
/// slice per engine across the whole pool.
Result<HudfResult> RegexpFpgaPartitionedPooled(Hal* hal, const Bat& input,
                                               const RegexConfig& config,
                                               int partitions = 0);

/// Full-pattern software scan over a string BAT on the lazy-DFA matcher:
/// the hybrid planner's software strategy and the scheduler's CPU route
/// for patterns that exceed the deployed geometry. Fills result (int16,
/// values capped at 32767), strategy ("software"), row counts and the
/// software phase time. `rows` >= 0 scans only the first `rows` rows
/// (the scheduler's admission snapshot); -1 = all rows.
Result<HudfResult> RunDfaScanInSoftware(const Bat& input,
                                        std::string_view pattern,
                                        const CompileOptions& options = {},
                                        int64_t rows = -1);

/// Runs a geometry-eligible pattern entirely on the host through the
/// kernel-backend registry (hw/kernel_backend.h) — the execution path of
/// DOPPIO_FORCE_BACKEND=scalar|simd, and a device-free way to run the
/// compiled-program matchers. Results are bit-identical to the hardware
/// functional pass; stats.strategy records "host-<backend>" and
/// stats.pu_kernel the kernel that executed.
Result<HudfResult> RegexpHost(const DeviceConfig& device, const Bat& input,
                              std::string_view pattern,
                              const CompileOptions& options = {});

/// Admission gate the multi-tenant scheduler (src/sched) implements. When
/// one is supplied to a db-layer executor, regex offload goes through the
/// scheduler — session quotas, fair sharing, cross-query batching —
/// instead of submitting straight at the device. Null gate = the paper's
/// direct-submit path, byte-identical to before the scheduler existed.
class RegexAdmissionGate {
 public:
  virtual ~RegexAdmissionGate() = default;
  virtual Result<HudfResult> ExecuteRegex(const Bat& input,
                                          std::string_view pattern,
                                          const CompileOptions& options) = 0;
};

}  // namespace doppio
