// Fault-tolerant job lifecycle (software side).
//
// The paper's HUDF enqueues a job and busy-waits on the done bit forever
// (§6, Fig 10) — any stuck, dropped or mis-parameterized job hangs the
// query. This layer bounds that wait: each attempt gets a deadline derived
// from the analytic performance model's expected job time (× a slack
// factor), and an expired or lost attempt is cancelled and resubmitted
// with exponential backoff, up to a bounded retry budget. Callers
// (db/hudf.cc) degrade to the software matchers when the budget is
// exhausted, so no single simulated-device fault can hang or fail a query
// the CPU can still answer.
//
// All waiting and backoff happens in virtual time; with the fault plan
// disabled every job completes on the first attempt and the behaviour is
// identical to the paper's plain busy-wait.
#pragma once

#include <vector>

#include "common/status.h"
#include "hal/job.h"
#include "hw/fpga_device.h"
#include "hw/job.h"

namespace doppio {

struct RetryPolicy {
  /// Resubmissions allowed after the first attempt (total attempts =
  /// 1 + max_retries).
  int max_retries = 3;

  /// Wait budget per attempt: expected job seconds (perf model, all
  /// engines assumed active) × this slack factor. Generous by design —
  /// the model and the simulator agree to within a few percent, so only
  /// genuinely stuck jobs expire.
  double deadline_slack = 16.0;

  /// Floor on the per-attempt budget (covers tiny jobs whose modeled time
  /// is dwarfed by fixed overheads and injected delays).
  double min_deadline_sec = 500e-6;

  /// Exponential backoff between attempts, in virtual time.
  double backoff_base_sec = 25e-6;
  double backoff_multiplier = 2.0;
};

/// What happened to one logical job across all of its attempts.
struct JobOutcome {
  bool ok = false;
  int retries = 0;          // resubmissions performed
  bool fault_seen = false;  // any attempt timed out / was rejected / lost
  Status final_status;      // OK when ok; the last error otherwise
  SimTime deadline_budget = 0;  // per-attempt wait budget (picoseconds)
  /// Virtual-time backoff applied before each resubmission (monotonically
  /// increasing by construction; asserted by tests).
  std::vector<SimTime> backoffs;
};

/// Per-attempt wait budget for a job of `count` strings over `heap_bytes`
/// of heap: expected time from the closed-form perf model × slack, floored
/// at min_deadline_sec. `active_engines` models link sharing (use the
/// partition count for partitioned queries).
SimTime JobDeadlineBudget(const DeviceConfig& config, int64_t count,
                          int64_t heap_bytes, const RetryPolicy& policy,
                          int active_engines);

/// Submits `params`, retrying transient rejections (Unavailable, queue
/// back-pressure) with exponential backoff. Fatal Submit errors are
/// returned as-is for the caller to classify (IsFallbackEligible).
/// Updates `outcome` retries/fault_seen/backoffs.
Result<FpgaJob> SubmitJobWithRetry(FpgaDevice* device,
                                   const JobParams& params,
                                   const RetryPolicy& policy,
                                   JobOutcome* outcome);

/// Waits for `job` under the policy's deadline; on expiry (or a lost job)
/// cancels the attempt, backs off, resubmits `params` and waits again,
/// until the shared retry budget in `outcome` is exhausted. On success the
/// final attempt's JobStatus carries the retry count; `job` addresses it.
/// Deadlines are computed on the clock (and engine count) of the job's
/// own device; `device` is only where expired attempts are resubmitted —
/// pool callers pass the slice's owning device for both.
Status AwaitJobWithRecovery(FpgaDevice* device, FpgaJob* job,
                            const JobParams& params,
                            const RetryPolicy& policy, JobOutcome* outcome);

/// Convenience: full lifecycle (submit + await) for one job.
JobOutcome RunJobWithRetry(FpgaDevice* device, const JobParams& params,
                           const RetryPolicy& policy, FpgaJob* job_out);

}  // namespace doppio
