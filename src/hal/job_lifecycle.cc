#include "hal/job_lifecycle.h"

#include <cmath>

#include "hw/perf_model.h"
#include "obs/metrics.h"

namespace doppio {

namespace {

obs::Counter& RetriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.lifecycle.retries", "job resubmissions (submit + await)");
  return *c;
}
obs::Counter& RecoveredCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.lifecycle.jobs_recovered",
      "jobs that saw a fault but still completed");
  return *c;
}
obs::Counter& ExhaustedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.lifecycle.retries_exhausted",
      "jobs abandoned after max_retries");
  return *c;
}
obs::Histogram& BackoffHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.lifecycle.backoff_seconds", obs::LatencySecondsBuckets(),
      "virtual-time backoff applied before each resubmission");
  return *h;
}

/// Backoff for the next resubmission: base × multiplier^(backoffs so far).
SimTime NextBackoffPicos(const RetryPolicy& policy,
                         const JobOutcome& outcome) {
  const double seconds =
      policy.backoff_base_sec *
      std::pow(policy.backoff_multiplier,
               static_cast<double>(outcome.backoffs.size()));
  return PicosFromSeconds(seconds);
}

void BackOff(FpgaDevice* device, const RetryPolicy& policy,
             JobOutcome* outcome) {
  const SimTime backoff = NextBackoffPicos(policy, *outcome);
  outcome->backoffs.push_back(backoff);
  BackoffHistogram().Observe(SecondsFromPicos(backoff));
  device->AdvanceVirtualTime(backoff);
}

bool IsTransient(const Status& status) {
  // Unavailable: injected transient fault or a lost job.
  // ResourceExhausted (and the legacy IOError spelling): shared job-queue
  // back-pressure — resolves as the device drains.
  return status.IsUnavailable() || status.IsResourceExhausted() ||
         status.code() == StatusCode::kIOError;
}

}  // namespace

SimTime JobDeadlineBudget(const DeviceConfig& config, int64_t count,
                          int64_t heap_bytes, const RetryPolicy& policy,
                          int active_engines) {
  const PerfEstimate expected =
      EstimateJob(config, count, heap_bytes, active_engines);
  double budget_sec = expected.seconds * policy.deadline_slack;
  if (budget_sec < policy.min_deadline_sec) {
    budget_sec = policy.min_deadline_sec;
  }
  if (config.faults.enabled) {
    // Headroom for injected completion/done-bit delays, so a merely
    // delayed job completes within its deadline instead of burning a
    // retry; only dropped or stalled jobs expire.
    budget_sec +=
        config.faults.delay_seconds + config.faults.done_latency_seconds;
  }
  return PicosFromSeconds(budget_sec);
}

Result<FpgaJob> SubmitJobWithRetry(FpgaDevice* device,
                                   const JobParams& params,
                                   const RetryPolicy& policy,
                                   JobOutcome* outcome) {
  while (true) {
    Result<JobId> id = device->Submit(params);
    if (id.ok()) return FpgaJob(device, *id);
    const Status st = id.status();
    if (!IsTransient(st)) return st;
    outcome->fault_seen = true;
    if (outcome->retries >= policy.max_retries) {
      ExhaustedCounter().Add();
      outcome->final_status = st;
      return st;
    }
    BackOff(device, policy, outcome);
    ++outcome->retries;
    RetriesCounter().Add();
  }
}

Status AwaitJobWithRecovery(FpgaDevice* device, FpgaJob* job,
                            const JobParams& params,
                            const RetryPolicy& policy,
                            JobOutcome* outcome) {
  while (true) {
    // The budget and deadline come from the job's OWN device: with a
    // DevicePool the members' virtual clocks (and engine counts) are
    // independent, so `device->now()` would be an unrelated clock when
    // `job` lives on another member. `device` is only the resubmission
    // target. Single-device callers pass the same handle for both.
    FpgaDevice* owner = job->device();
    outcome->deadline_budget =
        JobDeadlineBudget(owner->config(), params.count, params.heap_bytes,
                          policy, owner->config().num_engines);
    Status st = job->Wait(owner->now() + outcome->deadline_budget);
    if (st.ok()) {
      outcome->ok = true;
      outcome->final_status = Status::OK();
      JobStatus* status = owner->status(job->id());
      status->retries = outcome->retries;
      if (status->fault_flags.load(std::memory_order_acquire) != 0) {
        outcome->fault_seen = true;
      }
      if (outcome->fault_seen) RecoveredCounter().Add();
      return Status::OK();
    }
    const bool retryable = st.IsDeadlineExceeded() || st.IsUnavailable();
    if (!retryable) {
      outcome->final_status = st;
      return st;
    }
    outcome->fault_seen = true;
    (void)job->Cancel();
    if (outcome->retries >= policy.max_retries) {
      ExhaustedCounter().Add();
      outcome->final_status = st;
      return st;
    }
    BackOff(device, policy, outcome);
    ++outcome->retries;
    RetriesCounter().Add();
    Result<FpgaJob> retry =
        SubmitJobWithRetry(device, params, policy, outcome);
    if (!retry.ok()) {
      outcome->final_status = retry.status();
      return retry.status();
    }
    *job = *retry;
  }
}

JobOutcome RunJobWithRetry(FpgaDevice* device, const JobParams& params,
                           const RetryPolicy& policy, FpgaJob* job_out) {
  JobOutcome outcome;
  Result<FpgaJob> job = SubmitJobWithRetry(device, params, policy, &outcome);
  if (!job.ok()) {
    outcome.ok = false;
    outcome.final_status = job.status();
    return outcome;
  }
  FpgaJob handle = *job;
  (void)AwaitJobWithRecovery(device, &handle, params, policy, &outcome);
  if (job_out != nullptr) *job_out = handle;
  return outcome;
}

}  // namespace doppio
