#include "hal/job_queue.h"

#include <cstdlib>
#include <new>

#include "common/logging.h"

namespace doppio {

namespace {
constexpr int64_t kHeaderBytes = 128;  // head line + tail line
}  // namespace

Result<std::unique_ptr<SharedJobQueue>> SharedJobQueue::Create(
    SharedArena* arena, int capacity) {
  if (capacity < 1) return Status::InvalidArgument("bad queue capacity");
  const int64_t bytes =
      kHeaderBytes + static_cast<int64_t>(capacity) * sizeof(JobDescriptor);
  PageRun run;
  if (arena != nullptr) {
    DOPPIO_ASSIGN_OR_RETURN(run, arena->AllocatePages(bytes));
  }
  auto queue = std::unique_ptr<SharedJobQueue>(
      new SharedJobQueue(arena, run, capacity));
  return queue;
}

SharedJobQueue::SharedJobQueue(SharedArena* arena, PageRun run, int capacity)
    : arena_(arena), run_(run), capacity_(capacity) {
  uint8_t* base;
  if (arena_ != nullptr) {
    base = run_.data;
  } else {
    const int64_t bytes =
        kHeaderBytes + static_cast<int64_t>(capacity) * sizeof(JobDescriptor);
    heap_fallback_ = static_cast<uint8_t*>(
        ::operator new(static_cast<size_t>(bytes), std::align_val_t{64}));
    base = heap_fallback_;
  }
  head_ = new (base) std::atomic<int64_t>(0);
  tail_ = new (base + 64) std::atomic<int64_t>(0);
  slots_ = reinterpret_cast<JobDescriptor*>(base + kHeaderBytes);
  for (int i = 0; i < capacity_; ++i) new (&slots_[i]) JobDescriptor();
}

SharedJobQueue::~SharedJobQueue() {
  if (arena_ != nullptr) {
    Status st = arena_->FreePages(run_);
    (void)st;
  } else {
    ::operator delete(heap_fallback_, std::align_val_t{64});
  }
}

bool SharedJobQueue::Push(const JobDescriptor& descriptor) {
  const int64_t head = head_->load(std::memory_order_relaxed);
  const int64_t tail = tail_->load(std::memory_order_acquire);
  if (head - tail >= capacity_) return false;  // full
  slots_[head % capacity_] = descriptor;
  head_->store(head + 1, std::memory_order_release);
  return true;
}

bool SharedJobQueue::Pop(JobDescriptor* out) {
  const int64_t tail = tail_->load(std::memory_order_relaxed);
  const int64_t head = head_->load(std::memory_order_acquire);
  if (tail >= head) return false;  // empty
  *out = slots_[tail % capacity_];
  tail_->store(tail + 1, std::memory_order_release);
  return true;
}

bool SharedJobQueue::Empty() const {
  return tail_->load(std::memory_order_acquire) >=
         head_->load(std::memory_order_acquire);
}

bool SharedJobQueue::Full() const {
  return head_->load(std::memory_order_acquire) -
             tail_->load(std::memory_order_acquire) >=
         capacity_;
}

}  // namespace doppio
