// Model of Intel's Accelerator Abstraction Layer bootstrap (paper §2.2).
//
// Before any job can run, software performs a handshake with the FPGA: it
// verifies that the expected Accelerator Functional Unit (AFU) is
// instantiated, then allocates a Device Status Memory (DSM) page through
// which control and status information is shared. The HAL builds on top of
// this session.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/status.h"
#include "mem/arena.h"

namespace doppio {

class FpgaDevice;

/// The AFU identifier of the regex-engine bitstream, as published in DSM.
inline constexpr uint64_t kRegexAfuId = 0xD0BB10D8'4A5E0001ULL;

/// Device Status Memory: one pinned page of control/status state shared
/// between software and hardware. Fields are cache-line separated as on
/// real coherent-memory designs.
struct alignas(64) DeviceStatusMemory {
  // Written by hardware during the handshake.
  std::atomic<uint64_t> afu_id{0};
  std::atomic<uint32_t> handshake_complete{0};

  alignas(64) std::atomic<uint32_t> fatal_error{0};
  // Address (within shared memory) of the job queue, published by software
  // so the Job Distributor knows where to poll.
  alignas(64) std::atomic<uint64_t> job_queue_addr{0};
  // Engines currently idle, mirrored by hardware for diagnostics.
  alignas(64) std::atomic<uint32_t> idle_engines{0};
};

/// An established software<->FPGA session: handshake done, DSM live.
class AalSession {
 public:
  /// Performs the bootstrap: allocates the DSM in the shared region,
  /// asks the device to publish itself, and verifies the AFU id.
  /// Fails with NotFound when the device does not carry the expected AFU.
  static Result<std::unique_ptr<AalSession>> Bootstrap(SharedArena* arena,
                                                       FpgaDevice* device);

  ~AalSession();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(AalSession);

  DeviceStatusMemory* dsm() { return dsm_; }
  FpgaDevice* device() { return device_; }

 private:
  AalSession(SharedArena* arena, FpgaDevice* device,
             DeviceStatusMemory* dsm, PageRun dsm_run)
      : arena_(arena), device_(device), dsm_(dsm), dsm_run_(dsm_run) {}

  SharedArena* arena_;
  FpgaDevice* device_;
  DeviceStatusMemory* dsm_;
  PageRun dsm_run_;
};

}  // namespace doppio
