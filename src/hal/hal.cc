#include "hal/hal.h"

#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& SharedAllocsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hal.shared_allocs", "allocations served from the shared slab");
  return *c;
}
obs::Counter& MallocAllocsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hal.malloc_allocs",
      "small allocations served from host malloc");
  return *c;
}
}  // namespace

HalAllocator::HalAllocator(SlabAllocator* slab, int64_t malloc_threshold)
    : slab_(slab), malloc_threshold_(malloc_threshold) {
  DOPPIO_CHECK(slab != nullptr);
}

Result<void*> HalAllocator::Allocate(int64_t bytes) {
  if (bytes <= 0) return Status::InvalidArgument("bad allocation size");
  if (bytes < malloc_threshold_) {
    void* p = std::malloc(static_cast<size_t>(bytes));
    if (p == nullptr) return Status::OutOfMemory("malloc failed");
    std::lock_guard<std::mutex> lock(mutex_);
    malloced_.insert(p);
    ++malloc_allocs_;
    MallocAllocsCounter().Add();
    return p;
  }
  DOPPIO_ASSIGN_OR_RETURN(void* p, slab_->Allocate(bytes));
  std::lock_guard<std::mutex> lock(mutex_);
  ++shared_allocs_;
  SharedAllocsCounter().Add();
  return p;
}

Status HalAllocator::Free(void* ptr) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = malloced_.find(ptr);
    if (it != malloced_.end()) {
      malloced_.erase(it);
      std::free(ptr);
      return Status::OK();
    }
  }
  return slab_->Free(ptr);
}

Hal::Hal(const Options& options) : options_(options) {
  arena_ = std::make_unique<SharedArena>(options_.shared_memory_bytes);
  slab_ = std::make_unique<SlabAllocator>(arena_.get());
  allocator_ = std::make_unique<HalAllocator>(slab_.get());
  bat_allocator_ =
      std::make_unique<HalAllocator>(slab_.get(), /*malloc_threshold=*/0);
  int threads = options_.functional_threads;
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  thread_pool_ = std::make_unique<ThreadPool>(threads);
  DevicePoolOptions pool_options;
  pool_options.num_devices = options_.num_devices;
  pool_options.device = options_.device;
  pool_options.device_faults = options_.device_faults;
  pool_ = std::make_unique<DevicePool>(pool_options, arena_.get(),
                                       thread_pool_.get());
  // AAL bootstrap, one session per pool member: verify each device's
  // regex AFU and establish its DSM page. Device 0 first, so a pool of
  // one performs exactly the single-device handshake.
  for (int i = 0; i < pool_->size(); ++i) {
    auto session = AalSession::Bootstrap(arena_.get(), pool_->device(i));
    DOPPIO_CHECK(session.ok());
    aal_sessions_.push_back(std::move(*session));
  }
}

Hal::~Hal() = default;

Result<JobParams> Hal::BuildRegexJobParams(const Bat& input, Bat* result,
                                           const RegexConfig& config) const {
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }
  if (result == nullptr || result->type() != ValueType::kInt16 ||
      result->count() != input.count()) {
    return Status::InvalidArgument(
        "result BAT must be a short BAT sized to the input");
  }
  JobParams params;
  params.offsets = input.tail_data();
  params.heap = input.heap()->data();
  params.result = result->mutable_tail_data();
  params.count = input.count();
  params.offset_width = static_cast<int32_t>(input.offset_width());
  params.heap_bytes = input.heap()->size_bytes();
  params.config = config.vector.bytes();
  return params;
}

Result<FpgaJob> Hal::CreateRegexJob(const Bat& input, Bat* result,
                                    const RegexConfig& config) {
  DOPPIO_ASSIGN_OR_RETURN(JobParams params,
                          BuildRegexJobParams(input, result, config));
  FpgaDevice* device = pool_->device(0);
  DOPPIO_ASSIGN_OR_RETURN(JobId id, device->Submit(std::move(params)));
  return FpgaJob(device, id);
}

}  // namespace doppio
