// Shared-memory job queue (paper §3, steps 5-6 of Fig. 3).
//
// The HAL enqueues job descriptors — the addresses of the parameter and
// status structures — into a ring buffer that lives in the CPU-FPGA shared
// region; the Job Distributor on the FPGA polls it and hands descriptors
// to idle engines. The ring is single-producer (the HAL serializes
// submissions) / single-consumer (the distributor).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/macros.h"
#include "common/status.h"
#include "mem/arena.h"

namespace doppio {

/// One cache line per descriptor, as the hardware reads them.
struct alignas(64) JobDescriptor {
  uint64_t params_addr = 0;  // JobParams* in shared/host memory
  uint64_t status_addr = 0;  // JobStatus*
  uint64_t job_id = 0;
  uint64_t reserved[5] = {0, 0, 0, 0, 0};
};
static_assert(sizeof(JobDescriptor) == 64, "descriptor must be one line");

class SharedJobQueue {
 public:
  /// Creates a ring of `capacity` descriptors inside `arena` (or on the
  /// heap when arena is null — device-only tests).
  static Result<std::unique_ptr<SharedJobQueue>> Create(SharedArena* arena,
                                                        int capacity = 64);
  ~SharedJobQueue();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(SharedJobQueue);

  /// Software side: enqueues a descriptor; false when the ring is full
  /// (the HAL retries / reports back-pressure).
  bool Push(const JobDescriptor& descriptor);

  /// Hardware side: dequeues the oldest descriptor; false when empty.
  bool Pop(JobDescriptor* out);

  bool Empty() const;
  bool Full() const;
  /// Descriptors currently in flight (pushed, not yet popped). Racy by
  /// nature across the producer/consumer, exact from either side alone;
  /// used for queue-depth metrics.
  int64_t Size() const {
    return head_->load(std::memory_order_acquire) -
           tail_->load(std::memory_order_acquire);
  }
  int capacity() const { return capacity_; }
  int64_t total_pushed() const {
    return head_->load(std::memory_order_relaxed);
  }
  /// Base address of the ring storage (published through the DSM).
  const void* ring_address() const { return slots_; }

 private:
  SharedJobQueue(SharedArena* arena, PageRun run, int capacity);

  SharedArena* arena_;
  PageRun run_;
  int capacity_;
  // Layout inside the shared allocation: [head][tail][slots...]; head and
  // tail each own a cache line.
  std::atomic<int64_t>* head_;  // next write position (producer)
  std::atomic<int64_t>* tail_;  // next read position (consumer)
  JobDescriptor* slots_;
  uint8_t* heap_fallback_ = nullptr;
};

}  // namespace doppio
