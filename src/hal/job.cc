#include "hal/job.h"

#include "common/logging.h"

namespace doppio {

Status FpgaJob::Wait() {
  DOPPIO_CHECK(valid());
  DOPPIO_ASSIGN_OR_RETURN(SimTime finish, device_->WaitForJob(id_));
  (void)finish;
  return Status::OK();
}

Status FpgaJob::Wait(SimTime deadline) {
  DOPPIO_CHECK(valid());
  DOPPIO_ASSIGN_OR_RETURN(SimTime finish,
                          device_->WaitForJobUntil(id_, deadline));
  (void)finish;
  return Status::OK();
}

Status FpgaJob::Cancel() {
  DOPPIO_CHECK(valid());
  return device_->CancelJob(id_);
}

bool FpgaJob::Done() const {
  DOPPIO_CHECK(valid());
  return device_->status(id_)->done.load(std::memory_order_acquire) != 0;
}

const JobStatus& FpgaJob::status() const {
  DOPPIO_CHECK(valid());
  return *device_->status(id_);
}

double FpgaJob::HwSeconds() const {
  const JobStatus& st = status();
  return SecondsFromPicos(st.finish_time - st.enqueue_time);
}

}  // namespace doppio
