#include "hal/job.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {

namespace {
obs::Counter& JobWaitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.hal.job_waits", "busy-wait loops entered on the done bit");
  return *c;
}
obs::Histogram& JobLatencyHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.hal.job_latency_virtual_seconds", obs::LatencySecondsBuckets(),
      "virtual time from enqueue to done bit, per completed wait");
  return *h;
}
}  // namespace

Status FpgaJob::Wait() {
  DOPPIO_CHECK(valid());
  JobWaitsCounter().Add();
  DOPPIO_ASSIGN_OR_RETURN(SimTime finish, device_->WaitForJob(id_));
  (void)finish;
  JobLatencyHistogram().Observe(HwSeconds());
  return Status::OK();
}

Status FpgaJob::Wait(SimTime deadline) {
  DOPPIO_CHECK(valid());
  JobWaitsCounter().Add();
  DOPPIO_ASSIGN_OR_RETURN(SimTime finish,
                          device_->WaitForJobUntil(id_, deadline));
  (void)finish;
  JobLatencyHistogram().Observe(HwSeconds());
  return Status::OK();
}

Status FpgaJob::Cancel() {
  DOPPIO_CHECK(valid());
  return device_->CancelJob(id_);
}

bool FpgaJob::Done() const {
  DOPPIO_CHECK(valid());
  return device_->status(id_)->done.load(std::memory_order_acquire) != 0;
}

const JobStatus& FpgaJob::status() const {
  DOPPIO_CHECK(valid());
  return *device_->status(id_);
}

double FpgaJob::HwSeconds() const {
  const JobStatus& st = status();
  return SecondsFromPicos(st.finish_time - st.enqueue_time);
}

}  // namespace doppio
