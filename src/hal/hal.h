// Hardware Operator Abstraction Layer (paper §4.2).
//
// The HAL sits between the HUDF in the database and the Regex Engines: it
// bootstraps the (simulated) FPGA, owns the pinned CPU-FPGA shared region
// with its slab allocator, and provides the job API — create, execute and
// monitor jobs through shared-memory parameter/status structures and a job
// queue.
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "bat/bat.h"
#include "bat/buffer.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "hal/aal.h"
#include "hal/job.h"
#include "hal/job_lifecycle.h"
#include "hw/config_compiler.h"
#include "hw/device_config.h"
#include "hw/device_pool.h"
#include "hw/fpga_device.h"
#include "mem/arena.h"
#include "mem/slab_allocator.h"

namespace doppio {

/// Allocator handed to MonetDB (§4.2.1). Two views exist over the same
/// slab: the *generic* view keeps requests below `malloc_threshold`
/// (16 KB: metadata and auxiliary structures the FPGA never touches) on
/// malloc, while the *BAT* view (threshold 0) places every BAT in the
/// shared region "even if their size is smaller than 256 KB".
class HalAllocator : public BufferAllocator {
 public:
  HalAllocator(SlabAllocator* slab, int64_t malloc_threshold = 16 * 1024);

  Result<void*> Allocate(int64_t bytes) override;
  Status Free(void* ptr) override;

  int64_t malloc_allocations() const { return malloc_allocs_; }
  int64_t shared_allocations() const { return shared_allocs_; }

 private:
  SlabAllocator* slab_;
  int64_t malloc_threshold_;
  std::mutex mutex_;
  std::set<void*> malloced_;
  int64_t malloc_allocs_ = 0;
  int64_t shared_allocs_ = 0;
};

class Hal {
 public:
  struct Options {
    /// Size of the pinned shared region; the prototype caps this at 4 GB
    /// after the paper's kernel-module change.
    int64_t shared_memory_bytes = int64_t{512} << 20;
    DeviceConfig device;
    /// Simulated devices behind this HAL. 1 (the default) is the paper's
    /// deployment and keeps every direct-submit path byte-identical;
    /// larger pools shard partitioned submissions across devices (see
    /// hw/device_pool.h and RegexpFpgaBatchPooled).
    int num_devices = 1;
    /// Per-device fault-plan overrides (index i replaces `device.faults`
    /// for pool member i; shorter vectors leave the rest on the template
    /// plan).
    std::vector<FaultPlan> device_faults;
    /// Host threads for the simulator's functional pass (0 = hardware
    /// concurrency).
    int functional_threads = 0;
    /// Deadline / retry / backoff policy applied by the HUDF when waiting
    /// on jobs. Defaults are generous enough that a fault-free device
    /// never expires a deadline.
    RetryPolicy retry;
  };

  explicit Hal(const Options& options);
  ~Hal();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Hal);

  /// Generic allocator (metadata < 16 KB stays on malloc).
  HalAllocator* allocator() { return allocator_.get(); }
  /// BAT allocator: every request lands in the shared region, so even
  /// tiny BATs are FPGA-visible.
  HalAllocator* bat_allocator() { return bat_allocator_.get(); }
  /// The bootstrapped AAL session of device 0 (AFU handshake done, DSM
  /// live). Every pool member holds its own session; see aal(int).
  AalSession* aal() { return aal_sessions_.front().get(); }
  AalSession* aal(int i) { return aal_sessions_[static_cast<size_t>(i)].get(); }
  SharedArena* arena() { return arena_.get(); }
  /// Device 0 — the paper's direct-submit target. Single-device call
  /// sites keep this handle; pool-aware paths go through pool().
  FpgaDevice* device() { return pool_->device(0); }
  /// The full device topology behind this HAL.
  DevicePool* pool() { return pool_.get(); }
  /// Template configuration every pool member was built from. Program
  /// geometry (PUs, character matchers, states) is uniform across the
  /// pool, so compiling and cost-modeling against the template is always
  /// correct; per-device engine counts can differ — occupancy-sensitive
  /// code must read pool()->device(i)->config().
  const DeviceConfig& device_config() const { return options_.device; }
  const RetryPolicy& retry_policy() const { return options_.retry; }

  /// Creates and enqueues a regex job over a string BAT (steps 3-5 of
  /// Fig. 3). `result` must be a kInt16 BAT pre-sized to input.count()
  /// and allocated through allocator() (the engine writes straight into
  /// its tail). Returns a handle to monitor the job.
  Result<FpgaJob> CreateRegexJob(const Bat& input, Bat* result,
                                 const RegexConfig& config);

  /// Builds the shared-memory parameter block for a regex job without
  /// submitting it. The fault-tolerant lifecycle (hal/job_lifecycle.h)
  /// needs the params to outlive a single Submit so an expired attempt
  /// can be resubmitted.
  Result<JobParams> BuildRegexJobParams(const Bat& input, Bat* result,
                                        const RegexConfig& config) const;

  /// Compiles a pattern against the deployed geometry (fpga_regex_get_config).
  Result<RegexConfig> CompileConfig(std::string_view pattern,
                                    const CompileOptions& options = {}) {
    return CompileRegexConfig(pattern, options_.device, options);
  }

 private:
  Options options_;
  std::unique_ptr<SharedArena> arena_;
  std::unique_ptr<SlabAllocator> slab_;
  std::unique_ptr<HalAllocator> allocator_;
  std::unique_ptr<HalAllocator> bat_allocator_;
  std::unique_ptr<ThreadPool> thread_pool_;
  std::unique_ptr<DevicePool> pool_;
  std::vector<std::unique_ptr<AalSession>> aal_sessions_;
};

}  // namespace doppio
