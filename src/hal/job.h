// Software-side job handle (paper §4.2.2): wraps the job descriptor and
// lets the UDF busy-wait on the done bit and read execution statistics.
#pragma once

#include "common/status.h"
#include "hw/fpga_device.h"
#include "hw/job.h"

namespace doppio {

class FpgaJob {
 public:
  FpgaJob() = default;
  FpgaJob(FpgaDevice* device, JobId id) : device_(device), id_(id) {}

  bool valid() const { return device_ != nullptr; }
  JobId id() const { return id_; }
  /// The device this job was submitted to — with a DevicePool, jobs on
  /// different members carry different devices (and clock domains), so
  /// lifecycle code must derive waits and deadlines from the job's own
  /// device, never from an ambient "the device" handle.
  FpgaDevice* device() const { return device_; }

  /// Busy-waits on the done bit (the prototype has no FPGA-to-CPU
  /// interrupts, §4.2.2). Advances the device's virtual clock.
  Status Wait();

  /// Deadline-bounded busy-wait: gives up once the virtual clock reaches
  /// `deadline` (absolute picoseconds) or the device drains with the job
  /// unfinished. Returns DeadlineExceeded / Unavailable respectively —
  /// both retryable through the job lifecycle (hal/job_lifecycle.h).
  Status Wait(SimTime deadline);

  /// Abandons the job: a queued descriptor is skipped by the distributor.
  Status Cancel();

  /// Non-blocking poll of the done bit.
  bool Done() const;

  /// Status/statistics block; stable once Done().
  const JobStatus& status() const;

  /// Virtual-time duration of the hardware execution (queue + engine).
  double HwSeconds() const;

 private:
  FpgaDevice* device_ = nullptr;
  JobId id_ = -1;
};

}  // namespace doppio
