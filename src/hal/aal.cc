#include "hal/aal.h"

#include <new>

#include "hw/fpga_device.h"

namespace doppio {

Result<std::unique_ptr<AalSession>> AalSession::Bootstrap(
    SharedArena* arena, FpgaDevice* device) {
  if (arena == nullptr || device == nullptr) {
    return Status::InvalidArgument("AAL bootstrap needs arena and device");
  }
  // The DSM page lives in the pinned shared region.
  DOPPIO_ASSIGN_OR_RETURN(PageRun run,
                          arena->AllocatePages(sizeof(DeviceStatusMemory)));
  auto* dsm = new (run.data) DeviceStatusMemory();

  // Hardware side of the handshake: the device publishes its AFU id and
  // raises the completion flag.
  device->PublishDsm(dsm);
  if (dsm->handshake_complete.load(std::memory_order_acquire) == 0) {
    (void)arena->FreePages(run);
    return Status::IOError("FPGA did not complete the AAL handshake");
  }
  const uint64_t afu = dsm->afu_id.load(std::memory_order_relaxed);
  if (afu != kRegexAfuId) {
    (void)arena->FreePages(run);
    return Status::NotFound(
        "unexpected AFU instantiated (wrong bitstream loaded): 0x" +
        std::to_string(afu));
  }
  return std::unique_ptr<AalSession>(
      new AalSession(arena, device, dsm, run));
}

AalSession::~AalSession() {
  dsm_->~DeviceStatusMemory();
  Status st = arena_->FreePages(dsm_run_);
  (void)st;
}

}  // namespace doppio
