// Versioned match-result cache (ROADMAP item 5, docs/RESULT_CACHE.md).
//
// Query streams repeat: the same column scanned by the same (or an
// overlapping) pattern, wave after wave. Following the query-sequence-
// optimization line of work (PAPERS.md), this cache stores the *match
// result block* a scan produced — one uint16 per row: the saturated
// first-match end position, 0 = no match — keyed on
//
//     compiled-program fingerprint × column identity × column version
//
// so a repeat of the same program over the same immutable column snapshot
// is served without occupying an engine, and a *coarser* cached scan (the
// literal/prefix pre-pass of a hybrid plan) can seed the candidate rows
// for a refining pattern (pre-filter reuse, db/hybrid_executor).
//
// Correctness rules, in order of importance:
//  * Completeness guard: a block containing a 65535-saturated value is
//    *truncated* — the kernel reports "matched, true end unknown" — and a
//    fallback-degraded block mixes kernel and software semantics. Neither
//    is ever cached, so truncated data can never seed a pre-filter or be
//    replayed as a complete result.
//  * Versioning: Bat::version() bumps on every append, so entries for the
//    pre-append snapshot become unreachable immediately; explicit
//    InvalidateColumn (db ingest path) frees their budget eagerly.
//  * Snapshot discipline: Get() also checks the stored row count against
//    the caller's admitted row count — a concurrent append between
//    admission and execution misses instead of serving the wrong extent.
//
// Byte-budgeted LRU; all counters mirrored into the metrics registry
// under doppio.sched.result_cache.*.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace doppio {
namespace sched {

/// One cached scan result over one (program, column, version) triple:
/// `values[i]` is the uint16 the result BAT row i held (match end position
/// saturated at 65535, 0 = no match). Immutable once inserted; shared by
/// reference with whoever is serving from it.
struct CachedResultBlock {
  std::vector<uint16_t> values;
  /// Number of nonzero values — the rows_matched a served query reports.
  int64_t rows_matched = 0;

  int64_t rows() const { return static_cast<int64_t>(values.size()); }
  /// Budget charge: payload plus fixed bookkeeping overhead.
  int64_t bytes() const {
    return static_cast<int64_t>(values.size() * sizeof(uint16_t)) + 64;
  }
};

class ResultCache {
 public:
  /// The kernels' saturation value: "matched, end position >= 65535".
  static constexpr uint16_t kSaturated = 65535;

  /// `max_bytes` >= 1: LRU byte budget over the sum of entry bytes().
  explicit ResultCache(int64_t max_bytes);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ResultCache);

  /// Returns the cached block for (fingerprint, column, version) when one
  /// exists AND its row extent equals `rows` (the caller's admission-time
  /// snapshot) — anything else is a miss. A hit promotes the entry and
  /// credits bytes_saved with the rescan output it avoided. Thread-safe.
  std::shared_ptr<const CachedResultBlock> Get(std::string_view fingerprint,
                                               uint64_t column_id,
                                               uint64_t column_version,
                                               int64_t rows);

  /// Partial-extent reuse (ROADMAP item-5 follow-on): returns the LARGEST
  /// cached block for this fingerprint × column whose row extent is
  /// strictly below `rows`. Columns are append-only, so a complete block
  /// over an earlier version is still row-identical over the prefix it
  /// covers — the caller serves those rows from cache and scans only the
  /// appended tail [block->rows(), rows). A find promotes the entry and
  /// counts a partial hit (never a miss — callers try Get() first and
  /// that already counted). Thread-safe.
  std::shared_ptr<const CachedResultBlock> GetPrefix(
      std::string_view fingerprint, uint64_t column_id, int64_t rows);

  /// Inserts a completed scan's result block. Returns false — caching
  /// nothing — when the block is empty, `degraded` (any slice fell back
  /// to software or the run was timing-only), or fails the completeness
  /// guard (contains a kSaturated value). Re-inserting an existing key
  /// just promotes it. Entries larger than the whole budget are refused
  /// rather than evicting everything. Thread-safe.
  bool Put(std::string_view fingerprint, uint64_t column_id,
           uint64_t column_version, std::vector<uint16_t> values,
           bool degraded);

  /// Drops every entry for `column_id`, whatever its version — the ingest
  /// path calls this on append so stale budget is freed eagerly (version
  /// keying alone already makes the entries unreachable).
  void InvalidateColumn(uint64_t column_id);

  /// Drops everything (test isolation).
  void Clear();

  // Pre-filter accounting, counted by the hybrid executor: a `use` is a
  // refinement served from a cached coarser scan; a `reject` is a lookup
  // that found no usable coarser entry (or refused one on the guard).
  void CountPrefilterUse(int64_t rows_avoided);
  void CountPrefilterReject();

  // Lifetime counters (mirrored under doppio.sched.result_cache.*).
  int64_t hits() const;
  int64_t partial_hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t invalidations() const;
  /// Puts refused by the completeness guard (saturated or degraded).
  int64_t incomplete_skipped() const;
  int64_t bytes() const;
  int64_t bytes_saved() const;
  int64_t prefilter_uses() const;
  int64_t prefilter_rejects() const;
  int64_t size() const;
  int64_t max_bytes() const { return max_bytes_; }

  /// The composed entry key, exposed for tests.
  static std::string MakeKey(std::string_view fingerprint, uint64_t column_id,
                             uint64_t column_version);

 private:
  struct Entry {
    std::string key;
    uint64_t column_id = 0;
    std::shared_ptr<const CachedResultBlock> block;
  };

  /// Unlinks the entry at `it` from every index. Caller holds mutex_.
  void EraseLocked(std::list<Entry>::iterator it);
  void SetBytesGaugeLocked();

  const int64_t max_bytes_;

  mutable std::mutex mutex_;
  /// Front = most recently used; back = next eviction victim.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// column id -> keys currently cached for it (explicit invalidation).
  std::unordered_multimap<uint64_t, std::string> by_column_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t partial_hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
  int64_t incomplete_skipped_ = 0;
  int64_t bytes_saved_ = 0;
  int64_t prefilter_uses_ = 0;
  int64_t prefilter_rejects_ = 0;
};

}  // namespace sched
}  // namespace doppio
