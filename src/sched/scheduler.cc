#include "sched/scheduler.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace doppio {
namespace sched {

namespace {

obs::Counter& AdmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.admitted", "queries accepted by scheduler admission");
  return *c;
}

obs::Counter& OverloadedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.rejected_overloaded",
      "queries rejected with Overloaded at admission");
  return *c;
}

obs::Counter& WavesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.waves", "dispatch waves executed");
  return *c;
}

obs::Counter& CoalescedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.coalesced",
      "queries pulled into a wave by same-pattern coalescing");
  return *c;
}

obs::Counter& RouteFpgaCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.route_fpga", "queries dispatched to the device");
  return *c;
}

obs::Counter& RouteCpuCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.route_cpu", "queries routed to the host pool");
  return *c;
}

obs::Counter& RouteCacheCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.route_cache",
      "queries served from the versioned result cache");
  return *c;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.sched.queue_depth",
      "queries admitted and not yet dispatched, all sessions");
  return *g;
}

obs::Histogram& QueueDepthHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.sched.queue_depth_at_admission", obs::DepthBuckets(),
      "global queue depth observed by each successful admission");
  return *h;
}

obs::Histogram& BatchWidthHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.sched.batch_width", obs::DepthBuckets(),
      "queries per FPGA wave");
  return *h;
}

obs::Counter& SetCoalescedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.coalesced",
      "queries pulled into a wave by pattern-set coalescing");
  return *c;
}

obs::Counter& SetWavesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.waves",
      "set-compiled scans submitted (one per multi-pattern batch slot)");
  return *c;
}

obs::Counter& SetQueriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.queries",
      "queries served by a set-compiled scan");
  return *c;
}

obs::Counter& SetFallbackCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.fallback",
      "same-column groups that fell back to multi-pass scans");
  return *c;
}

obs::Histogram& SetWidthHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.sched.set_compile.width", obs::DepthBuckets(),
      "distinct patterns per set-compiled scan");
  return *h;
}

/// Deep copy of a demuxed result column — duplicate-pattern queries of
/// one set scan share a stream, so all but one need their own BAT.
Result<HudfResult> CopyColumn(const HudfResult& source) {
  HudfResult out;
  out.stats = source.stats;
  const int64_t n = source.result->count();
  DOPPIO_ASSIGN_OR_RETURN(out.result, Bat::New(ValueType::kInt16, n));
  DOPPIO_RETURN_NOT_OK(out.result->AppendZeros(n));
  if (n > 0) {
    std::memcpy(out.result->mutable_tail_data(), source.result->tail_data(),
                static_cast<size_t>(n) * 2);
  }
  return out;
}

}  // namespace

namespace internal {

/// One admitted query, shared between the submitting thread, the
/// dispatcher that executes it, and the waiter that collects it. The
/// routing fields are immutable after Submit; the completion fields are
/// written by the dispatcher (CPU requests: before the pool future is
/// waited) and read by waiters only after `done` flips under the
/// scheduler mutex.
struct Request {
  Session* session = nullptr;
  const Bat* input = nullptr;
  std::string pattern;
  CompileOptions options;
  std::shared_ptr<const CachedProgram> program;  // null for kCpuDfa
  std::string key;  // ProgramCache::MakeKey — wave-coalescing identity
  Route route = Route::kFpga;
  int64_t cost_rows = 1;  // DRR charge
  bool timing_only = false;
  Stopwatch latency_watch;  // admission -> completion, host wall clock

  // --- Admission snapshot (docs/RESULT_CACHE.md) --------------------------
  // The column's identity, content version and row count as of Submit.
  // Execution scans exactly admit_rows rows whatever the input grows to,
  // and the result cache keys on (fingerprint, column_id, admit_version).
  uint64_t column_id = 0;
  uint64_t admit_version = 0;
  int64_t admit_rows = 0;
  /// Set once per request by the dispatcher's cache sweep so a request
  /// re-queued across waves cannot inflate the miss counter.
  bool cache_checked = false;
  /// The cached block serving this request (Route::kCache only).
  std::shared_ptr<const CachedResultBlock> cached;
  /// Partial-extent serve (docs/RESULT_CACHE.md): a cached block from a
  /// shorter, earlier version of this append-only column. It answers rows
  /// [0, prefix->rows()) verbatim; execution scans only the appended tail
  /// [prefix->rows(), admit_rows) and the merged block re-enters the
  /// cache under the current version. Null = full scan.
  std::shared_ptr<const CachedResultBlock> prefix;
  /// One GetPrefix probe per request, mirroring cache_checked.
  bool prefix_checked = false;

  // --- Completion state ---------------------------------------------------
  bool done = false;
  bool waited = false;
  Status status;
  HudfResult hudf;
  uint64_t completion_seq = 0;
  int batch_width = 1;
  int set_width = 1;
};

}  // namespace internal

using internal::Request;

QueryTicket::QueryTicket(std::shared_ptr<Request> request)
    : request_(std::move(request)) {}

QueryScheduler::QueryScheduler(Hal* hal)
    : QueryScheduler(hal, Options()) {}

QueryScheduler::QueryScheduler(Hal* hal, Options options)
    : hal_(hal),
      options_(options),
      cache_(hal->device_config(), options.program_cache_capacity),
      pool_(std::max(1, options.cpu_threads)) {
  DOPPIO_CHECK(hal_ != nullptr);
  DOPPIO_CHECK(options_.global_queue_limit >= 1);
  DOPPIO_CHECK(options_.quantum_rows >= 1);
  DOPPIO_CHECK(options_.max_batch_width >= 1);
  if (options_.set_compilation) {
    // 64 = the config-vector's tagged-accept stream bound.
    DOPPIO_CHECK(options_.max_set_patterns >= 2);
    DOPPIO_CHECK(options_.max_set_patterns <= 64);
  }
  if (options_.cost_routing) {
    cost_model_ = std::make_unique<OperatorCostModel>(
        hal_->device_config(), OperatorCostModel::Measure());
  }
  if (options_.result_cache) {
    results_ = std::make_unique<ResultCache>(options_.result_cache_bytes);
  }
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

void QueryScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!shutting_down_) {
      shutting_down_ = true;
      // Fail everything still queued: nobody will dispatch it anymore.
      for (auto& [session, queue] : queues_) {
        for (auto& request : queue) {
          request->done = true;
          request->status =
              Status::Unavailable("scheduler shut down with query queued");
          request->session->completed_.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
        session->queued_ = 0;
        queue.clear();
      }
      global_queued_ = 0;
      QueueDepthGauge().Set(0);
    }
    cv_.notify_all();
    // An in-flight wave finishes normally; wait it out so the device and
    // the pool see no new work after this point.
    cv_.wait(lock, [this] { return !dispatch_active_; });
  }
  // Deterministic teardown: every CPU-routed slice already handed to the
  // pool runs to completion before the workers join.
  pool_.Shutdown();
}

Session* QueryScheduler::CreateSession(SessionOptions options) {
  std::string metric_name =
      "doppio.sched.tenant." + options.tenant + ".latency_seconds";
  obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      metric_name, obs::LatencySecondsBuckets(),
      "admission-to-completion latency for this tenant's queries");
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.emplace_back(new Session(std::move(options), latency));
  Session* session = sessions_.back().get();
  queues_[session];  // materialize the queue slot
  return session;
}

Result<QueryTicket> QueryScheduler::Submit(Session* session, const Bat& input,
                                           std::string_view pattern,
                                           const CompileOptions& options) {
  if (session == nullptr) {
    return Status::InvalidArgument("null session");
  }
  if (input.type() != ValueType::kString) {
    return Status::InvalidArgument("regex job input must be a string BAT");
  }

  auto request = std::make_shared<Request>();
  request->session = session;
  request->input = &input;
  request->pattern = std::string(pattern);
  request->options = options;
  request->key = ProgramCache::MakeKey(pattern, options);
  request->timing_only = options_.timing_only;
  // Admission snapshot: the query scans exactly the rows visible NOW. An
  // append landing between here and wave execution bumps the version (so
  // the cache never pairs this snapshot with post-append rows) and grows
  // the count (which execution ignores in favour of admit_rows).
  request->column_id = input.id();
  request->admit_version = input.version();
  request->admit_rows = input.count();
  request->cost_rows = std::max<int64_t>(request->admit_rows, 1);

  // Route at admission: compile (or hit the cache), overflow to the CPU
  // DFA when the pattern exceeds the geometry, and consult the cost model
  // for inputs the host serves faster than a device round-trip.
  auto compiled = cache_.GetOrCompile(pattern, options);
  if (compiled.ok()) {
    request->program = *compiled;
    request->route = Route::kFpga;
  } else if (compiled.status().IsCapacityExceeded()) {
    request->route = Route::kCpuDfa;
  } else {
    return compiled.status();
  }
  // DOPPIO_FORCE_BACKEND=fpga pins eligible work on the device: no
  // cost-model CPU routing (over-capacity patterns still go kCpuDfa —
  // the device cannot hold them at all).
  const bool force_fpga = ForcedBackend() == BackendId::kFpgaSim;
  if (request->route == Route::kFpga && options_.cost_routing &&
      !options_.timing_only && !force_fpga) {
    if (input.count() <= options_.cpu_route_max_rows) {
      request->route = Route::kCpuProgram;
    } else if (cost_model_ != nullptr) {
      TableStats stats;
      stats.rows = input.count();
      stats.heap_bytes = input.heap()->size_bytes();
      auto fpga_seconds = cost_model_->PredictFpga(request->pattern, stats);
      // The CPU route runs the registry-chosen host backend on one pool
      // worker; the prediction knows which backend that is.
      auto host = cost_model_->PredictHostProgram(request->pattern, stats);
      if (fpga_seconds.ok() && host.ok() &&
          host->seconds < *fpga_seconds) {
        request->route = Route::kCpuProgram;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Unavailable("scheduler is shut down");
    }
    if (global_queued_ >= options_.global_queue_limit) {
      session->rejected_.fetch_add(1, std::memory_order_relaxed);
      OverloadedCounter().Add();
      return Status::Overloaded("scheduler global queue full (" +
                                std::to_string(global_queued_) +
                                " queries queued)");
    }
    if (session->queued_ >= session->options().max_queued) {
      session->rejected_.fetch_add(1, std::memory_order_relaxed);
      OverloadedCounter().Add();
      return Status::Overloaded("session queue full for tenant '" +
                                session->tenant() + "' (" +
                                std::to_string(session->queued_) +
                                " queries queued)");
    }
    queues_[session].push_back(request);
    ++session->queued_;
    ++global_queued_;
    session->admitted_.fetch_add(1, std::memory_order_relaxed);
    AdmittedCounter().Add();
    QueueDepthGauge().Set(global_queued_);
    QueueDepthHistogram().Observe(static_cast<double>(global_queued_));
  }
  cv_.notify_all();
  return QueryTicket(std::move(request));
}

Result<ScheduledResult> QueryScheduler::Wait(const QueryTicket& ticket) {
  if (!ticket.valid()) {
    return Status::InvalidArgument("invalid (default) query ticket");
  }
  std::shared_ptr<Request> request = ticket.request_;

  std::unique_lock<std::mutex> lock(mutex_);
  while (!request->done) {
    if (!dispatch_active_ && !shutting_down_ && global_queued_ > 0) {
      // This waiter becomes the dispatcher for one wave: assemble under
      // the lock, execute outside it (the device serializes internally),
      // finalize back under the lock. Other waiters sleep meanwhile.
      dispatch_active_ = true;
      Wave wave = PickWaveLocked();
      lock.unlock();
      ExecuteWave(&wave);
      lock.lock();
      dispatch_active_ = false;
      FinalizeWaveLocked(&wave);
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  if (request->waited) {
    return Status::InvalidArgument("query ticket already waited on");
  }
  request->waited = true;
  if (!request->status.ok()) return request->status;

  ScheduledResult out;
  out.hudf = std::move(request->hudf);
  out.route = request->route;
  out.completion_seq = request->completion_seq;
  out.batch_width = request->batch_width;
  out.set_width = request->set_width;
  return out;
}

Result<ScheduledResult> QueryScheduler::Execute(Session* session,
                                                const Bat& input,
                                                std::string_view pattern,
                                                const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(QueryTicket ticket,
                          Submit(session, input, pattern, options));
  return Wait(ticket);
}

Result<HudfResult> QueryScheduler::Gate::ExecuteRegex(
    const Bat& input, std::string_view pattern,
    const CompileOptions& options) {
  DOPPIO_ASSIGN_OR_RETURN(
      ScheduledResult scheduled,
      scheduler_->Execute(session_, input, pattern, options));
  return std::move(scheduled.hudf);
}

int QueryScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_queued_;
}

QueryScheduler::Wave QueryScheduler::PickWaveLocked() {
  Wave wave;
  const int width = options_.max_batch_width;
  const size_t n = sessions_.size();

  // Result-cache sweep: before any deficit accounting, serve session heads
  // whose admission snapshot (fingerprint, column, version, rows) hits the
  // cache. A hit is a zero-cost grant — the session's deficit is not
  // charged, because the query consumes no engine time. Popping a head can
  // expose another hit behind it, so sweep until a full pass pulls
  // nothing. Head-of-line only: per-session FIFO order is preserved.
  if (results_ != nullptr) {
    bool pulled = true;
    while (pulled) {
      pulled = false;
      for (const auto& owned : sessions_) {
        Session* session = owned.get();
        auto& queue = queues_[session];
        if (queue.empty()) continue;
        std::shared_ptr<Request>& head = queue.front();
        if (head->program == nullptr ||
            (head->route != Route::kFpga &&
             head->route != Route::kCpuProgram)) {
          continue;  // kCpuDfa results use 32767 software semantics
        }
        auto block =
            results_->Get(head->program->fingerprint, head->column_id,
                          head->admit_version, head->admit_rows);
        if (block == nullptr) {
          // Exact miss: remember the largest cached block of an earlier
          // (shorter) version of this append-only column, if any. The
          // request still scans — but only the appended tail, with the
          // prefix served from this block at merge time. Probed once per
          // request; the request stays queued with normal DRR charging.
          if (!head->prefix_checked) {
            head->prefix_checked = true;
            head->prefix = results_->GetPrefix(
                head->program->fingerprint, head->column_id,
                head->admit_rows);
          }
          continue;
        }
        head->cached = std::move(block);
        wave.cached.push_back(std::move(head));
        queue.pop_front();
        --session->queued_;
        --global_queued_;
        pulled = true;
      }
    }
  }

  // Deficit round-robin. The outer loop makes progress inevitable: every
  // pass refills each non-empty session's deficit by quantum x weight, so
  // any head-of-line request is eventually affordable no matter how large
  // its row count is relative to the quantum.
  while (wave.empty() && global_queued_ > 0) {
    for (size_t step = 0; step < n; ++step) {
      Session* session = sessions_[(rr_cursor_ + step) % n].get();
      auto& queue = queues_[session];
      if (queue.empty()) {
        session->deficit_rows_ = 0;  // classic DRR: idle queues hold no credit
        continue;
      }
      session->deficit_rows_ +=
          options_.quantum_rows * session->options().weight;
      while (!queue.empty() &&
             static_cast<int>(wave.fpga.size()) < width &&
             static_cast<int>(wave.cpu.size()) < width) {
        std::shared_ptr<Request>& head = queue.front();
        if (head->cost_rows > session->deficit_rows_) break;
        session->deficit_rows_ -= head->cost_rows;
        (head->route == Route::kFpga ? wave.fpga : wave.cpu)
            .push_back(std::move(head));
        queue.pop_front();
        --session->queued_;
        --global_queued_;
      }
      if (static_cast<int>(wave.fpga.size()) >= width &&
          static_cast<int>(wave.cpu.size()) >= width) {
        break;
      }
    }
    rr_cursor_ = n == 0 ? 0 : (rr_cursor_ + 1) % n;
  }

  // Same-pattern coalescing: pull head-of-line queries that share a wave
  // member's compiled program into this wave (across sessions), charging
  // their sessions' deficits. Head-of-line only, so per-session FIFO
  // order is preserved.
  bool changed = true;
  while (changed && static_cast<int>(wave.fpga.size()) < width) {
    changed = false;
    for (const auto& owned : sessions_) {
      Session* session = owned.get();
      auto& queue = queues_[session];
      if (queue.empty()) continue;
      std::shared_ptr<Request>& head = queue.front();
      if (head->route != Route::kFpga) continue;
      bool compatible = false;
      for (const auto& member : wave.fpga) {
        if (member->key == head->key) {
          compatible = true;
          break;
        }
      }
      if (!compatible) continue;
      session->deficit_rows_ -= head->cost_rows;  // may go negative: a loan
      wave.fpga.push_back(std::move(head));
      queue.pop_front();
      --session->queued_;
      --global_queued_;
      CoalescedCounter().Add();
      changed = true;
      if (static_cast<int>(wave.fpga.size()) >= width) break;
    }
  }

  // Pattern-set coalescing (opt-in): pull head-of-line FPGA queries whose
  // pattern DIFFERS from a wave member's but scans the SAME input column,
  // when the union of the group's distinct programs still fits one PU
  // (exact on states; conservative on matchers, since token dedup can
  // only shrink the union). Such queries join an existing batch slot
  // instead of consuming a new one, so the width cap does not apply — but
  // each pulled query is charged to ITS OWN session's deficit, exactly
  // like same-pattern coalescing: a set-compiled scan serving K tenants
  // debits every tenant for the rows it asked to scan, so sharing a scan
  // never lets a heavy tenant ride free on a light one's turn.
  // Head-of-line only, preserving per-session FIFO order.
  if (options_.set_compilation) {
    const DeviceConfig& device = hal_->device_config();
    bool pulled = true;
    while (pulled) {
      pulled = false;
      for (const auto& owned : sessions_) {
        Session* session = owned.get();
        auto& queue = queues_[session];
        if (queue.empty()) continue;
        std::shared_ptr<Request>& head = queue.front();
        if (head->route != Route::kFpga || head->program == nullptr) {
          continue;
        }
        // The candidate's same-column group in the current wave.
        bool same_input = false;
        bool same_key = false;
        int distinct_keys = 0;
        int states = 0;
        int matchers = 0;
        std::vector<std::string_view> keys_seen;
        for (const auto& member : wave.fpga) {
          if (member->input != head->input) continue;
          same_input = true;
          if (member->key == head->key) same_key = true;
          bool counted = false;
          for (std::string_view key : keys_seen) {
            if (key == member->key) {
              counted = true;
              break;
            }
          }
          if (counted) continue;
          keys_seen.push_back(member->key);
          ++distinct_keys;
          states += member->program->config.states_used;
          matchers += member->program->config.matchers_used;
        }
        // Same-key pulls are the classic pass's job (and bounded by the
        // width cap); this pass only grows the *pattern set*.
        if (!same_input || same_key) continue;
        if (distinct_keys + 1 > options_.max_set_patterns) continue;
        if (states + head->program->config.states_used > device.max_states) {
          continue;
        }
        if (matchers + head->program->config.matchers_used >
            device.max_chars) {
          continue;
        }
        session->deficit_rows_ -= head->cost_rows;  // may go negative: a loan
        wave.fpga.push_back(std::move(head));
        queue.pop_front();
        --session->queued_;
        --global_queued_;
        SetCoalescedCounter().Add();
        pulled = true;
      }
    }
  }

  QueueDepthGauge().Set(global_queued_);
  WavesCounter().Add();
  return wave;
}

void QueryScheduler::ExecuteWave(Wave* wave) {
  // Cache-served queries first: re-validate each block against the
  // request's admission snapshot, serve the ones that hold, and
  // reject-and-retry the rest into this same wave's normal routes (the
  // defensive arm of the stale-read fix — a block whose extent disagrees
  // with the snapshot must rescan, never serve).
  if (!wave->cached.empty()) {
    std::vector<std::shared_ptr<Request>> serve;
    serve.reserve(wave->cached.size());
    for (auto& request : wave->cached) {
      Request* raw = request.get();
      if (raw->cached != nullptr &&
          raw->cached->rows() == raw->admit_rows) {
        serve.push_back(std::move(request));
        continue;
      }
      raw->cached.reset();
      (raw->route == Route::kFpga ? wave->fpga : wave->cpu)
          .push_back(std::move(request));
    }
    wave->cached = std::move(serve);
    for (auto& request : wave->cached) ServeCachedRequest(request.get());
    RouteCacheCounter().Add(static_cast<int64_t>(wave->cached.size()));
  }

  // CPU-routed queries overlap with the device wave on the pool.
  std::vector<std::future<void>> futures;
  futures.reserve(wave->cpu.size());
  for (auto& request : wave->cpu) {
    Request* raw = request.get();
    futures.push_back(pool_.Submit([this, raw] { RunCpuRequest(raw); }));
  }

  if (!wave->fpga.empty()) {
    // Plan the wave's batch slots. Default: one slot per request, exactly
    // the historical layout. With set compilation on, requests over the
    // same input column group together, and a group spanning >= 2
    // distinct programs compiles to ONE set scan (union NFA with tagged
    // accepts) whose streams demux per query after the wave. A union that
    // fails to compile (capacity, ultimately) degrades the group back to
    // classic one-slot-per-request scans — the multi-pass fallback.
    struct Slot {
      std::vector<Request*> members;
      std::shared_ptr<const CachedSetProgram> set;  // null: classic slot
    };
    std::vector<Slot> slots;
    if (options_.set_compilation) {
      std::vector<std::vector<Request*>> groups;
      for (auto& request : wave->fpga) {
        Request* raw = request.get();
        if (raw->prefix != nullptr) {
          // Partial-extent requests scan a private [first_row, rows)
          // span; a set slot shares ONE full scan, so they get their own
          // classic slot instead of joining (or seeding) a group.
          slots.push_back(Slot{{raw}, nullptr});
          continue;
        }
        bool placed = false;
        for (auto& group : groups) {
          // A set slot shares ONE scan, so members must agree on the
          // admission snapshot, not just the column pointer.
          if (group.front()->input == raw->input &&
              group.front()->admit_rows == raw->admit_rows &&
              group.front()->admit_version == raw->admit_version) {
            group.push_back(raw);
            placed = true;
            break;
          }
        }
        if (!placed) groups.push_back({raw});
      }
      for (auto& group : groups) {
        std::vector<std::shared_ptr<const CachedProgram>> distinct;
        for (Request* raw : group) {
          bool seen = false;
          for (const auto& program : distinct) {
            if (program->fingerprint == raw->program->fingerprint) {
              seen = true;
              break;
            }
          }
          if (!seen) distinct.push_back(raw->program);
        }
        if (distinct.size() < 2) {
          // One pattern (possibly several queries of it): classic slots.
          for (Request* raw : group) slots.push_back(Slot{{raw}, nullptr});
          continue;
        }
        auto set = cache_.GetOrCompileSet(distinct);
        if (set.ok()) {
          slots.push_back(Slot{std::move(group), std::move(*set)});
        } else {
          SetFallbackCounter().Add();
          for (Request* raw : group) slots.push_back(Slot{{raw}, nullptr});
        }
      }
    } else {
      slots.reserve(wave->fpga.size());
      for (auto& request : wave->fpga) {
        slots.push_back(Slot{{request.get()}, nullptr});
      }
    }

    const int batch_width = static_cast<int>(slots.size());
    // Split the pool's engines across the wave's slots: a full-width wave
    // gives each slot one engine; a singleton keeps the paper's
    // all-engines partitioning. With one device and no set slots this
    // equals the historical num_engines / batch_width.
    const int partitions = std::max(
        1, hal_->pool()->total_engines() / batch_width);
    std::vector<FpgaBatchQuery> queries(slots.size());
    std::vector<FpgaBatchQuery*> pointers;
    pointers.reserve(queries.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      const Request& lead = *slot.members.front();
      queries[i].input = lead.input;
      queries[i].partitions = partitions;
      queries[i].timing_only = lead.timing_only;
      queries[i].rows = lead.admit_rows;  // admission snapshot
      if (slot.set == nullptr && lead.prefix != nullptr) {
        // Tail-only scan: the cached prefix already answers
        // [0, prefix->rows()); the device scans the appended remainder.
        queries[i].first_row =
            std::min(lead.prefix->rows(), lead.admit_rows);
      }
      if (slot.set != nullptr) {
        queries[i].config = &slot.set->config;
        queries[i].streams =
            static_cast<int>(slot.set->member_fingerprints.size());
        queries[i].span_name = "sched_fpga_set";
      } else {
        queries[i].config = &lead.program->config;
        queries[i].span_name = "sched_fpga";
      }
      pointers.push_back(&queries[i]);
    }
    // Device-aware entry: shards the wave across the pool and steals work
    // from stalled members; a pool of one takes the exact historical path.
    Status status = RegexpFpgaBatchPooled(hal_, pointers);
    int set_slots = 0;
    int64_t set_queries = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      if (!status.ok()) {
        for (Request* raw : slot.members) raw->status = status;
        continue;
      }
      if (slot.set == nullptr) {
        Request& request = *slot.members.front();
        request.hudf = std::move(queries[i].out);
        request.batch_width = batch_width;
        if (request.prefix != nullptr && request.status.ok()) {
          MergePrefixResult(&request);
        }
        continue;
      }
      ++set_slots;
      SetWidthHistogram().Observe(static_cast<double>(queries[i].streams));
      // Demux: each member takes its pattern's stream. Duplicate-pattern
      // members share a stream; all but the last copy the column.
      std::vector<int> uses(static_cast<size_t>(queries[i].streams), 0);
      for (Request* raw : slot.members) {
        const int stream = slot.set->StreamOf(raw->program->fingerprint);
        DOPPIO_CHECK(stream >= 0);
        ++uses[static_cast<size_t>(stream)];
      }
      for (Request* raw : slot.members) {
        const int stream = slot.set->StreamOf(raw->program->fingerprint);
        HudfResult& source =
            queries[i].set_outputs[static_cast<size_t>(stream)];
        if (--uses[static_cast<size_t>(stream)] == 0) {
          raw->hudf = std::move(source);
        } else {
          auto copy = CopyColumn(source);
          if (!copy.ok()) {
            raw->status = copy.status();
            continue;
          }
          raw->hudf = std::move(*copy);
        }
        raw->batch_width = batch_width;
        raw->set_width = queries[i].streams;
        ++set_queries;
      }
    }
    if (set_slots > 0) {
      SetWavesCounter().Add(set_slots);
      SetQueriesCounter().Add(set_queries);
    }
    // Offer every completed scan to the result cache (set members insert
    // under their own member fingerprint — the demuxed stream is
    // bit-identical to a solo run of that member). The completeness guard
    // inside Put refuses saturated or fallback-degraded blocks.
    if (results_ != nullptr) {
      for (auto& request : wave->fpga) MaybeCacheResult(request.get());
    }
    RouteFpgaCounter().Add(static_cast<int64_t>(wave->fpga.size()));
    BatchWidthHistogram().Observe(static_cast<double>(batch_width));
  }

  for (auto& future : futures) future.wait();
  RouteCpuCounter().Add(static_cast<int64_t>(wave->cpu.size()));
}

void QueryScheduler::RunCpuRequest(Request* request) {
  const Bat& input = *request->input;
  // Admission snapshot: scan exactly the rows visible at Submit, however
  // much the column has grown since (min() is defensive — counts never
  // shrink).
  const int64_t rows =
      std::min<int64_t>(request->admit_rows, input.count());
  HudfResult out;
  out.stats.rows_scanned = rows;
  Stopwatch cpu_watch;
  Status status;

  if (request->route == Route::kCpuProgram) {
    // Same compiled program the engines execute, through the registry-
    // chosen host backend — results bit-identical to the hardware
    // functional pass by construction.
    out.stats.strategy = "sched_cpu";
    // Partial-extent serve: the cached prefix block answers [0, first);
    // the host backend scans only the appended tail.
    const int64_t first =
        request->prefix != nullptr ? std::min(request->prefix->rows(), rows)
                                   : 0;
    auto result = Bat::New(ValueType::kInt16, rows);
    if (result.ok()) {
      out.result = std::move(*result);
      status = out.result->AppendZeros(rows);
      if (status.ok() && rows > first) {
        const uint32_t* all_offsets =
            reinterpret_cast<const uint32_t*>(input.tail_data());
        JobParams params;
        params.offsets = input.tail_data() + first * input.offset_width();
        params.heap = input.heap()->data();
        params.result =
            out.result->mutable_tail_data() + first * sizeof(uint16_t);
        params.count = rows - first;
        params.offset_width = static_cast<int32_t>(input.offset_width());
        params.heap_bytes = rows < input.count()
                                ? static_cast<int64_t>(all_offsets[rows])
                                : input.heap()->size_bytes();
        params.config = request->program->config.vector.bytes();
        HostSliceInfo info;
        auto matches = RunHostSlice(hal_->device_config(), params,
                                    request->program->program, &info);
        if (matches.ok()) {
          out.stats.rows_matched = *matches;
          out.stats.pu_kernel = info.kernel;
        } else {
          status = matches.status();
        }
      }
      if (status.ok() && first > 0) {
        std::memcpy(out.result->mutable_tail_data(),
                    request->prefix->values.data(),
                    static_cast<size_t>(first) * sizeof(uint16_t));
        out.stats.rows_matched += request->prefix->rows_matched;
        out.stats.strategy = "sched_cpu+cache_prefix";
      }
    } else {
      status = result.status();
    }
  } else {
    // The pattern exceeds the deployed geometry: full software scan on
    // the lazy DFA (the planner's software strategy, shared with the
    // hybrid executor via db/hudf.h).
    auto scan = RunDfaScanInSoftware(input, request->pattern,
                                     request->options, rows);
    if (scan.ok()) {
      out = std::move(*scan);
    } else {
      status = scan.status();
    }
  }

  out.stats.udf_software_seconds = cpu_watch.ElapsedSeconds();
  if (status.ok()) {
    request->hudf = std::move(out);
    // kCpuProgram results carry device Match semantics, so they are as
    // cacheable as a device scan; kCpuDfa's 32767-capped software values
    // are not (MaybeCacheResult skips them — no program, no fingerprint).
    if (request->route == Route::kCpuProgram && results_ != nullptr) {
      MaybeCacheResult(request);
    }
  } else {
    request->status = status;
  }
}

void QueryScheduler::ServeCachedRequest(Request* request) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const obs::TraceId trace = tracer.BeginQuery("sched_cache_hit");
  HudfResult out;
  out.stats.trace_id = trace;
  out.stats.strategy = "fpga-cache";
  out.stats.rows_scanned = request->admit_rows;
  out.stats.rows_matched = request->cached->rows_matched;
  Stopwatch copy_watch;
  auto result = Bat::New(ValueType::kInt16, request->admit_rows,
                         hal_->bat_allocator());
  Status status = result.ok() ? Status::OK() : result.status();
  if (status.ok()) {
    out.result = std::move(*result);
    status = out.result->AppendZeros(request->admit_rows);
  }
  if (status.ok() && request->admit_rows > 0) {
    std::memcpy(out.result->mutable_tail_data(),
                request->cached->values.data(),
                static_cast<size_t>(request->admit_rows) * sizeof(uint16_t));
  }
  // hw_seconds stays 0: no engine ran. The copy is the whole cost.
  out.stats.udf_software_seconds = copy_watch.ElapsedSeconds();
  if (trace != obs::kInvalidTraceId) {
    tracer.RecordInstant(trace, "cache_hit", hal_->device()->now());
  }
  tracer.EndQuery(trace);
  if (status.ok()) {
    request->route = Route::kCache;
    request->hudf = std::move(out);
    request->session->cache_served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    request->status = status;
  }
}

void QueryScheduler::MergePrefixResult(Request* request) {
  // Stitch the tail-only scan back to full column extent: cached prefix
  // values for [0, first_row), the scanned tail behind them. The merged
  // column is bit-identical to a full scan of the snapshot (append-only
  // columns: the prefix rows' strings are unchanged), so MaybeCacheResult
  // can cache it under the current version afterwards.
  const CachedResultBlock& prefix = *request->prefix;
  const int64_t first = std::min(prefix.rows(), request->admit_rows);
  HudfResult& hudf = request->hudf;
  if (hudf.result == nullptr ||
      hudf.result->count() != request->admit_rows - first) {
    return;  // degenerate/unknown layout; leave the raw tail untouched
  }
  auto full = Bat::New(ValueType::kInt16, request->admit_rows,
                       hal_->bat_allocator());
  Status status = full.ok() ? Status::OK() : full.status();
  if (status.ok()) status = (*full)->AppendZeros(request->admit_rows);
  if (!status.ok()) {
    request->status = status;
    return;
  }
  std::memcpy((*full)->mutable_tail_data(), prefix.values.data(),
              static_cast<size_t>(first) * sizeof(uint16_t));
  if (request->admit_rows > first) {
    std::memcpy((*full)->mutable_tail_data() + first * sizeof(uint16_t),
                hudf.result->tail_data(),
                static_cast<size_t>(request->admit_rows - first) *
                    sizeof(uint16_t));
  }
  hudf.result = std::move(*full);
  hudf.stats.rows_matched += prefix.rows_matched;
  hudf.stats.rows_scanned = request->admit_rows;  // like a cache serve
  hudf.stats.strategy += "+cache_prefix";
}

void QueryScheduler::MaybeCacheResult(Request* request) {
  if (results_ == nullptr || request->program == nullptr) return;
  if (!request->status.ok() || request->timing_only) return;
  const HudfResult& hudf = request->hudf;
  if (hudf.result == nullptr || hudf.result->count() != request->admit_rows) {
    return;
  }
  const bool degraded = hudf.stats.fallback_rows > 0;
  const uint16_t* data =
      reinterpret_cast<const uint16_t*>(hudf.result->tail_data());
  std::vector<uint16_t> values(data, data + request->admit_rows);
  results_->Put(request->program->fingerprint, request->column_id,
                request->admit_version, std::move(values), degraded);
}

void QueryScheduler::FinalizeWaveLocked(Wave* wave) {
  auto finalize = [this](std::shared_ptr<Request>& request) {
    request->done = true;
    request->completion_seq = ++completion_counter_;
    request->session->completed_.fetch_add(1, std::memory_order_relaxed);
    request->session->latency_->Observe(
        request->latency_watch.ElapsedSeconds());
  };
  for (auto& request : wave->fpga) finalize(request);
  for (auto& request : wave->cpu) finalize(request);
  for (auto& request : wave->cached) finalize(request);
}

}  // namespace sched
}  // namespace doppio
