// LRU cache of compiled regex programs, shared across queries and tenants.
//
// The paper's config-vector compile is cheap (< 1 µs), but the simulator's
// functional path also compiles a PU kernel program per configuration
// (hw/pu_kernel) — decode, byte-class partition, possibly literal-stage
// extraction — and concurrent clients overwhelmingly re-issue the same
// handful of patterns (the Fig. 11 workload). The cache looks up by
// (pattern, CompileOptions) but stores by the *compiled-program
// fingerprint* — the canonical config-vector bytes — so textually
// different patterns that compile to the identical program (e.g. the
// case-insensitive spellings of one literal) alias onto one LRU slot
// instead of occupying two. Every alias of a slot promotes and keeps the
// same immutable RegexConfig + CompiledPuProgram alive; a cache hit
// executes the exact same program a cold compile would have produced.
//
// The cache also holds *set programs* (docs/PATTERN_SETS.md): union NFAs
// with tagged accepts compiled from several cached members. Set entries
// are keyed on the sorted unique member fingerprints, so the same set of
// patterns coalesced in any order — or spelled with aliasing textual
// variants — resolves to one cached compilation, and the sorted order IS
// the output-stream order.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "hw/config_compiler.h"
#include "hw/device_config.h"
#include "hw/pu_kernel.h"
#include "regex/matcher.h"

namespace doppio {
namespace sched {

/// One cached compilation: the configuration vector (what the device
/// loads) and the compiled PU program (what the functional pass and the
/// CPU route execute). Immutable once inserted; shared by reference.
struct CachedProgram {
  RegexConfig config;
  std::shared_ptr<const CompiledPuProgram> program;
  /// Canonical identity: the encoded config-vector bytes. Two patterns
  /// with equal fingerprints are semantically identical by construction
  /// (the device consumes nothing but these bytes).
  std::string fingerprint;
};

/// One cached *set* compilation: the union NFA with tagged accepts over
/// `member_fingerprints` (sorted unique — pattern k of the sorted order
/// reports on output stream k). Immutable once inserted.
struct CachedSetProgram {
  RegexConfig config;
  std::shared_ptr<const CompiledPuProgram> program;
  /// Sorted unique member fingerprints; index in this vector = the
  /// member's output stream in the compiled program.
  std::vector<std::string> member_fingerprints;

  /// Stream index of `fingerprint`, or -1 when it is not a member.
  int StreamOf(std::string_view fingerprint) const;
};

class ProgramCache {
 public:
  /// `capacity` >= 1: the maximum number of distinct compiled programs
  /// kept (fingerprint slots, however many textual aliases each has); the
  /// least-recently-used slot is evicted beyond that. Set programs are
  /// held in a second LRU of the same capacity.
  ProgramCache(const DeviceConfig& device, int capacity);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ProgramCache);

  /// Returns the cached compilation for (pattern, options), compiling and
  /// inserting it on a miss. A miss whose compiled fingerprint matches an
  /// existing slot aliases onto that slot (no second copy is kept — the
  /// double-compile is discarded). Compile failures (e.g.
  /// CapacityExceeded when the pattern does not fit the deployed
  /// geometry) are returned and NOT cached — a failed pattern never
  /// occupies a slot. Thread-safe.
  Result<std::shared_ptr<const CachedProgram>> GetOrCompile(
      std::string_view pattern, const CompileOptions& options = {});

  /// Returns the cached set compilation over `members` (each obtained
  /// from GetOrCompile), compiling the union NFA on a miss. Members are
  /// deduplicated by fingerprint and ordered canonically (sorted
  /// fingerprints), so the same pattern set in any order resolves to one
  /// entry. Fails with CapacityExceeded — not cached — when the union
  /// does not fit one PU; the caller falls back to multi-pass execution.
  Result<std::shared_ptr<const CachedSetProgram>> GetOrCompileSet(
      const std::vector<std::shared_ptr<const CachedProgram>>& members);

  /// Canonical cache key for (pattern, options) — exposed so tests and the
  /// scheduler's coalescing pass can compare compatibility without holding
  /// a CachedProgram.
  static std::string MakeKey(std::string_view pattern,
                             const CompileOptions& options);

  // Lifetime counters (also mirrored in the metrics registry under
  // doppio.sched.program_cache.{hits,misses,evictions} and
  // doppio.sched.set_compile.{cache_hits,cache_misses}).
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t set_hits() const;
  int64_t set_misses() const;
  int size() const;
  int set_size() const;
  int capacity() const { return capacity_; }

  /// Programs whose memory is actually live: resident slots plus entries
  /// evicted by LRU pressure while a wave still holds the shared_ptr
  /// (their memory is not reclaimed until the last reference drops).
  /// Counting only resident slots under-reports both gauges — the
  /// accounting drift this pair of accessors (and the
  /// doppio.sched.program_cache.{size,live_bytes} gauges) fixes.
  int live_size() const;
  /// Estimated bytes of all live programs (config-vector bytes plus a
  /// fixed per-entry overhead for the compiled kernel structures).
  int64_t live_bytes() const;
  /// Misses whose fingerprint matched an evicted-but-still-referenced
  /// entry and re-adopted it instead of keeping a second live copy (which
  /// would also have re-counted its aliases as fresh alias_shares).
  int64_t readoptions() const;

  /// Keys most-recently-used first — the exact eviction order, for tests.
  /// Each slot is reported once, by the textual key that first created it
  /// (aliases promote the slot but do not add entries here).
  std::vector<std::string> KeysMruFirst() const;

 private:
  /// One LRU slot: a compiled program plus every textual key aliased to
  /// it. `aliases.front()` is the key that first compiled the slot.
  struct Node {
    std::shared_ptr<const CachedProgram> entry;
    std::vector<std::string> aliases;
  };

  const DeviceConfig device_;
  const int capacity_;

  mutable std::mutex mutex_;
  /// Front = most recently used; back = next eviction victim.
  std::list<Node> lru_;
  std::unordered_map<std::string, std::list<Node>::iterator> by_alias_;
  std::unordered_map<std::string, std::list<Node>::iterator> by_fingerprint_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t readoptions_ = 0;

  /// Evicted slots whose program may still be referenced by an in-flight
  /// wave: (fingerprint, weak ref). Pruned lazily once the last strong
  /// reference drops. Live accounting spans lru_ plus the still-lockable
  /// entries here; a miss whose fingerprint matches a lockable entry
  /// re-adopts the original program (same pointer — no duplicate live
  /// copy, no alias_shares double count).
  std::list<std::pair<std::string, std::weak_ptr<const CachedProgram>>>
      evicted_live_;

  /// Drops evicted_live_ entries whose program has been released.
  /// Requires mutex_.
  void PruneEvictedLocked();
  /// Recomputes the doppio.sched.program_cache.{size,live_bytes} gauges
  /// from lru_ + evicted_live_. Requires mutex_.
  void RefreshGaugesLocked();
  int64_t LiveBytesLocked() const;

  /// Set programs: separate LRU keyed on the joined sorted member
  /// fingerprints.
  std::list<std::pair<std::string, std::shared_ptr<const CachedSetProgram>>>
      set_lru_;
  std::unordered_map<std::string, decltype(set_lru_)::iterator> set_index_;
  int64_t set_hits_ = 0;
  int64_t set_misses_ = 0;
};

}  // namespace sched
}  // namespace doppio
