// LRU cache of compiled regex programs, shared across queries and tenants.
//
// The paper's config-vector compile is cheap (< 1 µs), but the simulator's
// functional path also compiles a PU kernel program per configuration
// (hw/pu_kernel) — decode, byte-class partition, possibly literal-stage
// extraction — and concurrent clients overwhelmingly re-issue the same
// handful of patterns (the Fig. 11 workload). The cache keys on
// (pattern, CompileOptions) and hands out one immutable RegexConfig plus
// one shared CompiledPuProgram per distinct query, so same-pattern queries
// admitted by the scheduler share a single compilation regardless of
// session. Results are unaffected: a cache hit executes the exact same
// immutable program a cold compile would have produced.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "hw/config_compiler.h"
#include "hw/device_config.h"
#include "hw/pu_kernel.h"
#include "regex/matcher.h"

namespace doppio {
namespace sched {

/// One cached compilation: the configuration vector (what the device
/// loads) and the compiled PU program (what the functional pass and the
/// CPU route execute). Immutable once inserted; shared by reference.
struct CachedProgram {
  RegexConfig config;
  std::shared_ptr<const CompiledPuProgram> program;
};

class ProgramCache {
 public:
  /// `capacity` >= 1: the maximum number of distinct (pattern, options)
  /// entries kept; the least-recently-used entry is evicted beyond that.
  ProgramCache(const DeviceConfig& device, int capacity);

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(ProgramCache);

  /// Returns the cached compilation for (pattern, options), compiling and
  /// inserting it on a miss. Compile failures (e.g. CapacityExceeded when
  /// the pattern does not fit the deployed geometry) are returned and NOT
  /// cached — a failed pattern never occupies a slot. Thread-safe.
  Result<std::shared_ptr<const CachedProgram>> GetOrCompile(
      std::string_view pattern, const CompileOptions& options = {});

  /// Canonical cache key for (pattern, options) — exposed so tests and the
  /// scheduler's coalescing pass can compare compatibility without holding
  /// a CachedProgram.
  static std::string MakeKey(std::string_view pattern,
                             const CompileOptions& options);

  // Lifetime counters (also mirrored in the metrics registry under
  // doppio.sched.program_cache.{hits,misses,evictions}).
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int size() const;
  int capacity() const { return capacity_; }

  /// Keys most-recently-used first — the exact eviction order, for tests.
  std::vector<std::string> KeysMruFirst() const;

 private:
  const DeviceConfig device_;
  const int capacity_;

  mutable std::mutex mutex_;
  /// Front = most recently used; back = next eviction victim.
  std::list<std::pair<std::string, std::shared_ptr<const CachedProgram>>>
      lru_;
  std::unordered_map<std::string_view, decltype(lru_)::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace sched
}  // namespace doppio
