#include "sched/session.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {
namespace sched {

Session::Session(SessionOptions options, obs::Histogram* latency)
    : options_(std::move(options)), latency_(latency) {
  DOPPIO_CHECK(latency_ != nullptr);
  DOPPIO_CHECK(options_.weight >= 1);
  DOPPIO_CHECK(options_.max_queued >= 1);
}

}  // namespace sched
}  // namespace doppio
