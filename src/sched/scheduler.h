// Multi-tenant query scheduler: the single admission point for FPGA
// offload in a shared deployment.
//
// The paper's prototype wires each client straight into the HAL: whoever
// submits first owns the engines, a burst from one tenant starves the
// rest, and nothing bounds the queue between the database and the device.
// This subsystem adds the missing resource-management layer on top of the
// unchanged HAL/device stack:
//
//  * Sessions (sched/session.h) — per-tenant identity, weight and quota.
//  * Admission control — a bounded global queue and bounded per-session
//    queues. When either bound is hit, Submit fails fast with Overloaded
//    (back off and retry) instead of queueing unboundedly; the device
//    ring's own bound surfaces as ResourceExhausted and is absorbed by
//    the retry lifecycle.
//  * Weighted fair sharing — deficit round-robin over the session queues,
//    cost measured in rows, so one tenant's scan storm cannot starve
//    another tenant's point queries. Each dispatch round assembles a
//    *wave* of queries.
//  * Cross-query batching — same-pattern queries (across sessions) share
//    one compiled program via the LRU ProgramCache and are coalesced into
//    one shared partitioned submission (db/hudf RegexpFpgaBatch): every
//    slice of every query is in flight before any is waited on, so the
//    wave overlaps across the device's engines in virtual time. Results
//    demultiplex per query by construction — each job writes only its own
//    query's result range.
//  * Pattern-set compilation (opt-in, Options::set_compilation) —
//    *different* patterns scanning the same column coalesce into ONE
//    set-compiled scan: the union NFA with tagged accepts emits each
//    member's matches on its own output stream, demuxed per query after
//    the wave (docs/PATTERN_SETS.md). Unions that exceed one PU fall back
//    to the classic multi-pass waves.
//  * Cost-model routing — small inputs and patterns that exceed the
//    deployed geometry run on the host thread pool (the same compiled
//    program the engines execute, so results stay bit-identical), freeing
//    engine time for the scans the FPGA actually wins.
//
// Execution is cooperative: the scheduler has no dispatcher thread.
// Waiters take turns assembling and executing waves — one dispatcher at a
// time — which keeps the virtual clock single-threaded per wave and the
// whole scheduler deterministic when driven from one thread. Every
// admitted query must eventually be Wait()ed (or the scheduler shut
// down); metrics land in obs::MetricsRegistry under doppio.sched.*.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/cost_model.h"
#include "db/hudf.h"
#include "hal/hal.h"
#include "sched/program_cache.h"
#include "sched/result_cache.h"
#include "sched/session.h"

namespace doppio {
namespace sched {

namespace internal {
struct Request;
}  // namespace internal

/// How a query was executed once admitted.
enum class Route {
  kFpga,        // batched partitioned submission on the device
  kCpuProgram,  // host thread pool, same compiled PU program (bit-identical)
  kCpuDfa,      // host lazy DFA — pattern exceeds the deployed geometry
  kCache,       // served from the versioned result cache, no engine used
};

struct ScheduledResult {
  HudfResult hudf;
  Route route = Route::kFpga;
  /// Global completion order (1-based) across all sessions — lets tests
  /// and clients reason about fairness without wall clocks.
  uint64_t completion_seq = 0;
  /// Batch slots that shared the FPGA wave this query ran in (1 when
  /// routed to the CPU or dispatched alone). A set-compiled scan is ONE
  /// slot however many patterns it serves.
  int batch_width = 1;
  /// Distinct patterns in the set-compiled scan that served this query
  /// (1 = a classic single-pattern scan). See Options::set_compilation.
  int set_width = 1;
};

/// Opaque handle to an admitted query. Obtained from Submit, consumed by
/// Wait. Movable and copyable (copies reference the same query).
class QueryTicket {
 public:
  QueryTicket() = default;
  bool valid() const { return request_ != nullptr; }

 private:
  friend class QueryScheduler;
  explicit QueryTicket(std::shared_ptr<internal::Request> request);
  std::shared_ptr<internal::Request> request_;
};

class QueryScheduler {
 public:
  struct Options {
    /// Global admission bound: queries queued (admitted, not yet
    /// dispatched) across all sessions. Submit rejects with Overloaded
    /// beyond this.
    int global_queue_limit = 64;
    /// Deficit round-robin quantum, in rows, refilled per session per
    /// dispatch round (scaled by the session's weight).
    int64_t quantum_rows = 64 * 1024;
    /// Maximum queries coalesced into one FPGA wave. The wave's engine
    /// budget is split across its queries (partitions per query =
    /// num_engines / width, min 1).
    int max_batch_width = 4;
    /// Distinct compiled programs kept by the LRU ProgramCache.
    int program_cache_capacity = 16;
    /// Workers for CPU-routed queries.
    int cpu_threads = 2;
    /// Consult the operator cost model (db/cost_model) at admission and
    /// route queries the host serves faster — small inputs, mostly — to
    /// the CPU pool. Off = every in-capacity query goes to the device.
    bool cost_routing = true;
    /// Inputs at or below this many rows always route to the CPU when
    /// cost_routing is on (the FPGA job setup dominates tiny scans).
    int64_t cpu_route_max_rows = 256;
    /// Simulator-only throughput mode: FPGA jobs derive exact traffic and
    /// timing but skip the functional pass (results zeroed). For
    /// benchmarks; never set on correctness paths.
    bool timing_only = false;
    /// Compile *different* patterns over the same input column into one
    /// set program (union NFA with tagged accepts, docs/PATTERN_SETS.md)
    /// when the union fits one PU, so N same-column tenants cost one scan
    /// instead of N. Per-stream results stay bit-identical to solo runs;
    /// a union that exceeds capacity falls back to the multi-pass path.
    /// Off by default: the paper's per-pattern waves stay byte-identical.
    bool set_compilation = false;
    /// Distinct patterns coalesced into one set-compiled scan (2..64; the
    /// tagged-accept encoding carries at most 64 streams). Only consulted
    /// when set_compilation is on.
    int max_set_patterns = 8;
    /// Versioned match-result cache (docs/RESULT_CACHE.md): a wave head
    /// whose (compiled-program fingerprint, column id, column version)
    /// hits is served the cached block without occupying an engine,
    /// charged to its session as a zero-cost grant. Off by default: the
    /// paper's every-query-rescans waves stay byte-identical.
    bool result_cache = false;
    /// LRU byte budget of the result cache (consulted only when
    /// result_cache is on).
    int64_t result_cache_bytes = 64ll << 20;
  };

  explicit QueryScheduler(Hal* hal);  // default Options
  QueryScheduler(Hal* hal, Options options);
  /// Fails every still-queued query, waits out an in-flight wave, drains
  /// the CPU pool. Outstanding Wait() calls must have returned before the
  /// scheduler is destroyed.
  ~QueryScheduler();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(QueryScheduler);

  /// Creates a session; the scheduler owns it. Sessions live as long as
  /// the scheduler.
  Session* CreateSession(SessionOptions options = {});

  /// Admits one regex query over a string BAT. Fails fast with Overloaded
  /// when the session's or the global queue bound is reached — the caller
  /// should back off; Overloaded is deliberately not fallback-eligible.
  /// The input BAT must stay alive until Wait returns.
  Result<QueryTicket> Submit(Session* session, const Bat& input,
                             std::string_view pattern,
                             const CompileOptions& options = {});

  /// Blocks until the ticket's query completes, cooperatively dispatching
  /// queued waves while it waits. Each ticket completes exactly once;
  /// waiting twice on the same query returns InvalidArgument.
  Result<ScheduledResult> Wait(const QueryTicket& ticket);

  /// Submit + Wait in one call.
  Result<ScheduledResult> Execute(Session* session, const Bat& input,
                                  std::string_view pattern,
                                  const CompileOptions& options = {});

  /// Fails every queued query with Unavailable and rejects new Submits;
  /// in-flight work completes, then the CPU pool drains deterministically
  /// (ThreadPool::Shutdown). Idempotent; also run by the destructor. The
  /// scheduler object stays usable for Wait() on already-completed
  /// tickets.
  void Shutdown();

  /// Binds (scheduler, session) into the db-layer admission-gate
  /// interface, so ExecuteHybrid routes its FPGA offloads through the
  /// scheduler.
  class Gate : public RegexAdmissionGate {
   public:
    Gate(QueryScheduler* scheduler, Session* session)
        : scheduler_(scheduler), session_(session) {}
    Result<HudfResult> ExecuteRegex(const Bat& input,
                                    std::string_view pattern,
                                    const CompileOptions& options) override;

   private:
    QueryScheduler* scheduler_;
    Session* session_;
  };

  ProgramCache& program_cache() { return cache_; }
  /// The versioned match-result cache; null unless Options::result_cache.
  ResultCache* result_cache() { return results_.get(); }
  const Options& options() const { return options_; }
  /// Queries admitted but not yet dispatched, across all sessions.
  int queue_depth() const;

 private:
  struct Wave {
    std::vector<std::shared_ptr<internal::Request>> fpga;
    std::vector<std::shared_ptr<internal::Request>> cpu;
    /// Requests whose admission snapshot hit the result cache: served
    /// from the cached block in ExecuteWave, no engine, no deficit.
    std::vector<std::shared_ptr<internal::Request>> cached;
    bool empty() const {
      return fpga.empty() && cpu.empty() && cached.empty();
    }
  };

  /// Deficit-round-robin wave assembly plus the same-pattern coalescing
  /// pass. Requires mutex_; leaves picked requests out of every queue.
  Wave PickWaveLocked();
  /// Runs a wave outside the scheduler mutex: FPGA queries as one batched
  /// submission on the calling thread, CPU queries on the pool.
  void ExecuteWave(Wave* wave);
  /// Marks a finished wave's requests complete. Requires mutex_.
  void FinalizeWaveLocked(Wave* wave);
  void RunCpuRequest(internal::Request* request);
  /// Materializes a cache-served request's result from its cached block.
  void ServeCachedRequest(internal::Request* request);
  /// Offers a completed scan's block to the result cache (no-op when the
  /// cache is off or the result is ineligible: degraded, timing-only,
  /// saturated — the completeness guard lives in ResultCache::Put).
  void MaybeCacheResult(internal::Request* request);
  /// Stitches a tail-only scan (partial-extent cache serve) back to the
  /// full admission extent: cached prefix values + scanned tail.
  void MergePrefixResult(internal::Request* request);

  Hal* const hal_;
  const Options options_;
  ProgramCache cache_;
  std::unique_ptr<ResultCache> results_;
  std::unique_ptr<OperatorCostModel> cost_model_;  // null: routing off
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<Session*, std::deque<std::shared_ptr<internal::Request>>>
      queues_;
  size_t rr_cursor_ = 0;
  int global_queued_ = 0;
  bool dispatch_active_ = false;
  bool shutting_down_ = false;
  uint64_t completion_counter_ = 0;
};

}  // namespace sched
}  // namespace doppio
