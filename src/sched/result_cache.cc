#include "sched/result_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace doppio {
namespace sched {
namespace {

obs::Counter* HitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.hits",
      "result-cache lookups served from a cached block");
  return c;
}

obs::Counter* PartialHitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.partial_hits",
      "lookups served partially: cached prefix block + appended-tail scan");
  return c;
}

obs::Counter* MissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.misses",
      "result-cache lookups that required a scan");
  return c;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.evictions",
      "result-cache entries evicted (LRU budget or invalidation)");
  return c;
}

obs::Counter* IncompleteCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.incomplete_skipped",
      "result blocks refused by the completeness guard "
      "(saturated or fallback-degraded)");
  return c;
}

obs::Gauge* BytesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.sched.result_cache.bytes",
      "bytes currently held by the result cache");
  return g;
}

obs::Counter* BytesSavedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.bytes_saved",
      "result bytes served from cache instead of rescanned");
  return c;
}

obs::Counter* PrefilterUsesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.prefilter_uses",
      "hybrid refinements run over a cached coarser candidate set");
  return c;
}

obs::Counter* PrefilterRejectsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.result_cache.prefilter_rejects",
      "hybrid pre-filter lookups with no usable cached coarser scan");
  return c;
}

}  // namespace

ResultCache::ResultCache(int64_t max_bytes)
    : max_bytes_(std::max<int64_t>(1, max_bytes)) {
  // Touch every instrument once so a scrape sees the full series even
  // before the first lookup.
  HitsCounter();
  PartialHitsCounter();
  MissesCounter();
  EvictionsCounter();
  IncompleteCounter();
  BytesGauge();
  BytesSavedCounter();
  PrefilterUsesCounter();
  PrefilterRejectsCounter();
}

std::string ResultCache::MakeKey(std::string_view fingerprint,
                                 uint64_t column_id,
                                 uint64_t column_version) {
  std::string key;
  key.reserve(fingerprint.size() + 24);
  key.append(fingerprint);
  key.push_back('\x1f');
  key.append(std::to_string(column_id));
  key.push_back('\x1f');
  key.append(std::to_string(column_version));
  return key;
}

std::shared_ptr<const CachedResultBlock> ResultCache::Get(
    std::string_view fingerprint, uint64_t column_id, uint64_t column_version,
    int64_t rows) {
  const std::string key = MakeKey(fingerprint, column_id, column_version);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  // A row-extent mismatch means the caller's admission snapshot disagrees
  // with what the entry covers (an append raced in before this version was
  // even keyed, or the entry predates a truncation). Serving it would
  // violate the snapshot; miss instead.
  if (it == index_.end() || it->second->block->rows() != rows) {
    ++misses_;
    MissesCounter()->Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  HitsCounter()->Add();
  bytes_saved_ += it->second->block->bytes();
  BytesSavedCounter()->Add(it->second->block->bytes());
  return it->second->block;
}

std::shared_ptr<const CachedResultBlock> ResultCache::GetPrefix(
    std::string_view fingerprint, uint64_t column_id, int64_t rows) {
  // Keys are fingerprint \x1f column \x1f version; match on the
  // fingerprint-and-column prefix so any cached version of this program
  // over this column qualifies.
  std::string want;
  want.reserve(fingerprint.size() + 24);
  want.append(fingerprint);
  want.push_back('\x1f');
  want.append(std::to_string(column_id));
  want.push_back('\x1f');

  std::lock_guard<std::mutex> lock(mutex_);
  std::list<Entry>::iterator best = lru_.end();
  auto range = by_column_.equal_range(column_id);
  for (auto c = range.first; c != range.second; ++c) {
    if (c->second.compare(0, want.size(), want) != 0) continue;
    auto entry = index_.find(c->second);
    if (entry == index_.end()) continue;
    const int64_t have = entry->second->block->rows();
    // Strictly smaller: an equal extent is an exact hit Get() already
    // handles; a larger one covers rows the caller's snapshot does not.
    if (have <= 0 || have >= rows) continue;
    if (best == lru_.end() || have > best->block->rows()) {
      best = entry->second;
    }
  }
  if (best == lru_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, best);
  ++partial_hits_;
  PartialHitsCounter()->Add();
  bytes_saved_ += best->block->bytes();
  BytesSavedCounter()->Add(best->block->bytes());
  return best->block;
}

bool ResultCache::Put(std::string_view fingerprint, uint64_t column_id,
                      uint64_t column_version, std::vector<uint16_t> values,
                      bool degraded) {
  if (values.empty()) return false;
  // Completeness guard (the saturation-reuse hazard, ISSUE 9): 65535 means
  // "matched, true end position truncated". A block holding one is not a
  // faithful record of the scan, so it must never be replayed or seed a
  // pre-filter candidate set. Degraded runs mixed per-slice software
  // fallback into the block; refuse those for the same reason.
  if (degraded ||
      std::find(values.begin(), values.end(), kSaturated) != values.end()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++incomplete_skipped_;
    IncompleteCounter()->Add();
    return false;
  }

  auto block = std::make_shared<CachedResultBlock>();
  block->values = std::move(values);
  for (uint16_t v : block->values) {
    if (v != 0) ++block->rows_matched;
  }
  if (block->bytes() > max_bytes_) return false;

  const std::string key = MakeKey(fingerprint, column_id, column_version);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Scans are deterministic per (fingerprint, column, version): the
    // existing block is identical. Keep it (readers may hold it), promote.
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  lru_.push_front(Entry{key, column_id, std::move(block)});
  index_[key] = lru_.begin();
  by_column_.emplace(column_id, key);
  bytes_ += lru_.front().block->bytes();
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    ++evictions_;
    EvictionsCounter()->Add();
    EraseLocked(std::prev(lru_.end()));
  }
  SetBytesGaugeLocked();
  return true;
}

void ResultCache::InvalidateColumn(uint64_t column_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto range = by_column_.equal_range(column_id);
  for (auto it = range.first; it != range.second;) {
    auto entry = index_.find(it->second);
    it = by_column_.erase(it);
    if (entry == index_.end()) continue;
    ++invalidations_;
    ++evictions_;
    EvictionsCounter()->Add();
    // EraseLocked would re-scan by_column_ for the key we just dropped;
    // unlink the remaining indexes directly.
    bytes_ -= entry->second->block->bytes();
    lru_.erase(entry->second);
    index_.erase(entry);
  }
  SetBytesGaugeLocked();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  by_column_.clear();
  bytes_ = 0;
  SetBytesGaugeLocked();
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->block->bytes();
  auto range = by_column_.equal_range(it->column_id);
  for (auto c = range.first; c != range.second; ++c) {
    if (c->second == it->key) {
      by_column_.erase(c);
      break;
    }
  }
  index_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::SetBytesGaugeLocked() { BytesGauge()->Set(bytes_); }

void ResultCache::CountPrefilterUse(int64_t rows_avoided) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++prefilter_uses_;
  PrefilterUsesCounter()->Add();
  if (rows_avoided > 0) {
    const int64_t saved =
        rows_avoided * static_cast<int64_t>(sizeof(uint16_t));
    bytes_saved_ += saved;
    BytesSavedCounter()->Add(saved);
  }
}

void ResultCache::CountPrefilterReject() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++prefilter_rejects_;
  PrefilterRejectsCounter()->Add();
}

int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t ResultCache::partial_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partial_hits_;
}

int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

int64_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

int64_t ResultCache::incomplete_skipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return incomplete_skipped_;
}

int64_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

int64_t ResultCache::bytes_saved() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_saved_;
}

int64_t ResultCache::prefilter_uses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return prefilter_uses_;
}

int64_t ResultCache::prefilter_rejects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return prefilter_rejects_;
}

int64_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(lru_.size());
}

}  // namespace sched
}  // namespace doppio
