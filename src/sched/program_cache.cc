#include "sched/program_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {
namespace sched {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.hits",
      "compiled-program cache lookups served from cache");
  return *c;
}

obs::Counter& MissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.misses",
      "compiled-program cache lookups that compiled cold");
  return *c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.evictions",
      "compiled programs evicted by LRU capacity pressure");
  return *c;
}

obs::Counter& AliasSharesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.alias_shares",
      "textually distinct patterns aliased onto an existing compiled slot");
  return *c;
}

obs::Counter& ReadoptionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.readoptions",
      "misses re-adopting an evicted-but-still-referenced program instead "
      "of keeping a second live copy");
  return *c;
}

obs::Gauge& SizeGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.sched.program_cache.size",
      "live compiled programs: resident LRU slots plus evicted entries "
      "still referenced by an in-flight wave");
  return *g;
}

obs::Gauge& LiveBytesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "doppio.sched.program_cache.live_bytes",
      "estimated bytes of all live compiled programs (resident + "
      "evicted-but-referenced)");
  return *g;
}

obs::Counter& SetHitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.cache_hits",
      "set-program cache lookups served from cache");
  return *c;
}

obs::Counter& SetMissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.set_compile.cache_misses",
      "set-program cache lookups that compiled the union cold");
  return *c;
}

obs::Histogram& SetSizeHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "doppio.sched.set_compile.size", obs::DepthBuckets(),
      "distinct member patterns per compiled set program");
  return *h;
}

std::string FingerprintOf(const RegexConfig& config) {
  const std::vector<uint8_t>& bytes = config.vector.bytes();
  return std::string(bytes.begin(), bytes.end());
}

// The compiled kernel structures (DFA cache, NFA tables, literal stage)
// are not byte-introspectable; charge a fixed overhead per entry on top
// of the exact config-vector footprint.
constexpr int64_t kEntryOverheadBytes = 256;

int64_t EntryBytes(const CachedProgram& entry) {
  return static_cast<int64_t>(entry.config.vector.bytes().size()) +
         static_cast<int64_t>(entry.fingerprint.size()) + kEntryOverheadBytes;
}

}  // namespace

int CachedSetProgram::StreamOf(std::string_view fingerprint) const {
  for (size_t i = 0; i < member_fingerprints.size(); ++i) {
    if (member_fingerprints[i] == fingerprint) return static_cast<int>(i);
  }
  return -1;
}

ProgramCache::ProgramCache(const DeviceConfig& device, int capacity)
    : device_(device), capacity_(capacity) {
  DOPPIO_CHECK(capacity_ >= 1);
  // Instantiate the live-accounting gauges so they report 0 (not absent)
  // before the first insert.
  SizeGauge();
  LiveBytesGauge();
}

std::string ProgramCache::MakeKey(std::string_view pattern,
                                  const CompileOptions& options) {
  // '\x1f' (unit separator) cannot appear in a well-formed pattern flagged
  // field, so the key is injective over (pattern, options).
  std::string key(pattern);
  key += '\x1f';
  key += options.case_insensitive ? 'i' : '-';
  key += options.anchor_start ? '^' : '-';
  key += options.anchor_end ? '$' : '-';
  for (const auto& [a, b] : options.collation_equivalents) {
    key += static_cast<char>(a);
    key += static_cast<char>(b);
  }
  return key;
}

Result<std::shared_ptr<const CachedProgram>> ProgramCache::GetOrCompile(
    std::string_view pattern, const CompileOptions& options) {
  std::string key = MakeKey(pattern, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_alias_.find(key);
    if (it != by_alias_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++hits_;
      HitsCounter().Add();
      return it->second->entry;
    }
  }

  // Compile outside the lock: concurrent misses on the same key may race
  // to compile, but programs are immutable and the insert below re-checks,
  // so the worst case is one redundant compilation, never two entries.
  auto entry = std::make_shared<CachedProgram>();
  DOPPIO_ASSIGN_OR_RETURN(entry->config,
                          CompileRegexConfig(pattern, device_, options));
  DOPPIO_ASSIGN_OR_RETURN(
      entry->program,
      CompiledPuProgram::Compile(entry->config.vector, device_));
  entry->fingerprint = FingerprintOf(entry->config);

  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  MissesCounter().Add();
  auto it = by_alias_.find(key);
  if (it != by_alias_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->entry;
  }
  // Fingerprint aliasing: a textually new pattern whose compiled program
  // already lives in the cache shares that slot instead of occupying a
  // second one. The redundant compilation is discarded — callers get the
  // original immutable entry, so all aliases execute the same program.
  auto fp = by_fingerprint_.find(entry->fingerprint);
  if (fp != by_fingerprint_.end()) {
    lru_.splice(lru_.begin(), lru_, fp->second);
    fp->second->aliases.push_back(key);
    by_alias_.emplace(std::move(key), fp->second);
    AliasSharesCounter().Add();
    return fp->second->entry;
  }
  // Re-adoption: the fingerprint was evicted but an in-flight wave still
  // holds the program. Re-inserting the original pointer (not the fresh
  // redundant compilation) keeps exactly one live copy — without this, a
  // re-insert while the evicted copy is referenced double-counts the
  // program's memory, and its textual aliases would later re-register as
  // fresh alias_shares against the duplicate slot.
  std::shared_ptr<const CachedProgram> slot_entry;
  for (auto evicted = evicted_live_.begin(); evicted != evicted_live_.end();) {
    if (evicted->first != entry->fingerprint) {
      ++evicted;
      continue;
    }
    slot_entry = evicted->second.lock();
    evicted = evicted_live_.erase(evicted);
    if (slot_entry != nullptr) break;  // released copies fall through
  }
  if (slot_entry != nullptr) {
    ++readoptions_;
    ReadoptionsCounter().Add();
  } else {
    slot_entry = std::shared_ptr<const CachedProgram>(std::move(entry));
  }
  lru_.emplace_front();
  lru_.front().entry = slot_entry;
  lru_.front().aliases.push_back(key);
  by_alias_.emplace(std::move(key), lru_.begin());
  by_fingerprint_.emplace(slot_entry->fingerprint, lru_.begin());
  if (static_cast<int>(lru_.size()) > capacity_) {
    const Node& victim = lru_.back();
    for (const std::string& alias : victim.aliases) by_alias_.erase(alias);
    by_fingerprint_.erase(victim.entry->fingerprint);
    // The victim's program may outlive the slot (a wave holds it): keep a
    // weak ref so live accounting still sees it and a re-insert can
    // re-adopt it.
    evicted_live_.emplace_back(victim.entry->fingerprint, victim.entry);
    lru_.pop_back();
    ++evictions_;
    EvictionsCounter().Add();
  }
  PruneEvictedLocked();
  RefreshGaugesLocked();
  return slot_entry;
}

Result<std::shared_ptr<const CachedSetProgram>> ProgramCache::GetOrCompileSet(
    const std::vector<std::shared_ptr<const CachedProgram>>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("empty pattern set");
  }
  for (const auto& member : members) {
    if (member == nullptr) {
      return Status::InvalidArgument("null pattern-set member");
    }
  }
  // Canonical order: sorted unique fingerprints. Any permutation (or
  // textual aliasing) of the same member set resolves to the same key and
  // the same stream assignment.
  std::vector<std::string> fingerprints;
  fingerprints.reserve(members.size());
  for (const auto& member : members) {
    fingerprints.push_back(member->fingerprint);
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  fingerprints.erase(
      std::unique(fingerprints.begin(), fingerprints.end()),
      fingerprints.end());
  // '\x1e' (record separator) never appears in config-vector bytes at a
  // member boundary ambiguity: the encoding is length-framed, so joined
  // fingerprints are injective over the member multiset.
  std::string key;
  for (const std::string& fingerprint : fingerprints) {
    key += fingerprint;
    key += '\x1e';
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = set_index_.find(key);
    if (it != set_index_.end()) {
      set_lru_.splice(set_lru_.begin(), set_lru_, it->second);
      ++set_hits_;
      SetHitsCounter().Add();
      return it->second->second;
    }
  }

  // Compile the union outside the lock, in canonical member order.
  auto entry = std::make_shared<CachedSetProgram>();
  entry->member_fingerprints = fingerprints;
  std::vector<const TokenNfa*> nfas;
  nfas.reserve(fingerprints.size());
  for (const std::string& fingerprint : fingerprints) {
    const CachedProgram* found = nullptr;
    for (const auto& member : members) {
      if (member->fingerprint == fingerprint) {
        found = member.get();
        break;
      }
    }
    nfas.push_back(&found->config.nfa);
  }
  DOPPIO_ASSIGN_OR_RETURN(entry->config,
                          CompileRegexSetConfig(nfas, device_));
  DOPPIO_ASSIGN_OR_RETURN(
      entry->program,
      CompiledPuProgram::Compile(entry->config.vector, device_));

  std::lock_guard<std::mutex> lock(mutex_);
  ++set_misses_;
  SetMissesCounter().Add();
  SetSizeHistogram().Observe(static_cast<double>(fingerprints.size()));
  auto it = set_index_.find(key);
  if (it != set_index_.end()) {
    set_lru_.splice(set_lru_.begin(), set_lru_, it->second);
    return it->second->second;
  }
  set_lru_.emplace_front(std::move(key), std::move(entry));
  set_index_.emplace(set_lru_.front().first, set_lru_.begin());
  if (static_cast<int>(set_lru_.size()) > capacity_) {
    set_index_.erase(set_lru_.back().first);
    set_lru_.pop_back();
  }
  return set_lru_.front().second;
}

int64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

int64_t ProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

int64_t ProgramCache::set_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return set_hits_;
}

int64_t ProgramCache::set_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return set_misses_;
}

int ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(lru_.size());
}

int ProgramCache::set_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(set_lru_.size());
}

int ProgramCache::live_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int live = static_cast<int>(lru_.size());
  for (const auto& [fingerprint, weak] : evicted_live_) {
    if (!weak.expired()) ++live;
  }
  return live;
}

int64_t ProgramCache::live_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LiveBytesLocked();
}

int64_t ProgramCache::readoptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return readoptions_;
}

void ProgramCache::PruneEvictedLocked() {
  for (auto it = evicted_live_.begin(); it != evicted_live_.end();) {
    it = it->second.expired() ? evicted_live_.erase(it) : std::next(it);
  }
}

int64_t ProgramCache::LiveBytesLocked() const {
  int64_t bytes = 0;
  for (const Node& node : lru_) bytes += EntryBytes(*node.entry);
  for (const auto& [fingerprint, weak] : evicted_live_) {
    if (std::shared_ptr<const CachedProgram> live = weak.lock()) {
      bytes += EntryBytes(*live);
    }
  }
  return bytes;
}

void ProgramCache::RefreshGaugesLocked() {
  int64_t live = static_cast<int64_t>(lru_.size());
  for (const auto& [fingerprint, weak] : evicted_live_) {
    if (!weak.expired()) ++live;
  }
  SizeGauge().Set(live);
  LiveBytesGauge().Set(LiveBytesLocked());
}

std::vector<std::string> ProgramCache::KeysMruFirst() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Node& node : lru_) keys.push_back(node.aliases.front());
  return keys;
}

}  // namespace sched
}  // namespace doppio
