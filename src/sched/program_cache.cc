#include "sched/program_cache.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace doppio {
namespace sched {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.hits",
      "compiled-program cache lookups served from cache");
  return *c;
}

obs::Counter& MissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.misses",
      "compiled-program cache lookups that compiled cold");
  return *c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.evictions",
      "compiled programs evicted by LRU capacity pressure");
  return *c;
}

}  // namespace

ProgramCache::ProgramCache(const DeviceConfig& device, int capacity)
    : device_(device), capacity_(capacity) {
  DOPPIO_CHECK(capacity_ >= 1);
}

std::string ProgramCache::MakeKey(std::string_view pattern,
                                  const CompileOptions& options) {
  // '\x1f' (unit separator) cannot appear in a well-formed pattern flagged
  // field, so the key is injective over (pattern, options).
  std::string key(pattern);
  key += '\x1f';
  key += options.case_insensitive ? 'i' : '-';
  key += options.anchor_start ? '^' : '-';
  key += options.anchor_end ? '$' : '-';
  for (const auto& [a, b] : options.collation_equivalents) {
    key += static_cast<char>(a);
    key += static_cast<char>(b);
  }
  return key;
}

Result<std::shared_ptr<const CachedProgram>> ProgramCache::GetOrCompile(
    std::string_view pattern, const CompileOptions& options) {
  std::string key = MakeKey(pattern, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++hits_;
      HitsCounter().Add();
      return it->second->second;
    }
  }

  // Compile outside the lock: concurrent misses on the same key may race
  // to compile, but programs are immutable and the insert below re-checks,
  // so the worst case is one redundant compilation, never two entries.
  auto entry = std::make_shared<CachedProgram>();
  DOPPIO_ASSIGN_OR_RETURN(entry->config,
                          CompileRegexConfig(pattern, device_, options));
  DOPPIO_ASSIGN_OR_RETURN(
      entry->program,
      CompiledPuProgram::Compile(entry->config.vector, device_));

  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  MissesCounter().Add();
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(std::move(key), std::move(entry));
  index_.emplace(lru_.front().first, lru_.begin());
  if (static_cast<int>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    EvictionsCounter().Add();
  }
  return lru_.front().second;
}

int64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

int64_t ProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

int ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(lru_.size());
}

std::vector<std::string> ProgramCache::KeysMruFirst() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const auto& [key, value] : lru_) keys.push_back(key);
  return keys;
}

}  // namespace sched
}  // namespace doppio
