// Multi-tenant sessions for the query scheduler (src/sched).
//
// A Session is one client's handle into the scheduler: it carries the
// tenant identity, the fairness weight, and the per-tenant admission
// bound. Sessions are created by (and owned by) a QueryScheduler; every
// Submit names the session it runs under, and the scheduler's deficit
// round-robin drains the sessions' queues proportionally to their
// weights.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace doppio {
namespace obs {
class Histogram;
}  // namespace obs
namespace sched {

class QueryScheduler;

/// Per-session admission and fairness knobs.
struct SessionOptions {
  /// Tenant identity. Sessions with the same tenant share one latency
  /// series (doppio.sched.tenant.<tenant>.latency_seconds).
  std::string tenant = "default";
  /// Weighted-fair share: under contention a weight-2 session drains rows
  /// twice as fast as a weight-1 session (deficit round-robin refills the
  /// session's deficit with quantum x weight each round).
  int weight = 1;
  /// Per-session admission bound: Submit rejects with Overloaded once this
  /// many queries are queued and not yet dispatched.
  int max_queued = 16;
};

/// One client's scheduling context. Thread-compatible: a session may be
/// used from any thread, but the scheduler serializes all mutation of its
/// queue state under the scheduler mutex. The lifetime counters are
/// atomics and readable from anywhere.
class Session {
 public:
  DOPPIO_DISALLOW_COPY_AND_ASSIGN(Session);

  const SessionOptions& options() const { return options_; }
  const std::string& tenant() const { return options_.tenant; }

  /// Queries accepted by Submit over the session's lifetime.
  int64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  /// Queries rejected with Overloaded (session or global bound).
  int64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  /// Queries whose Wait completed (successfully or not).
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Queries served from the versioned result cache (Route::kCache) —
  /// they completed without occupying an engine or charging the deficit.
  int64_t cache_served() const {
    return cache_served_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueryScheduler;

  Session(SessionOptions options, obs::Histogram* latency);

  const SessionOptions options_;
  obs::Histogram* const latency_;  // per-tenant latency series (never null)

  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> cache_served_{0};

  // --- Guarded by the owning scheduler's mutex ---------------------------
  int queued_ = 0;           // requests admitted but not yet dispatched
  int64_t deficit_rows_ = 0; // DRR deficit (rows this session may drain)
};

}  // namespace sched
}  // namespace doppio
