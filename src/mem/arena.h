// CPU-FPGA shared memory arena.
//
// On the HARP v1 prototype, memory shared with the FPGA is allocated through
// Intel's AAL library at 2 MB granularity, pinned to contiguous physical
// regions (the FPGA cannot take page faults), and capped — 4 GB after the
// paper's kernel-module modification. This class models that region: a
// contiguous reservation carved into 2 MiB pages, with a page table that the
// simulated FPGA consults for its (constant-cost) virtual-to-physical
// translation. Capacity is configurable so tests can exercise exhaustion
// cheaply.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mem/page_table.h"

namespace doppio {

inline constexpr int64_t kSharedPageBytes = int64_t{2} << 20;  // 2 MiB

/// A contiguous run of pinned pages handed out by the arena.
struct PageRun {
  uint8_t* data = nullptr;
  int64_t num_pages = 0;
  int64_t first_page_index = -1;

  int64_t size_bytes() const { return num_pages * kSharedPageBytes; }
};

class SharedArena {
 public:
  /// Reserves `capacity_bytes` (rounded up to whole pages). The paper's
  /// platform caps this at 4 GB; tests use much smaller arenas.
  explicit SharedArena(int64_t capacity_bytes);
  ~SharedArena();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(SharedArena);

  /// Allocates a contiguous run of pages covering `min_bytes`.
  /// Fails with OutOfMemory when no contiguous run is free, mirroring the
  /// hard AAL limit (there is no eviction: pages are pinned).
  Result<PageRun> AllocatePages(int64_t min_bytes);

  /// Returns a run to the free pool.
  Status FreePages(const PageRun& run);

  /// True if [ptr, ptr+size) lies fully inside the arena reservation —
  /// i.e. the FPGA is allowed to touch it.
  bool Contains(const void* ptr, int64_t size = 1) const;

  int64_t capacity_bytes() const { return num_pages_ * kSharedPageBytes; }
  int64_t allocated_bytes() const;
  /// Bytes not currently handed out (free pages may still be fragmented;
  /// a contiguous AllocatePages of this size can fail).
  int64_t free_bytes() const { return capacity_bytes() - allocated_bytes(); }
  int64_t num_pages() const { return num_pages_; }

  /// The page table the simulated FPGA uses for address translation.
  const PageTable& page_table() const { return page_table_; }

  uint8_t* base() const { return base_; }

 private:
  uint8_t* base_ = nullptr;  // page-aligned reservation
  int64_t num_pages_;
  PageTable page_table_;

  mutable std::mutex mutex_;
  std::vector<bool> page_used_;  // guarded by mutex_
  int64_t used_pages_ = 0;       // guarded by mutex_
};

}  // namespace doppio
