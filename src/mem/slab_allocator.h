// Slab allocator over the CPU-FPGA shared arena (paper §4.2.1).
//
// The HAL manages the pinned shared region with a slab allocator holding
// one free list per size class. MonetDB is redirected to this allocator for
// every BAT so that even tiny BATs live in FPGA-visible memory; requests
// below 16 KB are metadata and stay on malloc (handled by the caller, see
// hal::Hal::Allocate).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mem/arena.h"

namespace doppio {

struct SlabStats {
  int64_t allocations = 0;
  int64_t frees = 0;
  int64_t bytes_requested = 0;
  int64_t bytes_handed_out = 0;  // including size-class rounding
  int64_t slabs_created = 0;
};

class SlabAllocator {
 public:
  /// Size classes double from `min_class_bytes` (default 16 KiB) up to the
  /// page size; larger requests are served as whole page runs.
  explicit SlabAllocator(SharedArena* arena,
                         int64_t min_class_bytes = 16 * 1024);
  ~SlabAllocator();

  DOPPIO_DISALLOW_COPY_AND_ASSIGN(SlabAllocator);

  /// Allocates `bytes` from shared memory, rounded up to the best-fitting
  /// slab class. All returned pointers are 64-byte (cache-line) aligned.
  Result<void*> Allocate(int64_t bytes);

  /// Releases a pointer previously returned by Allocate.
  Status Free(void* ptr);

  /// Size class an allocation of `bytes` would be served from (page-run
  /// allocations report their rounded page size).
  int64_t ClassForSize(int64_t bytes) const;

  SlabStats stats() const;
  int64_t num_size_classes() const {
    return static_cast<int64_t>(class_sizes_.size());
  }

 private:
  struct Allocation {
    int64_t size_class;   // bytes handed out
    int64_t class_index;  // -1 for whole-page-run allocations
    PageRun run;          // valid only for page-run allocations
  };

  Result<void*> AllocateFromClass(size_t class_index);

  SharedArena* arena_;
  std::vector<int64_t> class_sizes_;

  mutable std::mutex mutex_;
  std::vector<std::vector<void*>> free_lists_;  // per class
  std::map<void*, Allocation> live_;            // ptr -> bookkeeping
  std::vector<PageRun> slab_pages_;             // pages backing small classes
  SlabStats stats_;
};

}  // namespace doppio
