// Model of the FPGA-resident page table.
//
// The prototype stores a pagetable in FPGA BRAM, populated by software when
// shared memory is allocated. Its limited size is what caps shareable memory
// (2 GB by default; 4 GB after enlarging it). Translation cost is constant
// and negligible, so this model only tracks occupancy and validity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace doppio {

class PageTable {
 public:
  /// `max_entries` pages can be mapped (one entry per 2 MiB page).
  explicit PageTable(int64_t max_entries);

  /// Installs a mapping for `page_index` (identity mapping in the model).
  Status Map(int64_t page_index);

  /// Removes a mapping.
  Status Unmap(int64_t page_index);

  /// True if the page is mapped — the simulated FPGA checks this before
  /// every memory access; touching an unmapped page is a hard fault.
  bool IsMapped(int64_t page_index) const;

  int64_t max_entries() const { return max_entries_; }
  int64_t mapped_entries() const { return mapped_count_; }

 private:
  int64_t max_entries_;
  int64_t mapped_count_ = 0;
  std::vector<bool> mapped_;
};

}  // namespace doppio
