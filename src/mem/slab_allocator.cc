#include "mem/slab_allocator.h"

#include "common/logging.h"

namespace doppio {

SlabAllocator::SlabAllocator(SharedArena* arena, int64_t min_class_bytes)
    : arena_(arena) {
  DOPPIO_CHECK(arena != nullptr);
  DOPPIO_CHECK(min_class_bytes >= 64);
  for (int64_t sz = min_class_bytes; sz <= kSharedPageBytes; sz *= 2) {
    class_sizes_.push_back(sz);
  }
  free_lists_.resize(class_sizes_.size());
}

SlabAllocator::~SlabAllocator() {
  for (const PageRun& run : slab_pages_) {
    Status st = arena_->FreePages(run);
    if (!st.ok()) {
      DOPPIO_LOG(Error) << "slab page leak: " << st.ToString();
    }
  }
  for (const auto& [ptr, alloc] : live_) {
    if (alloc.class_index < 0) {
      Status st = arena_->FreePages(alloc.run);
      if (!st.ok()) {
        DOPPIO_LOG(Error) << "page-run leak: " << st.ToString();
      }
    }
  }
}

int64_t SlabAllocator::ClassForSize(int64_t bytes) const {
  for (int64_t sz : class_sizes_) {
    if (bytes <= sz) return sz;
  }
  // Whole page runs for anything beyond the largest class.
  int64_t pages = (bytes + kSharedPageBytes - 1) / kSharedPageBytes;
  return pages * kSharedPageBytes;
}

Result<void*> SlabAllocator::AllocateFromClass(size_t class_index) {
  auto& list = free_lists_[class_index];
  if (list.empty()) {
    // Carve a fresh page into chunks of this class.
    auto run_result = arena_->AllocatePages(kSharedPageBytes);
    if (!run_result.ok()) return run_result.status();
    PageRun run = *run_result;
    slab_pages_.push_back(run);
    ++stats_.slabs_created;
    int64_t chunk = class_sizes_[class_index];
    for (int64_t off = 0; off + chunk <= run.size_bytes(); off += chunk) {
      list.push_back(run.data + off);
    }
  }
  void* ptr = list.back();
  list.pop_back();
  return ptr;
}

Result<void*> SlabAllocator::Allocate(int64_t bytes) {
  if (bytes <= 0) {
    return Status::InvalidArgument("allocation size must be positive");
  }
  std::lock_guard<std::mutex> lock(mutex_);

  // Find the best-fitting size class.
  for (size_t i = 0; i < class_sizes_.size(); ++i) {
    if (bytes <= class_sizes_[i]) {
      auto result = AllocateFromClass(i);
      if (!result.ok()) return result.status();
      void* ptr = *result;
      live_[ptr] = Allocation{class_sizes_[i], static_cast<int64_t>(i), {}};
      ++stats_.allocations;
      stats_.bytes_requested += bytes;
      stats_.bytes_handed_out += class_sizes_[i];
      return ptr;
    }
  }

  // Large allocation: dedicated pinned page run.
  auto run_result = arena_->AllocatePages(bytes);
  if (!run_result.ok()) return run_result.status();
  PageRun run = *run_result;
  live_[run.data] = Allocation{run.size_bytes(), -1, run};
  ++stats_.allocations;
  stats_.bytes_requested += bytes;
  stats_.bytes_handed_out += run.size_bytes();
  return static_cast<void*>(run.data);
}

Status SlabAllocator::Free(void* ptr) {
  if (ptr == nullptr) return Status::InvalidArgument("null free");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(ptr);
  if (it == live_.end()) {
    return Status::InvalidArgument("free of unknown pointer");
  }
  const Allocation alloc = it->second;
  live_.erase(it);
  ++stats_.frees;
  if (alloc.class_index >= 0) {
    free_lists_[static_cast<size_t>(alloc.class_index)].push_back(ptr);
    return Status::OK();
  }
  return arena_->FreePages(alloc.run);
}

SlabStats SlabAllocator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace doppio
