#include "mem/page_table.h"

namespace doppio {

PageTable::PageTable(int64_t max_entries)
    : max_entries_(max_entries),
      mapped_(static_cast<size_t>(max_entries), false) {}

Status PageTable::Map(int64_t page_index) {
  if (page_index < 0 || page_index >= max_entries_) {
    return Status::OutOfMemory(
        "page table full: cannot map page beyond FPGA pagetable capacity");
  }
  if (mapped_[static_cast<size_t>(page_index)]) {
    return Status::AlreadyExists("page already mapped");
  }
  mapped_[static_cast<size_t>(page_index)] = true;
  ++mapped_count_;
  return Status::OK();
}

Status PageTable::Unmap(int64_t page_index) {
  if (page_index < 0 || page_index >= max_entries_ ||
      !mapped_[static_cast<size_t>(page_index)]) {
    return Status::NotFound("page not mapped");
  }
  mapped_[static_cast<size_t>(page_index)] = false;
  --mapped_count_;
  return Status::OK();
}

bool PageTable::IsMapped(int64_t page_index) const {
  return page_index >= 0 && page_index < max_entries_ &&
         mapped_[static_cast<size_t>(page_index)];
}

}  // namespace doppio
