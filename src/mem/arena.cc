#include "mem/arena.h"

#include <cstring>
#include <new>

#include "common/logging.h"

namespace doppio {

SharedArena::SharedArena(int64_t capacity_bytes)
    : num_pages_((capacity_bytes + kSharedPageBytes - 1) / kSharedPageBytes),
      page_table_(num_pages_),
      page_used_(static_cast<size_t>(num_pages_), false) {
  DOPPIO_CHECK(num_pages_ > 0);
  // Page-aligned reservation: the prototype pins 2 MB pages, and the slab
  // allocator relies on the base being (at least) cache-line aligned.
  base_ = static_cast<uint8_t*>(::operator new(
      static_cast<size_t>(num_pages_ * kSharedPageBytes),
      std::align_val_t{4096}));
}

SharedArena::~SharedArena() {
  ::operator delete(base_, std::align_val_t{4096});
}

Result<PageRun> SharedArena::AllocatePages(int64_t min_bytes) {
  if (min_bytes <= 0) {
    return Status::InvalidArgument("allocation size must be positive");
  }
  int64_t want =
      (min_bytes + kSharedPageBytes - 1) / kSharedPageBytes;

  std::lock_guard<std::mutex> lock(mutex_);
  // First-fit scan for a contiguous free run; pinning means no compaction,
  // so fragmentation is a real failure mode, as on the prototype.
  int64_t run_start = -1;
  int64_t run_len = 0;
  for (int64_t i = 0; i < num_pages_; ++i) {
    if (!page_used_[static_cast<size_t>(i)]) {
      if (run_len == 0) run_start = i;
      if (++run_len == want) break;
    } else {
      run_len = 0;
    }
  }
  if (run_len < want) {
    return Status::OutOfMemory(
        "shared arena exhausted: no contiguous run of " +
        std::to_string(want) + " pinned pages");
  }
  for (int64_t i = run_start; i < run_start + want; ++i) {
    page_used_[static_cast<size_t>(i)] = true;
    Status st = page_table_.Map(i);
    DOPPIO_CHECK(st.ok());
  }
  used_pages_ += want;

  PageRun run;
  run.data = base_ + run_start * kSharedPageBytes;
  run.num_pages = want;
  run.first_page_index = run_start;
  return run;
}

Status SharedArena::FreePages(const PageRun& run) {
  if (run.data == nullptr || run.first_page_index < 0 ||
      run.first_page_index + run.num_pages > num_pages_) {
    return Status::InvalidArgument("bad page run");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (int64_t i = run.first_page_index;
       i < run.first_page_index + run.num_pages; ++i) {
    if (!page_used_[static_cast<size_t>(i)]) {
      return Status::InvalidArgument("double free of shared page");
    }
    page_used_[static_cast<size_t>(i)] = false;
    DOPPIO_RETURN_NOT_OK(page_table_.Unmap(i));
  }
  used_pages_ -= run.num_pages;
  return Status::OK();
}

bool SharedArena::Contains(const void* ptr, int64_t size) const {
  const uint8_t* p = static_cast<const uint8_t*>(ptr);
  return p >= base_ && p + size <= base_ + num_pages_ * kSharedPageBytes;
}

int64_t SharedArena::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_pages_ * kSharedPageBytes;
}

}  // namespace doppio
