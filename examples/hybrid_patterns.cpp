// Hybrid execution (paper §6.4, §7.8): when a pattern needs more character
// matchers or states than the deployed PU provides, it is split at a '.*'
// and the FPGA pre-filters for the CPU. This example runs the same query
// against three deployments to show all three strategies.
//
//   ./examples/hybrid_patterns [num_records]
#include <cstdio>
#include <cstdlib>

#include "db/hybrid_executor.h"
#include "hal/hal.h"
#include "workload/address_generator.h"
#include "workload/queries.h"

using namespace doppio;

int main(int argc, char** argv) {
  int64_t num_records = argc > 1 ? std::atoll(argv[1]) : 100'000;

  AddressDataOptions data;
  data.num_records = num_records;
  data.selectivity = 0;
  data.qh_selectivity = 0.2;
  auto table = GenerateAddressTable(data, "addr");
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  const std::string pattern = QueryPattern(EvalQuery::kQH);
  std::printf("pattern: %s\n", pattern.c_str());

  struct Deployment {
    const char* label;
    int max_chars;
    int max_states;
  } deployments[] = {
      {"large PU  (64 chars, 16 states)", 64, 16},
      {"default PU (24 chars,  8 states)", 24, 8},
      {"tiny PU    ( 4 chars,  2 states)", 4, 2},
  };

  for (const Deployment& d : deployments) {
    Hal::Options options;
    options.shared_memory_bytes = int64_t{512} << 20;
    options.device.max_chars = d.max_chars;
    options.device.max_states = d.max_states;
    Hal hal(options);

    // Copy strings into this HAL's shared memory.
    Bat input(ValueType::kString, hal.bat_allocator());
    const Bat* src = (*table)->GetColumn("address_string");
    for (int64_t i = 0; i < src->count(); ++i) {
      if (!input.AppendString(src->GetString(i)).ok()) return 1;
    }

    auto plan = PlanHybrid(pattern, options.device);
    auto result = ExecuteHybrid(&hal, input, pattern);
    if (!plan.ok() || !result.ok()) {
      std::fprintf(stderr, "execution failed\n");
      return 1;
    }
    const char* strategy =
        result->strategy == HybridStrategy::kFpgaOnly       ? "fpga-only"
        : result->strategy == HybridStrategy::kHybrid       ? "hybrid"
                                                            : "software";
    std::printf("\n%s -> %s\n", d.label, strategy);
    if (result->strategy == HybridStrategy::kHybrid) {
      std::printf("  offloaded prefix: %s\n", plan->fpga_pattern.c_str());
      std::printf("  CPU post-processed %lld of %lld tuples (%.1f%%)\n",
                  static_cast<long long>(result->cpu_postprocessed),
                  static_cast<long long>(input.count()),
                  100.0 * result->cpu_postprocessed / input.count());
    }
    std::printf("  matches: %lld, hw %.2f ms (virtual), sw %.2f ms\n",
                static_cast<long long>(result->stats.rows_matched),
                result->stats.hw_seconds * 1e3,
                result->stats.udf_software_seconds * 1e3);
  }
  return 0;
}
