// Interactive SQL shell over the HUDF-enabled column store.
//
//   ./examples/doppio_shell [num_records]
//
// Tables preloaded: address_table (generated), customer/orders (TPC-H
// SF 0.01). Try:
//   SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%';
//   SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0;
//   SELECT count(*) FROM address_table WHERE REGEXP_AUTO('(Strasse|Str\.).*(8[0-9]{4})', address_string) <> 0;
//   .stats             toggle per-query phase breakdown
//   .tables            list tables
//   .explain <regex>   cost-model predictions for each strategy
//   EXPLAIN <select>;  logical plan (join keys, predicate routing)
//   .quit
#include <cstdio>
#include <iostream>
#include <string>

#include "db/column_store.h"
#include "db/cost_model.h"
#include "hal/hal.h"
#include "sql/executor.h"
#include "workload/address_generator.h"
#include "workload/tpch_generator.h"

using namespace doppio;

int main(int argc, char** argv) {
  int64_t num_records = argc > 1 ? std::atoll(argv[1]) : 100'000;

  Hal::Options hal_options;
  hal_options.shared_memory_bytes = int64_t{1} << 30;
  Hal hal(hal_options);
  ColumnStoreEngine::Options options;
  options.num_threads = 10;
  options.sequential_pipe = true;
  options.hal = &hal;
  ColumnStoreEngine engine(options);

  std::printf("loading address_table (%lld rows)...\n",
              static_cast<long long>(num_records));
  AddressDataOptions data;
  data.num_records = num_records;
  auto address =
      GenerateAddressTable(data, "address_table", engine.allocator());
  if (!address.ok() ||
      !engine.catalog()->AddTable(std::move(*address)).ok()) {
    return 1;
  }
  TpchOptions tpch;
  tpch.scale_factor = 0.01;
  auto customer = GenerateCustomerTable(tpch, engine.allocator());
  auto orders = GenerateOrdersTable(tpch, engine.allocator());
  if (!customer.ok() || !orders.ok() ||
      !engine.catalog()->AddTable(std::move(*customer)).ok() ||
      !engine.catalog()->AddTable(std::move(*orders)).ok()) {
    return 1;
  }
  if (!engine.BuildContainsIndex("address_table", "address_string").ok()) {
    return 1;
  }

  std::printf("device: %s | tables: address_table, customer, orders\n",
              hal.device_config().ToString().c_str());
  std::printf("operators: LIKE, ILIKE, REGEXP_LIKE, REGEXP_FPGA, "
              "REGEXP_HYBRID, REGEXP_AUTO, CONTAINS\n");

  bool show_stats = true;
  std::string line;
  std::string statement;
  std::printf("doppio> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == ".quit" || line == ".exit" || line == "\\q") break;
    if (line == ".stats") {
      show_stats = !show_stats;
      std::printf("stats %s\ndoppio> ", show_stats ? "on" : "off");
      std::fflush(stdout);
      continue;
    }
    if (line.rfind(".explain ", 0) == 0) {
      std::string pattern = line.substr(9);
      Table* t = engine.catalog()->GetTable("address_table");
      const Bat* col = t->GetColumn("address_string");
      TableStats stats;
      stats.rows = col->count();
      stats.heap_bytes = col->heap()->size_bytes();
      const OperatorCostModel& model = engine.cost_model();
      std::printf("predictions over address_table (%lld rows):\n",
                  static_cast<long long>(stats.rows));
      std::printf("  regexp_like (scalar): %8.3f ms\n",
                  model.PredictRegexpLike(stats) * 1e3);
      std::printf("  like fast path:       %8.3f ms (if substring-able)\n",
                  model.PredictLike(stats) * 1e3);
      auto fpga = model.PredictFpga(pattern, stats);
      if (fpga.ok()) {
        std::printf("  regexp_fpga:          %8.3f ms\n", *fpga * 1e3);
      } else {
        std::printf("  regexp_fpga:          n/a (%s)\n",
                    fpga.status().message().c_str());
        auto hybrid = model.PredictHybrid(pattern, stats);
        if (hybrid.ok()) {
          std::printf("  hybrid:               %8.3f ms\n", *hybrid * 1e3);
        }
      }
      StringFilterSpec spec;
      spec.op = StringFilterSpec::Op::kAuto;
      spec.pattern = pattern;
      auto choice = model.Choose(spec, stats, true);
      std::printf("  => chosen: %s (%.3f ms)\n", choice.reason.c_str(),
                  choice.predicted_seconds * 1e3);
      std::printf("doppio> ");
      std::fflush(stdout);
      continue;
    }
    if (line == ".tables") {
      for (const auto& name : engine.catalog()->TableNames()) {
        Table* t = engine.catalog()->GetTable(name);
        std::printf("  %-16s %lld rows\n", name.c_str(),
                    static_cast<long long>(t->num_rows()));
      }
      std::printf("doppio> ");
      std::fflush(stdout);
      continue;
    }
    statement += line;
    if (statement.find(';') == std::string::npos && !statement.empty()) {
      statement += " ";
      std::printf("   ...> ");
      std::fflush(stdout);
      continue;
    }
    if (!statement.empty() &&
        (statement.rfind("explain ", 0) == 0 ||
         statement.rfind("EXPLAIN ", 0) == 0)) {
      auto plan = sql::ExplainQuery(&engine, statement.substr(8));
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
      statement.clear();
      std::printf("doppio> ");
      std::fflush(stdout);
      continue;
    }
    if (!statement.empty()) {
      auto outcome = sql::ExecuteQuery(&engine, statement);
      if (!outcome.ok()) {
        std::printf("error: %s\n", outcome.status().ToString().c_str());
      } else {
        std::printf("%s", outcome->result.ToString(25).c_str());
        if (show_stats) {
          std::printf("-- %s\n", outcome->stats.ToString().c_str());
        }
      }
      statement.clear();
    }
    std::printf("doppio> ");
    std::fflush(stdout);
  }
  return 0;
}
