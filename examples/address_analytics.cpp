// The paper's core scenario: ad-hoc pattern-matching queries over an
// address table, comparing the software operators (LIKE / REGEXP_LIKE on
// the MonetDB-style engine) with the REGEXP_FPGA hardware UDF — all
// through SQL.
//
//   ./examples/address_analytics [num_records]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "db/column_store.h"
#include "hal/hal.h"
#include "sql/executor.h"
#include "workload/address_generator.h"
#include "workload/queries.h"

using namespace doppio;

int main(int argc, char** argv) {
  int64_t num_records = argc > 1 ? std::atoll(argv[1]) : 200'000;

  Hal::Options hal_options;
  hal_options.shared_memory_bytes = int64_t{1} << 30;
  Hal hal(hal_options);

  ColumnStoreEngine::Options options;
  options.num_threads = 10;       // the paper's 10-core machine
  options.sequential_pipe = true; // the HUDF-enabled configuration
  options.hal = &hal;
  ColumnStoreEngine engine(options);

  std::printf("generating %lld address records...\n",
              static_cast<long long>(num_records));
  AddressDataOptions data;
  data.num_records = num_records;
  data.selectivity = 0.2;
  auto table =
      GenerateAddressTable(data, "address_table", engine.allocator());
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  Status st = engine.catalog()->AddTable(std::move(*table));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n%-4s %-12s %12s %14s %14s\n", "qry", "variant", "count",
              "sw wall [ms]", "hw virt [ms]");
  for (EvalQuery q : {EvalQuery::kQ1, EvalQuery::kQ2, EvalQuery::kQ3,
                      EvalQuery::kQ4}) {
    for (QueryEngineVariant variant :
         {QueryEngineVariant::kMonetSoftware, QueryEngineVariant::kFpga}) {
      std::string sql_text = QuerySql(q, variant);
      auto outcome = sql::ExecuteQuery(&engine, sql_text);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", sql_text.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      auto count = outcome->result.ScalarInt();
      double sw_ms = (outcome->stats.database_seconds +
                      outcome->stats.udf_software_seconds +
                      outcome->stats.config_gen_seconds +
                      outcome->stats.hal_seconds) *
                     1e3;
      std::printf("%-4s %-12s %12lld %14.2f %14.2f\n", QueryName(q),
                  variant == QueryEngineVariant::kFpga ? "fpga" : "software",
                  static_cast<long long>(count.ValueOr(-1)), sw_ms,
                  outcome->stats.hw_seconds * 1e3);
    }
  }
  std::printf(
      "\nNote: 'hw virt' is simulated FPGA time (cycle/bandwidth model); "
      "'sw wall' is measured host time.\n");
  return 0;
}
