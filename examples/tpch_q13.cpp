// TPC-H Query 13 (paper §7.7): a complex query — left outer join, double
// aggregation, ordering — whose string predicate can be served by LIKE,
// ILIKE or the hardware operator, without touching the rest of the plan.
//
//   ./examples/tpch_q13 [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "db/column_store.h"
#include "sql/executor.h"
#include "workload/tpch_generator.h"

using namespace doppio;

int main(int argc, char** argv) {
  TpchOptions tpch;
  tpch.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.1;

  ColumnStoreEngine::Options options;
  options.num_threads = 10;
  ColumnStoreEngine engine(options);

  std::printf("generating TPC-H data at SF %.2f (%lld customers, %lld "
              "orders)...\n",
              tpch.scale_factor,
              static_cast<long long>(tpch.num_customers()),
              static_cast<long long>(tpch.num_orders()));
  auto customer = GenerateCustomerTable(tpch, engine.allocator());
  auto orders = GenerateOrdersTable(tpch, engine.allocator());
  if (!customer.ok() || !orders.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  if (!engine.catalog()->AddTable(std::move(*customer)).ok() ||
      !engine.catalog()->AddTable(std::move(*orders)).ok()) {
    std::fprintf(stderr, "catalog failed\n");
    return 1;
  }

  for (bool case_insensitive : {false, true}) {
    std::string sql_text = TpchQ13Sql(case_insensitive);
    auto outcome = sql::ExecuteQuery(&engine, sql_text);
    if (!outcome.ok()) {
      std::fprintf(stderr, "Q13 failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("\nTPC-H Q13 with %s — %.1f ms, %lld distinct counts\n",
                case_insensitive ? "ILIKE" : "LIKE",
                outcome->stats.TotalSeconds() * 1e3,
                static_cast<long long>(outcome->result.num_rows()));
    std::printf("%s", outcome->result.ToString(8).c_str());
  }
  return 0;
}
