// Quickstart: compile a regular expression to a hardware configuration
// vector, run it through the simulated FPGA as a Hardware UDF, and read
// the result BAT — the full Fig. 3 flow in ~60 lines.
//
//   ./examples/quickstart '(Strasse|Str\.).*(8[0-9]{4})'
#include <cstdio>
#include <string>

#include "bat/bat.h"
#include "db/hudf.h"
#include "hal/hal.h"

using namespace doppio;

int main(int argc, char** argv) {
  std::string pattern =
      argc > 1 ? argv[1] : R"((Strasse|Str\.).*(8[0-9]{4}))";

  // Bring up the HAL: pinned shared region + simulated Xeon+FPGA device.
  Hal::Options options;
  options.shared_memory_bytes = int64_t{256} << 20;
  Hal hal(options);
  std::printf("device: %s\n",
              hal.device_config().ToString().c_str());

  // A string BAT in CPU-FPGA shared memory, as MonetDB would allocate it.
  Bat addresses(ValueType::kString, hal.bat_allocator());
  const char* rows[] = {
      "John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
      "Anna|Meier|7 Berner Str.|81234|Muenchen",
      "Hans|Huber|12 Wiener Gasse|10115|Berlin",
      "Lena|Graf|3 Mainzer Strasse|81737|Muenchen",
  };
  for (const char* row : rows) {
    Status st = addresses.AppendString(row);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Run the HUDF: pattern -> config vector -> FPGA job -> result BAT.
  auto result = RegexpFpga(&hal, addresses, pattern);
  if (!result.ok()) {
    std::fprintf(stderr, "REGEXP_FPGA failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("pattern: %s\n\n", pattern.c_str());
  for (int64_t i = 0; i < addresses.count(); ++i) {
    int16_t match = result->result->GetInt16(i);
    std::printf("  [%s @%3d] %s\n", match != 0 ? "HIT " : "miss", match,
                std::string(addresses.GetString(i)).c_str());
  }
  std::printf(
      "\nconfig generation: %.2f us, hardware execution: %.2f us "
      "(simulated), matches: %lld/%lld\n",
      result->stats.config_gen_seconds * 1e6,
      result->stats.hw_seconds * 1e6,
      static_cast<long long>(result->stats.rows_matched),
      static_cast<long long>(result->stats.rows_scanned));
  return 0;
}
