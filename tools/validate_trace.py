#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file emitted by the obs tracer.

Checks, in order:
  1. the file is well-formed JSON (inf/NaN literals rejected);
  2. the top level is an object with a `traceEvents` list;
  3. every duration/instant event carries name, ph, ts, pid, tid, and ts
     is a finite non-negative number;
  4. within each (pid, tid) track, timestamps are monotone in file order
     (the exporter writes each job's phases sequentially on its own track);
  5. B/E events are properly matched and nested per track: every E closes
     the most recent open B with the same name, and no B is left open.

Exit status 0 on success; 1 with a diagnostic otherwise. Used by the CI
traced-benchmark step; see docs/OBSERVABILITY.md.
"""
import json
import math
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_constant(value):
    fail(f"non-finite JSON constant {value!r} (invalid per RFC 8259)")


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, "rb") as f:
            doc = json.load(f, parse_constant=reject_constant)
    except (OSError, ValueError) as e:
        fail(f"{path}: not well-formed JSON: {e}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]

    tracks = {}  # (pid, tid) -> {"last_ts": float, "open": [names]}
    begins = ends = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        name = ev.get("name")
        if ph is None or name is None:
            fail(f"event {i} missing ph/name")
        if ph == "M":  # metadata carries no timestamp
            continue
        if ph not in ("B", "E", "i"):
            fail(f"event {i} has unexpected ph {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail(f"event {i} ({name}) has bad ts {ts!r}")
        if "pid" not in ev or "tid" not in ev:
            fail(f"event {i} ({name}) missing pid/tid")

        track = tracks.setdefault((ev["pid"], ev["tid"]),
                                  {"last_ts": -1.0, "open": []})
        if ts < track["last_ts"]:
            fail(f"event {i} ({name}) ts {ts} goes backwards on track "
                 f"(pid={ev['pid']}, tid={ev['tid']}, "
                 f"prev={track['last_ts']})")
        track["last_ts"] = ts

        if ph == "B":
            begins += 1
            track["open"].append(name)
        elif ph == "E":
            ends += 1
            if not track["open"]:
                fail(f"event {i} ({name}): E with no open B on track "
                     f"(pid={ev['pid']}, tid={ev['tid']})")
            top = track["open"].pop()
            if top != name:
                fail(f"event {i}: E({name}) does not close the open "
                     f"B({top})")

    for (pid, tid), track in tracks.items():
        if track["open"]:
            fail(f"unclosed spans {track['open']} on track "
                 f"(pid={pid}, tid={tid})")
    if begins != ends:
        fail(f"{begins} B events vs {ends} E events")

    print(f"validate_trace: OK: {len(events)} events, {len(tracks)} tracks, "
          f"{begins} span pairs")


if __name__ == "__main__":
    main()
