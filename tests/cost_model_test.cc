#include <gtest/gtest.h>

#include <cstdlib>

#include "db/cost_model.h"
#include "sql/executor.h"
#include "workload/address_generator.h"
#include "workload/queries.h"

namespace doppio {
namespace {

OperatorCostModel::Calibration FixedCalibration() {
  // Deterministic calibration so choices are stable in tests:
  // LIKE scans at 2 GB/s, automata at 500 MB/s, scalar regex costs
  // 2 us/tuple; 10 cores.
  OperatorCostModel::Calibration cal;
  cal.like_bytes_per_sec = 2e9;
  cal.dfa_bytes_per_sec = 5e8;
  cal.simd_bytes_per_sec = 4e9;
  cal.regexp_tuple_seconds = 2e-6;
  cal.cpu_cores = 10;
  return cal;
}

TableStats BigTable() {
  TableStats stats;
  stats.rows = 2'500'000;
  stats.heap_bytes = stats.rows * 72;
  return stats;
}

TableStats TinyTable() {
  TableStats stats;
  stats.rows = 1'000;
  stats.heap_bytes = stats.rows * 72;
  return stats;
}

TEST(CostModelTest, MeasureProducesSaneNumbers) {
  auto cal = OperatorCostModel::Measure();
  EXPECT_GT(cal.like_bytes_per_sec, 1e7);
  EXPECT_GT(cal.dfa_bytes_per_sec, 1e6);
  EXPECT_GT(cal.simd_bytes_per_sec, 1e6);
  EXPECT_GT(cal.regexp_tuple_seconds, 1e-9);
  EXPECT_LT(cal.regexp_tuple_seconds, 1e-3);
}

TEST(CostModelTest, HostProgramPredictionTracksRegistryChoice) {
  unsetenv("DOPPIO_FORCE_BACKEND");
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());

  // Word-sized automaton chain and a literal: both SIMD-served, costed
  // at the SIMD throughput.
  auto word = model.PredictHostProgram("8[0-9][0-9][0-9][0-9]", BigTable());
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word->backend, BackendId::kCpuSimd);
  auto literal = model.PredictHostProgram("Strasse", BigTable());
  ASSERT_TRUE(literal.ok());
  EXPECT_EQ(literal->backend, BackendId::kCpuSimd);
  const double simd_expect = static_cast<double>(BigTable().heap_bytes) /
                             FixedCalibration().simd_bytes_per_sec;
  EXPECT_DOUBLE_EQ(word->seconds, simd_expect);

  // Broad-start fan-out: scalar backend, automaton throughput.
  auto broad = model.PredictHostProgram("([a-z]a|[0-9]b)", BigTable());
  ASSERT_TRUE(broad.ok());
  EXPECT_EQ(broad->backend, BackendId::kCpuScalar);
  EXPECT_GT(broad->seconds, word->seconds);

  // Over-capacity patterns cannot run as a compiled program at all.
  auto oversized =
      model.PredictHostProgram(QueryPattern(EvalQuery::kQH), BigTable());
  EXPECT_TRUE(oversized.status().IsCapacityExceeded());
}

TEST(CostModelTest, ForcedBackendOverridesHostPrediction) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  setenv("DOPPIO_FORCE_BACKEND", "scalar", 1);
  auto forced_scalar = model.PredictHostProgram("Strasse", BigTable());
  ASSERT_TRUE(forced_scalar.ok());
  EXPECT_EQ(forced_scalar->backend, BackendId::kCpuScalar);

  setenv("DOPPIO_FORCE_BACKEND", "simd", 1);
  auto forced_simd =
      model.PredictHostProgram("([a-z]a|[0-9]b)", BigTable());
  ASSERT_TRUE(forced_simd.ok());
  EXPECT_EQ(forced_simd->backend, BackendId::kCpuSimd);
  unsetenv("DOPPIO_FORCE_BACKEND");
}

TEST(CostModelTest, PredictionsScaleWithData) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  EXPECT_GT(model.PredictLike(BigTable()), model.PredictLike(TinyTable()));
  EXPECT_GT(model.PredictRegexpLike(BigTable()),
            model.PredictRegexpLike(TinyTable()));
  auto fpga_big = model.PredictFpga("Strasse", BigTable());
  auto fpga_tiny = model.PredictFpga("Strasse", TinyTable());
  ASSERT_TRUE(fpga_big.ok());
  ASSERT_TRUE(fpga_tiny.ok());
  EXPECT_GT(*fpga_big, *fpga_tiny);
}

TEST(CostModelTest, FpgaPredictionRejectsOversizedPatterns) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  auto r = model.PredictFpga(QueryPattern(EvalQuery::kQH), BigTable());
  EXPECT_TRUE(r.status().IsCapacityExceeded());
  // ... but the hybrid prediction still works.
  auto h = model.PredictHybrid(QueryPattern(EvalQuery::kQH), BigTable());
  ASSERT_TRUE(h.ok());
  EXPECT_GT(*h, 0.0);
}

TEST(CostModelTest, ChoosesFpgaForComplexPatternsOnBigTables) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kAuto;
  spec.pattern = QueryPattern(EvalQuery::kQ2);
  auto choice = model.Choose(spec, BigTable(), /*fpga_available=*/true);
  EXPECT_EQ(choice.op, StringFilterSpec::Op::kRegexpFpga);
  EXPECT_LT(choice.predicted_seconds,
            model.PredictRegexpLike(BigTable()));
}

TEST(CostModelTest, ChoosesSoftwareWithoutFpga) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kAuto;
  spec.pattern = QueryPattern(EvalQuery::kQ2);
  auto choice = model.Choose(spec, BigTable(), /*fpga_available=*/false);
  EXPECT_EQ(choice.op, StringFilterSpec::Op::kRegexpLike);
}

TEST(CostModelTest, SubstringRegexCanTakeTheLikeFastPath) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kAuto;
  spec.pattern = "Strasse";  // regex dialect, but a pure substring
  auto choice = model.Choose(spec, BigTable(), /*fpga_available=*/false);
  EXPECT_EQ(choice.op, StringFilterSpec::Op::kLike);
  EXPECT_EQ(choice.rewritten_pattern, "%Strasse%");

  // Multi-substring with '.*' glue.
  spec.pattern = "Alan.*Turing";
  choice = model.Choose(spec, BigTable(), false);
  EXPECT_EQ(choice.op, StringFilterSpec::Op::kLike);
  EXPECT_EQ(choice.rewritten_pattern, "%Alan%Turing%");
}

TEST(CostModelTest, OversizedPatternFallsToHybrid) {
  OperatorCostModel model(DeviceConfig{}, FixedCalibration());
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kAuto;
  spec.pattern = QueryPattern(EvalQuery::kQH);
  auto choice = model.Choose(spec, BigTable(), /*fpga_available=*/true);
  EXPECT_EQ(choice.op, StringFilterSpec::Op::kHybrid);
}

TEST(CostModelTest, EndToEndAutoThroughSql) {
  Hal::Options hal_options;
  hal_options.shared_memory_bytes = 64 * kSharedPageBytes;
  hal_options.functional_threads = 2;
  Hal hal(hal_options);
  ColumnStoreEngine::Options options;
  options.num_threads = 2;
  options.sequential_pipe = true;
  options.hal = &hal;
  ColumnStoreEngine engine(options);

  AddressDataOptions data;
  data.num_records = 20'000;
  auto table =
      GenerateAddressTable(data, "address_table", engine.allocator());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(engine.catalog()->AddTable(std::move(*table)).ok());

  auto auto_outcome = sql::ExecuteQuery(
      &engine,
      "SELECT count(*) FROM address_table WHERE "
      "REGEXP_AUTO('" + QueryPattern(EvalQuery::kQ2) + "', "
      "address_string) <> 0;");
  ASSERT_TRUE(auto_outcome.ok()) << auto_outcome.status().ToString();
  auto reference = sql::ExecuteQuery(
      &engine, QuerySql(EvalQuery::kQ2, QueryEngineVariant::kFpga));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*auto_outcome->result.ScalarInt(),
            *reference->result.ScalarInt());
  EXPECT_EQ(auto_outcome->stats.strategy.rfind("auto->", 0), 0u)
      << auto_outcome->stats.strategy;
}

TEST(CostModelTest, AutoOnOversizedPatternStillCorrect) {
  Hal::Options hal_options;
  hal_options.shared_memory_bytes = 64 * kSharedPageBytes;
  hal_options.functional_threads = 2;
  Hal hal(hal_options);
  ColumnStoreEngine::Options options;
  options.num_threads = 2;
  options.sequential_pipe = true;
  options.hal = &hal;
  ColumnStoreEngine engine(options);

  AddressDataOptions data;
  data.num_records = 10'000;
  data.selectivity = 0;
  data.qh_selectivity = 0.25;
  auto table =
      GenerateAddressTable(data, "address_table", engine.allocator());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(engine.catalog()->AddTable(std::move(*table)).ok());

  auto auto_outcome = sql::ExecuteQuery(
      &engine,
      "SELECT count(*) FROM address_table WHERE "
      "REGEXP_AUTO('" + QueryPattern(EvalQuery::kQH) + "', "
      "address_string) <> 0;");
  ASSERT_TRUE(auto_outcome.ok()) << auto_outcome.status().ToString();
  auto reference = sql::ExecuteQuery(
      &engine,
      QuerySql(EvalQuery::kQH, QueryEngineVariant::kMonetSoftware));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*auto_outcome->result.ScalarInt(),
            *reference->result.ScalarInt());
}

}  // namespace
}  // namespace doppio
