// Robustness fuzzing: random and mutated inputs must produce clean Status
// errors, never crashes, hangs or invalid states.
#include <gtest/gtest.h>

#include "common/random.h"
#include "hw/config_compiler.h"
#include "hw/config_vector.h"
#include "regex/dfa_matcher.h"
#include "regex/like_translator.h"
#include "regex/pattern_parser.h"
#include "regex/token_extractor.h"
#include "sql/parser.h"

namespace doppio {
namespace {

TEST(FuzzTest, RandomBytesIntoPatternParser) {
  Rng rng(42);
  int parsed_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng.NextBounded(24);
    std::string input;
    for (size_t k = 0; k < len; ++k) {
      input.push_back(static_cast<char>(rng.NextBounded(96) + 32));
    }
    auto ast = ParsePattern(input);
    if (ast.ok()) {
      ++parsed_ok;
      // Whatever parsed must compile and execute without issue.
      auto matcher = DfaMatcher::Compile(input);
      if (matcher.ok()) {
        (void)(*matcher)->Find("John|Smith|44 Koblenzer Strasse");
      }
    } else {
      EXPECT_TRUE(ast.status().IsParseError() ||
                  ast.status().IsCapacityExceeded())
          << input << " -> " << ast.status().ToString();
    }
  }
  EXPECT_GT(parsed_ok, 100);  // plenty of random strings are valid regexes
}

TEST(FuzzTest, RandomMetaHeavyPatterns) {
  Rng rng(7);
  const std::string meta = R"(()[]{}|*+?.\-^09azAZ)";
  for (int i = 0; i < 3000; ++i) {
    std::string input = rng.FromAlphabet(meta, rng.NextBounded(16));
    auto ast = ParsePattern(input);
    if (!ast.ok()) continue;
    // Round-trip: rendering a parsed AST must re-parse.
    std::string rendered = (*ast)->ToString();
    auto reparsed = ParsePattern(rendered);
    EXPECT_TRUE(reparsed.ok()) << input << " -> " << rendered;
  }
}

TEST(FuzzTest, RandomLikePatterns) {
  Rng rng(9);
  const std::string alphabet = "ab%_\\xy";
  for (int i = 0; i < 3000; ++i) {
    std::string pattern = rng.FromAlphabet(alphabet, rng.NextBounded(12));
    auto like = TranslateLike(pattern);
    if (!like.ok()) {
      EXPECT_TRUE(like.status().IsParseError());
      continue;
    }
    auto reparse = ParsePattern(like->regex);
    EXPECT_TRUE(reparse.ok()) << pattern << " -> " << like->regex;
  }
}

TEST(FuzzTest, RandomBytesIntoConfigDecoder) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> bytes(rng.NextBounded(256));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
    auto config = ConfigVector::FromBytes(bytes);
    // Virtually all random blobs must be rejected; none may crash.
    if (config.ok()) {
      auto nfa = config->Decode();
      EXPECT_TRUE(nfa.ok());
    }
  }
}

TEST(FuzzTest, TruncatedValidConfigs) {
  auto nfa = ExtractTokenNfa(R"((Strasse|Str\.).*(8[0-9]{4}))");
  ASSERT_TRUE(nfa.ok());
  auto encoded = ConfigVector::Encode(*nfa);
  ASSERT_TRUE(encoded.ok());
  const auto& bytes = encoded->bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    auto result = ConfigVector::FromBytes(truncated);
    // Shorter prefixes must be rejected (padding-only truncation at the
    // tail may still decode — that is fine).
    (void)result;
  }
}

TEST(FuzzTest, RandomBytesIntoSqlParser) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBounded(48);
    std::string input;
    for (size_t k = 0; k < len; ++k) {
      input.push_back(static_cast<char>(rng.NextBounded(96) + 32));
    }
    auto stmt = sql::ParseSelect(input);
    if (!stmt.ok()) {
      EXPECT_TRUE(stmt.status().IsParseError()) << input;
    }
  }
}

TEST(FuzzTest, MutatedValidSql) {
  const std::string base =
      "SELECT count(*) FROM address_table WHERE address_string LIKE "
      "'%Strasse%' AND id < 100;";
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBounded(96) + 32);
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.NextBounded(96) + 32));
          break;
      }
      if (mutated.empty()) break;
    }
    (void)sql::ParseSelect(mutated);  // must not crash
  }
}

TEST(FuzzTest, ExtractorNeverProducesInvalidNfa) {
  Rng rng(17);
  const std::string alphabet = "ab(|)*+?.[]-09{}";
  for (int i = 0; i < 3000; ++i) {
    std::string pattern = rng.FromAlphabet(alphabet, rng.NextBounded(14));
    auto ast = ParsePattern(pattern);
    if (!ast.ok()) continue;
    auto nfa = ExtractTokenNfa(**ast);
    if (nfa.ok()) {
      EXPECT_TRUE(nfa->Validate().ok()) << pattern;
      // And the config round-trips.
      auto encoded = ConfigVector::Encode(*nfa);
      ASSERT_TRUE(encoded.ok()) << pattern;
      EXPECT_TRUE(encoded->Decode().ok()) << pattern;
    }
  }
}

}  // namespace
}  // namespace doppio
