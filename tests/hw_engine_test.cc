#include <gtest/gtest.h>

#include <set>

#include "bat/bat.h"
#include "common/random.h"
#include "hw/config_compiler.h"
#include "hw/fifo.h"
#include "hw/fpga_device.h"
#include "hw/output_collector.h"
#include "hw/string_reader.h"
#include "regex/dfa_matcher.h"
#include "workload/address_generator.h"
#include "workload/queries.h"

namespace doppio {
namespace {

std::unique_ptr<Bat> MakeStrings(const std::vector<std::string>& values) {
  auto bat = std::make_unique<Bat>(ValueType::kString);
  for (const auto& v : values) {
    EXPECT_TRUE(bat->AppendString(v).ok());
  }
  return bat;
}

JobParams MakeJob(const Bat& input, Bat* result,
                  const RegexConfig& config) {
  JobParams params;
  params.offsets = input.tail_data();
  params.heap = input.heap()->data();
  params.result = result->mutable_tail_data();
  params.count = input.count();
  params.offset_width = 4;
  params.heap_bytes = input.heap()->size_bytes();
  params.config = config.vector.bytes();
  return params;
}

TEST(FifoTest, BoundedWithStallAccounting) {
  Fifo<int> fifo(2);
  EXPECT_TRUE(fifo.Empty());
  EXPECT_TRUE(fifo.Push(1));
  EXPECT_TRUE(fifo.Push(2));
  EXPECT_TRUE(fifo.Full());
  EXPECT_FALSE(fifo.Push(3));  // back-pressure
  EXPECT_EQ(fifo.push_stalls(), 1);
  int v = 0;
  EXPECT_TRUE(fifo.Pop(&v));
  EXPECT_EQ(v, 1);  // FIFO order
  EXPECT_TRUE(fifo.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(fifo.Pop(&v));  // empty
  EXPECT_EQ(fifo.pop_stalls(), 1);
  EXPECT_EQ(fifo.total_pushed(), 2);
  EXPECT_EQ(fifo.max_occupancy(), 2u);
}

TEST(StringReaderTest, BlockStructureAndTraffic) {
  std::vector<std::string> values;
  for (int i = 0; i < 10'000; ++i) {
    values.push_back("row " + std::to_string(i) + " payload padding xyz");
  }
  auto bat = MakeStrings(values);
  Bat result(ValueType::kInt16);
  ASSERT_TRUE(result.AppendZeros(bat->count()).ok());
  DeviceConfig device;
  auto config = CompileRegexConfig("payload", device);
  ASSERT_TRUE(config.ok());
  JobParams params = MakeJob(*bat, &result, *config);

  StringReader reader(params);
  int64_t strings_seen = 0;
  int64_t blocks = 0;
  while (reader.HasMore()) {
    auto block = reader.ReadBlock();
    ASSERT_TRUE(block.ok());
    strings_seen += block->num_strings;
    ++blocks;
    EXPECT_LE(block->num_strings, kStringsPerBlock);
    EXPECT_GT(block->offset_lines, 0);
    EXPECT_GT(block->heap_lines, 0);
    // Heap traffic must cover at least the payload bytes.
    EXPECT_GE(block->heap_lines * kCacheLineBytes, block->string_bytes);
    // Strings come back in input order.
    EXPECT_EQ(block->strings[0],
              values[static_cast<size_t>(block->first_string)]);
  }
  EXPECT_EQ(strings_seen, 10'000);
  EXPECT_EQ(blocks, (10'000 + kStringsPerBlock - 1) / kStringsPerBlock);
}

TEST(OutputCollectorTest, PacksResultsInOrder) {
  auto bat = MakeStrings({"a", "b", "c"});
  Bat result(ValueType::kInt16);
  ASSERT_TRUE(result.AppendZeros(3).ok());
  DeviceConfig device;
  auto config = CompileRegexConfig("a", device);
  ASSERT_TRUE(config.ok());
  JobParams params = MakeJob(*bat, &result, *config);
  OutputCollector collector(params);
  ASSERT_TRUE(collector.Append(1).ok());
  ASSERT_TRUE(collector.Append(0).ok());
  ASSERT_TRUE(collector.Append(7).ok());
  EXPECT_FALSE(collector.Append(9).ok());  // overflow
  EXPECT_EQ(result.GetInt16(0), 1);
  EXPECT_EQ(result.GetInt16(1), 0);
  EXPECT_EQ(result.GetInt16(2), 7);
  EXPECT_EQ(collector.matches(), 2);
  EXPECT_EQ(OutputCollector::TotalResultLines(33), 2);
}

TEST(FpgaDeviceTest, ExecutesJobFunctionally) {
  auto bat = MakeStrings({
      "John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
      "Anna|Meier|7 Berner Gasse|10115|Berlin",
      "Karl|Huber|1 Wiener Strasse|80331|Muenchen",
  });
  Bat result(ValueType::kInt16);
  ASSERT_TRUE(result.AppendZeros(bat->count()).ok());

  DeviceConfig device;
  FpgaDevice fpga(device);
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());
  auto job = fpga.Submit(MakeJob(*bat, &result, *config));
  ASSERT_TRUE(job.ok());
  auto finish = fpga.WaitForJob(*job);
  ASSERT_TRUE(finish.ok()) << finish.status().ToString();

  EXPECT_NE(result.GetInt16(0), 0);
  EXPECT_EQ(result.GetInt16(1), 0);
  EXPECT_NE(result.GetInt16(2), 0);
  const JobStatus* st = fpga.status(*job);
  EXPECT_EQ(st->matches, 2);
  EXPECT_EQ(st->strings_processed, 3);
  EXPECT_GT(st->finish_time, st->start_time);
}

TEST(FpgaDeviceTest, ResultsMatchDfaOnGeneratedData) {
  AddressDataOptions opts;
  opts.num_records = 20'000;
  auto table = GenerateAddressTable(opts, "addr");
  ASSERT_TRUE(table.ok());
  const Bat& strings = *(*table)->GetColumn("address_string");

  DeviceConfig device;
  FpgaDevice fpga(device);
  for (EvalQuery q : {EvalQuery::kQ1, EvalQuery::kQ2, EvalQuery::kQ3,
                      EvalQuery::kQ4}) {
    Bat result(ValueType::kInt16);
    ASSERT_TRUE(result.AppendZeros(strings.count()).ok());
    auto config = CompileRegexConfig(QueryPattern(q), device);
    ASSERT_TRUE(config.ok()) << QueryName(q);
    auto job = fpga.Submit(MakeJob(strings, &result, *config));
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(fpga.WaitForJob(*job).ok());

    auto dfa = DfaMatcher::Compile(QueryPattern(q));
    ASSERT_TRUE(dfa.ok());
    for (int64_t i = 0; i < strings.count(); ++i) {
      MatchResult sw = (*dfa)->Find(strings.GetString(i));
      EXPECT_EQ(result.GetInt16(i) != 0, sw.matched)
          << QueryName(q) << " row " << i;
    }
  }
}

TEST(FpgaDeviceTest, FourConcurrentJobsUseFourEngines) {
  auto bat = MakeStrings(std::vector<std::string>(
      1000, "John|Smith|44 Koblenzer Strasse|60327|Frankfurt"));
  DeviceConfig device;
  FpgaDevice fpga(device);
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());

  std::vector<std::unique_ptr<Bat>> results;
  std::vector<JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    auto result = std::make_unique<Bat>(ValueType::kInt16);
    ASSERT_TRUE(result->AppendZeros(bat->count()).ok());
    auto job = fpga.Submit(MakeJob(*bat, results.emplace_back(
                                             std::move(result)).get(),
                                   *config));
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  fpga.RunToIdle();
  std::set<int64_t> engines;
  for (JobId id : jobs) {
    EXPECT_EQ(fpga.status(id)->done.load(), 1u);
    engines.insert(fpga.status(id)->engine_id);
  }
  EXPECT_EQ(engines.size(), 4u);  // all four engines were used
}

TEST(FpgaDeviceTest, DifferentQueriesRunConcurrently) {
  // Paper §3: "All engines operate concurrently and can process different
  // queries" — four jobs with four *different* configuration vectors.
  AddressDataOptions opts;
  opts.num_records = 4000;
  auto table = GenerateAddressTable(opts, "addr");
  ASSERT_TRUE(table.ok());
  const Bat& strings = *(*table)->GetColumn("address_string");

  DeviceConfig device;
  FpgaDevice fpga(device);
  std::vector<std::unique_ptr<Bat>> results;
  std::vector<JobId> jobs;
  std::vector<EvalQuery> queries = {EvalQuery::kQ1, EvalQuery::kQ2,
                                    EvalQuery::kQ3, EvalQuery::kQ4};
  for (EvalQuery q : queries) {
    auto config = CompileRegexConfig(QueryPattern(q), device);
    ASSERT_TRUE(config.ok());
    auto result = std::make_unique<Bat>(ValueType::kInt16);
    ASSERT_TRUE(result->AppendZeros(strings.count()).ok());
    auto job = fpga.Submit(MakeJob(strings, results.emplace_back(
                                                 std::move(result)).get(),
                                   *config));
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  fpga.RunToIdle();

  std::set<int64_t> engines;
  for (JobId id : jobs) engines.insert(fpga.status(id)->engine_id);
  EXPECT_EQ(engines.size(), 4u);  // one engine per query

  // Each result matches its own query's ground truth.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto dfa = DfaMatcher::Compile(QueryPattern(queries[qi]));
    ASSERT_TRUE(dfa.ok());
    for (int64_t i = 0; i < strings.count(); ++i) {
      EXPECT_EQ(results[qi]->GetInt16(i) != 0,
                (*dfa)->Matches(strings.GetString(i)))
          << QueryName(queries[qi]) << " row " << i;
    }
  }
}

TEST(FpgaDeviceTest, StructuralAndParallelFunctionalPathsAgree) {
  // The FIFO-mediated structural path (used below the parallel threshold)
  // and the host-parallel fast path must produce identical result BATs.
  AddressDataOptions opts;
  // Above RegexEngine::kParallelThreshold so the pool-enabled device
  // takes the host-parallel fast path; the pool-less one is structural.
  opts.num_records = 70'000;
  auto table = GenerateAddressTable(opts, "addr");
  ASSERT_TRUE(table.ok());
  const Bat& strings = *(*table)->GetColumn("address_string");
  DeviceConfig device;
  auto config =
      CompileRegexConfig(QueryPattern(EvalQuery::kQ2), device);
  ASSERT_TRUE(config.ok());

  Bat structural(ValueType::kInt16);
  ASSERT_TRUE(structural.AppendZeros(strings.count()).ok());
  {
    FpgaDevice fpga(device);  // no thread pool: structural FIFO path
    auto job = fpga.Submit(MakeJob(strings, &structural, *config));
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(fpga.WaitForJob(*job).ok());
  }

  Bat parallel(ValueType::kInt16);
  ASSERT_TRUE(parallel.AppendZeros(strings.count()).ok());
  {
    ThreadPool pool(3);
    FpgaDevice fpga(device, nullptr, &pool);
    auto job = fpga.Submit(MakeJob(strings, &parallel, *config));
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(fpga.WaitForJob(*job).ok());
  }
  for (int64_t i = 0; i < strings.count(); ++i) {
    EXPECT_EQ(structural.GetInt16(i), parallel.GetInt16(i)) << i;
  }
}

TEST(FpgaDeviceTest, FifthJobQueuesBehindBusyEngines) {
  auto bat = MakeStrings(std::vector<std::string>(
      5000, "John|Smith|44 Koblenzer Strasse|60327|Frankfurt"));
  DeviceConfig device;
  FpgaDevice fpga(device);
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());

  std::vector<std::unique_ptr<Bat>> results;
  std::vector<JobId> jobs;
  for (int i = 0; i < 5; ++i) {
    auto result = std::make_unique<Bat>(ValueType::kInt16);
    ASSERT_TRUE(result->AppendZeros(bat->count()).ok());
    auto job = fpga.Submit(MakeJob(*bat, results.emplace_back(
                                             std::move(result)).get(),
                                   *config));
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  fpga.RunToIdle();
  // The fifth job waited for an engine: positive queueing delay.
  EXPECT_GT(fpga.status(jobs[4])->QueueSeconds(), 0.0);
  EXPECT_EQ(fpga.status(jobs[0])->QueueSeconds(),
            fpga.status(jobs[0])->QueueSeconds());
}

TEST(FpgaDeviceTest, ThroughputScalingMatchesFig8Shape) {
  // Single-engine effective bandwidth is below the QPI cap; two engines
  // saturate the link; more engines add nothing (Fig. 8).
  auto bat = MakeStrings(std::vector<std::string>(
      50'000, "John|Smith|44 Koblenzer Strasse|60327|Frankfurt"));

  auto run_with_engines = [&](int engines) {
    DeviceConfig device;
    device.num_engines = engines;
    FpgaDevice fpga(device);
    auto config = CompileRegexConfig("Strasse", device);
    EXPECT_TRUE(config.ok());
    std::vector<std::unique_ptr<Bat>> results;
    for (int i = 0; i < engines; ++i) {
      auto result = std::make_unique<Bat>(ValueType::kInt16);
      EXPECT_TRUE(result->AppendZeros(bat->count()).ok());
      auto job = fpga.Submit(MakeJob(*bat, results.emplace_back(
                                               std::move(result)).get(),
                                     *config));
      EXPECT_TRUE(job.ok());
    }
    SimTime end = fpga.RunToIdle();
    // Aggregate throughput = jobs / makespan.
    return static_cast<double>(engines) / SecondsFromPicos(end);
  };

  double one = run_with_engines(1);
  double two = run_with_engines(2);
  double four = run_with_engines(4);
  EXPECT_GT(two, one * 1.05);   // slight gain from hiding latency
  EXPECT_LT(two, one * 1.35);
  EXPECT_NEAR(four, two, two * 0.10);  // flat beyond two engines
}

TEST(FpgaDeviceTest, TraceRecordsSchedulingTimeline) {
  auto bat = MakeStrings(std::vector<std::string>(
      20'000, "John|Smith|44 Koblenzer Strasse|60327|Frankfurt"));
  DeviceConfig device;
  FpgaDevice fpga(device);
  TraceLog trace;
  fpga.EnableTrace(&trace);
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());

  std::vector<std::unique_ptr<Bat>> results;
  for (int i = 0; i < 2; ++i) {
    auto result = std::make_unique<Bat>(ValueType::kInt16);
    ASSERT_TRUE(result->AppendZeros(bat->count()).ok());
    auto job = fpga.Submit(MakeJob(*bat, results.emplace_back(
                                             std::move(result)).get(),
                                   *config));
    ASSERT_TRUE(job.ok());
  }
  fpga.RunToIdle();

  auto enqueued = trace.Filter(TraceEvent::Kind::kJobEnqueued);
  auto dispatched = trace.Filter(TraceEvent::Kind::kJobDispatched);
  auto done = trace.Filter(TraceEvent::Kind::kJobDone);
  auto chunks = trace.Filter(TraceEvent::Kind::kChunkTransferred);
  ASSERT_EQ(enqueued.size(), 2u);
  ASSERT_EQ(dispatched.size(), 2u);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GT(chunks.size(), 2u);
  // Causality on the virtual clock.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_LE(enqueued[i].time, dispatched[i].time);
    EXPECT_LT(dispatched[i].time, done[i].time);
  }
  // The two jobs ran on different engines.
  EXPECT_NE(dispatched[0].engine_id, dispatched[1].engine_id);
  // Every chunk belongs to one of the dispatched jobs.
  for (const TraceEvent& c : chunks) {
    EXPECT_TRUE(c.job_id == dispatched[0].job_id ||
                c.job_id == dispatched[1].job_id);
  }
  EXPECT_FALSE(trace.ToString(5).empty());

  // Utilization summary mentions every engine and the QPI line.
  std::string summary = fpga.UtilizationSummary();
  EXPECT_NE(summary.find("engine 0"), std::string::npos);
  EXPECT_NE(summary.find("engine 3"), std::string::npos);
  EXPECT_NE(summary.find("qpi:"), std::string::npos);
}

TEST(FpgaDeviceTest, RejectsBadJobs) {
  DeviceConfig device;
  FpgaDevice fpga(device);
  JobParams params;
  params.count = -1;
  EXPECT_FALSE(fpga.Submit(std::move(params)).ok());

  JobParams params2;
  params2.count = 10;  // null pointers
  params2.config = {0xFF};
  EXPECT_FALSE(fpga.Submit(std::move(params2)).ok());
}

TEST(FpgaDeviceTest, EnforcesSharedMemoryBounds) {
  SharedArena arena(4 * kSharedPageBytes);
  DeviceConfig device;
  FpgaDevice fpga(device, &arena);

  // BAT in plain malloc memory: the FPGA must refuse to touch it.
  auto bat = MakeStrings({"Strasse"});
  Bat result(ValueType::kInt16);
  ASSERT_TRUE(result.AppendZeros(1).ok());
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());
  auto job = fpga.Submit(MakeJob(*bat, &result, *config));
  EXPECT_FALSE(job.ok());
  EXPECT_TRUE(job.status().IsInvalidArgument());
}

}  // namespace
}  // namespace doppio
