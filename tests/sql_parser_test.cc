#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "workload/tpch_generator.h"

namespace doppio {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT count(*) FROM t WHERE a <> 0;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("count"));
  EXPECT_TRUE((*tokens)[2].IsSymbol("("));
  EXPECT_TRUE((*tokens)[3].IsSymbol("*"));
  EXPECT_EQ((*tokens).back().kind, TokenKind::kEnd);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("SELECT 'it''s' FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, StringPreservesCase) {
  auto tokens = Tokenize("SELECT '%Strasse%' FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "%Strasse%");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops FROM t").ok());
}

TEST(LexerTest, OperatorVariants) {
  auto tokens = Tokenize("a <> b != c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));  // != normalizes
  EXPECT_TRUE((*tokens)[5].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[7].IsSymbol(">="));
}

TEST(ParserTest, SimpleCount) {
  auto stmt = ParseSelect(
      "SELECT count(*) FROM address_table WHERE address_string LIKE "
      "'%Strasse%';");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->from.table_name, "address_table");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kLike);
  EXPECT_EQ(stmt->where->str_value, "%Strasse%");
}

TEST(ParserTest, RegexpFpgaComparison) {
  auto stmt = ParseSelect(
      "SELECT count(*) FROM t WHERE REGEXP_FPGA('Strasse', s) <> 0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kBinary);
  EXPECT_EQ(stmt->where->op, BinOp::kNe);
  EXPECT_EQ(stmt->where->args[0]->kind, ExprKind::kFunc);
  EXPECT_EQ(stmt->where->args[0]->name, "regexp_fpga");
}

TEST(ParserTest, NotLikeAndIlike) {
  auto stmt = ParseSelect(
      "SELECT count(*) FROM t WHERE a NOT LIKE '%x%' AND b ILIKE '%y%'");
  ASSERT_TRUE(stmt.ok());
  const Expr& where = *stmt->where;
  EXPECT_EQ(where.op, BinOp::kAnd);
  EXPECT_TRUE(where.args[0]->like_negated);
  EXPECT_FALSE(where.args[0]->like_case_insensitive);
  EXPECT_FALSE(where.args[1]->like_negated);
  EXPECT_TRUE(where.args[1]->like_case_insensitive);
}

TEST(ParserTest, TpchQ13Parses) {
  auto stmt = ParseSelect(TpchQ13Sql(false));
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[1].alias, "custdist");
  ASSERT_NE(stmt->from.subquery, nullptr);
  EXPECT_EQ(stmt->from.alias, "c_orders");
  EXPECT_EQ(stmt->from.column_aliases,
            (std::vector<std::string>{"c_custkey", "c_count"}));
  const SelectStmt& inner = *stmt->from.subquery;
  ASSERT_EQ(inner.joins.size(), 1u);
  EXPECT_EQ(inner.joins[0].type, JoinType::kLeftOuter);
  EXPECT_EQ(inner.joins[0].right.table_name, "orders");
  EXPECT_EQ(inner.group_by, (std::vector<std::string>{"c_custkey"}));
  EXPECT_EQ(stmt->group_by, (std::vector<std::string>{"c_count"}));
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_EQ(stmt->order_by[0].column, "custdist");
  EXPECT_TRUE(stmt->order_by[0].descending);
}

TEST(ParserTest, GroupOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT a, count(*) FROM t GROUP BY a ORDER BY a ASC LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->limit, 5);
  EXPECT_FALSE(stmt->order_by[0].descending);
}

TEST(ParserTest, QualifiedColumns) {
  auto stmt = ParseSelect("SELECT t.a FROM t WHERE t.b = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->name, "a");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("count(*) FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(* FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a LIKE 5").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage").ok());
}

// --- Planner ------------------------------------------------------------------

ExprPtr WhereOf(const std::string& sql_text) {
  auto stmt = ParseSelect(sql_text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(stmt->where);
}

TEST(PlannerTest, RecognizesLike) {
  auto plan = PlanWhere(
      WhereOf("SELECT count(*) FROM t WHERE s LIKE '%Strasse%'"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fast.size(), 1u);
  EXPECT_EQ(plan->fast[0].column, "s");
  EXPECT_EQ(plan->fast[0].spec.op, StringFilterSpec::Op::kLike);
  EXPECT_EQ(plan->fast[0].spec.pattern, "%Strasse%");
  EXPECT_EQ(plan->residual, nullptr);
}

TEST(PlannerTest, RecognizesRegexpFpgaZeroComparison) {
  auto plan = PlanWhere(WhereOf(
      "SELECT count(*) FROM t WHERE REGEXP_FPGA('abc', s) <> 0"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fast.size(), 1u);
  EXPECT_EQ(plan->fast[0].spec.op, StringFilterSpec::Op::kRegexpFpga);
  EXPECT_FALSE(plan->fast[0].spec.negated);

  auto anti = PlanWhere(WhereOf(
      "SELECT count(*) FROM t WHERE REGEXP_FPGA('abc', s) = 0"));
  ASSERT_TRUE(anti.ok());
  ASSERT_EQ(anti->fast.size(), 1u);
  EXPECT_TRUE(anti->fast[0].spec.negated);
}

TEST(PlannerTest, RecognizesBothArgumentOrders) {
  // The paper writes both REGEXP_LIKE('pat', col) and
  // REGEXP_LIKE(col, 'pat').
  for (const char* sql_text :
       {"SELECT count(*) FROM t WHERE REGEXP_LIKE(s, 'abc')",
        "SELECT count(*) FROM t WHERE REGEXP_LIKE('abc', s)"}) {
    auto plan = PlanWhere(WhereOf(sql_text));
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->fast.size(), 1u) << sql_text;
    EXPECT_EQ(plan->fast[0].column, "s");
    EXPECT_EQ(plan->fast[0].spec.pattern, "abc");
  }
}

TEST(PlannerTest, NotWrapsToNegated) {
  auto plan = PlanWhere(WhereOf(
      "SELECT count(*) FROM t WHERE NOT REGEXP_LIKE(s, 'abc')"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fast.size(), 1u);
  EXPECT_TRUE(plan->fast[0].spec.negated);
}

TEST(PlannerTest, MixedConjunction) {
  auto plan = PlanWhere(WhereOf(
      "SELECT count(*) FROM t WHERE s LIKE '%a%' AND id < 100 AND "
      "CONTAINS(s, 'alan & turing')"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->fast.size(), 2u);
  ASSERT_NE(plan->residual, nullptr);  // id < 100 stays residual
  EXPECT_EQ(plan->residual->kind, ExprKind::kBinary);
}

TEST(PlannerTest, OrIsNotDecomposed) {
  auto plan = PlanWhere(WhereOf(
      "SELECT count(*) FROM t WHERE s LIKE '%a%' OR s LIKE '%b%'"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->fast.empty());
  EXPECT_NE(plan->residual, nullptr);
}

TEST(ExpressionTest, SplitConjuncts) {
  auto where = WhereOf(
      "SELECT count(*) FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)");
  auto conjuncts = SplitConjuncts(std::move(where));
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(RowPredicateTest, CompiledEvaluation) {
  Table table("t");
  auto id = std::make_unique<Bat>(ValueType::kInt32);
  auto name = std::make_unique<Bat>(ValueType::kString);
  const char* names[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(id->AppendInt32(i * 10).ok());
    ASSERT_TRUE(name->AppendString(names[i]).ok());
  }
  ASSERT_TRUE(table.AddColumn("id", std::move(id)).ok());
  ASSERT_TRUE(table.AddColumn("name", std::move(name)).ok());

  auto where = WhereOf(
      "SELECT count(*) FROM t WHERE id >= 10 AND name LIKE '%a%'");
  auto predicate = RowPredicate::Compile(*where, table);
  ASSERT_TRUE(predicate.ok()) << predicate.status().ToString();
  EXPECT_FALSE((*predicate)->Evaluate(0));  // id 0 fails id >= 10
  EXPECT_TRUE((*predicate)->Evaluate(1));   // beta
  EXPECT_TRUE((*predicate)->Evaluate(2));   // gamma
}

TEST(RowPredicateTest, RejectsUnknownColumns) {
  Table table("t");
  ASSERT_TRUE(
      table.AddColumn("id", std::make_unique<Bat>(ValueType::kInt32)).ok());
  auto where = WhereOf("SELECT count(*) FROM t WHERE ghost = 1");
  EXPECT_FALSE(RowPredicate::Compile(*where, table).ok());
}

TEST(ExpressionTest, CloneAndToString) {
  auto where = WhereOf(
      "SELECT count(*) FROM t WHERE NOT (a LIKE '%x%') AND b <> 0");
  ExprPtr copy = where->Clone();
  EXPECT_EQ(copy->ToString(), where->ToString());
}

}  // namespace
}  // namespace sql
}  // namespace doppio
