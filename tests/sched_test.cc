#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "db/hybrid_executor.h"
#include "db/hudf.h"
#include "mem/arena.h"
#include "obs/metrics.h"
#include "regex/dfa_matcher.h"
#include "sched/program_cache.h"
#include "sched/scheduler.h"

namespace doppio {
namespace {

using sched::ProgramCache;
using sched::QueryScheduler;
using sched::QueryTicket;
using sched::Route;
using sched::ScheduledResult;
using sched::Session;
using sched::SessionOptions;

Hal::Options TestHal() {
  Hal::Options options;
  options.shared_memory_bytes = 256 * kSharedPageBytes;
  options.functional_threads = 1;
  return options;
}

/// Deterministic address-flavored strings; `salt` varies the mix so
/// different inputs have different match sets.
void FillInput(Bat* input, int rows, int salt = 0) {
  for (int i = 0; i < rows; ++i) {
    switch ((i + salt) % 4) {
      case 0:
        ASSERT_TRUE(input->AppendString("7 Berner Strasse|61234").ok());
        break;
      case 1:
        ASSERT_TRUE(input->AppendString("12 Berner Gasse|61234").ok());
        break;
      case 2:
        ASSERT_TRUE(input->AppendString("1 Haupt Strasse|99999").ok());
        break;
      default:
        ASSERT_TRUE(input->AppendString("no address at all").ok());
        break;
    }
  }
}

/// Raw result column of the direct (schedulerless) partitioned path.
std::vector<int16_t> DirectResult(Hal* hal, const Bat& input,
                                  const std::string& pattern) {
  auto out = RegexpFpgaPartitioned(hal, input, pattern);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  std::vector<int16_t> values(static_cast<size_t>(input.count()));
  for (int64_t i = 0; i < input.count(); ++i) {
    values[static_cast<size_t>(i)] = out->result->GetInt16(i);
  }
  return values;
}

void ExpectSameColumn(const std::vector<int16_t>& expected, const Bat& got) {
  ASSERT_EQ(static_cast<int64_t>(expected.size()), got.count());
  for (int64_t i = 0; i < got.count(); ++i) {
    EXPECT_EQ(got.GetInt16(i), expected[static_cast<size_t>(i)])
        << "row " << i;
  }
}

QueryScheduler::Options NoRouting() {
  QueryScheduler::Options options;
  options.cost_routing = false;
  return options;
}

// --- Basic execution --------------------------------------------------------

TEST(SchedulerTest, SingleQueryBitIdenticalToDirectPath) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 64);
  const std::vector<int16_t> expected = DirectResult(&hal, input, "Strasse");

  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();
  auto result = scheduler.Execute(session, input, "Strasse");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->route, Route::kFpga);
  EXPECT_EQ(result->batch_width, 1);
  EXPECT_GT(result->completion_seq, 0u);
  EXPECT_GT(result->hudf.stats.hw_seconds, 0.0);
  ExpectSameColumn(expected, *result->hudf.result);
  EXPECT_EQ(session->admitted(), 1);
  EXPECT_EQ(session->completed(), 1);
}

TEST(SchedulerTest, ZeroRowInputCompletes) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();
  auto result = scheduler.Execute(session, input, "Strasse");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->hudf.result->count(), 0);
}

TEST(SchedulerTest, TicketMisuseIsRejected) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 8);
  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();

  EXPECT_TRUE(scheduler.Wait(QueryTicket()).status().IsInvalidArgument());
  EXPECT_TRUE(
      scheduler.Submit(nullptr, input, "x").status().IsInvalidArgument());

  auto ticket = scheduler.Submit(session, input, "Strasse");
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(scheduler.Wait(*ticket).ok());
  // A ticket completes exactly once.
  EXPECT_TRUE(scheduler.Wait(*ticket).status().IsInvalidArgument());
}

// --- Admission control ------------------------------------------------------

TEST(AdmissionTest, SessionQueueBoundRejectsOverloaded) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 16);
  QueryScheduler scheduler(&hal, NoRouting());
  SessionOptions session_options;
  session_options.max_queued = 2;
  Session* session = scheduler.CreateSession(session_options);

  auto t1 = scheduler.Submit(session, input, "Strasse");
  auto t2 = scheduler.Submit(session, input, "Strasse");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto t3 = scheduler.Submit(session, input, "Strasse");
  ASSERT_FALSE(t3.ok());
  EXPECT_TRUE(t3.status().IsOverloaded()) << t3.status().ToString();
  // Admission rejects tell the client to back off — they are not device
  // faults, so they must not degrade to software.
  EXPECT_FALSE(IsFallbackEligible(t3.status()));
  EXPECT_EQ(session->rejected(), 1);
  EXPECT_EQ(scheduler.queue_depth(), 2);

  // Draining the queue re-opens admission.
  ASSERT_TRUE(scheduler.Wait(*t1).ok());
  ASSERT_TRUE(scheduler.Wait(*t2).ok());
  EXPECT_EQ(scheduler.queue_depth(), 0);
  auto t4 = scheduler.Submit(session, input, "Strasse");
  ASSERT_TRUE(t4.ok());
  ASSERT_TRUE(scheduler.Wait(*t4).ok());
}

TEST(AdmissionTest, GlobalQueueBoundRejectsOverloaded) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 16);
  QueryScheduler::Options options = NoRouting();
  options.global_queue_limit = 2;
  QueryScheduler scheduler(&hal, options);
  Session* a = scheduler.CreateSession();
  Session* b = scheduler.CreateSession();

  auto t1 = scheduler.Submit(a, input, "Strasse");
  auto t2 = scheduler.Submit(b, input, "Strasse");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // Both per-session queues have room; the global bound rejects anyway.
  auto t3 = scheduler.Submit(a, input, "Strasse");
  EXPECT_TRUE(t3.status().IsOverloaded()) << t3.status().ToString();
  ASSERT_TRUE(scheduler.Wait(*t1).ok());
  ASSERT_TRUE(scheduler.Wait(*t2).ok());
}

TEST(AdmissionTest, ShutdownFailsQueuedAndRejectsNew) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 16);
  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();

  auto queued = scheduler.Submit(session, input, "Strasse");
  ASSERT_TRUE(queued.ok());
  scheduler.Shutdown();
  // The queued query was failed, not lost; new submissions are refused.
  EXPECT_TRUE(scheduler.Wait(*queued).status().IsUnavailable());
  EXPECT_TRUE(
      scheduler.Submit(session, input, "Strasse").status().IsUnavailable());
  scheduler.Shutdown();  // idempotent
}

// --- Fairness ---------------------------------------------------------------

TEST(FairnessTest, EqualWeightsInterleaveCompletions) {
  Hal hal(TestHal());
  Bat input_a(ValueType::kString, hal.bat_allocator());
  Bat input_b(ValueType::kString, hal.bat_allocator());
  const int rows = 32;
  FillInput(&input_a, rows);
  FillInput(&input_b, rows, /*salt=*/1);

  QueryScheduler::Options options = NoRouting();
  options.quantum_rows = rows;  // one query per session per DRR round
  QueryScheduler scheduler(&hal, options);
  SessionOptions sa, sb;
  sa.tenant = "alice";
  sb.tenant = "bob";
  Session* a = scheduler.CreateSession(sa);
  Session* b = scheduler.CreateSession(sb);

  // Distinct patterns so same-pattern coalescing cannot mix the sessions'
  // queues; fairness must come from DRR alone.
  const int per_session = 8;
  std::vector<QueryTicket> tickets_a, tickets_b;
  for (int i = 0; i < per_session; ++i) {
    auto ta = scheduler.Submit(a, input_a, "Strasse");
    auto tb = scheduler.Submit(b, input_b, "Gasse");
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    tickets_a.push_back(std::move(*ta));
    tickets_b.push_back(std::move(*tb));
  }
  std::vector<uint64_t> seq_a, seq_b;
  for (int i = 0; i < per_session; ++i) {
    auto ra = scheduler.Wait(tickets_a[static_cast<size_t>(i)]);
    auto rb = scheduler.Wait(tickets_b[static_cast<size_t>(i)]);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    seq_a.push_back(ra->completion_seq);
    seq_b.push_back(rb->completion_seq);
  }
  // No starvation: the i-th completions of the two equally-weighted
  // sessions are never more than a wave apart.
  for (int i = 0; i < per_session; ++i) {
    const int64_t da = static_cast<int64_t>(seq_a[static_cast<size_t>(i)]);
    const int64_t db = static_cast<int64_t>(seq_b[static_cast<size_t>(i)]);
    EXPECT_LE(std::abs(da - db), 4) << "i=" << i;
  }
}

TEST(FairnessTest, HigherWeightDrainsFaster) {
  Hal hal(TestHal());
  Bat input_a(ValueType::kString, hal.bat_allocator());
  Bat input_b(ValueType::kString, hal.bat_allocator());
  const int rows = 32;
  FillInput(&input_a, rows);
  FillInput(&input_b, rows, /*salt=*/1);

  QueryScheduler::Options options = NoRouting();
  options.quantum_rows = rows;
  QueryScheduler scheduler(&hal, options);
  SessionOptions heavy, light;
  heavy.tenant = "heavy";
  heavy.weight = 2;
  light.tenant = "light";
  light.weight = 1;
  Session* a = scheduler.CreateSession(heavy);
  Session* b = scheduler.CreateSession(light);

  const int per_session = 6;
  std::vector<QueryTicket> tickets_a, tickets_b;
  for (int i = 0; i < per_session; ++i) {
    auto ta = scheduler.Submit(a, input_a, "Strasse");
    auto tb = scheduler.Submit(b, input_b, "Gasse");
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    tickets_a.push_back(std::move(*ta));
    tickets_b.push_back(std::move(*tb));
  }
  double sum_a = 0, sum_b = 0;
  for (int i = 0; i < per_session; ++i) {
    auto ra = scheduler.Wait(tickets_a[static_cast<size_t>(i)]);
    auto rb = scheduler.Wait(tickets_b[static_cast<size_t>(i)]);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    sum_a += static_cast<double>(ra->completion_seq);
    sum_b += static_cast<double>(rb->completion_seq);
  }
  // The weight-2 session's queries complete earlier on average; the
  // weight-1 session still finishes everything (no starvation).
  EXPECT_LT(sum_a / per_session, sum_b / per_session);
}

// --- Cross-query batching ---------------------------------------------------

TEST(BatchingTest, CoalescedWavesAreBitIdenticalToSerial) {
  Hal hal(TestHal());
  Bat input_a(ValueType::kString, hal.bat_allocator());
  Bat input_b(ValueType::kString, hal.bat_allocator());
  FillInput(&input_a, 48);
  FillInput(&input_b, 48, /*salt=*/2);
  const std::vector<int16_t> expected_a =
      DirectResult(&hal, input_a, "Strasse");
  const std::vector<int16_t> expected_b =
      DirectResult(&hal, input_b, "Strasse");

  obs::Counter* coalesced = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.coalesced");
  const int64_t coalesced_before = coalesced->Value();

  QueryScheduler::Options options = NoRouting();
  // One query per session per DRR round, so the wave has leftover width
  // and the same-pattern coalescing pass (not just DRR) fills it.
  options.quantum_rows = 48;
  QueryScheduler scheduler(&hal, options);
  Session* a = scheduler.CreateSession();
  Session* b = scheduler.CreateSession();

  // Same pattern from both sessions: the scheduler coalesces the queries
  // into shared waves; every query still gets exactly its own rows back.
  const int per_session = 4;
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < per_session; ++i) {
    auto ta = scheduler.Submit(a, input_a, "Strasse");
    auto tb = scheduler.Submit(b, input_b, "Strasse");
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    tickets.push_back(std::move(*ta));
    tickets.push_back(std::move(*tb));
  }
  int max_width = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto result = scheduler.Wait(tickets[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    max_width = std::max(max_width, result->batch_width);
    const auto& expected = (i % 2 == 0) ? expected_a : expected_b;
    ExpectSameColumn(expected, *result->hudf.result);
  }
  // Batching actually happened (and was counted).
  EXPECT_GT(max_width, 1);
  EXPECT_GT(coalesced->Value(), coalesced_before);
}

// --- Pattern-set compilation ------------------------------------------------

TEST(PatternSetSchedTest, DistinctPatternsCoalesceIntoOneSetScan) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  const int rows = 32;
  FillInput(&input, rows);
  const std::vector<std::string> patterns = {"Strasse", "Gasse", "Berner"};
  std::vector<std::vector<int16_t>> expected;
  for (const std::string& pattern : patterns) {
    expected.push_back(DirectResult(&hal, input, pattern));
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* coalesced =
      registry.GetCounter("doppio.sched.set_compile.coalesced");
  obs::Counter* waves = registry.GetCounter("doppio.sched.set_compile.waves");
  obs::Counter* queries =
      registry.GetCounter("doppio.sched.set_compile.queries");
  const int64_t coalesced0 = coalesced->Value();
  const int64_t waves0 = waves->Value();
  const int64_t queries0 = queries->Value();

  QueryScheduler::Options options = NoRouting();
  options.set_compilation = true;
  // One query per DRR round: only the set-coalescing pass can pull the
  // remaining patterns into the wave.
  options.quantum_rows = rows;
  QueryScheduler scheduler(&hal, options);
  Session* session = scheduler.CreateSession();

  std::vector<QueryTicket> tickets;
  for (const std::string& pattern : patterns) {
    auto ticket = scheduler.Submit(session, input, pattern);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(std::move(*ticket));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto result = scheduler.Wait(tickets[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->route, Route::kFpga);
    // All three patterns ran as ONE set-compiled scan: a single batch
    // slot serving a three-pattern set.
    EXPECT_EQ(result->batch_width, 1) << patterns[i];
    EXPECT_EQ(result->set_width, 3) << patterns[i];
    ExpectSameColumn(expected[i], *result->hudf.result);
  }
  EXPECT_EQ(coalesced->Value() - coalesced0, 2);  // Gasse + Berner pulled
  EXPECT_EQ(waves->Value() - waves0, 1);          // one set scan total
  EXPECT_EQ(queries->Value() - queries0, 3);
  EXPECT_EQ(scheduler.program_cache().set_misses(), 1);
}

TEST(PatternSetSchedTest, SetScanChargesEveryOwnerNoFreeRide) {
  // Satellite fairness property: a set-compiled wave serving K queries of
  // one tenant debits that tenant K costs, so a heavy tenant cycling many
  // patterns over one column cannot starve a light tenant on another.
  Hal hal(TestHal());
  Bat input_h(ValueType::kString, hal.bat_allocator());
  Bat input_l(ValueType::kString, hal.bat_allocator());
  const int rows = 32;
  FillInput(&input_h, rows);
  FillInput(&input_l, rows, /*salt=*/1);
  const std::vector<int16_t> expected_h =
      DirectResult(&hal, input_h, "Strasse");
  const std::vector<int16_t> expected_l = DirectResult(&hal, input_l, "61234");

  QueryScheduler::Options options = NoRouting();
  options.set_compilation = true;
  options.quantum_rows = rows;
  QueryScheduler scheduler(&hal, options);
  SessionOptions ho, lo;
  ho.tenant = "heavy";
  lo.tenant = "light";
  Session* heavy = scheduler.CreateSession(ho);
  Session* light = scheduler.CreateSession(lo);

  // Heavy floods 12 queries cycling three patterns over its column (every
  // wave it joins set-coalesces to width 3, borrowing against its own
  // deficit); light asks for 4 modest scans of a different column.
  const char* cycle[] = {"Strasse", "Gasse", "Berner"};
  std::vector<QueryTicket> heavy_tickets, light_tickets;
  for (int i = 0; i < 12; ++i) {
    auto ticket = scheduler.Submit(heavy, input_h, cycle[i % 3]);
    ASSERT_TRUE(ticket.ok());
    heavy_tickets.push_back(std::move(*ticket));
  }
  for (int i = 0; i < 4; ++i) {
    auto ticket = scheduler.Submit(light, input_l, "61234");
    ASSERT_TRUE(ticket.ok());
    light_tickets.push_back(std::move(*ticket));
  }

  double heavy_mean = 0, light_mean = 0;
  uint64_t light_max_seq = 0;
  int heavy_set_scans = 0;
  for (auto& ticket : heavy_tickets) {
    auto result = scheduler.Wait(ticket);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    heavy_mean += static_cast<double>(result->completion_seq);
    if (result->set_width > 1) ++heavy_set_scans;
  }
  for (auto& ticket : light_tickets) {
    auto result = scheduler.Wait(ticket);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    light_mean += static_cast<double>(result->completion_seq);
    light_max_seq = std::max(light_max_seq, result->completion_seq);
    ExpectSameColumn(expected_l, *result->hudf.result);
  }
  heavy_mean /= 12;
  light_mean /= 4;
  // Heavy actually used set scans — and still paid for every query: the
  // loans drive its deficit negative, so light drains first.
  EXPECT_GT(heavy_set_scans, 0);
  EXPECT_LT(light_mean, heavy_mean);
  // Light's last completion lands within the first half of the sequence:
  // heavy's 12-query flood cannot push light to the back.
  EXPECT_LE(light_max_seq, 8u);

  // Heavy's own results stayed bit-identical through the set path.
  auto check = scheduler.Execute(heavy, input_h, "Strasse");
  ASSERT_TRUE(check.ok());
  ExpectSameColumn(expected_h, *check->hudf.result);
}

// --- Cost-model routing -----------------------------------------------------

TEST(RoutingTest, SmallInputsRouteToCpuBitIdentically) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 12);
  const std::vector<int16_t> expected = DirectResult(&hal, input, "Strasse");

  QueryScheduler::Options options;
  options.cost_routing = true;
  options.cpu_route_max_rows = 64;  // 12-row input must go to the CPU
  QueryScheduler scheduler(&hal, options);
  Session* session = scheduler.CreateSession();
  auto result = scheduler.Execute(session, input, "Strasse");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->route, Route::kCpuProgram);
  EXPECT_EQ(result->hudf.stats.strategy, "sched_cpu");
  // The CPU route runs the same compiled program the engines execute.
  ExpectSameColumn(expected, *result->hudf.result);
}

TEST(RoutingTest, OverflowPatternsRouteToCpuDfa) {
  Hal::Options hal_options = TestHal();
  hal_options.device.max_chars = 4;  // "Strasse" (7 matchers) cannot fit
  Hal hal(hal_options);
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 32);

  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();
  auto result = scheduler.Execute(session, input, "Strasse");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->route, Route::kCpuDfa);
  EXPECT_EQ(result->hudf.stats.strategy, "software");

  auto dfa = DfaMatcher::Compile("Strasse");
  ASSERT_TRUE(dfa.ok());
  int64_t expected_matches = 0;
  for (int64_t i = 0; i < input.count(); ++i) {
    const bool matched = (*dfa)->Matches(input.GetString(i));
    if (matched) ++expected_matches;
    EXPECT_EQ(result->hudf.result->GetInt16(i) != 0, matched) << "row " << i;
  }
  EXPECT_EQ(result->hudf.stats.rows_matched, expected_matches);
}

// --- Admission gate into the hybrid executor --------------------------------

TEST(GateTest, HybridExecutorThroughSchedulerMatchesDirect) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 64);

  auto direct = ExecuteHybrid(&hal, input, "Strasse");
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->strategy, HybridStrategy::kFpgaOnly);

  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();
  QueryScheduler::Gate gate(&scheduler, session);
  auto gated = ExecuteHybrid(&hal, input, "Strasse", {}, &gate);
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  EXPECT_EQ(gated->strategy, HybridStrategy::kFpgaOnly);
  ASSERT_EQ(direct->result->count(), gated->result->count());
  for (int64_t i = 0; i < direct->result->count(); ++i) {
    EXPECT_EQ(direct->result->GetInt16(i), gated->result->GetInt16(i));
  }
  EXPECT_EQ(session->admitted(), 1);
}

// --- Program cache (LRU) ----------------------------------------------------

TEST(ProgramCacheTest, LruEvictionOrder) {
  DeviceConfig device;
  ProgramCache cache(device, /*capacity=*/2);
  ASSERT_TRUE(cache.GetOrCompile("Strasse").ok());
  ASSERT_TRUE(cache.GetOrCompile("Gasse").ok());
  EXPECT_EQ(cache.KeysMruFirst(),
            (std::vector<std::string>{ProgramCache::MakeKey("Gasse", {}),
                                      ProgramCache::MakeKey("Strasse", {})}));

  // Touching the LRU entry promotes it, so the other entry is evicted.
  ASSERT_TRUE(cache.GetOrCompile("Strasse").ok());
  ASSERT_TRUE(cache.GetOrCompile("Berner").ok());
  EXPECT_EQ(cache.KeysMruFirst(),
            (std::vector<std::string>{ProgramCache::MakeKey("Berner", {}),
                                      ProgramCache::MakeKey("Strasse", {})}));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 3);
}

TEST(ProgramCacheTest, CountersMirrorIntoMetricsRegistry) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* hits = registry.GetCounter("doppio.sched.program_cache.hits");
  obs::Counter* misses =
      registry.GetCounter("doppio.sched.program_cache.misses");
  obs::Counter* evictions =
      registry.GetCounter("doppio.sched.program_cache.evictions");
  const int64_t hits0 = hits->Value();
  const int64_t misses0 = misses->Value();
  const int64_t evictions0 = evictions->Value();

  DeviceConfig device;
  ProgramCache cache(device, /*capacity=*/1);
  ASSERT_TRUE(cache.GetOrCompile("Strasse").ok());  // miss
  ASSERT_TRUE(cache.GetOrCompile("Strasse").ok());  // hit
  ASSERT_TRUE(cache.GetOrCompile("Gasse").ok());    // miss + eviction
  EXPECT_EQ(hits->Value() - hits0, 1);
  EXPECT_EQ(misses->Value() - misses0, 2);
  EXPECT_EQ(evictions->Value() - evictions0, 1);
}

TEST(ProgramCacheTest, OptionsAreCacheKeys) {
  DeviceConfig device;
  ProgramCache cache(device, /*capacity=*/4);
  CompileOptions fold;
  fold.case_insensitive = true;
  ASSERT_TRUE(cache.GetOrCompile("Strasse").ok());
  ASSERT_TRUE(cache.GetOrCompile("Strasse", fold).ok());
  EXPECT_EQ(cache.size(), 2);  // distinct compilations, no false sharing
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ProgramCacheTest, FailedCompilesAreNotCached) {
  DeviceConfig device;
  device.max_chars = 4;
  ProgramCache cache(device, /*capacity=*/2);
  auto oversize = cache.GetOrCompile("Strasse");
  EXPECT_TRUE(oversize.status().IsCapacityExceeded());
  EXPECT_EQ(cache.size(), 0);
}

TEST(ProgramCacheTest, SemanticallyIdenticalPatternsShareOneSlot) {
  // Case folding lowercases literals at the AST level, so "strasse" and
  // "STRASSE" compile to byte-identical config vectors. The cache keys
  // slots by that compiled fingerprint: the second spelling aliases onto
  // the first slot instead of double-caching the program.
  obs::Counter* shares = obs::MetricsRegistry::Global().GetCounter(
      "doppio.sched.program_cache.alias_shares");
  const int64_t shares0 = shares->Value();

  DeviceConfig device;
  ProgramCache cache(device, /*capacity=*/4);
  CompileOptions fold;
  fold.case_insensitive = true;
  auto a = cache.GetOrCompile("strasse", fold);
  auto b = cache.GetOrCompile("STRASSE", fold);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->fingerprint, (*b)->fingerprint);
  // One slot, one immutable entry — the regression this guards: the
  // second spelling used to compile AND occupy a second LRU slot.
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.misses(), 2);  // both spellings compiled cold once
  EXPECT_EQ(shares->Value() - shares0, 1);

  // Both spellings are now alias keys of the shared slot: hits, no
  // recompilation.
  ASSERT_TRUE(cache.GetOrCompile("strasse", fold).ok());
  ASSERT_TRUE(cache.GetOrCompile("STRASSE", fold).ok());
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 2);

  // Eviction removes every alias of the victim, not just its first key.
  ProgramCache small(device, /*capacity=*/1);
  ASSERT_TRUE(small.GetOrCompile("strasse", fold).ok());
  ASSERT_TRUE(small.GetOrCompile("STRASSE", fold).ok());
  ASSERT_TRUE(small.GetOrCompile("Gasse").ok());  // evicts the shared slot
  EXPECT_EQ(small.size(), 1);
  ASSERT_TRUE(small.GetOrCompile("STRASSE", fold).ok());
  EXPECT_EQ(small.hits(), 0);   // no stale alias hit after eviction
  EXPECT_EQ(small.misses(), 4);  // the evicted alias had to recompile
}

TEST(ProgramCacheTest, SetProgramsAreKeyedOrderInsensitively) {
  DeviceConfig device;
  ProgramCache cache(device, /*capacity=*/4);
  auto strasse = cache.GetOrCompile("Strasse");
  auto gasse = cache.GetOrCompile("Gasse");
  ASSERT_TRUE(strasse.ok());
  ASSERT_TRUE(gasse.ok());

  auto ab = cache.GetOrCompileSet({*strasse, *gasse});
  auto ba = cache.GetOrCompileSet({*gasse, *strasse});
  ASSERT_TRUE(ab.ok()) << ab.status().ToString();
  ASSERT_TRUE(ba.ok());
  // Any submission order of the same member set is the same cached
  // program with the same stream assignment.
  EXPECT_EQ(ab->get(), ba->get());
  EXPECT_EQ(cache.set_size(), 1);
  EXPECT_EQ(cache.set_misses(), 1);
  EXPECT_EQ(cache.set_hits(), 1);
  const int s = (*ab)->StreamOf((*strasse)->fingerprint);
  const int g = (*ab)->StreamOf((*gasse)->fingerprint);
  EXPECT_NE(s, -1);
  EXPECT_NE(g, -1);
  EXPECT_NE(s, g);
  // Duplicate members dedup into the same set.
  auto dup = cache.GetOrCompileSet({*strasse, *gasse, *strasse});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->get(), ab->get());
}

TEST(ProgramCacheTest, HitExecutesBitIdenticalToColdCompile) {
  Hal hal(TestHal());
  Bat input(ValueType::kString, hal.bat_allocator());
  FillInput(&input, 48);

  // Cold compile in a fresh scheduler.
  std::vector<int16_t> cold;
  {
    QueryScheduler scheduler(&hal, NoRouting());
    Session* session = scheduler.CreateSession();
    auto result = scheduler.Execute(session, input, "Strasse");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(scheduler.program_cache().misses(), 1);
    for (int64_t i = 0; i < result->hudf.result->count(); ++i) {
      cold.push_back(result->hudf.result->GetInt16(i));
    }
  }
  // Warm hit in a scheduler that has already served the pattern.
  QueryScheduler scheduler(&hal, NoRouting());
  Session* session = scheduler.CreateSession();
  ASSERT_TRUE(scheduler.Execute(session, input, "Strasse").ok());
  auto warm = scheduler.Execute(session, input, "Strasse");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(scheduler.program_cache().hits(), 1);
  EXPECT_EQ(scheduler.program_cache().misses(), 1);
  ExpectSameColumn(cold, *warm->hudf.result);
}

}  // namespace
}  // namespace doppio
