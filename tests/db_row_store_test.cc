#include <gtest/gtest.h>

#include "db/row_store.h"
#include "workload/address_generator.h"
#include "workload/queries.h"

namespace doppio {
namespace {

class RowStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddressDataOptions data;
    data.num_records = 20'000;
    auto table = GenerateAddressTable(data, "address_table");
    ASSERT_TRUE(table.ok());
    source_ = std::move(*table);
    ASSERT_TRUE(dbx_.LoadTable(*source_).ok());
  }

  RowStoreEngine dbx_;
  std::unique_ptr<Table> source_;
};

TEST_F(RowStoreTest, LoadPreservesCardinality) {
  EXPECT_TRUE(dbx_.HasTable("address_table"));
  EXPECT_EQ(dbx_.num_rows("address_table"), 20'000);
  EXPECT_FALSE(dbx_.HasTable("missing"));
}

TEST_F(RowStoreTest, DuplicateLoadRejected) {
  EXPECT_EQ(dbx_.LoadTable(*source_).code(), StatusCode::kAlreadyExists);
}

TEST_F(RowStoreTest, LikeCountMatchesColumnStoreSemantics) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kLike;
  spec.pattern = "%Strasse%";
  auto count = dbx_.CountWhere("address_table", "address_string", spec);
  ASSERT_TRUE(count.ok());

  // Cross-check against a direct scan of the columnar source.
  const Bat* col = source_->GetColumn("address_string");
  int64_t expected = 0;
  for (int64_t i = 0; i < col->count(); ++i) {
    if (col->GetString(i).find("Strasse") != std::string_view::npos) {
      ++expected;
    }
  }
  EXPECT_EQ(*count, expected);
}

TEST_F(RowStoreTest, RegexpCount) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kRegexpLike;
  spec.pattern = QueryPattern(EvalQuery::kQ3);
  QueryStats stats;
  auto count =
      dbx_.CountWhere("address_table", "address_string", spec, &stats);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(static_cast<double>(*count) / 20'000, 0.2, 0.02);
  EXPECT_EQ(stats.strategy, "dbx");
  EXPECT_GT(stats.database_seconds, 0.0);
}

TEST_F(RowStoreTest, NegatedCount) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kLike;
  spec.pattern = "%Strasse%";
  auto pos = dbx_.CountWhere("address_table", "address_string", spec);
  spec.negated = true;
  auto neg = dbx_.CountWhere("address_table", "address_string", spec);
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(*pos + *neg, 20'000);
}

TEST_F(RowStoreTest, ContainsNeedsPrebuiltIndex) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kContains;
  spec.pattern = "Strasse";
  EXPECT_FALSE(
      dbx_.CountWhere("address_table", "address_string", spec).ok());

  auto build_seconds =
      dbx_.BuildContainsIndex("address_table", "address_string");
  ASSERT_TRUE(build_seconds.ok());
  EXPECT_GT(*build_seconds, 0.0);

  auto count = dbx_.CountWhere("address_table", "address_string", spec);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(static_cast<double>(*count) / 20'000, 0.2, 0.02);
}

TEST_F(RowStoreTest, NoFpgaOperator) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kRegexpFpga;
  spec.pattern = "Strasse";
  EXPECT_EQ(
      dbx_.CountWhere("address_table", "address_string", spec).status().code(),
      StatusCode::kNotImplemented);
}

TEST_F(RowStoreTest, UnknownTableOrColumn) {
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kLike;
  spec.pattern = "%x%";
  EXPECT_TRUE(dbx_.CountWhere("nope", "address_string", spec)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(dbx_.CountWhere("address_table", "nope", spec)
                  .status()
                  .IsNotFound());
}

TEST_F(RowStoreTest, MultiColumnRowExtraction) {
  // Build a table with several columns to exercise row deserialization.
  Table t("multi");
  auto c1 = std::make_unique<Bat>(ValueType::kInt32);
  auto c2 = std::make_unique<Bat>(ValueType::kString);
  auto c3 = std::make_unique<Bat>(ValueType::kString);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c1->AppendInt32(i).ok());
    ASSERT_TRUE(c2->AppendString("first" + std::to_string(i)).ok());
    ASSERT_TRUE(c3->AppendString(i % 2 == 0 ? "even row" : "odd row").ok());
  }
  ASSERT_TRUE(t.AddColumn("id", std::move(c1)).ok());
  ASSERT_TRUE(t.AddColumn("a", std::move(c2)).ok());
  ASSERT_TRUE(t.AddColumn("b", std::move(c3)).ok());

  RowStoreEngine engine;
  ASSERT_TRUE(engine.LoadTable(t).ok());
  StringFilterSpec spec;
  spec.op = StringFilterSpec::Op::kLike;
  spec.pattern = "%even%";
  auto count = engine.CountWhere("multi", "b", spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50);
  // Scanning a different string column of the same rows.
  spec.pattern = "%first7%";  // first7, first70..79
  auto count2 = engine.CountWhere("multi", "a", spec);
  ASSERT_TRUE(count2.ok());
  EXPECT_EQ(*count2, 11);
}

}  // namespace
}  // namespace doppio
