#include <gtest/gtest.h>

#include "hw/config_compiler.h"
#include "hw/fpga_device.h"
#include "hw/perf_model.h"
#include "hw/qpi_link.h"
#include "hw/resource_model.h"
#include "hw/timing_model.h"
#include "workload/address_generator.h"

namespace doppio {
namespace {

// --- QPI link model -----------------------------------------------------------

TEST(QpiLinkTest, SingleEngineIsWindowLimited) {
  DeviceConfig device;
  QpiLink link(device);
  // Stream 1 GB as one engine in arbitration batches.
  const int64_t lines = (1 << 30) / kCacheLineBytes;
  SimTime now = 0;
  SimTime done = 0;
  int64_t remaining = lines;
  while (remaining > 0) {
    int64_t batch = std::min<int64_t>(remaining, 16);
    done = link.Transfer(0, now, batch);
    now = std::max(now, link.EngineReady(0));
    remaining -= batch;
  }
  double bw = static_cast<double>(lines * kCacheLineBytes) /
              SecondsFromPicos(done);
  // ~5.9 GB/s single engine (the paper's measured effective bandwidth).
  EXPECT_GT(bw, 5.3e9);
  EXPECT_LT(bw, device.qpi_peak_bytes_per_sec);
}

TEST(QpiLinkTest, TwoEnginesSaturateTheLink) {
  DeviceConfig device;
  QpiLink link(device);
  const int64_t lines = (1 << 28) / kCacheLineBytes;
  SimTime now0 = 0;
  SimTime now1 = 0;
  SimTime done = 0;
  int64_t remaining = lines * 2;
  while (remaining > 0) {
    done = std::max(done, link.Transfer(0, now0, 16));
    now0 = std::max(now0, link.EngineReady(0));
    done = std::max(done, link.Transfer(1, now1, 16));
    now1 = std::max(now1, link.EngineReady(1));
    remaining -= 32;
  }
  double bw = static_cast<double>(lines * 2 * kCacheLineBytes) /
              SecondsFromPicos(done);
  EXPECT_NEAR(bw, device.qpi_peak_bytes_per_sec,
              device.qpi_peak_bytes_per_sec * 0.05);
}

TEST(QpiLinkTest, TracksTraffic) {
  DeviceConfig device;
  QpiLink link(device);
  link.Transfer(0, 0, 100);
  EXPECT_EQ(link.total_lines(), 100);
  EXPECT_EQ(link.total_bytes(), 100 * kCacheLineBytes);
  EXPECT_GT(link.busy_time(), 0);
}

// --- Performance model ----------------------------------------------------------

TEST(PerfModelTest, SingleJobBandwidthBound) {
  DeviceConfig device;
  const int64_t count = 2'500'000;
  const int64_t heap = count * 72;
  PerfEstimate est = EstimateJob(device, count, heap, 1);
  // 2.5M 64B-ish strings: ~190 MB of traffic at ~5.9 GB/s → ~32 ms.
  EXPECT_GT(est.seconds, 0.020);
  EXPECT_LT(est.seconds, 0.060);
  EXPECT_LT(est.effective_bytes_per_sec, device.qpi_peak_bytes_per_sec);
}

TEST(PerfModelTest, IdealRemovesQpiCap) {
  DeviceConfig device;
  const int64_t count = 2'500'000;
  const int64_t heap = count * 72;
  PerfEstimate real = EstimateJob(device, count, heap, 1, false);
  PerfEstimate ideal = EstimateJob(device, count, heap, 1, true);
  EXPECT_LT(ideal.seconds, real.seconds);
  // Ideal rate approaches the engine's 6.4 GB/s processing rate.
  EXPECT_GT(ideal.effective_bytes_per_sec, 6.0e9);
}

TEST(PerfModelTest, SaturatedThroughputMatchesFig8Shape) {
  DeviceConfig device;
  const int64_t count = 2'500'000;
  const int64_t heap = count * 72;
  double q1 = SaturatedQueriesPerSec(device, count, heap, 1);
  double q2 = SaturatedQueriesPerSec(device, count, heap, 2);
  double q3 = SaturatedQueriesPerSec(device, count, heap, 3);
  double q4 = SaturatedQueriesPerSec(device, count, heap, 4);
  // Fig. 8: 30.7 → 34.4 → flat. Shape: small gain 1→2, then nothing.
  EXPECT_GT(q2 / q1, 1.05);
  EXPECT_LT(q2 / q1, 1.25);
  EXPECT_NEAR(q3, q2, q2 * 0.02);
  EXPECT_NEAR(q4, q2, q2 * 0.02);
  // Magnitudes in the paper's ballpark.
  EXPECT_GT(q1, 20.0);
  EXPECT_LT(q1, 45.0);
}

TEST(PerfModelTest, ComplexityIndependent) {
  // The model depends only on data volume — any Q1-Q4 pattern costs the
  // same, the paper's headline property.
  DeviceConfig device;
  PerfEstimate a = EstimateJob(device, 1'000'000, 72'000'000, 1);
  PerfEstimate b = EstimateJob(device, 1'000'000, 72'000'000, 1);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(PerfModelTest, LinearInInputSize) {
  DeviceConfig device;
  PerfEstimate small = EstimateJob(device, 1'000'000, 72'000'000, 1);
  PerfEstimate big = EstimateJob(device, 10'000'000, 720'000'000, 1);
  EXPECT_NEAR(big.seconds / small.seconds, 10.0, 0.5);
}

// --- DES vs closed form ---------------------------------------------------------

TEST(PerfModelTest, AgreesWithDiscreteEventSimulation) {
  // The closed form and the simulator must tell the same story, single
  // engine and saturated.
  AddressDataOptions data;
  data.num_records = 200'000;
  auto table = GenerateAddressTable(data, "addr");
  ASSERT_TRUE(table.ok());
  const Bat* strings = (*table)->GetColumn("address_string");
  const int64_t heap_bytes = strings->heap()->size_bytes();

  DeviceConfig device;
  FpgaDevice fpga(device);
  auto config = CompileRegexConfig("Strasse", device);
  ASSERT_TRUE(config.ok());
  Bat scratch(ValueType::kInt16);
  ASSERT_TRUE(scratch.AppendZeros(strings->count()).ok());

  JobParams params;
  params.offsets = strings->tail_data();
  params.heap = strings->heap()->data();
  params.result = scratch.mutable_tail_data();
  params.count = strings->count();
  params.heap_bytes = heap_bytes;
  params.config = config->vector.bytes();
  params.timing_only = true;
  auto job = fpga.Submit(std::move(params));
  ASSERT_TRUE(job.ok());
  auto finish = fpga.WaitForJob(*job);
  ASSERT_TRUE(finish.ok());

  double des_seconds = fpga.status(*job)->ExecSeconds();
  PerfEstimate est = EstimateJob(device, data.num_records, heap_bytes, 1);
  EXPECT_NEAR(des_seconds, est.seconds, est.seconds * 0.15)
      << "DES " << des_seconds << "s vs model " << est.seconds << "s";
}

// --- Resource model (Fig. 14) -----------------------------------------------------

TEST(ResourceModelTest, DefaultDeploymentAround80Percent) {
  ResourceUsage usage = EstimateResources(DefaultDeviceConfig());
  EXPECT_NEAR(usage.logic_pct, 80.0, 3.0);
  EXPECT_NEAR(usage.bram_pct, 42.0, 1.0);  // paper: constant 42% BRAM
  EXPECT_TRUE(usage.fits);
  EXPECT_DOUBLE_EQ(usage.qpi_endpoint_pct, 28.0);  // paper: 28% of logic
}

TEST(ResourceModelTest, FiveEnginesStillFitPhysically) {
  DeviceConfig five;
  five.num_engines = 5;
  ResourceUsage usage = EstimateResources(five);
  EXPECT_TRUE(usage.fits);  // resources fit; timing is what fails (below)
  EXPECT_GT(usage.logic_pct, EstimateResources(DefaultDeviceConfig()).logic_pct);
}

TEST(ResourceModelTest, CharactersScaleLinearly) {
  DeviceConfig base;
  auto at_chars = [&](int chars) {
    DeviceConfig d = base;
    d.max_chars = chars;
    return EstimateResources(d).processing_units_pct;
  };
  double d1 = at_chars(32) - at_chars(16);
  double d2 = at_chars(48) - at_chars(32);
  double d3 = at_chars(64) - at_chars(48);
  EXPECT_NEAR(d1, d2, 1e-9);
  EXPECT_NEAR(d2, d3, 1e-9);
  // 64 characters still fit on the chip (Fig. 14b).
  DeviceConfig big = base;
  big.max_chars = 64;
  EXPECT_TRUE(EstimateResources(big).fits);
}

TEST(ResourceModelTest, StatesScaleQuadratically) {
  DeviceConfig base;
  auto at_states = [&](int states) {
    DeviceConfig d = base;
    d.max_states = states;
    return EstimateResources(d).processing_units_pct;
  };
  double d1 = at_states(16) - at_states(8);
  double d2 = at_states(24) - at_states(16);
  EXPECT_GT(d2, d1 * 1.5);  // super-linear growth
  DeviceConfig big = base;
  big.max_states = 16;
  EXPECT_TRUE(EstimateResources(big).fits);  // Fig. 14c: 16 states fit
}

TEST(ResourceModelTest, AlternativeEnginePuConfigs) {
  // 4x16, 2x32 and 1x64 all fit (paper §7.9 discusses all three).
  for (auto [engines, pus] : {std::pair{4, 16}, {2, 32}, {1, 64}}) {
    DeviceConfig d;
    d.num_engines = engines;
    d.pus_per_engine = pus;
    EXPECT_TRUE(EstimateResources(d).fits)
        << engines << "x" << pus;
  }
}

// --- Timing model (Fig. 15 and Fig. 14a's 5x16 failure) ---------------------------

TEST(TimingModelTest, DefaultDeploymentClosesTiming) {
  EXPECT_TRUE(CheckDeployment(DefaultDeviceConfig()).ok());
}

TEST(TimingModelTest, FiveEnginesFailRouting) {
  DeviceConfig five;
  five.num_engines = 5;
  Status st = CheckDeployment(five);
  EXPECT_TRUE(st.IsTimingViolation()) << st.ToString();
}

TEST(TimingModelTest, HalvingTheClockEnlargesTheDesignSpace) {
  int feasible_400 = 0;
  int feasible_200 = 0;
  for (int states = 8; states <= 32; states += 4) {
    for (int chars = 16; chars <= 64; chars += 16) {
      if (PuConfigurationFeasible(states, chars, 400'000'000)) {
        ++feasible_400;
      }
      if (PuConfigurationFeasible(states, chars, 200'000'000)) {
        ++feasible_200;
      }
    }
  }
  EXPECT_GT(feasible_400, 0);
  EXPECT_GT(feasible_200, feasible_400);  // Fig. 15's headline
}

TEST(TimingModelTest, MonotoneInStatesAndChars) {
  // If (s, c) fails, any larger configuration fails too.
  for (int64_t clock : {200'000'000, 400'000'000}) {
    for (int s = 4; s <= 60; s += 4) {
      for (int c = 8; c <= 64; c += 8) {
        if (!PuConfigurationFeasible(s, c, clock)) {
          EXPECT_FALSE(PuConfigurationFeasible(s + 4, c, clock));
          EXPECT_FALSE(PuConfigurationFeasible(s, c + 8, clock));
        }
      }
    }
  }
}

TEST(TimingModelTest, CriticalPathGrowsWithBoth) {
  EXPECT_GT(CriticalPathNs(16, 16), CriticalPathNs(8, 16));
  EXPECT_GT(CriticalPathNs(8, 32), CriticalPathNs(8, 16));
}

TEST(TimingModelTest, OverBudgetDeploymentIsCapacityError) {
  DeviceConfig huge;
  huge.num_engines = 8;
  huge.pus_per_engine = 32;
  Status st = CheckDeployment(huge);
  EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();
}

}  // namespace
}  // namespace doppio
