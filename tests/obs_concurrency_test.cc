// Concurrent stats aggregation (satellite of the tracing/metrics PR):
// multiple client threads drive traced HUDF queries through one device
// while scraper threads continuously export the metrics registry and the
// tracer. Runs under TSan in CI — the assertion here is "zero data races
// and every scraped document is valid JSON", not any particular value.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "db/hudf.h"
#include "hal/hal.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace doppio {
namespace {

TEST(ObsConcurrencyTest, ScrapersRaceClientsWithoutCorruption) {
  obs::Tracer::Global().SetEnabled(true);

  Hal::Options options;
  options.shared_memory_bytes = 64 * kSharedPageBytes;  // 128 MiB
  options.functional_threads = 2;
  Hal hal(options);

  Bat input(ValueType::kString, hal.bat_allocator());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(input
                    .AppendString(i % 5 == 0 ? "Koblenzer Strasse 44"
                                             : "Koblenzer Gasse 44")
                    .ok());
  }

  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> bad_json{0};

  // Scrapers: a monitoring loop exporting every observability surface
  // while queries are in flight.
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::string metrics_json = obs::MetricsRegistry::Global().ToJson();
        std::string text = obs::MetricsRegistry::Global().TextDump();
        std::string trace_json = obs::Tracer::Global().ToChromeTraceJson();
        if (!obs::CheckJsonSyntax(metrics_json).ok()) bad_json.fetch_add(1);
        if (!obs::CheckJsonSyntax(trace_json).ok()) bad_json.fetch_add(1);
        if (text.empty()) bad_json.fetch_add(1);
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<int64_t> matched(kClients * kQueriesPerClient, -1);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto out = RegexpFpgaPartitioned(&hal, input, "Strasse");
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        matched[static_cast<size_t>(c * kQueriesPerClient + q)] =
            out->stats.rows_matched;
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();

  for (int64_t m : matched) EXPECT_EQ(m, 400);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(bad_json.load(), 0);

  // Final quiescent exports are valid too.
  EXPECT_TRUE(
      obs::CheckJsonSyntax(obs::MetricsRegistry::Global().ToJson()).ok());
  EXPECT_TRUE(
      obs::CheckJsonSyntax(obs::Tracer::Global().ToChromeTraceJson()).ok());

  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
}

}  // namespace
}  // namespace doppio
