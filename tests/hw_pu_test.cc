#include <gtest/gtest.h>

#include "common/random.h"
#include "hw/config_compiler.h"
#include "hw/processing_unit.h"
#include "regex/dfa_matcher.h"
#include "regex/token_extractor.h"
#include "regex/token_nfa.h"

namespace doppio {
namespace {

DeviceConfig BigDevice() {
  DeviceConfig d;
  d.max_chars = 64;
  d.max_states = 32;
  return d;
}

Result<ProcessingUnit> MakePu(const std::string& pattern,
                              const CompileOptions& opts = {}) {
  DOPPIO_ASSIGN_OR_RETURN(RegexConfig config,
                          CompileRegexConfig(pattern, BigDevice(), opts));
  ProcessingUnit pu(BigDevice());
  DOPPIO_RETURN_NOT_OK(pu.Configure(config.vector));
  return pu;
}

TEST(ProcessingUnitTest, MatchIndexConvention) {
  auto pu = MakePu("abc");
  ASSERT_TRUE(pu.ok());
  // Nonzero = 1-based position of the match's last character.
  EXPECT_EQ(pu->ProcessString("xxabcxx"), 5);
  EXPECT_EQ(pu->ProcessString("abc"), 3);
  EXPECT_EQ(pu->ProcessString("no match"), 0);
  EXPECT_EQ(pu->ProcessString(""), 0);
}

TEST(ProcessingUnitTest, ReconfigurableAtRuntime) {
  // The same PU instance evaluates different expressions without any
  // "re-synthesis" — the paper's core property.
  DeviceConfig device = BigDevice();
  ProcessingUnit pu(device);

  auto c1 = CompileRegexConfig("abc", device);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(pu.Configure(c1->vector).ok());
  EXPECT_NE(pu.ProcessString("zzabczz"), 0);
  EXPECT_EQ(pu.ProcessString("zzxyzzz"), 0);

  auto c2 = CompileRegexConfig("xyz", device);
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(pu.Configure(c2->vector).ok());
  EXPECT_EQ(pu.ProcessString("zzabczz"), 0);
  EXPECT_NE(pu.ProcessString("zzxyzzz"), 0);
}

TEST(ProcessingUnitTest, RejectsOverCapacityConfig) {
  DeviceConfig small;
  small.max_chars = 4;
  ProcessingUnit pu(small);
  auto config = CompileRegexConfig("toolong", BigDevice());
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(pu.Configure(config->vector).IsCapacityExceeded());
}

TEST(ProcessingUnitTest, CyclesEqualBytesConsumed) {
  // One byte per PU clock cycle, independent of pattern complexity
  // (paper §5: "consumes the input at constant rate regardless of pattern
  // complexity or length").
  auto simple = MakePu("ab");
  auto complex = MakePu(R"((Strasse|Str\.).*(8[0-9]{4}))");
  ASSERT_TRUE(simple.ok());
  ASSERT_TRUE(complex.ok());
  std::string input = "John|Smith|44 Koblenzer Strasse|60327|Frankfurt";
  simple->ProcessString(input);
  complex->ProcessString(input);
  EXPECT_EQ(simple->cycles(), static_cast<int64_t>(input.size()));
  EXPECT_EQ(complex->cycles(), static_cast<int64_t>(input.size()));
}

TEST(ProcessingUnitTest, StartStringResetsState) {
  auto pu = MakePu("ab.*cd");
  ASSERT_TRUE(pu.ok());
  EXPECT_NE(pu->ProcessString("ab cd"), 0);
  // A fresh string must not inherit the latched state from the previous
  // one: "cd" alone is not a match.
  EXPECT_EQ(pu->ProcessString("cd"), 0);
}

TEST(ProcessingUnitTest, SaturatesAt16Bits) {
  auto pu = MakePu("needle");
  ASSERT_TRUE(pu.ok());
  std::string input(100'000, 'x');
  input += "needle";
  EXPECT_EQ(pu->ProcessString(input), 65535);
}

TEST(ProcessingUnitTest, MatchesTokenNfaReference) {
  // The cycle-level PU and the software token-NFA reference implement the
  // same semantics.
  const char* patterns[] = {
      "Strasse",
      R"((Strasse|Str\.).*(8[0-9]{4}))",
      "[0-9]+(USD|EUR|GBP)",
      R"([A-Za-z]{3}\:[0-9]{4})",
      "(ab|zz)cd",
      "ab.+cd",
  };
  Rng rng(99);
  const std::string alphabet = "abcdxzSUD019|. ";
  for (const char* pattern : patterns) {
    auto pu = MakePu(pattern);
    ASSERT_TRUE(pu.ok()) << pattern;
    auto nfa = ExtractTokenNfa(pattern);
    ASSERT_TRUE(nfa.ok());
    TokenNfaMatcher reference(*nfa);
    for (int i = 0; i < 200; ++i) {
      std::string input =
          rng.FromAlphabet(alphabet, 1 + rng.NextBounded(40));
      MatchResult ref = reference.Find(input);
      uint16_t hw = pu->ProcessString(input);
      EXPECT_EQ(hw != 0, ref.matched) << pattern << " on " << input;
      if (ref.matched) {
        EXPECT_EQ(static_cast<int32_t>(hw), ref.end)
            << pattern << " on " << input;
      }
    }
  }
}

TEST(ProcessingUnitTest, MatchesDfaOnRandomInputs) {
  Rng rng(7);
  const char* pattern = R"((Strasse|Str\.).*(8[0-9]{4}))";
  auto pu = MakePu(pattern);
  ASSERT_TRUE(pu.ok());
  auto dfa = DfaMatcher::Compile(pattern);
  ASSERT_TRUE(dfa.ok());
  const std::string alphabet = "Strase.8190|x ";
  for (int i = 0; i < 500; ++i) {
    std::string input = rng.FromAlphabet(alphabet, 1 + rng.NextBounded(64));
    MatchResult sw = (*dfa)->Find(input);
    uint16_t hw = pu->ProcessString(input);
    EXPECT_EQ(hw != 0, sw.matched) << input;
    if (sw.matched) {
      EXPECT_EQ(static_cast<int32_t>(hw), sw.end) << input;
    }
  }
}

TEST(ProcessingUnitTest, CaseInsensitiveCollation) {
  CompileOptions ci;
  ci.case_insensitive = true;
  auto pu = MakePu("strasse", ci);
  ASSERT_TRUE(pu.ok());
  EXPECT_NE(pu->ProcessString("KOBLENZER STRASSE"), 0);
  EXPECT_NE(pu->ProcessString("Koblenzer StRaSsE"), 0);
  EXPECT_EQ(pu->ProcessString("Koblenzer Gasse"), 0);
}

}  // namespace
}  // namespace doppio
