#include <gtest/gtest.h>

#include "sql/executor.h"
#include "workload/address_generator.h"
#include "workload/queries.h"
#include "workload/tpch_generator.h"

namespace doppio {
namespace {

using sql::ExecuteQuery;

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ColumnStoreEngine::Options options;
    options.num_threads = 4;
    engine_ = std::make_unique<ColumnStoreEngine>(options);

    // Small handmade table for exact assertions.
    auto t = std::make_unique<Table>("people");
    auto id = std::make_unique<Bat>(ValueType::kInt32);
    auto name = std::make_unique<Bat>(ValueType::kString);
    auto age = std::make_unique<Bat>(ValueType::kInt32);
    const char* names[] = {"alice", "bob", "carol", "dave", "eve"};
    int ages[] = {30, 25, 30, 40, 25};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(id->AppendInt32(i).ok());
      ASSERT_TRUE(name->AppendString(names[i]).ok());
      ASSERT_TRUE(age->AppendInt32(ages[i]).ok());
    }
    ASSERT_TRUE(t->AddColumn("id", std::move(id)).ok());
    ASSERT_TRUE(t->AddColumn("name", std::move(name)).ok());
    ASSERT_TRUE(t->AddColumn("age", std::move(age)).ok());
    ASSERT_TRUE(engine_->catalog()->AddTable(std::move(t)).ok());
  }

  int64_t Scalar(const std::string& sql_text) {
    auto outcome = ExecuteQuery(engine_.get(), sql_text);
    EXPECT_TRUE(outcome.ok()) << sql_text << ": "
                              << outcome.status().ToString();
    if (!outcome.ok()) return -1;
    auto v = outcome->result.ScalarInt();
    EXPECT_TRUE(v.ok());
    return v.ok() ? *v : -1;
  }

  std::unique_ptr<ColumnStoreEngine> engine_;
};

TEST_F(SqlExecutorTest, CountStar) {
  EXPECT_EQ(Scalar("SELECT count(*) FROM people"), 5);
}

TEST_F(SqlExecutorTest, CountWithLike) {
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE name LIKE '%a%'"), 3);
  EXPECT_EQ(
      Scalar("SELECT count(*) FROM people WHERE name NOT LIKE '%a%'"), 2);
}

TEST_F(SqlExecutorTest, CountWithComparison) {
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE age = 30"), 2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE age < 30"), 2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE age >= 30"), 3);
}

TEST_F(SqlExecutorTest, MixedPredicates) {
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE name LIKE '%a%' AND "
                   "age = 30"),
            2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE age = 25 OR age = 40"),
            3);
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE NOT (age = 25)"), 3);
}

TEST_F(SqlExecutorTest, RegexpLikePredicate) {
  // 'a' followed eventually by 'e': alice and dave.
  EXPECT_EQ(
      Scalar("SELECT count(*) FROM people WHERE REGEXP_LIKE(name, 'a.*e')"),
      2);
  EXPECT_EQ(
      Scalar("SELECT count(*) FROM people WHERE REGEXP_LIKE(name, '(bob|eve)')"),
      2);
}

TEST_F(SqlExecutorTest, Projection) {
  auto outcome =
      ExecuteQuery(engine_.get(), "SELECT name, age FROM people WHERE "
                                  "age = 25 ORDER BY name");
  ASSERT_TRUE(outcome.ok());
  const ResultSet& rs = outcome->result;
  ASSERT_EQ(rs.num_columns(), 2);
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.columns[0].strings[0], "bob");
  EXPECT_EQ(rs.columns[0].strings[1], "eve");
  EXPECT_EQ(rs.columns[1].ints[0], 25);
}

TEST_F(SqlExecutorTest, GroupByWithAggregates) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT age, count(*) AS n FROM people GROUP BY age ORDER BY age");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ResultSet& rs = outcome->result;
  ASSERT_EQ(rs.num_rows(), 3);
  EXPECT_EQ(rs.columns[0].ints, (std::vector<int64_t>{25, 30, 40}));
  EXPECT_EQ(rs.columns[1].ints, (std::vector<int64_t>{2, 2, 1}));
}

TEST_F(SqlExecutorTest, SumMinMax) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT sum(age) AS s, min(age) AS lo, max(age) AS hi FROM people");
  ASSERT_TRUE(outcome.ok());
  const ResultSet& rs = outcome->result;
  EXPECT_EQ(rs.columns[0].ints[0], 150);
  EXPECT_EQ(rs.columns[1].ints[0], 25);
  EXPECT_EQ(rs.columns[2].ints[0], 40);
}

TEST_F(SqlExecutorTest, OrderByDescAndLimit) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT name, age FROM people ORDER BY age DESC, name ASC LIMIT 2");
  ASSERT_TRUE(outcome.ok());
  const ResultSet& rs = outcome->result;
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.columns[0].strings[0], "dave");
  // age 30 tie broken by name: alice before carol.
  EXPECT_EQ(rs.columns[0].strings[1], "alice");
}

TEST_F(SqlExecutorTest, EmptyResultAggregates) {
  EXPECT_EQ(Scalar("SELECT count(*) FROM people WHERE age > 100"), 0);
}

TEST_F(SqlExecutorTest, ErrorsSurface) {
  EXPECT_FALSE(ExecuteQuery(engine_.get(), "SELECT count(*) FROM ghost").ok());
  EXPECT_FALSE(
      ExecuteQuery(engine_.get(), "SELECT ghost FROM people").ok());
  EXPECT_FALSE(ExecuteQuery(engine_.get(),
                            "SELECT name FROM people GROUP BY age")
                   .ok());
}

TEST_F(SqlExecutorTest, DerivedTable) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT count(*) FROM (SELECT age, count(*) FROM people GROUP BY age) "
      "AS byage (age, n) WHERE n = 2");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto v = outcome->result.ScalarInt();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2);  // ages 25 and 30 both appear twice
}

TEST_F(SqlExecutorTest, StatsPopulated) {
  auto outcome = ExecuteQuery(
      engine_.get(), "SELECT count(*) FROM people WHERE name LIKE '%a%'");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.rows_scanned, 5);
  EXPECT_EQ(outcome->stats.rows_matched, 3);
  EXPECT_GT(outcome->stats.TotalSeconds(), 0.0);
  EXPECT_EQ(outcome->stats.strategy, "like");
}

TEST_F(SqlExecutorTest, ExplainSimpleQuery) {
  auto plan = sql::ExplainQuery(
      engine_.get(),
      "SELECT count(*) FROM people WHERE name LIKE '%a%' AND age < 30");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("from people (5 rows)"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("[like-scan] name ~ '%a%'"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("[row-predicate] (age < 30)"), std::string::npos)
      << *plan;
}

TEST_F(SqlExecutorTest, ExplainFpgaAndHybridStrategies) {
  auto fpga = sql::ExplainQuery(
      engine_.get(),
      "SELECT count(*) FROM people WHERE REGEXP_FPGA('a.c', name) <> 0");
  ASSERT_TRUE(fpga.ok());
  EXPECT_NE(fpga->find("[fpga-hudf] name ~ 'a.c'"), std::string::npos)
      << *fpga;

  auto automatic = sql::ExplainQuery(
      engine_.get(),
      "SELECT count(*) FROM people WHERE REGEXP_AUTO('a.c', name) <> 0");
  ASSERT_TRUE(automatic.ok());
  EXPECT_NE(automatic->find("[cost-model-auto]"), std::string::npos)
      << *automatic;
}

// --- Joins (TPC-H Q13 machinery) ----------------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ColumnStoreEngine::Options options;
    options.num_threads = 2;
    engine_ = std::make_unique<ColumnStoreEngine>(options);

    auto customer = std::make_unique<Table>("customer");
    auto ckey = std::make_unique<Bat>(ValueType::kInt32);
    for (int i = 1; i <= 4; ++i) ASSERT_TRUE(ckey->AppendInt32(i).ok());
    ASSERT_TRUE(customer->AddColumn("c_custkey", std::move(ckey)).ok());
    ASSERT_TRUE(engine_->catalog()->AddTable(std::move(customer)).ok());

    // customer 1: two orders (one special), 2: one special order,
    // 3: none, 4: one plain order.
    auto orders = std::make_unique<Table>("orders");
    auto okey = std::make_unique<Bat>(ValueType::kInt32);
    auto ocust = std::make_unique<Bat>(ValueType::kInt32);
    auto comment = std::make_unique<Bat>(ValueType::kString);
    struct Row {
      int key;
      int cust;
      const char* text;
    } rows[] = {
        {1, 1, "carefully packed"},
        {2, 1, "special handling requests"},
        {3, 2, "special fragile requests"},
        {4, 4, "plain order"},
    };
    for (const Row& r : rows) {
      ASSERT_TRUE(okey->AppendInt32(r.key).ok());
      ASSERT_TRUE(ocust->AppendInt32(r.cust).ok());
      ASSERT_TRUE(comment->AppendString(r.text).ok());
    }
    ASSERT_TRUE(orders->AddColumn("o_orderkey", std::move(okey)).ok());
    ASSERT_TRUE(orders->AddColumn("o_custkey", std::move(ocust)).ok());
    ASSERT_TRUE(orders->AddColumn("o_comment", std::move(comment)).ok());
    ASSERT_TRUE(engine_->catalog()->AddTable(std::move(orders)).ok());
  }

  std::unique_ptr<ColumnStoreEngine> engine_;
};

TEST_F(JoinTest, LeftOuterJoinWithAntiPredicate) {
  // Non-special order counts: cust1 -> 1, cust2 -> 0, cust3 -> 0,
  // cust4 -> 1.
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT c_custkey, count(o_orderkey) AS n FROM customer "
      "LEFT OUTER JOIN orders ON c_custkey = o_custkey "
      "AND o_comment NOT LIKE '%special%requests%' "
      "GROUP BY c_custkey ORDER BY c_custkey");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ResultSet& rs = outcome->result;
  ASSERT_EQ(rs.num_rows(), 4);
  EXPECT_EQ(rs.columns[0].ints, (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(rs.columns[1].ints, (std::vector<int64_t>{1, 0, 0, 1}));
}

TEST_F(JoinTest, InnerJoinDropsUnmatched) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT count(*) FROM customer INNER JOIN orders ON "
      "c_custkey = o_custkey");
  ASSERT_TRUE(outcome.ok());
  auto v = outcome->result.ScalarInt();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 4);  // every order row pairs with its customer
}

TEST_F(JoinTest, FullQ13Shape) {
  auto outcome = ExecuteQuery(
      engine_.get(),
      "SELECT c_count, COUNT(*) AS custdist FROM ("
      "SELECT c_custkey, count(o_orderkey) FROM customer "
      "LEFT OUTER JOIN orders ON c_custkey = o_custkey "
      "AND o_comment NOT LIKE '%special%requests%' "
      "GROUP BY c_custkey) AS c_orders (c_custkey, c_count) "
      "GROUP BY c_count ORDER BY custdist DESC, c_count DESC");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ResultSet& rs = outcome->result;
  // c_count distribution: 1 -> 2 customers (1 and 4), 0 -> 2 customers.
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.columns[1].ints, (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(rs.columns[0].ints, (std::vector<int64_t>{1, 0}));
}

TEST_F(JoinTest, ExplainQ13ShowsJoinAndPushedFilter) {
  auto plan = sql::ExplainQuery(
      engine_.get(),
      "SELECT c_count, COUNT(*) AS custdist FROM ("
      "SELECT c_custkey, count(o_orderkey) FROM customer "
      "LEFT OUTER JOIN orders ON c_custkey = o_custkey "
      "AND o_comment NOT LIKE '%special%requests%' "
      "GROUP BY c_custkey) AS c_orders (c_custkey, c_count) "
      "GROUP BY c_count ORDER BY custdist DESC, c_count DESC");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("derived table 'c_orders'"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("left outer join orders"), std::string::npos);
  EXPECT_NE(plan->find("hash-join key: (c_custkey = o_custkey)"),
            std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("pushed below join"), std::string::npos);
  EXPECT_NE(plan->find("[like-scan] o_comment !~ '%special%requests%'"),
            std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("hash-aggregate by c_count"), std::string::npos);
  EXPECT_NE(plan->find("sort by custdist desc"), std::string::npos);
}

TEST(TpchQ13Test, RunsOnGeneratedData) {
  ColumnStoreEngine::Options options;
  options.num_threads = 4;
  ColumnStoreEngine engine(options);
  TpchOptions tpch;
  tpch.scale_factor = 0.01;  // 1500 customers, 15000 orders
  auto customer = GenerateCustomerTable(tpch);
  auto orders = GenerateOrdersTable(tpch);
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(engine.catalog()->AddTable(std::move(*customer)).ok());
  ASSERT_TRUE(engine.catalog()->AddTable(std::move(*orders)).ok());

  auto like = ExecuteQuery(&engine, TpchQ13Sql(false));
  ASSERT_TRUE(like.ok()) << like.status().ToString();
  EXPECT_GT(like->result.num_rows(), 1);

  // Sum of custdist must equal the number of customers.
  const OwnedColumn* custdist = like->result.Find("custdist");
  ASSERT_NE(custdist, nullptr);
  int64_t total = 0;
  for (int64_t v : custdist->ints) total += v;
  EXPECT_EQ(total, tpch.num_customers());

  // One third of customers place no orders (TPC-H rule): the c_count = 0
  // bucket is large.
  const OwnedColumn* c_count = like->result.Find("c_count");
  ASSERT_NE(c_count, nullptr);
  int64_t zero_bucket = 0;
  for (size_t i = 0; i < c_count->ints.size(); ++i) {
    if (c_count->ints[i] == 0) zero_bucket = custdist->ints[i];
  }
  EXPECT_GE(zero_bucket, tpch.num_customers() / 3);

  // ILIKE prunes at least as many orders as LIKE (case variants).
  auto ilike = ExecuteQuery(&engine, TpchQ13Sql(true));
  ASSERT_TRUE(ilike.ok());
  EXPECT_GT(ilike->result.num_rows(), 0);
}

}  // namespace
}  // namespace doppio
