#include <gtest/gtest.h>

#include "regex/dfa_matcher.h"
#include "regex/substring_search.h"
#include "workload/address_generator.h"
#include "workload/queries.h"
#include "workload/tpch_generator.h"

namespace doppio {
namespace {

double Selectivity(const Bat& strings, const std::string& pattern) {
  auto dfa = DfaMatcher::Compile(pattern);
  EXPECT_TRUE(dfa.ok());
  int64_t hits = 0;
  for (int64_t i = 0; i < strings.count(); ++i) {
    if ((*dfa)->Matches(strings.GetString(i))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(strings.count());
}

TEST(AddressGeneratorTest, SchemaAndFormat) {
  AddressDataOptions opts;
  opts.num_records = 1000;
  auto table = GenerateAddressTable(opts, "address_table");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1000);
  const Bat* ids = (*table)->GetColumn("id");
  const Bat* strings = (*table)->GetColumn("address_string");
  ASSERT_NE(ids, nullptr);
  ASSERT_NE(strings, nullptr);
  EXPECT_EQ(ids->GetInt32(0), 0);
  EXPECT_EQ(ids->GetInt32(999), 999);
  // Pipe-separated fields: name|surname|street|zip|city[...].
  std::string_view first = strings->GetString(0);
  int pipes = 0;
  for (char c : first) pipes += c == '|' ? 1 : 0;
  EXPECT_GE(pipes, 4);
}

TEST(AddressGeneratorTest, LengthNearTarget) {
  AddressDataOptions opts;
  opts.num_records = 2000;
  opts.string_length = 64;
  auto table = GenerateAddressTable(opts, "t");
  ASSERT_TRUE(table.ok());
  const Bat* strings = (*table)->GetColumn("address_string");
  int64_t total = 0;
  for (int64_t i = 0; i < strings->count(); ++i) {
    total += static_cast<int64_t>(strings->GetString(i).size());
  }
  double avg = static_cast<double>(total) / strings->count();
  EXPECT_GT(avg, 50);
  EXPECT_LT(avg, 80);
}

TEST(AddressGeneratorTest, SelectivitiesNearTarget) {
  AddressDataOptions opts;
  opts.num_records = 40'000;
  opts.selectivity = 0.2;
  auto table = GenerateAddressTable(opts, "t");
  ASSERT_TRUE(table.ok());
  const Bat* strings = (*table)->GetColumn("address_string");
  EXPECT_NEAR(Selectivity(*strings, QueryPattern(EvalQuery::kQ1)), 0.2,
              0.02);
  EXPECT_NEAR(Selectivity(*strings, QueryPattern(EvalQuery::kQ3)), 0.2,
              0.02);
  EXPECT_NEAR(Selectivity(*strings, QueryPattern(EvalQuery::kQ4)), 0.2,
              0.02);
  // Q2 also fires on QH rows (they carry the same prefix).
  double q2 = Selectivity(*strings, QueryPattern(EvalQuery::kQ2));
  EXPECT_GT(q2, 0.15);
  EXPECT_LT(q2, 0.40);
}

TEST(AddressGeneratorTest, SelectivityZeroAndOne) {
  AddressDataOptions zero;
  zero.num_records = 5000;
  zero.selectivity = 0.0;
  zero.qh_selectivity = 0.0;
  auto table = GenerateAddressTable(zero, "t");
  ASSERT_TRUE(table.ok());
  const Bat* strings = (*table)->GetColumn("address_string");
  for (EvalQuery q : {EvalQuery::kQ1, EvalQuery::kQ2, EvalQuery::kQ3,
                      EvalQuery::kQ4, EvalQuery::kQH}) {
    EXPECT_EQ(Selectivity(*strings, QueryPattern(q)), 0.0) << QueryName(q);
  }

  AddressDataOptions one;
  one.num_records = 5000;
  one.selectivity = 1.0;
  auto table1 = GenerateAddressTable(one, "t");
  ASSERT_TRUE(table1.ok());
  EXPECT_EQ(Selectivity(*(*table1)->GetColumn("address_string"),
                        QueryPattern(EvalQuery::kQ1)),
            1.0);
}

TEST(AddressGeneratorTest, QhHitsAlwaysContainDelivery) {
  // Fig. 13's construction: every string matching the QH prefix also
  // matches the full QH expression.
  AddressDataOptions opts;
  opts.num_records = 20'000;
  opts.selectivity = 0.0;
  opts.q2_selectivity = 0.0;
  opts.qh_selectivity = 0.35;
  auto table = GenerateAddressTable(opts, "t");
  ASSERT_TRUE(table.ok());
  const Bat* strings = (*table)->GetColumn("address_string");
  double prefix = Selectivity(*strings, QueryPattern(EvalQuery::kQ2));
  double full = Selectivity(*strings, QueryPattern(EvalQuery::kQH));
  EXPECT_NEAR(prefix, 0.35, 0.02);
  EXPECT_DOUBLE_EQ(prefix, full);
}

TEST(AddressGeneratorTest, DeterministicBySeed) {
  AddressDataOptions opts;
  opts.num_records = 100;
  auto a = GenerateAddressTable(opts, "a");
  auto b = GenerateAddressTable(opts, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*a)->GetColumn("address_string")->GetString(i),
              (*b)->GetColumn("address_string")->GetString(i));
  }
  opts.seed = 43;
  auto c = GenerateAddressTable(opts, "c");
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (int64_t i = 0; i < 100; ++i) {
    any_diff |= (*a)->GetColumn("address_string")->GetString(i) !=
                (*c)->GetColumn("address_string")->GetString(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpchGeneratorTest, Cardinalities) {
  TpchOptions opts;
  opts.scale_factor = 0.01;
  auto customer = GenerateCustomerTable(opts);
  auto orders = GenerateOrdersTable(opts);
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ((*customer)->num_rows(), 1500);
  EXPECT_EQ((*orders)->num_rows(), 15'000);
}

TEST(TpchGeneratorTest, OneThirdOfCustomersHaveNoOrders) {
  TpchOptions opts;
  opts.scale_factor = 0.01;
  auto orders = GenerateOrdersTable(opts);
  ASSERT_TRUE(orders.ok());
  const Bat* ocust = (*orders)->GetColumn("o_custkey");
  for (int64_t i = 0; i < ocust->count(); ++i) {
    EXPECT_NE(ocust->GetInt32(i) % 3, 0);
  }
}

TEST(TpchGeneratorTest, SpecialRequestsFractions) {
  TpchOptions opts;
  opts.scale_factor = 0.05;
  auto orders = GenerateOrdersTable(opts);
  ASSERT_TRUE(orders.ok());
  const Bat* comments = (*orders)->GetColumn("o_comment");
  MultiSubstringMatcher* raw = nullptr;
  auto exact = MultiSubstringMatcher::Create({"special", "requests"});
  auto folded =
      MultiSubstringMatcher::Create({"special", "requests"}, true);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(folded.ok());
  (void)raw;
  int64_t exact_hits = 0;
  int64_t folded_hits = 0;
  for (int64_t i = 0; i < comments->count(); ++i) {
    std::string_view s = comments->GetString(i);
    exact_hits += (*exact)->Matches(s) ? 1 : 0;
    folded_hits += (*folded)->Matches(s) ? 1 : 0;
  }
  double n = static_cast<double>(comments->count());
  EXPECT_NEAR(exact_hits / n, opts.special_fraction, 0.005);
  // ILIKE catches the case variants too.
  EXPECT_NEAR(folded_hits / n,
              opts.special_fraction + opts.special_case_variant_fraction,
              0.005);
  EXPECT_GT(folded_hits, exact_hits);
}

TEST(QueriesTest, SqlRendering) {
  EXPECT_EQ(QuerySql(EvalQuery::kQ1, QueryEngineVariant::kMonetSoftware),
            "SELECT count(*) FROM address_table WHERE address_string LIKE "
            "'%Strasse%';");
  std::string q2 = QuerySql(EvalQuery::kQ2, QueryEngineVariant::kFpga);
  EXPECT_NE(q2.find("REGEXP_FPGA"), std::string::npos);
  EXPECT_NE(q2.find("<> 0"), std::string::npos);
  std::string q3 =
      QuerySql(EvalQuery::kQ3, QueryEngineVariant::kMonetSoftware);
  EXPECT_NE(q3.find("REGEXP_LIKE"), std::string::npos);
  std::string qh = QuerySql(EvalQuery::kQH, QueryEngineVariant::kHybrid);
  EXPECT_NE(qh.find("REGEXP_HYBRID"), std::string::npos);
}

}  // namespace
}  // namespace doppio
