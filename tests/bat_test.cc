#include <gtest/gtest.h>

#include "bat/bat.h"
#include "bat/string_heap.h"
#include "bat/table.h"
#include "mem/arena.h"
#include "mem/slab_allocator.h"

namespace doppio {
namespace {

TEST(BufferTest, AppendGrows) {
  Buffer buf;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(buf.Append(&i, sizeof(i)).ok());
  }
  EXPECT_EQ(buf.size(), 4000);
  const int* data = reinterpret_cast<const int*>(buf.data());
  EXPECT_EQ(data[0], 0);
  EXPECT_EQ(data[999], 999);
}

TEST(BufferTest, MoveTransfersOwnership) {
  Buffer a;
  ASSERT_TRUE(a.Append("hello", 5).ok());
  Buffer b = std::move(a);
  EXPECT_EQ(b.size(), 5);
  EXPECT_EQ(a.size(), 0);
}

TEST(StringHeapTest, Layout) {
  StringHeap heap;
  EXPECT_EQ(heap.size_bytes(), kHeapHeaderBytes);  // metadata block

  auto off1 = heap.Append("John Doe, Street");
  ASSERT_TRUE(off1.ok());
  EXPECT_EQ(*off1, kHeapHeaderBytes);
  auto off2 = heap.Append("Hans");
  ASSERT_TRUE(off2.ok());
  // 8-byte alignment: offsets are multiples of kHeapAlignment.
  EXPECT_EQ(*off2 % kHeapAlignment, 0u);
  EXPECT_GT(*off2, *off1);

  auto s1 = heap.Get(*off1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, "John Doe, Street");
  auto s2 = heap.Get(*off2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, "Hans");
}

TEST(StringHeapTest, NulTerminated) {
  StringHeap heap;
  auto off = heap.Append("abc");
  ASSERT_TRUE(off.ok());
  const char* raw = heap.GetUnchecked(*off);
  EXPECT_EQ(raw[3], '\0');  // length is not stored; readers scan for NUL
}

TEST(StringHeapTest, EmptyString) {
  StringHeap heap;
  auto off = heap.Append("");
  ASSERT_TRUE(off.ok());
  auto s = heap.Get(*off);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "");
}

TEST(StringHeapTest, OffsetValidation) {
  StringHeap heap;
  ASSERT_TRUE(heap.Append("x").ok());
  EXPECT_FALSE(heap.Get(3).ok());       // inside the metadata block
  EXPECT_FALSE(heap.Get(100000).ok());  // beyond the heap
}

TEST(BatTest, FixedWidthAppendAndGet) {
  Bat ints(ValueType::kInt32);
  ASSERT_TRUE(ints.AppendInt32(7).ok());
  ASSERT_TRUE(ints.AppendInt32(-3).ok());
  EXPECT_EQ(ints.count(), 2);
  EXPECT_EQ(ints.GetInt32(0), 7);
  EXPECT_EQ(ints.GetInt32(1), -3);
}

TEST(BatTest, ShortResultColumn) {
  Bat shorts(ValueType::kInt16);
  ASSERT_TRUE(shorts.AppendZeros(4).ok());
  EXPECT_EQ(shorts.count(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(shorts.GetInt16(i), 0);
}

TEST(BatTest, StringBatUsesOffsetsIntoHeap) {
  Bat strings(ValueType::kString);
  ASSERT_TRUE(strings.AppendString("alpha").ok());
  ASSERT_TRUE(strings.AppendString("beta").ok());
  EXPECT_EQ(strings.count(), 2);
  EXPECT_EQ(strings.GetString(0), "alpha");
  EXPECT_EQ(strings.GetString(1), "beta");
  EXPECT_EQ(strings.offset_width(), 4);
  // Tail stores offsets, not characters.
  EXPECT_EQ(strings.tail_bytes(), 2 * 4);
  EXPECT_EQ(strings.GetOffset(0), kHeapHeaderBytes);
}

TEST(BatTest, NewReservesCapacity) {
  auto bat = Bat::New(ValueType::kInt16, 100);
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ((*bat)->count(), 0);
}

TEST(BatTest, BatInSharedMemory) {
  SharedArena arena(8 * kSharedPageBytes);
  SlabAllocator slab(&arena);

  class SlabBufferAllocator : public BufferAllocator {
   public:
    explicit SlabBufferAllocator(SlabAllocator* slab) : slab_(slab) {}
    Result<void*> Allocate(int64_t bytes) override {
      return slab_->Allocate(bytes);
    }
    Status Free(void* ptr) override { return slab_->Free(ptr); }
    SlabAllocator* slab_;
  } alloc(&slab);

  Bat strings(ValueType::kString, &alloc);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(strings.AppendString("value" + std::to_string(i)).ok());
  }
  // Both the offset tail and the heap live inside the shared arena — the
  // property the FPGA depends on.
  EXPECT_TRUE(arena.Contains(strings.tail_data(), strings.tail_bytes()));
  EXPECT_TRUE(
      arena.Contains(strings.heap()->data(), strings.heap()->size_bytes()));
  EXPECT_EQ(strings.GetString(42), "value42");
}

TEST(TableTest, ColumnsAndValidation) {
  auto table = std::make_unique<Table>("t");
  auto ids = std::make_unique<Bat>(ValueType::kInt32);
  auto names = std::make_unique<Bat>(ValueType::kString);
  ASSERT_TRUE(ids->AppendInt32(1).ok());
  ASSERT_TRUE(names->AppendString("one").ok());
  ASSERT_TRUE(table->AddColumn("id", std::move(ids)).ok());
  ASSERT_TRUE(table->AddColumn("name", std::move(names)).ok());
  EXPECT_TRUE(table->Validate().ok());
  EXPECT_EQ(table->num_rows(), 1);
  EXPECT_NE(table->GetColumn("id"), nullptr);
  EXPECT_EQ(table->GetColumn("missing"), nullptr);
  EXPECT_EQ(table->ColumnIndex("name"), 1);
}

TEST(TableTest, CardinalityMismatchDetected) {
  auto table = std::make_unique<Table>("t");
  auto a = std::make_unique<Bat>(ValueType::kInt32);
  auto b = std::make_unique<Bat>(ValueType::kInt32);
  ASSERT_TRUE(a->AppendInt32(1).ok());
  ASSERT_TRUE(table->AddColumn("a", std::move(a)).ok());
  ASSERT_TRUE(table->AddColumn("b", std::move(b)).ok());
  EXPECT_FALSE(table->Validate().ok());
}

TEST(TableTest, DuplicateColumnRejected) {
  Table table("t");
  ASSERT_TRUE(
      table.AddColumn("x", std::make_unique<Bat>(ValueType::kInt32)).ok());
  EXPECT_EQ(
      table.AddColumn("x", std::make_unique<Bat>(ValueType::kInt32)).code(),
      StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(std::make_unique<Table>("a")).ok());
  ASSERT_TRUE(catalog.AddTable(std::make_unique<Table>("b")).ok());
  EXPECT_NE(catalog.GetTable("a"), nullptr);
  EXPECT_EQ(catalog.TableNames().size(), 2u);
  ASSERT_TRUE(catalog.DropTable("a").ok());
  EXPECT_EQ(catalog.GetTable("a"), nullptr);
  EXPECT_TRUE(catalog.DropTable("a").IsNotFound());
}

}  // namespace
}  // namespace doppio
